//! City monitor: real-time estimation rolling over a full day.
//!
//! ```text
//! cargo run --release --example city_monitor
//! ```
//!
//! Simulates a live deployment: every slot of a held-out day, the crowd
//! reports the seed speeds and the estimator refreshes the citywide
//! picture. Prints an hourly dashboard — mean citywide speed (truth vs
//! estimate), non-seed MAPE, and the share of roads trending below
//! their usual speed (a citywide congestion gauge).

use crowdspeed::metrics::ErrorStats;
use crowdspeed::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use trafficsim::crowd::{answered, crowdsource, CrowdParams};
use trafficsim::dataset::{metro_small, DatasetParams};

fn main() {
    let ds = metro_small(&DatasetParams {
        training_days: 12,
        test_days: 1,
        ..DatasetParams::default()
    });
    let stats = HistoryStats::compute(&ds.history);
    let corr = CorrelationGraph::build(
        &ds.graph,
        &ds.history,
        &stats,
        &CorrelationConfig::default(),
    );
    let influence = InfluenceModel::build(&corr, &InfluenceConfig::default());
    let seeds = lazy_greedy(&influence, ds.graph.num_roads() / 10).seeds;
    let est = TrafficEstimator::train(
        &ds.graph,
        &ds.history,
        &stats,
        &corr,
        &seeds,
        &EstimatorConfig::default(),
    )
    .expect("training");

    let truth = &ds.test_days[0];
    let n = ds.graph.num_roads();
    println!(
        "monitoring {} ({} roads, {} seeds) over one held-out day\n",
        ds.name,
        n,
        seeds.len()
    );
    println!(" hour | truth km/h | est km/h | non-seed MAPE | % roads slow | crowd");
    println!("------+------------+----------+---------------+--------------+------");

    let mut day_err = ErrorStats::default();
    for slot in 0..ds.clock.slots_per_day {
        let mut rng = StdRng::seed_from_u64(slot as u64);
        let reports = crowdsource(truth, slot, &seeds, &CrowdParams::default(), &mut rng);
        let obs = answered(&reports);
        let r = est.estimate(slot, &obs);

        let truth_v: Vec<f64> = ds
            .graph
            .road_ids()
            .map(|ro| truth.speed(slot, ro))
            .collect();
        let err = ErrorStats::from_road_vectors(&truth_v, &r.speeds, &seeds);
        day_err = day_err.merge(err);

        let mean_truth = linalg::stats::mean(&truth_v);
        let mean_est = linalg::stats::mean(&r.speeds);
        let slow = r.trends.iter().filter(|t| !**t).count() as f64 / n as f64;
        println!(
            "{:>5} | {:>10.1} | {:>8.1} | {:>12.1}% | {:>11.0}% | {}/{}",
            format!("{:02}:00", ds.clock.hour_of_slot(slot) as usize),
            mean_truth,
            mean_est,
            err.mape * 100.0,
            slow * 100.0,
            obs.len(),
            seeds.len()
        );
    }
    println!(
        "\nday summary: non-seed MAPE {:.1}% over {} road-slots",
        day_err.mape * 100.0,
        day_err.count
    );
}
