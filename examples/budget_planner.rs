//! Budget planner: how many crowdsourcing seeds does a city need?
//!
//! ```text
//! cargo run --release --example budget_planner
//! ```
//!
//! Sweeps the seed budget, showing (a) the diminishing marginal
//! coverage of each additional seed (the submodular gain curve) and
//! (b) the resulting estimation error — the two curves an operator
//! weighs against the per-seed crowdsourcing cost.

use crowdspeed::eval::Method;
use crowdspeed::prelude::*;
use trafficsim::dataset::{metro_small, DatasetParams};

fn main() {
    let ds = metro_small(&DatasetParams {
        training_days: 12,
        test_days: 1,
        ..DatasetParams::default()
    });
    let stats = HistoryStats::compute(&ds.history);
    let corr_cfg = CorrelationConfig::default();
    let corr = CorrelationGraph::build(&ds.graph, &ds.history, &stats, &corr_cfg);
    let influence = InfluenceModel::build(&corr, &InfluenceConfig::default());
    let n = ds.graph.num_roads();

    // One big greedy run: its prefix of length K is the greedy solution
    // for budget K, so the whole sweep costs a single selection.
    let max_k = n / 4;
    let full = lazy_greedy(&influence, max_k);
    println!(
        "{}: {} roads; greedy coverage curve (F(S) out of {})",
        ds.name, n, n
    );
    println!("\n  K | coverage F(S) | marginal gain of K-th seed");
    println!("----+---------------+----------------------------");
    let mut cum = 0.0;
    for (i, g) in full.gains.iter().enumerate() {
        cum += g;
        if (i + 1) % 5 == 0 || i == 0 {
            println!("{:>3} | {:>13.1} | {:>6.2}", i + 1, cum, g);
        }
    }

    println!("\n  K | non-seed MAPE | trend accuracy");
    println!("----+---------------+----------------");
    let cfg = EvalConfig {
        slots: (0..ds.clock.slots_per_day).step_by(3).collect(),
        correlation: corr_cfg,
        ..EvalConfig::default()
    };
    for k in [2usize, 5, 10, 15, 20, 25] {
        let seeds = full.seeds[..k.min(full.seeds.len())].to_vec();
        let rep = evaluate(
            &ds,
            &seeds,
            &Method::TwoStep(EstimatorConfig::default()),
            &cfg,
        );
        println!(
            "{:>3} | {:>12.1}% | {:>13.1}%",
            k,
            rep.error.mape * 100.0,
            rep.trend_accuracy * 100.0
        );
    }
    println!("\nrule of thumb: stop adding seeds where the marginal gain flattens.");
}
