//! Route ETA service: live travel-time estimates for commuters.
//!
//! ```text
//! cargo run --release --example route_eta
//! ```
//!
//! The application the paper's introduction motivates: a navigation
//! service needs every road's current speed to answer "how long across
//! town, right now?". This example plans the same corner-to-corner trip
//! at several times of day with two speed pictures — crowdspeed's
//! real-time estimates and the static historical averages — and scores
//! each *promised* ETA against the time the trip actually takes on the
//! simulator's true speeds.

use crowdspeed::prelude::*;
use crowdspeed::routing::fastest_route;
use rand::rngs::StdRng;
use rand::SeedableRng;
use roadnet::generate::{grid_city, GridParams};
use roadnet::RoadId;
use trafficsim::crowd::{answered, crowdsource, CrowdParams};
use trafficsim::dataset::{Dataset, DatasetParams};
use trafficsim::SlotClock;

fn main() {
    let graph = grid_city(&GridParams {
        width: 13,
        height: 13,
        ..GridParams::default()
    });
    let ds = Dataset::assemble(
        "route-demo-grid",
        graph,
        SlotClock::hourly(),
        &DatasetParams {
            training_days: 14,
            test_days: 1,
            ..DatasetParams::default()
        },
    );
    let stats = HistoryStats::compute(&ds.history);
    let corr = CorrelationGraph::build(
        &ds.graph,
        &ds.history,
        &stats,
        &CorrelationConfig::default(),
    );
    let influence = InfluenceModel::build(&corr, &InfluenceConfig::default());
    let seeds = lazy_greedy(&influence, ds.graph.num_roads() / 8).seeds;
    let est = TrafficEstimator::train(
        &ds.graph,
        &ds.history,
        &stats,
        &corr,
        &seeds,
        &EstimatorConfig::default(),
    )
    .expect("training");

    let n = ds.graph.num_roads();
    let (from, to) = (RoadId(0), RoadId((n - 1) as u32));
    let truth = &ds.test_days[0];
    println!(
        "corner-to-corner trip {from} -> {to} on a {} road grid ({} seeds observed)\n",
        n,
        seeds.len()
    );
    println!(" departure | planner    | promised | actual | promise error");
    println!("-----------+------------+----------+--------+---------------");

    let mut ours_err_total = 0.0;
    let mut hist_err_total = 0.0;
    let mut count = 0;
    for hour in [7.0, 8.0, 9.0, 12.0, 15.0, 17.0, 18.0, 19.0, 22.0] {
        let slot = ds.clock.slot_of_hour(hour);
        let mut rng = StdRng::seed_from_u64(slot as u64);
        let reports = crowdsource(truth, slot, &seeds, &CrowdParams::default(), &mut rng);
        let estimate = est.estimate(slot, &answered(&reports));
        let hist_speeds: Vec<f64> = ds.graph.road_ids().map(|r| stats.mean(slot, r)).collect();

        let score = |segments: &[RoadId]| -> f64 {
            segments
                .iter()
                .map(|&r| {
                    (ds.graph.meta(r).length_m / 1000.0) / truth.speed(slot, r).max(1.0) * 60.0
                })
                .sum()
        };
        let ours = fastest_route(&ds.graph, &estimate.speeds, from, to).expect("connected");
        let hist = fastest_route(&ds.graph, &hist_speeds, from, to).expect("connected");
        let ours_actual = score(&ours.segments);
        let hist_actual = score(&hist.segments);
        let ours_err = (ours.minutes - ours_actual).abs();
        let hist_err = (hist.minutes - hist_actual).abs();
        ours_err_total += ours_err;
        hist_err_total += hist_err;
        count += 1;
        println!(
            "     {:>2}:00 | crowdspeed | {:>5.1} min | {:>4.1} min | {:>10.1} min",
            hour as usize, ours.minutes, ours_actual, ours_err
        );
        println!(
            "           | static     | {:>5.1} min | {:>4.1} min | {:>10.1} min",
            hist.minutes, hist_actual, hist_err
        );
    }
    println!(
        "\nmean promise error: crowdspeed {:.2} min vs static {:.2} min",
        ours_err_total / count as f64,
        hist_err_total / count as f64
    );
}
