//! Quickstart: the full crowdspeed workflow in ~60 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! 1. Generate a small synthetic metro city with 10 days of
//!    probe-observed history.
//! 2. Build the road correlation graph from co-trending history.
//! 3. Select K = 12 seed roads with lazy greedy.
//! 4. Train the two-step estimator (trend MRF + hierarchical linear
//!    model).
//! 5. Crowdsource the seeds on a held-out rush-hour slot and estimate
//!    every other road's speed.

use crowdspeed::metrics::ErrorStats;
use crowdspeed::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use trafficsim::crowd::{answered, crowdsource, CrowdParams};
use trafficsim::dataset::{metro_small, DatasetParams};

fn main() {
    // 1. Data.
    let ds = metro_small(&DatasetParams {
        training_days: 10,
        test_days: 1,
        ..DatasetParams::default()
    });
    println!(
        "city: {} roads, {} adjacencies, {} training days",
        ds.graph.num_roads(),
        ds.graph.num_edges(),
        ds.history.num_days()
    );

    // 2. Correlation graph.
    let stats = HistoryStats::compute(&ds.history);
    let corr = CorrelationGraph::build(
        &ds.graph,
        &ds.history,
        &stats,
        &CorrelationConfig::default(),
    );
    println!(
        "correlation graph: {} edges (avg degree {:.1})",
        corr.num_edges(),
        corr.avg_degree()
    );

    // 3. Seed selection under budget K = 12.
    let influence = InfluenceModel::build(&corr, &InfluenceConfig::default());
    let selection = lazy_greedy(&influence, 12);
    println!(
        "selected {} seeds covering F(S) = {:.1} expected roads ({} gain evaluations)",
        selection.seeds.len(),
        selection.objective,
        selection.evaluations
    );

    // 4. Train the two-step estimator.
    let est = TrafficEstimator::train(
        &ds.graph,
        &ds.history,
        &stats,
        &corr,
        &selection.seeds,
        &EstimatorConfig::default(),
    )
    .expect("training");

    // 5. Estimate the AM rush on the held-out day.
    let slot = ds.clock.slot_of_hour(8.25);
    let truth = &ds.test_days[0];
    let mut rng = StdRng::seed_from_u64(1);
    let reports = crowdsource(
        truth,
        slot,
        &selection.seeds,
        &CrowdParams::default(),
        &mut rng,
    );
    let obs = answered(&reports);
    println!(
        "crowd answered on {}/{} seeds",
        obs.len(),
        selection.seeds.len()
    );

    let result = est.estimate(slot, &obs);
    let truth_v: Vec<f64> = ds.graph.road_ids().map(|r| truth.speed(slot, r)).collect();
    let err = ErrorStats::from_road_vectors(&truth_v, &result.speeds, &selection.seeds);
    let hist: Vec<f64> = ds.graph.road_ids().map(|r| stats.mean(slot, r)).collect();
    let base = ErrorStats::from_road_vectors(&truth_v, &hist, &selection.seeds);

    println!("\n-- 08:15 estimates (first 8 non-seed roads) --");
    for r in ds
        .graph
        .road_ids()
        .filter(|r| !selection.seeds.contains(r))
        .take(8)
    {
        println!(
            "  {r}: estimated {:5.1} km/h  (truth {:5.1}, historical {:5.1}, trend {})",
            result.speeds[r.index()],
            truth.speed(slot, r),
            stats.mean(slot, r),
            if result.trends[r.index()] {
                "up"
            } else {
                "down"
            }
        );
    }
    println!(
        "\nnon-seed MAPE: two-step {:.1}% vs historical-average {:.1}%",
        err.mape * 100.0,
        base.mape * 100.0
    );
}
