//! Incident response: detecting a localised traffic collapse.
//!
//! ```text
//! cargo run --release --example incident_response
//! ```
//!
//! Injects a severe unplanned incident (think multi-car crash) into a
//! held-out day: a neighbourhood's speeds collapse to 35 % of normal.
//! Then compares what the city sees *with* the crowdspeed estimator
//! versus the historical-average picture: the estimator localises the
//! slowdown from a handful of seed observations, the static picture
//! misses it entirely.

use crowdspeed::prelude::*;
use roadnet::{path, RoadId};
use trafficsim::dataset::{metro_small, DatasetParams};

fn main() {
    let ds = metro_small(&DatasetParams {
        training_days: 12,
        test_days: 1,
        ..DatasetParams::default()
    });
    let stats = HistoryStats::compute(&ds.history);
    let corr = CorrelationGraph::build(
        &ds.graph,
        &ds.history,
        &stats,
        &CorrelationConfig::default(),
    );
    let influence = InfluenceModel::build(&corr, &InfluenceConfig::default());
    let seeds = lazy_greedy(&influence, ds.graph.num_roads() / 6).seeds;
    let est = TrafficEstimator::train(
        &ds.graph,
        &ds.history,
        &stats,
        &corr,
        &seeds,
        &EstimatorConfig::default(),
    )
    .expect("training");

    // Inject the incident into the held-out day at 14:00: epicentre
    // road 30, everything within 3 hops collapses (decaying outward).
    let slot = ds.clock.slot_of_hour(14.0);
    let epicenter = RoadId(30);
    let mut truth = ds.test_days[0].clone();
    let hops = path::bfs_hops(&ds.graph, epicenter, 3);
    let mut zone = Vec::new();
    for r in ds.graph.road_ids() {
        let h = hops[r.index()];
        if h != u32::MAX {
            let factor = (0.35 + 0.15 * h as f64).min(1.0);
            truth.set_speed(slot, r, truth.speed(slot, r) * factor);
            zone.push(r);
        }
    }
    println!(
        "incident at {} ({} roads affected within 3 hops), 14:00",
        epicenter,
        zone.len()
    );

    // The crowd reports the seeds' (now partly collapsed) true speeds.
    let obs: Vec<(RoadId, f64)> = seeds.iter().map(|&s| (s, truth.speed(slot, s))).collect();
    let observed_in_zone = seeds.iter().filter(|s| zone.contains(s)).count();
    println!(
        "seeds inside the incident zone: {observed_in_zone}/{}",
        seeds.len()
    );

    let r = est.estimate(slot, &obs);

    // Compare pictures inside the zone (non-seed roads only).
    let mut rows = Vec::new();
    for &road in zone.iter().filter(|r| !seeds.contains(r)).take(10) {
        rows.push((
            road,
            truth.speed(slot, road),
            r.speeds[road.index()],
            stats.mean(slot, road),
        ));
    }
    println!("\nroad  | truth | crowdspeed | static history");
    println!("------+-------+------------+---------------");
    for (road, t, e, h) in &rows {
        println!("{road:>5} | {t:>5.1} | {e:>10.1} | {h:>13.1}");
    }

    // Zone-level verdict.
    let zone_nonseed: Vec<RoadId> = zone
        .iter()
        .copied()
        .filter(|r| !seeds.contains(r))
        .collect();
    let mean = |f: &dyn Fn(RoadId) -> f64| -> f64 {
        zone_nonseed.iter().map(|&r| f(r)).sum::<f64>() / zone_nonseed.len() as f64
    };
    let truth_mean = mean(&|road| truth.speed(slot, road));
    let est_mean = mean(&|road| r.speeds[road.index()]);
    let hist_mean = mean(&|road| stats.mean(slot, road));
    // Flag a road when its estimated speed sits well below its usual
    // speed (estimated deviation < 0.93) — sharper than the raw binary
    // trend because it folds in the magnitude channel.
    let flagged = |road: RoadId| r.speeds[road.index()] < 0.93 * stats.mean(slot, road);
    let detected = zone_nonseed.iter().filter(|&&road| flagged(road)).count();
    let outside: Vec<RoadId> = ds
        .graph
        .road_ids()
        .filter(|road| !zone.contains(road) && !seeds.contains(road))
        .collect();
    let false_flags = outside.iter().filter(|&&road| flagged(road)).count();
    println!(
        "\nzone mean speed: truth {truth_mean:.1} km/h, crowdspeed {est_mean:.1}, static {hist_mean:.1}"
    );
    println!(
        "detection: {detected}/{} zone roads flagged slow vs {false_flags}/{} outside the zone",
        zone_nonseed.len(),
        outside.len()
    );
    println!(
        "(the static picture flags nothing anywhere; magnitude is regression-to-the-mean \
         conservative, but the slowdown is localised correctly)"
    );
}
