//! End-to-end tests for the `crowdspeedd` TCP daemon.
//!
//! The daemon's core promise is that putting a socket in front of the
//! estimator changes *nothing* about the numbers: estimates served
//! over the wire are bit-identical to direct in-process calls, before
//! and after a hot model swap. The wire format's shortest-roundtrip
//! `f64` encoding is what makes asserting `==` on speeds legitimate.

use crowdspeed::prelude::*;
use crowdspeed_server::daemon::{Daemon, DaemonConfig, DaemonHandle};
use crowdspeed_server::protocol::{
    read_frame, write_frame, write_frame_with_version, BatchItem, BatchOutcome, Codec, ErrorKind,
    Request, Response, BINARY_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
use crowdspeed_server::state::TrainState;
use crowdspeed_server::{Client, ClientConfig, ServerError};
use roadnet::RoadId;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use trafficsim::dataset::{metro_small, Dataset, DatasetParams};

fn dataset() -> Dataset {
    metro_small(&DatasetParams {
        training_days: 6,
        test_days: 2,
        ..DatasetParams::default()
    })
}

fn seeds() -> Vec<RoadId> {
    (0..12u32).map(|i| RoadId(i * 8)).collect()
}

fn corr_config() -> CorrelationConfig {
    CorrelationConfig {
        min_cotrend: 0.6,
        min_co_observations: 6,
        ..CorrelationConfig::default()
    }
}

/// Builds a fresh training state from the dataset; calling this twice
/// yields two states whose `train()` outputs are identical, which is
/// what lets the tests hold an out-of-process reference model.
fn train_state(ds: &Dataset) -> TrainState {
    TrainState::new(
        ds.graph.clone(),
        &ds.history,
        seeds(),
        &corr_config(),
        EstimatorConfig::default(),
    )
}

fn spawn(ds: &Dataset, config: DaemonConfig) -> DaemonHandle {
    Daemon::spawn(train_state(ds), config).expect("daemon spawns")
}

fn observations_at(ds: &Dataset, slot: usize) -> Vec<(u32, f64)> {
    let truth = &ds.test_days[0];
    seeds()
        .iter()
        .map(|&s| (s.0, truth.speed(slot, s)))
        .collect()
}

fn day_rows(day: &trafficsim::SpeedField) -> Vec<Vec<f64>> {
    (0..day.num_slots())
        .map(|slot| day.slot_speeds(slot).to_vec())
        .collect()
}

#[test]
fn concurrent_connections_serve_bit_identical_estimates() {
    let ds = dataset();
    let handle = spawn(&ds, DaemonConfig::default());
    let reference = Arc::new(train_state(&ds).train().expect("reference trains"));
    let ds = Arc::new(ds);
    let addr = handle.addr();
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let reference = Arc::clone(&reference);
            let ds = Arc::clone(&ds);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("client connects");
                let mut scratch = EstimateScratch::new();
                for round in 0..3 {
                    let slot = (t * 3 + round) % ds.clock.slots_per_day;
                    let obs = observations_at(&ds, slot);
                    let reply = client.estimate(slot, obs.clone(), None).expect("estimate");
                    let direct_obs: Vec<(RoadId, f64)> =
                        obs.iter().map(|&(r, v)| (RoadId(r), v)).collect();
                    let direct = reference
                        .try_estimate(slot, &direct_obs, &mut scratch)
                        .expect("direct estimate");
                    assert_eq!(reply.epoch, 1, "no swap happened");
                    assert_eq!(reply.speeds, direct.speeds, "slot {slot}: wire == direct");
                    assert_eq!(reply.p_up, direct.p_up, "slot {slot}");
                    assert_eq!(reply.trends, direct.trends, "slot {slot}");
                    assert_eq!(
                        reply.ignored_observations,
                        direct.ignored_observations as u64
                    );
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().expect("stats");
    let estimate = &stats.commands[0];
    assert_eq!(estimate.0, "estimate");
    assert_eq!(estimate.1.received, 12);
    assert_eq!(estimate.1.ok, 12);
    assert_eq!(estimate.1.errors, 0);
    assert_eq!(
        stats.latency_counts.iter().sum::<u64>(),
        12,
        "every served estimate lands in one latency bucket"
    );
    client.shutdown().expect("clean shutdown");
    handle.join();
}

#[test]
fn hot_swap_under_traffic_is_invisible_to_clients() {
    let ds = dataset();
    let handle = spawn(&ds, DaemonConfig::default());
    let addr = handle.addr();
    let stop = Arc::new(AtomicBool::new(false));
    let served = Arc::new(AtomicU64::new(0));
    let ds = Arc::new(ds);
    // Keep estimate traffic in flight for the whole swap.
    let traffic: Vec<_> = (0..4)
        .map(|t| {
            let stop = Arc::clone(&stop);
            let served = Arc::clone(&served);
            let ds = Arc::clone(&ds);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("traffic client connects");
                let mut slot = t;
                while !stop.load(Ordering::Relaxed) {
                    slot = (slot + 1) % ds.clock.slots_per_day;
                    let obs = observations_at(&ds, slot);
                    let reply = client
                        .estimate(slot, obs, None)
                        .expect("estimates keep succeeding across the swap");
                    assert!(reply.epoch == 1 || reply.epoch == 2);
                    served.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    // Let the traffic threads get going before swapping.
    while served.load(Ordering::Relaxed) < 8 {
        std::thread::yield_now();
    }
    assert_eq!(handle.epoch(), 1);
    let new_day = &ds.test_days[1];
    let mut ingest_client = Client::connect(addr).expect("ingest client connects");
    let (epoch, _days) = ingest_client
        .ingest_day(day_rows(new_day))
        .expect("ingest + republish");
    assert_eq!(epoch, 2, "publish bumps the epoch gauge");
    assert_eq!(handle.epoch(), 2);
    // Traffic must survive the swap itself, not just precede it.
    let after_swap = served.load(Ordering::Relaxed);
    while served.load(Ordering::Relaxed) < after_swap + 8 {
        std::thread::yield_now();
    }
    stop.store(true, Ordering::Relaxed);
    for t in traffic {
        t.join().expect("traffic thread");
    }
    // Post-swap estimates match a model trained independently on the
    // same extended history.
    let mut reference_state = train_state(&ds);
    reference_state
        .ingest_day(new_day.clone())
        .expect("reference ingest");
    let reference = reference_state.train().expect("reference retrain");
    let mut scratch = EstimateScratch::new();
    let mut client = Client::connect(addr).expect("post-swap client");
    for slot in [3usize, 9, 15] {
        let obs = observations_at(&ds, slot);
        let reply = client.estimate(slot, obs.clone(), None).expect("estimate");
        let direct_obs: Vec<(RoadId, f64)> = obs.iter().map(|&(r, v)| (RoadId(r), v)).collect();
        let direct = reference
            .try_estimate(slot, &direct_obs, &mut scratch)
            .expect("direct estimate");
        assert_eq!(reply.epoch, 2);
        assert_eq!(
            reply.speeds, direct.speeds,
            "slot {slot}: post-swap wire == freshly trained model"
        );
        assert_eq!(reply.p_up, direct.p_up, "slot {slot}");
        assert_eq!(reply.trends, direct.trends, "slot {slot}");
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stats.epoch, 2);
    let ingest = &stats.commands[1];
    assert_eq!(ingest.0, "ingest_day");
    assert_eq!((ingest.1.received, ingest.1.ok, ingest.1.errors), (1, 1, 0));
    client.shutdown().expect("clean shutdown");
    handle.join();
}

#[test]
fn tiny_admission_queue_sheds_load_with_typed_rejections() {
    let ds = dataset();
    let handle = spawn(
        &ds,
        DaemonConfig {
            workers: 1,
            queue_capacity: 1,
            ..DaemonConfig::default()
        },
    );
    let addr = handle.addr();
    let ds = Arc::new(ds);
    let rejected = Arc::new(AtomicU64::new(0));
    let succeeded = Arc::new(AtomicU64::new(0));
    // Retry rounds make the race deterministic-enough: with eight
    // closed-loop connections against one worker and one queue slot,
    // some submission must find both occupied almost immediately.
    for _round in 0..20 {
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let ds = Arc::clone(&ds);
                let rejected = Arc::clone(&rejected);
                let succeeded = Arc::clone(&succeeded);
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).expect("client connects");
                    for round in 0..20 {
                        let slot = (t + round) % ds.clock.slots_per_day;
                        match client.estimate(slot, observations_at(&ds, slot), None) {
                            Ok(_) => {
                                succeeded.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(ServerError::Remote {
                                kind: ErrorKind::Overloaded,
                                ..
                            }) => {
                                rejected.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => panic!("only Overloaded is acceptable, got {e}"),
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("load thread");
        }
        if rejected.load(Ordering::Relaxed) > 0 {
            break;
        }
    }
    let observed_rejections = rejected.load(Ordering::Relaxed);
    assert!(
        observed_rejections > 0,
        "a 1-deep queue under 8 closed-loop connections must shed load"
    );
    assert!(succeeded.load(Ordering::Relaxed) > 0, "but not all of it");
    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.rejected_overload, observed_rejections,
        "every client-visible rejection is counted"
    );
    let estimate = &stats.commands[0];
    assert_eq!(estimate.1.errors, observed_rejections);
    client.shutdown().expect("clean shutdown");
    handle.join();
}

#[test]
fn empty_observations_and_expired_deadlines_get_typed_errors() {
    let ds = dataset();
    let handle = spawn(&ds, DaemonConfig::default());
    let mut client = Client::connect(handle.addr()).expect("client connects");
    match client.estimate(5, vec![], None) {
        Err(ServerError::Remote {
            kind: ErrorKind::NoObservations,
            ..
        }) => {}
        other => panic!("expected NoObservations, got {other:?}"),
    }
    // A zero deadline has always expired by the time a worker runs.
    match client.estimate(5, observations_at(&ds, 5), Some(0)) {
        Err(ServerError::Remote {
            kind: ErrorKind::DeadlineExceeded,
            ..
        }) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    // The connection survives both errors and the daemon still serves.
    let reply = client
        .estimate(5, observations_at(&ds, 5), None)
        .expect("healthy request after typed errors");
    assert_eq!(reply.epoch, 1);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.rejected_deadline, 1);
    let estimate = &stats.commands[0];
    assert_eq!(estimate.1.received, 3);
    assert_eq!(estimate.1.ok, 1);
    assert_eq!(estimate.1.errors, 2);
    client.shutdown().expect("clean shutdown");
    handle.join();
}

#[test]
fn shape_mismatched_ingest_is_rejected_without_a_swap() {
    let ds = dataset();
    let handle = spawn(&ds, DaemonConfig::default());
    let mut client = Client::connect(handle.addr()).expect("client connects");
    match client.ingest_day(vec![vec![30.0; 3]; 2]) {
        Err(ServerError::Remote {
            kind: ErrorKind::ShapeMismatch,
            ..
        }) => {}
        other => panic!("expected ShapeMismatch, got {other:?}"),
    }
    assert_eq!(handle.epoch(), 1, "a rejected ingest must not publish");
    client.shutdown().expect("clean shutdown");
    handle.join();
}

#[test]
fn malformed_frames_get_typed_errors_and_the_connection_survives() {
    let ds = dataset();
    let handle = spawn(
        &ds,
        DaemonConfig {
            max_frame_bytes: 4096,
            ..DaemonConfig::default()
        },
    );
    let mut stream = TcpStream::connect(handle.addr()).expect("raw connect");
    let no_abort = || false;

    // Unknown command: typed error, connection survives.
    write_frame(&mut stream, b"{\"cmd\":\"frobnicate\"}").unwrap();
    let (_, payload) = read_frame(&mut stream, 1 << 20, &no_abort).expect("error frame");
    match Response::decode(&payload).expect("decodes") {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::UnknownCommand),
        other => panic!("expected typed error, got {other:?}"),
    }

    // Unparseable JSON: typed error, connection survives.
    write_frame(&mut stream, b"this is not json").unwrap();
    let (_, payload) = read_frame(&mut stream, 1 << 20, &no_abort).expect("error frame");
    match Response::decode(&payload).expect("decodes") {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::BadRequest),
        other => panic!("expected typed error, got {other:?}"),
    }

    // Wrong protocol version byte: typed error, connection survives.
    let payload = Request::Stats.encode();
    let len = (payload.len() + 1) as u32;
    use std::io::Write;
    stream.write_all(&len.to_be_bytes()).unwrap();
    stream.write_all(&[PROTOCOL_VERSION + 41]).unwrap();
    stream.write_all(&payload).unwrap();
    let (_, payload) = read_frame(&mut stream, 1 << 20, &no_abort).expect("error frame");
    match Response::decode(&payload).expect("decodes") {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::UnsupportedVersion),
        other => panic!("expected typed error, got {other:?}"),
    }

    // After all that abuse the same connection still serves.
    write_frame(&mut stream, &Request::Stats.encode()).unwrap();
    let (_, payload) = read_frame(&mut stream, 1 << 20, &no_abort).expect("stats frame");
    match Response::decode(&payload).expect("decodes") {
        Response::Stats(stats) => assert_eq!(stats.epoch, 1),
        other => panic!("expected stats, got {other:?}"),
    }

    // An oversized frame gets a typed error, then the daemon hangs up
    // (an unread payload cannot be resynchronised).
    write_frame(&mut stream, &vec![b' '; 8192]).unwrap();
    let (_, payload) = read_frame(&mut stream, 1 << 20, &no_abort).expect("error frame");
    match Response::decode(&payload).expect("decodes") {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::FrameTooLarge),
        other => panic!("expected typed error, got {other:?}"),
    }

    let mut client = Client::connect(handle.addr()).expect("fresh client");
    client.shutdown().expect("clean shutdown");
    handle.join();
}

#[test]
fn shutdown_drains_and_joins() {
    let ds = dataset();
    let handle = spawn(&ds, DaemonConfig::default());
    let addr = handle.addr();
    let mut client = Client::connect(addr).expect("client connects");
    client
        .estimate(0, observations_at(&ds, 0), None)
        .expect("estimate before shutdown");
    client.shutdown().expect("shutdown acknowledged");
    // join() returns only after the acceptor and every connection
    // handler have exited.
    handle.join();
    // The listener is gone: a fresh connection must fail (either
    // refused outright or dead on first use).
    let unreachable = match TcpStream::connect(addr) {
        Err(_) => true,
        Ok(stream) => {
            let mut stream = stream;
            write_frame(&mut stream, &Request::Stats.encode()).is_err()
                || read_frame(&mut stream, 1 << 20, &|| false).is_err()
        }
    };
    assert!(unreachable, "daemon must stop serving after shutdown");
}

#[test]
fn rate_limit_rejects_burst_but_not_fresh_connections() {
    let ds = dataset();
    let handle = spawn(
        &ds,
        DaemonConfig {
            rate_limit_rps: Some(5),
            ..DaemonConfig::default()
        },
    );
    let addr = handle.addr();
    let mut client = Client::connect(addr).expect("client connects");
    let obs = observations_at(&ds, 3);

    // Burst far past the bucket: the first `capacity` requests pass,
    // the rest get the typed reject, and the connection survives every
    // rejection (rate limiting is not a hangup).
    let mut ok = 0u64;
    let mut limited = 0u64;
    for _ in 0..20 {
        match client.estimate(3, obs.clone(), None) {
            Ok(reply) => {
                assert_eq!(reply.epoch, 1);
                ok += 1;
            }
            Err(ServerError::Remote { kind, .. }) => {
                assert_eq!(kind, ErrorKind::RateLimited, "only typed rate_limited");
                limited += 1;
            }
            Err(other) => panic!("unexpected failure under rate limiting: {other}"),
        }
    }
    assert_eq!(ok + limited, 20);
    assert!(
        ok >= 5,
        "a full bucket admits at least its capacity, got {ok}"
    );
    assert!(
        limited > 0,
        "a 20-request burst must overflow a 5 rps bucket"
    );

    // The bucket is per connection: a fresh one starts full.
    let mut fresh = Client::connect(addr).expect("second client connects");
    fresh
        .estimate(3, obs.clone(), None)
        .expect("fresh connection is not limited");
    let stats = fresh.stats().expect("stats");
    assert_eq!(stats.rate_limited_requests, limited);

    // SHUTDOWN is exempt: even the exhausted connection can stop the
    // daemon (an operator must never be rate-limited out of control).
    client.shutdown().expect("shutdown bypasses the limiter");
    handle.join();
}

#[test]
fn binary_codec_answers_bit_identical_to_json() {
    let ds = dataset();
    let handle = spawn(&ds, DaemonConfig::default());
    let addr = handle.addr();
    let mut json_client = Client::connect(addr).expect("json client connects");
    let mut binary_client = Client::connect_with(
        addr,
        ClientConfig {
            codec: Codec::Binary,
            ..ClientConfig::default()
        },
    )
    .expect("binary client connects");

    for slot in [0usize, 7, 13] {
        let obs = observations_at(&ds, slot);
        let via_json = json_client
            .estimate(slot, obs.clone(), None)
            .expect("json estimate");
        let via_binary = binary_client
            .estimate(slot, obs, None)
            .expect("binary estimate");
        assert_eq!(via_json.epoch, via_binary.epoch);
        assert_eq!(via_json.speeds.len(), via_binary.speeds.len());
        for (j, b) in via_json.speeds.iter().zip(&via_binary.speeds) {
            assert_eq!(
                j.to_bits(),
                b.to_bits(),
                "slot {slot}: codecs must answer bit-identical speeds"
            );
        }
        for (j, b) in via_json.p_up.iter().zip(&via_binary.p_up) {
            assert_eq!(j.to_bits(), b.to_bits(), "slot {slot}: p_up differs");
        }
        assert_eq!(via_json.trends, via_binary.trends, "slot {slot}");
        assert_eq!(
            via_json.ignored_observations,
            via_binary.ignored_observations
        );
    }

    // Both codecs are visible in the per-codec request counters, and
    // stats itself works over the binary framing.
    let stats = binary_client.stats().expect("binary stats");
    assert!(stats.requests_json >= 3, "json requests counted");
    assert!(stats.requests_binary >= 4, "binary requests counted");
    json_client.shutdown().expect("clean shutdown");
    handle.join();
}

#[test]
fn batched_estimates_match_single_requests() {
    let ds = dataset();
    let handle = spawn(&ds, DaemonConfig::default());
    let addr = handle.addr();
    let mut client = Client::connect(addr).expect("client connects");

    let slots = [2usize, 9, 14];
    let singles: Vec<_> = slots
        .iter()
        .map(|&slot| {
            client
                .estimate(slot, observations_at(&ds, slot), None)
                .expect("single estimate")
        })
        .collect();

    // The same three slots plus a failing item: one frame, one reply,
    // per-item outcomes. The bad item must not sink its neighbours.
    let mut items: Vec<BatchItem> = slots
        .iter()
        .map(|&slot| BatchItem {
            slot_of_day: slot,
            observations: observations_at(&ds, slot),
            roads: None,
        })
        .collect();
    items.push(BatchItem {
        slot_of_day: 0,
        observations: vec![],
        roads: None,
    });
    let outcomes = client.estimate_batch(items, None).expect("batch estimate");
    assert_eq!(outcomes.len(), 4);
    for ((slot, single), outcome) in slots.iter().zip(&singles).zip(&outcomes) {
        let BatchOutcome::Estimate(batched) = outcome else {
            panic!("slot {slot}: expected an estimate outcome, got {outcome:?}");
        };
        assert_eq!(batched.epoch, single.epoch);
        assert_eq!(batched.speeds.len(), single.speeds.len());
        for (s, b) in single.speeds.iter().zip(&batched.speeds) {
            assert_eq!(
                s.to_bits(),
                b.to_bits(),
                "slot {slot}: batched == single, bit for bit"
            );
        }
        assert_eq!(batched.trends, single.trends, "slot {slot}");
    }
    match &outcomes[3] {
        BatchOutcome::Error { kind, .. } => assert_eq!(*kind, ErrorKind::NoObservations),
        other => panic!("empty observations must fail per-item, got {other:?}"),
    }

    let stats = client.stats().expect("stats");
    let batch = stats
        .commands
        .iter()
        .find(|(name, _)| name == "estimate_batch")
        .expect("estimate_batch counter exists");
    assert_eq!(
        (batch.1.received, batch.1.ok, batch.1.errors),
        (1, 1, 0),
        "one batch arrived and succeeded as a command even with a failed item"
    );
    client.shutdown().expect("clean shutdown");
    handle.join();
}

#[test]
fn malformed_binary_frames_get_typed_errors_and_the_connection_survives() {
    let ds = dataset();
    let handle = spawn(&ds, DaemonConfig::default());
    let mut stream = TcpStream::connect(handle.addr()).expect("raw connect");
    let no_abort = || false;

    // Unknown binary command tag: typed error in the binary codec, the
    // connection survives.
    write_frame_with_version(&mut stream, BINARY_PROTOCOL_VERSION, &[0xEE]).unwrap();
    let (version, payload) = read_frame(&mut stream, 1 << 20, &no_abort).expect("error frame");
    assert_eq!(
        version, BINARY_PROTOCOL_VERSION,
        "reply speaks the request codec"
    );
    match Response::decode_binary(&payload).expect("decodes") {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::UnknownCommand),
        other => panic!("expected typed error, got {other:?}"),
    }

    // Truncated binary body (valid tag, missing fields): typed error,
    // connection survives.
    let full = Request::Estimate {
        slot_of_day: 3,
        observations: observations_at(&ds, 3),
        deadline_ms: None,
        roads: None,
    }
    .encode_binary();
    write_frame_with_version(
        &mut stream,
        BINARY_PROTOCOL_VERSION,
        &full[..full.len() / 2],
    )
    .unwrap();
    let (version, payload) = read_frame(&mut stream, 1 << 20, &no_abort).expect("error frame");
    assert_eq!(version, BINARY_PROTOCOL_VERSION);
    match Response::decode_binary(&payload).expect("decodes") {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::BadRequest),
        other => panic!("expected typed error, got {other:?}"),
    }

    // After the abuse the same connection still serves binary requests.
    write_frame_with_version(
        &mut stream,
        BINARY_PROTOCOL_VERSION,
        &Request::Stats.encode_binary(),
    )
    .unwrap();
    let (version, payload) = read_frame(&mut stream, 1 << 20, &no_abort).expect("stats frame");
    assert_eq!(version, BINARY_PROTOCOL_VERSION);
    match Response::decode_binary(&payload).expect("decodes") {
        Response::Stats(stats) => assert_eq!(stats.epoch, 1),
        other => panic!("expected stats, got {other:?}"),
    }

    // And the codecs interleave freely on one connection: a JSON frame
    // after binary traffic is answered in JSON.
    write_frame(&mut stream, &Request::Stats.encode()).unwrap();
    let (version, payload) = read_frame(&mut stream, 1 << 20, &no_abort).expect("stats frame");
    assert_eq!(version, PROTOCOL_VERSION);
    match Response::decode(&payload).expect("decodes") {
        Response::Stats(stats) => assert_eq!(stats.epoch, 1),
        other => panic!("expected stats, got {other:?}"),
    }

    let mut client = Client::connect(handle.addr()).expect("fresh client");
    client.shutdown().expect("clean shutdown");
    handle.join();
}

#[test]
fn idle_connections_are_tracked_and_do_not_starve_requests() {
    let ds = dataset();
    let handle = spawn(
        &ds,
        DaemonConfig {
            max_connections: 512,
            ..DaemonConfig::default()
        },
    );
    let addr = handle.addr();
    let mut client = Client::connect(addr).expect("client connects");

    // Park a crowd of idle keep-alive connections. Under the old
    // thread-per-connection model these each pinned a thread; the
    // event loop just registers them.
    let idle: Vec<TcpStream> = (0..200)
        .map(|i| TcpStream::connect(addr).unwrap_or_else(|e| panic!("idle conn {i}: {e}")))
        .collect();

    // The gauge sees them, and live requests still flow past them.
    let mut open_seen = 0;
    for _ in 0..100 {
        let stats = client.stats().expect("stats");
        open_seen = stats.open_connections;
        if open_seen >= 201 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert!(
        open_seen >= 201,
        "gauge must count 200 idle + 1 active, saw {open_seen}"
    );
    let reply = client
        .estimate(4, observations_at(&ds, 4), None)
        .expect("estimate with 200 idle connections parked");
    assert_eq!(reply.epoch, 1);

    // Dropping the idle crowd drains the gauge.
    drop(idle);
    let mut open_after = u64::MAX;
    for _ in 0..250 {
        let stats = client.stats().expect("stats");
        open_after = stats.open_connections;
        if open_after <= 1 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert!(
        open_after <= 1,
        "closed idle connections must leave the gauge, saw {open_after}"
    );
    client.shutdown().expect("clean shutdown");
    handle.join();
}
