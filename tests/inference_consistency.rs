//! Inference-engine consistency on correlation structure derived from
//! the synthetic city: LBP and Gibbs must track exact marginals.

use crowdspeed::inference::trend_model::{TrendEngine, TrendModel, TrendModelConfig};
use crowdspeed::prelude::*;
use graphmodel::gibbs::GibbsOptions;
use roadnet::RoadId;
use trafficsim::dataset::{metro_small, DatasetParams};

/// Builds a trend model over a sub-city small enough for exact
/// inference (<= `n` roads).
fn small_trend_model(n: usize) -> (TrendModel, HistoryStats) {
    let ds = metro_small(&DatasetParams {
        training_days: 10,
        test_days: 1,
        ..DatasetParams::default()
    });
    let stats = HistoryStats::compute(&ds.history);
    let full = CorrelationGraph::build(
        &ds.graph,
        &ds.history,
        &stats,
        &CorrelationConfig {
            min_cotrend: 0.6,
            min_co_observations: 6,
            ..CorrelationConfig::default()
        },
    );
    let edges: Vec<_> = full
        .edges()
        .iter()
        .filter(|e| e.a.index() < n && e.b.index() < n)
        .copied()
        .collect();
    let corr = CorrelationGraph::from_edges(n, edges).unwrap();
    // Stats cover the full city; the model only reads the first n road
    // priors, which is fine because road ids are shared.
    let sub_stats = stats_restricted(&stats, n);
    let model = TrendModel::new(corr, &sub_stats, TrendModelConfig::default());
    (model, sub_stats)
}

/// Restrict HistoryStats to the first `n` roads by rebuilding from a
/// truncated history. (HistoryStats has no public truncation; rebuild.)
fn stats_restricted(stats: &HistoryStats, n: usize) -> HistoryStats {
    // Rebuild a minimal HistoricalData whose means/up-rates match the
    // first n roads of `stats` exactly: one day at the mean (counts as
    // "up"), and one day slightly below (counts as "down") gives
    // up-rate 0.5 and the same mean is *not* preserved exactly — so
    // instead, replay two days around the recorded mean.
    let slots = stats.num_slots();
    let mut d_up = trafficsim::SpeedField::filled(slots, n, 0.0);
    let mut d_down = trafficsim::SpeedField::filled(slots, n, 0.0);
    for slot in 0..slots {
        for r in 0..n {
            let m = stats.mean(slot, RoadId(r as u32));
            d_up.set_speed(slot, RoadId(r as u32), m * 1.1);
            d_down.set_speed(slot, RoadId(r as u32), m * 0.9);
        }
    }
    let h = trafficsim::HistoricalData::from_days(
        trafficsim::SlotClock {
            slots_per_day: slots,
        },
        vec![d_up, d_down],
    );
    HistoryStats::compute(&h)
}

/// Restricts a model's correlation edges to a BFS spanning forest —
/// LBP is exact on trees, so the comparison there is tight.
fn spanning_forest_model(n: usize) -> TrendModel {
    let (model, stats) = small_trend_model(n);
    let corr = model.correlation();
    let mut parent_known = vec![false; n];
    let mut keep = Vec::new();
    for root in 0..n {
        if parent_known[root] {
            continue;
        }
        parent_known[root] = true;
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(u) = queue.pop_front() {
            for (v, _) in corr.neighbors(RoadId(u as u32)) {
                if !parent_known[v.index()] {
                    parent_known[v.index()] = true;
                    let e = corr
                        .edges()
                        .iter()
                        .find(|e| (e.a.index() == u && e.b == v) || (e.b.index() == u && e.a == v))
                        .expect("edge exists");
                    keep.push(*e);
                    queue.push_back(v.index());
                }
            }
        }
    }
    let tree = CorrelationGraph::from_edges(n, keep).unwrap();
    TrendModel::new(tree, &stats, TrendModelConfig::default())
}

#[test]
fn lbp_exact_on_tree_structured_correlation() {
    let model = spanning_forest_model(18);
    let obs = [(RoadId(0), true), (RoadId(7), false)];
    let exact = model.infer(0, &obs, &TrendEngine::Exact);
    let lbp = model.infer(0, &obs, &TrendEngine::default());
    for (v, (l, e)) in lbp.p_up.iter().zip(&exact.p_up).enumerate() {
        assert!((l - e).abs() < 1e-4, "road {v}: LBP {l:.4} vs exact {e:.4}");
    }
}

#[test]
fn lbp_tracks_exact_marginals_on_loopy_graph() {
    // The first 18 roads of the metro city form a dense, highly loopy
    // correlation cluster (they meet at the city centre), which is the
    // known worst case for LBP. Decisions on *confident* roads must
    // still match exact inference, and the average marginal gap must be
    // modest.
    let (model, _) = small_trend_model(18);
    let obs = [(RoadId(0), true), (RoadId(7), false)];
    let exact = model.infer(0, &obs, &TrendEngine::Exact);
    let lbp = model.infer(0, &obs, &TrendEngine::default());
    let mut gap_sum = 0.0;
    for (v, (l, e)) in lbp.p_up.iter().zip(&exact.p_up).enumerate() {
        gap_sum += (l - e).abs();
        if (e - 0.5).abs() > 0.2 {
            assert_eq!(
                *l >= 0.5,
                *e >= 0.5,
                "road {v}: confident decision flipped (LBP {l:.3} vs exact {e:.3})"
            );
        }
    }
    let mean_gap = gap_sum / lbp.p_up.len() as f64;
    assert!(
        mean_gap < 0.12,
        "mean marginal gap too large: {mean_gap:.4}"
    );
}

#[test]
fn gibbs_tracks_exact_marginals() {
    let (model, _) = small_trend_model(16);
    let obs = [(RoadId(2), false)];
    let exact = model.infer(0, &obs, &TrendEngine::Exact);
    let gibbs = model.infer(
        0,
        &obs,
        &TrendEngine::Gibbs {
            options: GibbsOptions {
                burn_in: 500,
                samples: 8000,
            },
            seed: 17,
        },
    );
    for (v, (g, e)) in gibbs.p_up.iter().zip(&exact.p_up).enumerate() {
        assert!(
            (g - e).abs() < 0.05,
            "road {v}: Gibbs {g:.4} vs exact {e:.4}"
        );
    }
}

#[test]
fn engines_agree_on_hard_decisions_at_scale() {
    // On the full small city (no exact available) LBP and a well-mixed
    // Gibbs run must agree on nearly all hard trend calls.
    let ds = metro_small(&DatasetParams {
        training_days: 10,
        test_days: 1,
        ..DatasetParams::default()
    });
    let stats = HistoryStats::compute(&ds.history);
    let corr = CorrelationGraph::build(
        &ds.graph,
        &ds.history,
        &stats,
        &CorrelationConfig::default(),
    );
    let model = TrendModel::new(corr, &stats, TrendModelConfig::default());
    let truth = &ds.test_days[0];
    let slot = 8;
    let obs: Vec<(RoadId, bool)> = (0..12u32)
        .map(|i| RoadId(i * 8))
        .map(|r| (r, stats.trend_of(slot, r, truth.speed(slot, r))))
        .collect();
    let lbp = model.infer(slot, &obs, &TrendEngine::default());
    let gibbs = model.infer(
        slot,
        &obs,
        &TrendEngine::Gibbs {
            options: GibbsOptions::default(),
            seed: 23,
        },
    );
    // Roads whose marginal hovers at 0.5 decide by coin flip in both
    // engines, so agreement is only meaningful where both are
    // confident.
    let mut agree = 0usize;
    let mut confident = 0usize;
    let mut gap_sum = 0.0;
    for (l, g) in lbp.p_up.iter().zip(&gibbs.p_up) {
        gap_sum += (l - g).abs();
        if (l - 0.5).abs() > 0.15 && (g - 0.5).abs() > 0.15 {
            confident += 1;
            if (*l >= 0.5) == (*g >= 0.5) {
                agree += 1;
            }
        }
    }
    assert!(
        confident > 10,
        "too few confident roads ({confident}) to compare"
    );
    let frac = agree as f64 / confident as f64;
    assert!(
        frac > 0.85,
        "confident-decision agreement only {frac:.3} over {confident} roads"
    );
    let mean_gap = gap_sum / lbp.p_up.len() as f64;
    assert!(mean_gap < 0.2, "mean marginal gap {mean_gap:.3}");
}

#[test]
fn stronger_evidence_moves_posteriors_further() {
    let (model, _) = small_trend_model(20);
    let weak = model.infer(0, &[(RoadId(0), false)], &TrendEngine::default());
    let strong_obs: Vec<(RoadId, bool)> = (0..6u32).map(|i| (RoadId(i), false)).collect();
    let strong = model.infer(0, &strong_obs, &TrendEngine::default());
    let mean_weak = linalg::stats::mean(&weak.p_up);
    let mean_strong = linalg::stats::mean(&strong.p_up);
    assert!(
        mean_strong < mean_weak,
        "six down-observations ({mean_strong:.3}) should depress posteriors more than one ({mean_weak:.3})"
    );
}
