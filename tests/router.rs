//! End-to-end tests for the scatter-gather router and its shard fleet.
//!
//! The sharded deployment's core promise mirrors the daemon's: putting
//! a router and N shard workers in front of the estimator changes
//! *nothing* about the numbers. Every worker trains the identical full
//! model (training is replicated, serving is masked), so a scatter-
//! gathered reply must be byte-identical to a single unsharded daemon
//! at any shard count — before and after a hot model swap.

use crowdspeed::drift::DriftConfig;
use crowdspeed::prelude::*;
use crowdspeed_server::daemon::{Daemon, DaemonConfig, DaemonHandle};
use crowdspeed_server::{
    dataset_plan, BatchItem, BatchOutcome, Client, ClientConfig, Codec, ErrorKind, Router,
    RouterConfig, RouterHandle, ServerError, ShardSpec, StatsReply,
};
use roadnet::RoadId;
use trafficsim::dataset::{metro_small, Dataset, DatasetParams};

fn dataset() -> Dataset {
    metro_small(&DatasetParams {
        training_days: 6,
        test_days: 2,
        ..DatasetParams::default()
    })
}

fn seeds() -> Vec<RoadId> {
    (0..12u32).map(|i| RoadId(i * 8)).collect()
}

fn corr_config() -> CorrelationConfig {
    // 0.8 keeps the correlation graph multi-component (components are
    // atomic to the shard planner: splitting one would break masked
    // LBP bit-identity), so 2- and 3-shard plans are genuinely
    // balanced rather than degenerate single-shard plans.
    CorrelationConfig {
        min_cotrend: 0.8,
        min_co_observations: 6,
        ..CorrelationConfig::default()
    }
}

fn train_state(ds: &Dataset) -> crowdspeed_server::TrainState {
    crowdspeed_server::TrainState::new(
        ds.graph.clone(),
        &ds.history,
        seeds(),
        &corr_config(),
        EstimatorConfig::default(),
    )
}

fn observations_at(ds: &Dataset, slot: usize) -> Vec<(u32, f64)> {
    let truth = &ds.test_days[0];
    seeds()
        .iter()
        .map(|&s| (s.0, truth.speed(slot, s)))
        .collect()
}

fn day_rows(day: &trafficsim::SpeedField) -> Vec<Vec<f64>> {
    (0..day.num_slots())
        .map(|slot| day.slot_speeds(slot).to_vec())
        .collect()
}

fn spawn_worker(ds: &Dataset, index: usize, shards: usize, addr: &str) -> DaemonHandle {
    let plan = dataset_plan(&ds.graph, &ds.history, &corr_config(), shards).expect("plan");
    Daemon::spawn(
        train_state(ds),
        DaemonConfig {
            addr: addr.to_string(),
            shard: Some(ShardSpec { index, plan }),
            ..DaemonConfig::default()
        },
    )
    .expect("shard worker spawns")
}

fn spawn_fleet(ds: &Dataset, shards: usize) -> (Vec<DaemonHandle>, RouterHandle) {
    let plan = dataset_plan(&ds.graph, &ds.history, &corr_config(), shards).expect("plan");
    let workers: Vec<DaemonHandle> = (0..shards)
        .map(|i| spawn_worker(ds, i, shards, "127.0.0.1:0"))
        .collect();
    let shard_addrs = workers.iter().map(|w| w.addr().to_string()).collect();
    let router = Router::spawn(RouterConfig::new(
        "127.0.0.1:0".to_string(),
        shard_addrs,
        plan,
    ))
    .expect("router spawns");
    (workers, router)
}

/// Full-width and road-filtered estimates through the router must be
/// byte-identical to the unsharded daemon's, at this slot.
fn assert_parity(ds: &Dataset, via_router: &mut Client, via_single: &mut Client, slot: usize) {
    let obs = observations_at(ds, slot);
    let a = via_router
        .estimate(slot, obs.clone(), None)
        .expect("router estimate");
    let b = via_single
        .estimate(slot, obs.clone(), None)
        .expect("single estimate");
    assert_eq!(a.epoch, b.epoch, "slot {slot}");
    assert_eq!(a.speeds, b.speeds, "slot {slot}: router == single daemon");
    assert_eq!(a.p_up, b.p_up, "slot {slot}");
    assert_eq!(a.trends, b.trends, "slot {slot}");
    assert_eq!(a.ignored_observations, b.ignored_observations);
    assert!(a.unavailable.is_empty());

    // A filter crossing shard boundaries, deliberately out of order:
    // the reply must keep the request's order on both paths.
    let filter = vec![99u32, 0, 17, 55, 3];
    let fa = via_router
        .estimate_roads(slot, obs.clone(), None, Some(filter.clone()))
        .expect("router filtered estimate");
    let fb = via_single
        .estimate_roads(slot, obs, None, Some(filter.clone()))
        .expect("single filtered estimate");
    assert_eq!(fa.speeds, fb.speeds, "slot {slot}: filtered parity");
    assert_eq!(fa.p_up, fb.p_up);
    assert_eq!(fa.trends, fb.trends);
    for (j, &road) in filter.iter().enumerate() {
        assert_eq!(
            fa.speeds[j], a.speeds[road as usize],
            "filter picks road {road}"
        );
    }
}

fn parity_at(shards: usize) {
    let ds = dataset();
    let single = Daemon::spawn(train_state(&ds), DaemonConfig::default()).expect("single daemon");
    let (workers, router) = spawn_fleet(&ds, shards);
    let mut via_router = Client::connect(router.addr()).expect("router client");
    let mut via_single = Client::connect(single.addr()).expect("single client");

    assert_parity(&ds, &mut via_router, &mut via_single, 4);

    // Hot swap: the same day through both deployments keeps them in
    // lockstep (the router broadcasts, every worker retrains the same
    // full model).
    let rows = day_rows(&ds.test_days[1]);
    let routed = via_router.ingest_day(rows.clone()).expect("router ingest");
    let direct = via_single.ingest_day(rows).expect("single ingest");
    assert_eq!(routed, direct, "epoch and day count advance in lockstep");

    assert_parity(&ds, &mut via_router, &mut via_single, 9);

    // The merged STATS view: every shard up, on-plan, at the swapped
    // epoch, and the ownership columns cover the whole graph.
    let stats = via_router.stats().expect("router stats");
    assert_eq!(stats.shards.len(), shards);
    for health in &stats.shards {
        assert!(health.up, "shard {} up", health.shard);
        assert!(health.plan_ok, "shard {} on-plan", health.shard);
        assert_eq!(health.epoch, 2);
        assert_eq!(health.days_ingested, routed.1, "bootstrap history + 1");
    }
    let owned_total: u64 = stats.shards.iter().map(|h| h.owned_roads).sum();
    assert_eq!(owned_total, ds.graph.num_roads() as u64);
    assert_eq!(stats.epoch, 2);

    // A worker's own STATS carries its shard identity.
    let mut direct_worker = Client::connect(workers[0].addr()).expect("worker client");
    let worker_stats = direct_worker.stats().expect("worker stats");
    let identity = worker_stats.shard.expect("worker reports its shard");
    assert_eq!(identity.index, 0);
    assert_eq!(identity.count, shards as u32);

    // SHUTDOWN through the router stops the whole fleet.
    via_router.shutdown().expect("fleet shutdown");
    router.wait();
    for worker in workers {
        worker.wait();
    }
    via_single.shutdown().expect("single shutdown");
    single.wait();
}

#[test]
fn router_matches_single_daemon_bitwise_at_two_shards() {
    parity_at(2);
}

#[test]
fn router_matches_single_daemon_bitwise_at_three_shards() {
    parity_at(3);
}

#[test]
fn router_degrades_per_shard_and_recovers() {
    let ds = dataset();
    let shards = 2;
    let (workers, router) = spawn_fleet(&ds, shards);
    let plan = dataset_plan(&ds.graph, &ds.history, &corr_config(), shards).expect("plan");
    let mut client = Client::connect(router.addr()).expect("router client");
    let obs = observations_at(&ds, 5);
    let healthy = client
        .estimate(5, obs.clone(), None)
        .expect("healthy estimate");

    let owned0: Vec<u32> = plan.owned_roads(0).iter().map(|r| r.0).collect();
    let owned1: Vec<u32> = plan.owned_roads(1).iter().map(|r| r.0).collect();
    let mut workers = workers.into_iter();
    let w0 = workers.next().expect("worker 0");
    let w1 = workers.next().expect("worker 1");
    let w0_addr = w0.addr().to_string();

    // Kill shard 0 out from under the router.
    w0.join();

    // Roads owned by the live shard still answer, bit-identically.
    let live_filter = owned1[..3.min(owned1.len())].to_vec();
    let live = client
        .estimate_roads(5, obs.clone(), None, Some(live_filter.clone()))
        .expect("live-shard roads still answer");
    assert!(live.unavailable.is_empty());
    for (j, &road) in live_filter.iter().enumerate() {
        assert_eq!(live.speeds[j], healthy.speeds[road as usize]);
    }

    // Roads owned only by the dead shard: a typed, retryable error.
    match client.estimate_roads(5, obs.clone(), None, Some(owned0[..2].to_vec())) {
        Err(ServerError::Remote { kind, .. }) => assert_eq!(kind, ErrorKind::ShardUnavailable),
        other => panic!("dead-shard-only request must fail typed, got {other:?}"),
    }

    // A mixed filter degrades per road: live positions answered, dead
    // positions NaN and listed in `unavailable`.
    let mixed = vec![owned1[0], owned0[0], owned1[1]];
    let partial = client
        .estimate_roads(5, obs.clone(), None, Some(mixed))
        .expect("mixed filter degrades instead of failing");
    assert_eq!(partial.unavailable, vec![owned0[0]]);
    assert!(partial.speeds[1].is_nan() && partial.p_up[1].is_nan() && !partial.trends[1]);
    assert_eq!(partial.speeds[0], healthy.speeds[owned1[0] as usize]);
    assert_eq!(partial.speeds[2], healthy.speeds[owned1[1] as usize]);

    // Full-width estimates need every shard.
    match client.estimate(5, obs.clone(), None) {
        Err(ServerError::Remote { kind, .. }) => assert_eq!(kind, ErrorKind::ShardUnavailable),
        other => panic!("all-roads request must fail typed, got {other:?}"),
    }

    // STATS stays answerable and shows exactly which shard is down.
    let stats = client.stats().expect("stats during degradation");
    assert!(!stats.shards[0].up);
    assert!(stats.shards[1].up && stats.shards[1].plan_ok);

    // Recovery: a replacement worker on the same address (same
    // deterministic training) restores full service transparently.
    let w0b = spawn_worker(&ds, 0, shards, &w0_addr);
    let recovered = client
        .estimate(5, obs.clone(), None)
        .expect("recovered estimate");
    assert_eq!(
        recovered.speeds, healthy.speeds,
        "recovery is bit-identical"
    );
    assert_eq!(recovered.p_up, healthy.p_up);
    assert_eq!(recovered.trends, healthy.trends);
    let stats = client.stats().expect("stats after recovery");
    assert!(stats.shards.iter().all(|h| h.up && h.plan_ok));

    client.shutdown().expect("fleet shutdown");
    router.wait();
    w1.wait();
    w0b.wait();
}

#[test]
fn binary_shard_links_and_batches_stay_bit_identical() {
    let ds = dataset();
    let shards = 2;
    let single = Daemon::spawn(train_state(&ds), DaemonConfig::default()).expect("single daemon");
    let plan = dataset_plan(&ds.graph, &ds.history, &corr_config(), shards).expect("plan");
    let workers: Vec<DaemonHandle> = (0..shards)
        .map(|i| spawn_worker(&ds, i, shards, "127.0.0.1:0"))
        .collect();
    let shard_addrs = workers.iter().map(|w| w.addr().to_string()).collect();
    // Router → worker links speak the binary codec end to end.
    let mut config = RouterConfig::new("127.0.0.1:0".to_string(), shard_addrs, plan);
    config.shard_client.codec = Codec::Binary;
    let router = Router::spawn(config).expect("router spawns");

    // The client side speaks binary too: the whole chain is binary,
    // and the numbers still match the JSON single-daemon path exactly.
    let mut via_router = Client::connect_with(
        router.addr(),
        ClientConfig {
            codec: Codec::Binary,
            ..ClientConfig::default()
        },
    )
    .expect("binary router client");
    let mut via_single = Client::connect(single.addr()).expect("single client");
    assert_parity(&ds, &mut via_router, &mut via_single, 6);

    // A batch through the scatter path: every item bit-identical to
    // the single daemon, failures isolated per item.
    let slots = [1usize, 8];
    let mut items: Vec<BatchItem> = slots
        .iter()
        .map(|&slot| BatchItem {
            slot_of_day: slot,
            observations: observations_at(&ds, slot),
            roads: None,
        })
        .collect();
    items.push(BatchItem {
        slot_of_day: 0,
        observations: vec![],
        roads: None,
    });
    let outcomes = via_router
        .estimate_batch(items, None)
        .expect("batch through the router");
    assert_eq!(outcomes.len(), 3);
    for (&slot, outcome) in slots.iter().zip(&outcomes) {
        let BatchOutcome::Estimate(batched) = outcome else {
            panic!("slot {slot}: expected estimate, got {outcome:?}");
        };
        let direct = via_single
            .estimate(slot, observations_at(&ds, slot), None)
            .expect("single estimate");
        assert_eq!(batched.speeds, direct.speeds, "slot {slot}: batch parity");
        assert_eq!(batched.p_up, direct.p_up, "slot {slot}");
        assert_eq!(batched.trends, direct.trends, "slot {slot}");
    }
    match &outcomes[2] {
        BatchOutcome::Error { kind, .. } => assert_eq!(*kind, ErrorKind::NoObservations),
        other => panic!("empty observations must fail per item, got {other:?}"),
    }

    via_router.shutdown().expect("fleet shutdown");
    router.wait();
    for worker in workers {
        worker.wait();
    }
    via_single.shutdown().expect("single shutdown");
    single.wait();
}

/// The pipelined STATS broadcast (send to every shard first, then
/// collect in shard order) must report exactly what each worker would
/// report if asked directly, and the merged top-line view must be the
/// per-field maximum over the fleet — including the drift family.
#[test]
fn pipelined_stats_broadcast_matches_direct_worker_stats() {
    let ds = dataset();
    let shards = 3;
    let plan = dataset_plan(&ds.graph, &ds.history, &corr_config(), shards).expect("plan");
    // Drift monitoring on, threshold far above any reachable signal:
    // every ingest records a live signal without ever triggering, so
    // the probe has a real float to merge.
    let config = EstimatorConfig {
        drift: Some(DriftConfig {
            threshold: 2.0,
            cooldown_days: u64::MAX,
            window_days: 0,
        }),
        ..EstimatorConfig::default()
    };
    let workers: Vec<DaemonHandle> = (0..shards)
        .map(|i| {
            let state = crowdspeed_server::TrainState::new(
                ds.graph.clone(),
                &ds.history,
                seeds(),
                &corr_config(),
                config.clone(),
            );
            Daemon::spawn(
                state,
                DaemonConfig {
                    addr: "127.0.0.1:0".to_string(),
                    shard: Some(ShardSpec {
                        index: i,
                        plan: plan.clone(),
                    }),
                    ..DaemonConfig::default()
                },
            )
            .expect("shard worker spawns")
        })
        .collect();
    let shard_addrs = workers.iter().map(|w| w.addr().to_string()).collect();
    let router = Router::spawn(RouterConfig::new(
        "127.0.0.1:0".to_string(),
        shard_addrs,
        plan,
    ))
    .expect("router spawns");
    let mut client = Client::connect(router.addr()).expect("router client");

    // A broadcast ingest advances every worker's epoch and makes each
    // evaluate its drift signal against the frozen context.
    client
        .ingest_day(day_rows(&ds.test_days[0]))
        .expect("router ingest");

    let merged = client.stats().expect("router stats");
    let direct: Vec<StatsReply> = workers
        .iter()
        .map(|w| {
            Client::connect(w.addr())
                .expect("worker client")
                .stats()
                .expect("worker stats")
        })
        .collect();

    // Per-shard rows mirror the workers' own answers, in shard order.
    assert_eq!(merged.shards.len(), shards);
    for (row, worker) in merged.shards.iter().zip(&direct) {
        assert!(row.up && row.plan_ok, "shard {} healthy", row.shard);
        assert_eq!(row.epoch, worker.epoch, "shard {}", row.shard);
        assert_eq!(row.days_ingested, worker.days_ingested);
    }

    // Every worker ingested the identical day against identical state,
    // so their drift signals agree bit-for-bit.
    for worker in &direct {
        assert_eq!(
            worker.drift_signal.to_bits(),
            direct[0].drift_signal.to_bits(),
            "replicated training keeps drift signals in lockstep"
        );
    }

    // The merged top line is the per-field maximum over the fleet.
    assert_eq!(merged.epoch, direct.iter().map(|w| w.epoch).max().unwrap());
    assert_eq!(
        merged.days_ingested,
        direct.iter().map(|w| w.days_ingested).max().unwrap()
    );
    let max_signal = direct.iter().map(|w| w.drift_signal).fold(0.0, f64::max);
    assert_eq!(merged.drift_signal.to_bits(), max_signal.to_bits());
    assert_eq!(
        merged.drift_triggers,
        direct.iter().map(|w| w.drift_triggers).max().unwrap()
    );
    assert_eq!(
        merged.drift_last_rebootstrap_epoch,
        direct
            .iter()
            .map(|w| w.drift_last_rebootstrap_epoch)
            .max()
            .unwrap()
    );
    assert_eq!(
        merged.drift_seed_overlap,
        direct.iter().map(|w| w.drift_seed_overlap).max().unwrap()
    );

    client.shutdown().expect("fleet shutdown");
    router.wait();
    for worker in workers {
        worker.wait();
    }
}

#[test]
fn router_rejects_out_of_range_roads_and_routes_empty_filters() {
    let ds = dataset();
    let (workers, router) = spawn_fleet(&ds, 2);
    let mut client = Client::connect(router.addr()).expect("router client");
    let obs = observations_at(&ds, 2);

    match client.estimate_roads(2, obs.clone(), None, Some(vec![0, 100_000])) {
        Err(ServerError::Remote { kind, .. }) => assert_eq!(kind, ErrorKind::BadRequest),
        other => panic!("out-of-range road must be a typed BadRequest, got {other:?}"),
    }

    // An empty filter is a valid request for zero roads.
    let empty = client
        .estimate_roads(2, obs.clone(), None, Some(Vec::new()))
        .expect("empty filter");
    assert!(empty.speeds.is_empty() && empty.unavailable.is_empty());

    // Empty observations stay a typed NoObservations through the
    // scatter path.
    match client.estimate(2, Vec::new(), None) {
        Err(ServerError::Remote { kind, .. }) => assert_eq!(kind, ErrorKind::NoObservations),
        other => panic!("empty observations must pass through typed, got {other:?}"),
    }

    client.shutdown().expect("fleet shutdown");
    router.wait();
    for worker in workers {
        worker.wait();
    }
}
