//! Persistence tests for the snapshot layer: a daemon restarted from a
//! valid snapshot serves bit-identically to the process that wrote it
//! (including after further ingests), and every corrupt or mismatched
//! file degrades to a clean retrain with a typed reject reason — never
//! a crash, never a silently wrong model.

use crowdspeed::online::OnlineCorrelation;
use crowdspeed::prelude::*;
use crowdspeed_server::daemon::{Daemon, DaemonConfig, DaemonHandle};
use crowdspeed_server::protocol::StatsReply;
use crowdspeed_server::snapshot::{self, RejectReason};
use crowdspeed_server::state::TrainInputs;
use crowdspeed_server::{Client, ErrorKind, ServerError};
use proptest::prelude::*;
use roadnet::RoadId;
use std::path::{Path, PathBuf};
use trafficsim::dataset::{metro_small, Dataset, DatasetParams};
use trafficsim::{SlotClock, SpeedField};

fn dataset() -> Dataset {
    metro_small(&DatasetParams {
        training_days: 6,
        test_days: 2,
        ..DatasetParams::default()
    })
}

fn seeds() -> Vec<RoadId> {
    (0..12u32).map(|i| RoadId(i * 8)).collect()
}

fn corr_config() -> CorrelationConfig {
    CorrelationConfig {
        min_cotrend: 0.6,
        min_co_observations: 6,
        ..CorrelationConfig::default()
    }
}

fn inputs(ds: &Dataset) -> TrainInputs {
    TrainInputs {
        graph: ds.graph.clone(),
        history: ds.history.clone(),
        seeds: seeds(),
        corr_config: corr_config(),
        config: EstimatorConfig::default(),
    }
}

/// A fresh per-test snapshot directory (removed on drop so reruns
/// never resume from a previous process's files).
struct SnapDir(PathBuf);

impl SnapDir {
    fn new(tag: &str) -> SnapDir {
        let dir =
            std::env::temp_dir().join(format!("crowdspeed-snaptest-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        SnapDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for SnapDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn spawn_with_dir(ds: &Dataset, dir: &Path) -> DaemonHandle {
    Daemon::spawn_from(
        inputs(ds),
        DaemonConfig {
            snapshot_dir: Some(dir.to_path_buf()),
            ..DaemonConfig::default()
        },
    )
    .expect("daemon spawns")
}

/// Like [`spawn_with_dir`], but with an unlimited incremental coverage
/// budget, so an `INGEST_DAY` never re-anchors the training context —
/// the unbroken daemon advances its standing trainer and the frozen
/// context diverges from the live graph (exercising the snapshot's
/// explicit-context section).
fn spawn_incremental(ds: &Dataset, dir: &Path) -> DaemonHandle {
    let mut inputs = inputs(ds);
    inputs.config.max_incremental_fraction = f64::INFINITY;
    Daemon::spawn_from(
        inputs,
        DaemonConfig {
            snapshot_dir: Some(dir.to_path_buf()),
            ..DaemonConfig::default()
        },
    )
    .expect("daemon spawns")
}

/// Seed observations for `slot`, plus one deliberate non-seed road so
/// every estimate bumps the `ignored_observations` counter.
fn observations_at(ds: &Dataset, slot: usize) -> Vec<(u32, f64)> {
    let truth = &ds.test_days[0];
    let mut obs: Vec<(u32, f64)> = seeds()
        .iter()
        .map(|&s| (s.0, truth.speed(slot, s)))
        .collect();
    obs.push((1, 30.0)); // RoadId(1) is not a seed
    obs
}

fn day_rows(day: &SpeedField) -> Vec<Vec<f64>> {
    (0..day.num_slots())
        .map(|slot| day.slot_speeds(slot).to_vec())
        .collect()
}

fn retrain_count(stats: &StatsReply, mode: &str) -> u64 {
    stats
        .retrains
        .iter()
        .find(|(n, _)| n == mode)
        .map(|(_, c)| *c)
        .unwrap_or_else(|| panic!("STATS carries no retrain counter named {mode:?}"))
}

fn reject_count(stats: &StatsReply, name: &str) -> u64 {
    stats
        .snapshot_rejects
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, c)| *c)
        .unwrap_or_else(|| panic!("STATS carries no snapshot reject counter named {name:?}"))
}

/// The single snapshot file a one-epoch daemon run leaves behind.
fn only_snapshot(dir: &Path) -> PathBuf {
    let files = snapshot::list_snapshots(dir);
    assert_eq!(files.len(), 1, "expected exactly one snapshot in {dir:?}");
    files[0].clone()
}

/// Scenario 1: save → kill → restart. The resumed daemon reports the
/// resume in STATS, skips retraining, and answers every estimate —
/// speeds, trend probabilities, trend bits, ignored-observation counts
/// — bit-identically to the process that wrote the snapshot, with the
/// STATS gauges (epoch, days ingested, ignored observations) in parity.
#[test]
fn resumed_daemon_serves_bit_identical_estimates_with_stats_parity() {
    let ds = dataset();
    let snap = SnapDir::new("resume");
    let slots = [0usize, 3, 7, 11];

    let handle = spawn_with_dir(&ds, snap.path());
    let mut client = Client::connect(handle.addr()).expect("client connects");
    let mut first_run = Vec::new();
    for &slot in &slots {
        first_run.push(
            client
                .estimate(slot, observations_at(&ds, slot), None)
                .expect("estimate before the restart"),
        );
    }
    let stats_before = client.stats().expect("stats before the restart");
    assert_eq!(stats_before.snapshot_resumed, 0, "first run trained fresh");
    assert!(
        stats_before.snapshot_writes >= 1,
        "the freshly trained epoch is persisted at startup"
    );
    client.shutdown().expect("clean shutdown");
    handle.join();

    // "Crash": the process state is gone, only the snapshot dir remains.
    let handle = spawn_with_dir(&ds, snap.path());
    let mut client = Client::connect(handle.addr()).expect("client reconnects");
    for (&slot, before) in slots.iter().zip(&first_run) {
        let after = client
            .estimate(slot, observations_at(&ds, slot), None)
            .expect("estimate after the restart");
        assert_eq!(after.epoch, before.epoch, "slot {slot}: epoch continues");
        assert_eq!(
            after.speeds, before.speeds,
            "slot {slot}: speeds bit-identical across the restart"
        );
        assert_eq!(
            after.p_up, before.p_up,
            "slot {slot}: trend probabilities bit-identical"
        );
        assert_eq!(after.trends, before.trends, "slot {slot}: trend bits");
        assert_eq!(
            after.ignored_observations, before.ignored_observations,
            "slot {slot}: the non-seed observation is ignored identically"
        );
    }
    let stats_after = client.stats().expect("stats after the restart");
    assert_eq!(stats_after.snapshot_resumed, 1, "STATS reports the resume");
    assert_eq!(stats_after.epoch, stats_before.epoch);
    assert_eq!(stats_after.days_ingested, stats_before.days_ingested);
    assert_eq!(
        stats_after.ignored_observations, stats_before.ignored_observations,
        "identical requests ignore identical observation counts"
    );
    assert_eq!(
        stats_after
            .snapshot_rejects
            .iter()
            .map(|(_, c)| c)
            .sum::<u64>(),
        0,
        "a valid snapshot is accepted without rejecting anything"
    );
    client.shutdown().expect("clean shutdown");
    handle.join();
}

/// Scenario 2: resume-then-ingest equals never-restarted. A daemon that
/// resumes from a snapshot and then ingests a day publishes the same
/// epoch number and serves bit-identical estimates to a daemon that
/// lived through the whole sequence without restarting — the snapshot
/// carries the full trainer state, not just the published model.
#[test]
fn resume_then_ingest_matches_an_unbroken_run() {
    let ds = dataset();
    let new_day = &ds.test_days[1];
    let slots = [2usize, 6, 10];

    // Reference: one unbroken process, train + ingest, no restart.
    let unbroken = SnapDir::new("unbroken");
    let handle = spawn_with_dir(&ds, unbroken.path());
    let mut client = Client::connect(handle.addr()).expect("client connects");
    let (epoch, days) = client.ingest_day(day_rows(new_day)).expect("ingest");
    assert_eq!(epoch, 2);
    let mut reference = Vec::new();
    for &slot in &slots {
        reference.push(
            client
                .estimate(slot, observations_at(&ds, slot), None)
                .expect("reference estimate"),
        );
    }
    client.shutdown().expect("clean shutdown");
    handle.join();

    // Candidate: train, snapshot, die, resume, then ingest the day.
    let snap = SnapDir::new("resume-ingest");
    let handle = spawn_with_dir(&ds, snap.path());
    let mut client = Client::connect(handle.addr()).expect("client connects");
    client.shutdown().expect("shutdown before any ingest");
    handle.join();

    let handle = spawn_with_dir(&ds, snap.path());
    let mut client = Client::connect(handle.addr()).expect("client reconnects");
    let (resumed_epoch, resumed_days) = client
        .ingest_day(day_rows(new_day))
        .expect("resumed ingest");
    assert_eq!(
        resumed_epoch, epoch,
        "the resumed daemon continues the epoch sequence"
    );
    assert_eq!(resumed_days, days);
    for (&slot, reference) in slots.iter().zip(&reference) {
        let resumed = client
            .estimate(slot, observations_at(&ds, slot), None)
            .expect("resumed estimate");
        assert_eq!(resumed.epoch, reference.epoch);
        assert_eq!(
            resumed.speeds, reference.speeds,
            "slot {slot}: resume-then-ingest == never-restarted, bit for bit"
        );
        assert_eq!(resumed.p_up, reference.p_up, "slot {slot}");
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stats.snapshot_resumed, 1);
    assert!(
        stats.snapshot_writes >= 1,
        "the post-ingest epoch is persisted too"
    );
    client.shutdown().expect("clean shutdown");
    handle.join();
}

/// Scenario 2b: a snapshot written after an *incremental* publish is
/// byte-identical to one written after the equivalent *full* retrain
/// on the same day sequence — and both daemons serve bit-identical
/// estimates. The incremental daemon keeps its standing trainer across
/// the ingest ([`retrain_count`] `incremental` fires); the full daemon
/// is restarted first, so its ingest cold-rebuilds — and the two paths
/// must be indistinguishable on disk and on the wire.
#[test]
fn incremental_snapshot_is_byte_identical_to_full_retrain_snapshot() {
    let ds = dataset();
    let new_day = &ds.test_days[1];
    let slots = [1usize, 5, 9];

    // Incremental path: one unbroken process, trainer standing.
    let inc_dir = SnapDir::new("inc-path");
    let handle = spawn_incremental(&ds, inc_dir.path());
    let mut client = Client::connect(handle.addr()).expect("client connects");
    let (epoch, _) = client.ingest_day(day_rows(new_day)).expect("ingest");
    assert_eq!(epoch, 2);
    let stats = client.stats().expect("stats");
    assert_eq!(
        retrain_count(&stats, "incremental"),
        1,
        "the unbroken daemon's ingest advances the standing trainer"
    );
    assert_eq!(retrain_count(&stats, "full_cold"), 0);
    let mut inc_estimates = Vec::new();
    for &slot in &slots {
        inc_estimates.push(
            client
                .estimate(slot, observations_at(&ds, slot), None)
                .expect("incremental-path estimate"),
        );
    }
    client.shutdown().expect("clean shutdown");
    handle.join();

    // Full path: restart before the ingest, so no trainer is standing
    // and the same day retrains from scratch (FullCold).
    let full_dir = SnapDir::new("full-path");
    let handle = spawn_incremental(&ds, full_dir.path());
    let mut client = Client::connect(handle.addr()).expect("client connects");
    client.shutdown().expect("shutdown before the ingest");
    handle.join();
    let handle = spawn_incremental(&ds, full_dir.path());
    let mut client = Client::connect(handle.addr()).expect("client reconnects");
    let (full_epoch, _) = client.ingest_day(day_rows(new_day)).expect("ingest");
    assert_eq!(full_epoch, epoch);
    let stats = client.stats().expect("stats");
    assert_eq!(
        retrain_count(&stats, "full_cold"),
        1,
        "the resumed daemon has no trainer, so the ingest cold-rebuilds"
    );
    assert_eq!(retrain_count(&stats, "incremental"), 0);
    for (&slot, inc) in slots.iter().zip(&inc_estimates) {
        let full = client
            .estimate(slot, observations_at(&ds, slot), None)
            .expect("full-path estimate");
        assert_eq!(
            full.speeds, inc.speeds,
            "slot {slot}: both paths serve the same speeds, bit for bit"
        );
        assert_eq!(full.p_up, inc.p_up, "slot {slot}");
        assert_eq!(full.trends, inc.trends, "slot {slot}");
    }
    client.shutdown().expect("clean shutdown");
    handle.join();

    // The epoch-2 snapshot files are byte-identical: same payload, same
    // checksum, same name — the retrain path leaves no trace on disk.
    let newest = |dir: &Path| {
        let files = snapshot::list_snapshots(dir);
        files.last().cloned().expect("at least one snapshot")
    };
    let (inc_file, full_file) = (newest(inc_dir.path()), newest(full_dir.path()));
    assert_eq!(inc_file.file_name(), full_file.file_name());
    assert_eq!(
        std::fs::read(&inc_file).expect("incremental snapshot readable"),
        std::fs::read(&full_file).expect("full snapshot readable"),
        "incremental-path and full-path snapshots are byte-identical"
    );
}

/// Writes one valid snapshot into a fresh dir by running a daemon for
/// a single epoch, then returns the file's bytes and path.
fn valid_snapshot(ds: &Dataset, snap: &SnapDir) -> (Vec<u8>, PathBuf) {
    let handle = spawn_with_dir(ds, snap.path());
    let mut client = Client::connect(handle.addr()).expect("client connects");
    client.shutdown().expect("clean shutdown");
    handle.join();
    let path = only_snapshot(snap.path());
    let bytes = std::fs::read(&path).expect("snapshot readable");
    (bytes, path)
}

/// Spawns over a (possibly corrupted) snapshot dir and asserts the
/// fallback contract: the daemon comes up anyway, retrains (resume
/// gauge 0), serves estimates at epoch 1, and counts exactly one
/// reject under `reason`.
fn assert_falls_back_to_retrain(ds: &Dataset, dir: &Path, reason: RejectReason) {
    let handle = spawn_with_dir(ds, dir);
    let mut client = Client::connect(handle.addr()).expect("client connects");
    let reply = client
        .estimate(5, observations_at(ds, 5), None)
        .expect("the fallback daemon serves");
    assert_eq!(reply.epoch, 1, "fallback retrains from scratch");
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.snapshot_resumed, 0,
        "{reason}: a refused file must not count as a resume"
    );
    assert_eq!(
        reject_count(&stats, reason.name()),
        1,
        "{reason}: the refusal is counted under its typed reason"
    );
    client.shutdown().expect("clean shutdown");
    handle.join();
}

/// Scenario 3: the corruption matrix. Each way a snapshot file can be
/// bad — scribbled magic, unknown version, truncation, a flipped
/// payload bit, a config change — degrades to a fresh retrain with the
/// right typed reject reason in STATS.
#[test]
fn corrupt_or_mismatched_snapshots_fall_back_to_retrain_with_typed_reasons() {
    let ds = dataset();
    let snap = SnapDir::new("corrupt");
    let (bytes, path) = valid_snapshot(&ds, &snap);

    // Corrupted magic: not our file.
    let mut mutated = bytes.clone();
    mutated[..4].copy_from_slice(b"NOPE");
    std::fs::write(&path, &mutated).expect("write mutated file");
    assert_falls_back_to_retrain(&ds, snap.path(), RejectReason::BadMagic);

    // A format version this build does not speak. (The fallback daemon
    // rewrote a valid epoch-1 file above, so corrupt it afresh.)
    let mut mutated = bytes.clone();
    mutated[4] = 99;
    mutated[5] = 0;
    std::fs::write(&path, &mutated).expect("write mutated file");
    assert_falls_back_to_retrain(&ds, snap.path(), RejectReason::BadVersion);

    // Truncated mid-payload: declared length cannot be satisfied.
    std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("write truncated file");
    assert_falls_back_to_retrain(&ds, snap.path(), RejectReason::Truncated);

    // One flipped payload bit: header intact, checksum catches it.
    let mut mutated = bytes.clone();
    let mid = 30 + (mutated.len() - 30) / 2; // header is 30 bytes
    mutated[mid] ^= 0x01;
    std::fs::write(&path, &mutated).expect("write mutated file");
    assert_falls_back_to_retrain(&ds, snap.path(), RejectReason::BadChecksum);

    // Same file, different daemon configuration: refused as a config
    // mismatch rather than silently serving a model trained under
    // other thresholds.
    std::fs::write(&path, &bytes).expect("restore the valid file");
    let mut mismatched = inputs(&ds);
    mismatched.corr_config.min_cotrend = 0.8;
    let handle = Daemon::spawn_from(
        mismatched,
        DaemonConfig {
            snapshot_dir: Some(snap.path().to_path_buf()),
            ..DaemonConfig::default()
        },
    )
    .expect("mismatched daemon spawns");
    let mut client = Client::connect(handle.addr()).expect("client connects");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.snapshot_resumed, 0);
    assert_eq!(reject_count(&stats, RejectReason::ConfigMismatch.name()), 1);
    client.shutdown().expect("clean shutdown");
    handle.join();
}

/// Scenario 4: the `SNAPSHOT` command. A daemon without a snapshot
/// directory answers the typed `SnapshotUnavailable`; one with a
/// directory writes the file on demand and reports it in STATS.
#[test]
fn snapshot_command_forces_a_write_or_answers_typed_unavailable() {
    let ds = dataset();

    // No --snapshot-dir: typed refusal, not a crash or a silent no-op.
    let handle = Daemon::spawn_from(inputs(&ds), DaemonConfig::default()).expect("daemon spawns");
    let mut client = Client::connect(handle.addr()).expect("client connects");
    match client.snapshot() {
        Err(ServerError::Remote {
            kind: ErrorKind::SnapshotUnavailable,
            message,
        }) => assert!(
            message.contains("snapshot directory"),
            "refusal names the missing directory, got {message:?}"
        ),
        other => panic!("expected typed SnapshotUnavailable, got {other:?}"),
    }
    client.shutdown().expect("clean shutdown");
    handle.join();

    // With a directory: the command writes and names the file.
    let snap = SnapDir::new("command");
    let handle = spawn_with_dir(&ds, snap.path());
    let mut client = Client::connect(handle.addr()).expect("client connects");
    let (epoch, path) = client.snapshot().expect("forced snapshot");
    assert_eq!(epoch, 1);
    assert!(
        Path::new(&path).is_file(),
        "the daemon reports a path that exists: {path}"
    );
    let stats = client.stats().expect("stats");
    assert!(
        stats.snapshot_writes >= 2,
        "startup write + forced write are both counted, got {}",
        stats.snapshot_writes
    );
    assert_eq!(stats.snapshot_write_failures, 0);
    client.shutdown().expect("clean shutdown");
    handle.join();
}

/// Scenario 5: retention. `write_snapshot` keeps only the newest
/// `keep` files, and the pruning respects epoch order even across
/// digit-count boundaries.
#[test]
fn write_snapshot_prunes_to_the_newest_keep_files() {
    let snap = SnapDir::new("prune");
    for epoch in [1u64, 2, 9, 10, 11] {
        snapshot::write_snapshot(snap.path(), 2, epoch, b"payload-bytes").expect("write");
    }
    let kept = snapshot::list_snapshots(snap.path());
    let names: Vec<String> = kept
        .iter()
        .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
        .collect();
    assert_eq!(
        names,
        vec![
            format!("epoch-{:020}.csnap", 10),
            format!("epoch-{:020}.csnap", 11)
        ],
        "only the two newest epochs survive pruning"
    );
}

/// Builds a deterministic pseudo-random day: roughly `density` of the
/// road/slot cells carry a speed, the rest stay NaN (unobserved).
fn random_day(rng: &mut u64, slots: usize, roads: usize, density: u64) -> SpeedField {
    let mut day = SpeedField::filled(slots, roads, f64::NAN);
    for slot in 0..slots {
        for road in 0..roads {
            // xorshift64
            *rng ^= *rng << 13;
            *rng ^= *rng >> 7;
            *rng ^= *rng << 17;
            if *rng % 100 < density {
                let speed = 5.0 + (*rng % 1000) as f64 / 12.5;
                day.set_speed(slot, RoadId(road as u32), speed);
            }
        }
    }
    day
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property: any reachable `OnlineCorrelation` state — bootstrapped
    /// from random history, then fed a random number of further random
    /// days — round-trips through the codec byte-exactly. Re-encoding
    /// the decoded accumulator reproduces the original encoding, so
    /// resumed counters can never drift from the written ones.
    #[test]
    fn online_correlation_roundtrips_random_states(
        seed in any::<u64>(),
        bootstrap_days in 2usize..5,
        extra_days in 0usize..4,
        density in 30u64..95,
    ) {
        use bytes::BytesMut;

        let ds = dataset();
        let clock = SlotClock { slots_per_day: 12 };
        let roads = ds.graph.num_roads();
        let mut rng = seed | 1;
        let days: Vec<SpeedField> = (0..bootstrap_days)
            .map(|_| random_day(&mut rng, clock.slots_per_day, roads, density))
            .collect();
        let history = HistoricalData::from_days(clock, days);
        let mut online = OnlineCorrelation::bootstrap(&ds.graph, &history, &corr_config());
        for _ in 0..extra_days {
            let day = random_day(&mut rng, clock.slots_per_day, roads, density);
            online.ingest_day(&day).expect("random day ingests");
        }

        let mut encoded = BytesMut::new();
        online.encode_into(&mut encoded);
        let mut buf = &encoded[..];
        let decoded = OnlineCorrelation::decode_from(&mut buf).expect("decodes");
        // Decode must consume the whole encoding.
        prop_assert_eq!(buf.len(), 0);
        let mut reencoded = BytesMut::new();
        decoded.encode_into(&mut reencoded);
        // Re-encoding the decoded state is byte-identical.
        prop_assert_eq!(&encoded[..], &reencoded[..]);
        prop_assert_eq!(decoded.days_ingested(), online.days_ingested());
    }
}
