//! Serialisation round-trips across crates: road-network text format
//! and binary speed snapshots, on real generated data.

use roadnet::io::{read_text, write_text};
use trafficsim::dataset::{metro_small, DatasetParams};
use trafficsim::snapshot;

fn dataset() -> trafficsim::dataset::Dataset {
    metro_small(&DatasetParams {
        training_days: 4,
        test_days: 1,
        ..DatasetParams::default()
    })
}

#[test]
fn road_network_text_roundtrip() {
    let ds = dataset();
    let text = write_text(&ds.graph);
    let back = read_text(&text).expect("parse");
    assert_eq!(back, ds.graph);
    // And the format is stable under a second pass.
    assert_eq!(write_text(&back), text);
}

#[test]
fn ground_truth_day_snapshot_roundtrip() {
    let ds = dataset();
    let day = &ds.test_days[0];
    let enc = snapshot::encode_field(day);
    let dec = snapshot::decode_field(enc).expect("decode");
    assert_eq!(day, &dec);
}

#[test]
fn probe_history_snapshot_preserves_missing_cells() {
    let ds = dataset();
    let enc = snapshot::encode_history(&ds.history);
    let dec = snapshot::decode_history(ds.clock, enc).expect("decode");
    assert_eq!(dec.num_days(), ds.history.num_days());
    let mut nan_cells = 0usize;
    for (a, b) in ds.history.days().iter().zip(dec.days()) {
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
            if x.is_nan() {
                nan_cells += 1;
            }
        }
    }
    assert!(nan_cells > 0, "probe history should contain missing cells");
}

#[test]
fn snapshot_size_is_predictable() {
    let ds = dataset();
    let day = &ds.test_days[0];
    let enc = snapshot::encode_field(day);
    let expected = 4 + 2 + 4 + 4 + 8 * day.num_slots() * day.num_roads();
    assert_eq!(enc.len(), expected);
}

#[test]
fn corrupted_snapshots_are_rejected_not_misread() {
    let ds = dataset();
    let enc = snapshot::encode_field(&ds.test_days[0]);
    // Truncation at several cut points must error, never panic or
    // return a wrong-shaped field.
    for cut in [0usize, 3, 10, enc.len() / 2, enc.len() - 1] {
        let sliced = enc.slice(0..cut);
        assert!(snapshot::decode_field(sliced).is_err(), "cut at {cut}");
    }
}
