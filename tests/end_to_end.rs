//! Cross-crate integration: the full pipeline from synthetic city to
//! evaluated estimates, asserting the paper's qualitative claims hold
//! on the synthetic substrate.

use crowdspeed::eval::{evaluate, EvalConfig, Method};
use crowdspeed::prelude::*;
use trafficsim::dataset::{metro_small, DatasetParams};

fn dataset() -> trafficsim::dataset::Dataset {
    metro_small(&DatasetParams {
        training_days: 20,
        test_days: 2,
        ..DatasetParams::default()
    })
}

fn eval_cfg(ds: &trafficsim::dataset::Dataset) -> EvalConfig {
    EvalConfig {
        slots: (0..ds.clock.slots_per_day).step_by(2).collect(),
        ..EvalConfig::default()
    }
}

fn greedy_seeds(ds: &trafficsim::dataset::Dataset, k: usize) -> Vec<roadnet::RoadId> {
    let stats = HistoryStats::compute(&ds.history);
    let corr = CorrelationGraph::build(
        &ds.graph,
        &ds.history,
        &stats,
        &CorrelationConfig::default(),
    );
    let influence = InfluenceModel::build(&corr, &InfluenceConfig::default());
    lazy_greedy(&influence, k).seeds
}

#[test]
fn two_step_beats_every_baseline() {
    let ds = dataset();
    let seeds = greedy_seeds(&ds, ds.graph.num_roads() / 10);
    let cfg = eval_cfg(&ds);

    let ours = evaluate(
        &ds,
        &seeds,
        &Method::TwoStep(EstimatorConfig::default()),
        &cfg,
    );
    for baseline in [
        Method::HistoricalMean,
        Method::KnnSpatial { k: 5 },
        Method::GlobalRegression,
        Method::LabelPropagation {
            iterations: 30,
            anchor: 0.2,
        },
    ] {
        let rep = evaluate(&ds, &seeds, &baseline, &cfg);
        assert!(
            ours.error.mape <= rep.error.mape + 1e-9,
            "two-step MAPE {:.4} should not lose to {} MAPE {:.4}",
            ours.error.mape,
            rep.method,
            rep.error.mape
        );
    }
}

#[test]
fn more_seeds_help() {
    let ds = dataset();
    let cfg = eval_cfg(&ds);
    let method = Method::TwoStep(EstimatorConfig::default());
    let small = evaluate(&ds, &greedy_seeds(&ds, 4), &method, &cfg);
    let large = evaluate(&ds, &greedy_seeds(&ds, 25), &method, &cfg);
    assert!(
        large.error.mape < small.error.mape,
        "25 seeds ({:.4}) should beat 4 seeds ({:.4})",
        large.error.mape,
        small.error.mape
    );
}

#[test]
fn trend_inference_beats_prior_only() {
    let ds = dataset();
    let seeds = greedy_seeds(&ds, ds.graph.num_roads() / 10);
    let cfg = eval_cfg(&ds);
    let lbp = evaluate(
        &ds,
        &seeds,
        &Method::TwoStep(EstimatorConfig::default()),
        &cfg,
    );
    let prior = evaluate(
        &ds,
        &seeds,
        &Method::TwoStep(EstimatorConfig {
            engine: TrendEngine::PriorOnly,
            ..EstimatorConfig::default()
        }),
        &cfg,
    );
    assert!(
        lbp.trend_accuracy > prior.trend_accuracy,
        "LBP trend accuracy {:.4} should beat prior-only {:.4}",
        lbp.trend_accuracy,
        prior.trend_accuracy
    );
}

#[test]
fn greedy_seeds_beat_random_on_coverage_and_error() {
    let ds = dataset();
    let stats = HistoryStats::compute(&ds.history);
    let corr = CorrelationGraph::build(
        &ds.graph,
        &ds.history,
        &stats,
        &CorrelationConfig::default(),
    );
    let influence = InfluenceModel::build(&corr, &InfluenceConfig::default());
    let obj = SeedObjective::new(&influence);
    let k = ds.graph.num_roads() / 10;

    let greedy_sel = lazy_greedy(&influence, k);
    // Average random coverage over a few draws.
    let mut random_cov = 0.0;
    for seed in 0..5 {
        let rs = random_seeds(ds.graph.num_roads(), k, seed);
        random_cov += obj.value(&rs);
    }
    random_cov /= 5.0;
    assert!(
        greedy_sel.objective > random_cov,
        "greedy coverage {:.1} should beat mean random coverage {:.1}",
        greedy_sel.objective,
        random_cov
    );
}

#[test]
fn estimator_is_deterministic() {
    let ds = dataset();
    let seeds = greedy_seeds(&ds, 10);
    let stats = HistoryStats::compute(&ds.history);
    let corr = CorrelationGraph::build(
        &ds.graph,
        &ds.history,
        &stats,
        &CorrelationConfig::default(),
    );
    let est1 = TrafficEstimator::train(
        &ds.graph,
        &ds.history,
        &stats,
        &corr,
        &seeds,
        &EstimatorConfig::default(),
    )
    .unwrap();
    let est2 = TrafficEstimator::train(
        &ds.graph,
        &ds.history,
        &stats,
        &corr,
        &seeds,
        &EstimatorConfig::default(),
    )
    .unwrap();
    let truth = &ds.test_days[0];
    let slot = 9;
    let obs: Vec<(roadnet::RoadId, f64)> =
        seeds.iter().map(|&s| (s, truth.speed(slot, s))).collect();
    let r1 = est1.estimate(slot, &obs);
    let r2 = est2.estimate(slot, &obs);
    assert_eq!(r1.speeds, r2.speeds);
    assert_eq!(r1.p_up, r2.p_up);
}

#[test]
fn confidence_is_calibrated_with_error() {
    // The per-road confidence exposed by the estimator is the seed
    // objective's coverage term; if the objective is the right thing to
    // maximise, high-confidence roads must carry lower error. Use a
    // deliberately small seed budget so coverage (and thus confidence)
    // varies meaningfully across roads.
    let ds = dataset();
    let seeds = greedy_seeds(&ds, ds.graph.num_roads() / 25);
    let stats = HistoryStats::compute(&ds.history);
    let corr = CorrelationGraph::build(
        &ds.graph,
        &ds.history,
        &stats,
        &CorrelationConfig::default(),
    );
    let est = TrafficEstimator::train(
        &ds.graph,
        &ds.history,
        &stats,
        &corr,
        &seeds,
        &EstimatorConfig::default(),
    )
    .unwrap();

    // Per-road confidence is static across slots; rank the non-seed
    // roads by it and compare the top half against the bottom half so
    // the split stays balanced whatever the confidence scale is.
    let probe = est.estimate(
        0,
        &seeds
            .iter()
            .map(|&s| (s, ds.test_days[0].speed(0, s)))
            .collect::<Vec<_>>(),
    );
    let mut ranked: Vec<roadnet::RoadId> = ds
        .graph
        .road_ids()
        .filter(|ro| !seeds.contains(ro))
        .collect();
    ranked.sort_by(|a, b| {
        probe.confidence[a.index()]
            .partial_cmp(&probe.confidence[b.index()])
            .unwrap()
            .then(a.index().cmp(&b.index()))
    });
    let split = ranked.len() / 2;
    let is_high: Vec<bool> = {
        let mut v = vec![false; ds.graph.num_roads()];
        for road in &ranked[split..] {
            v[road.index()] = true;
        }
        v
    };

    let mut high_truth = Vec::new();
    let mut high_est = Vec::new();
    let mut low_truth = Vec::new();
    let mut low_est = Vec::new();
    for truth in ds.test_days.iter() {
        for slot in (0..ds.clock.slots_per_day).step_by(2) {
            let obs: Vec<(roadnet::RoadId, f64)> =
                seeds.iter().map(|&s| (s, truth.speed(slot, s))).collect();
            let r = est.estimate(slot, &obs);
            for &road in &ranked {
                let (t, e) = (truth.speed(slot, road), r.speeds[road.index()]);
                if is_high[road.index()] {
                    high_truth.push(t);
                    high_est.push(e);
                } else {
                    low_truth.push(t);
                    low_est.push(e);
                }
            }
        }
    }
    assert!(
        high_truth.len() > 100 && low_truth.len() > 100,
        "degenerate split: {} vs {}",
        high_truth.len(),
        low_truth.len()
    );
    let high = crowdspeed::metrics::ErrorStats::from_pairs(high_truth.iter().zip(&high_est));
    let low = crowdspeed::metrics::ErrorStats::from_pairs(low_truth.iter().zip(&low_est));
    assert!(
        high.mape < low.mape,
        "high-confidence MAPE {:.4} should beat low-confidence {:.4}",
        high.mape,
        low.mape
    );
}
