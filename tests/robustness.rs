//! Failure-injection and degradation tests: the system must degrade
//! gracefully, not fall over, as its inputs get worse.

use crowdspeed::eval::{evaluate, EvalConfig, Method};
use crowdspeed::prelude::*;
use roadnet::RoadId;
use trafficsim::crowd::CrowdParams;
use trafficsim::dataset::{metro_small, DatasetParams};

fn dataset() -> trafficsim::dataset::Dataset {
    metro_small(&DatasetParams {
        training_days: 12,
        test_days: 1,
        ..DatasetParams::default()
    })
}

fn seeds_for(ds: &trafficsim::dataset::Dataset, k: usize) -> Vec<RoadId> {
    let stats = HistoryStats::compute(&ds.history);
    let corr = CorrelationGraph::build(
        &ds.graph,
        &ds.history,
        &stats,
        &CorrelationConfig::default(),
    );
    let influence = InfluenceModel::build(&corr, &InfluenceConfig::default());
    lazy_greedy(&influence, k).seeds
}

fn mape_with_crowd(ds: &trafficsim::dataset::Dataset, seeds: &[RoadId], crowd: CrowdParams) -> f64 {
    let rep = evaluate(
        ds,
        seeds,
        &Method::TwoStep(EstimatorConfig::default()),
        &EvalConfig {
            slots: (0..ds.clock.slots_per_day).step_by(2).collect(),
            crowd,
            ..EvalConfig::default()
        },
    );
    rep.error.mape
}

#[test]
fn extreme_worker_noise_degrades_but_stays_bounded() {
    let ds = dataset();
    let seeds = seeds_for(&ds, ds.graph.num_roads() / 10);
    let clean = mape_with_crowd(
        &ds,
        &seeds,
        CrowdParams {
            noise_sigma: 0.0,
            ..CrowdParams::default()
        },
    );
    let noisy = mape_with_crowd(
        &ds,
        &seeds,
        CrowdParams {
            noise_sigma: 0.8, // wildly unreliable workers
            ..CrowdParams::default()
        },
    );
    assert!(noisy >= clean, "noise cannot improve accuracy");
    assert!(
        noisy < 0.5,
        "even garbage workers must not blow up the estimator: {noisy}"
    );
}

#[test]
fn total_crowd_silence_falls_back_to_history() {
    let ds = dataset();
    let seeds = seeds_for(&ds, 10);
    let silent = mape_with_crowd(
        &ds,
        &seeds,
        CrowdParams {
            response_rate: 0.0,
            ..CrowdParams::default()
        },
    );
    // With zero observations the estimator still answers; its error
    // should be in the same ballpark as the pure-history baseline.
    let hist = evaluate(
        &ds,
        &seeds,
        &Method::HistoricalMean,
        &EvalConfig {
            slots: (0..ds.clock.slots_per_day).step_by(2).collect(),
            ..EvalConfig::default()
        },
    );
    assert!(
        silent < hist.error.mape * 1.5,
        "silent {silent} vs hist {}",
        hist.error.mape
    );
}

#[test]
fn sparse_crowd_worse_than_full_crowd() {
    let ds = dataset();
    let seeds = seeds_for(&ds, ds.graph.num_roads() / 10);
    let full = mape_with_crowd(
        &ds,
        &seeds,
        CrowdParams {
            response_rate: 1.0,
            noise_sigma: 0.05,
            ..CrowdParams::default()
        },
    );
    let sparse = mape_with_crowd(
        &ds,
        &seeds,
        CrowdParams {
            response_rate: 0.2,
            workers_per_seed: 1,
            noise_sigma: 0.05,
            ..CrowdParams::default()
        },
    );
    assert!(
        sparse >= full,
        "an 80%-silent crowd ({sparse:.4}) cannot beat a full crowd ({full:.4})"
    );
}

#[test]
fn estimator_survives_adversarial_observations() {
    // Crowd answers that are wildly wrong (10x / 0.1x true speed) must
    // produce finite, clamped estimates.
    let ds = dataset();
    let seeds = seeds_for(&ds, 10);
    let stats = HistoryStats::compute(&ds.history);
    let corr = CorrelationGraph::build(
        &ds.graph,
        &ds.history,
        &stats,
        &CorrelationConfig::default(),
    );
    let est = TrafficEstimator::train(
        &ds.graph,
        &ds.history,
        &stats,
        &corr,
        &seeds,
        &EstimatorConfig::default(),
    )
    .unwrap();
    let truth = &ds.test_days[0];
    for factor in [0.1, 10.0] {
        let obs: Vec<(RoadId, f64)> = seeds
            .iter()
            .map(|&s| (s, truth.speed(8, s) * factor))
            .collect();
        let r = est.estimate(8, &obs);
        for (i, v) in r.speeds.iter().enumerate() {
            assert!(
                v.is_finite() && *v >= 0.0,
                "factor {factor}: road {i} got {v}"
            );
        }
    }
}

#[test]
fn isolated_roads_still_get_estimates() {
    // Strict correlation thresholds leave some roads with no edges at
    // all; they must still receive sane fallback estimates.
    let ds = dataset();
    let stats = HistoryStats::compute(&ds.history);
    let strict = CorrelationConfig {
        min_cotrend: 0.95, // nearly nothing passes
        ..CorrelationConfig::default()
    };
    let corr = CorrelationGraph::build(&ds.graph, &ds.history, &stats, &strict);
    let seeds: Vec<RoadId> = (0..10u32).map(|i| RoadId(i * 9)).collect();
    let est = TrafficEstimator::train(
        &ds.graph,
        &ds.history,
        &stats,
        &corr,
        &seeds,
        &EstimatorConfig::default(),
    )
    .unwrap();
    let truth = &ds.test_days[0];
    let obs: Vec<(RoadId, f64)> = seeds.iter().map(|&s| (s, truth.speed(8, s))).collect();
    let r = est.estimate(8, &obs);
    for (i, v) in r.speeds.iter().enumerate() {
        assert!(v.is_finite() && *v > 0.0, "road {i}: {v}");
    }
}
