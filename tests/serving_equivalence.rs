//! Serving-path equivalence tests.
//!
//! The serving refactor (compiled per-slot MRFs, reusable inference
//! workspaces, parallel batch serving) is pure plumbing: every fast
//! path must be *bit-identical* to the fresh-allocation path it
//! replaces. These tests pin that down at each layer — engine
//! workspaces, the compiled slot cache, the end-to-end estimator
//! scratch, and the parallel batch server.

use crowdspeed::prelude::*;
use crowdspeed::serve::{serve_batch, EstimateRequest, ServeOptions};
use graphmodel::gibbs::{self, GibbsOptions, GibbsWorkspace};
use graphmodel::lbp::{self, LbpOptions, LbpWorkspace};
use graphmodel::meanfield::{self, MeanFieldOptions, MeanFieldWorkspace};
use graphmodel::{Evidence, MrfBuilder, PairwiseMrf};
use rand::rngs::StdRng;
use rand::SeedableRng;
use roadnet::RoadId;
use trafficsim::dataset::{metro_small, Dataset, DatasetParams};

/// A loopy MRF with mixed priors and couplings, plus a few evidence
/// patterns to sweep.
fn fixture() -> (PairwiseMrf, Vec<Evidence>) {
    let n = 12;
    let mut b = MrfBuilder::new(n);
    for v in 0..n {
        b.set_prior(v, 0.3 + 0.04 * v as f64);
    }
    for v in 0..n - 1 {
        b.add_edge(v, v + 1, 0.8).unwrap();
    }
    b.add_edge(0, n - 1, 0.7).unwrap(); // ring closure
    b.add_edge(2, 7, 0.35).unwrap(); // negative coupling chord
    let mrf = b.build();
    let evidences = vec![
        Evidence::none(n),
        Evidence::from_pairs(n, [(0, true)]),
        Evidence::from_pairs(n, [(3, false), (9, true)]),
        Evidence::from_pairs(n, [(1, true), (5, true), (10, false)]),
    ];
    (mrf, evidences)
}

#[test]
fn lbp_workspace_reuse_is_bit_identical() {
    let (mrf, evidences) = fixture();
    let opts = LbpOptions::default();
    let mut ws = LbpWorkspace::new();
    for ev in &evidences {
        let fresh = lbp::run(&mrf, ev, &opts);
        let stats = lbp::run_with(&mrf, ev, &opts, &mut ws);
        assert_eq!(fresh.marginals, ws.marginals(), "marginals must match");
        assert_eq!(fresh.iterations, stats.iterations);
        assert_eq!(fresh.converged, stats.converged);
    }
}

#[test]
fn meanfield_workspace_reuse_is_bit_identical() {
    let (mrf, evidences) = fixture();
    let opts = MeanFieldOptions::default();
    let mut ws = MeanFieldWorkspace::new();
    for ev in &evidences {
        let fresh = meanfield::run(&mrf, ev, &opts);
        let stats = meanfield::run_with(&mrf, ev, &opts, &mut ws);
        assert_eq!(fresh.marginals, ws.marginals(), "marginals must match");
        assert_eq!(fresh.iterations, stats.iterations);
        assert_eq!(fresh.converged, stats.converged);
    }
}

#[test]
fn gibbs_workspace_reuse_is_bit_identical() {
    let (mrf, evidences) = fixture();
    let opts = GibbsOptions {
        burn_in: 50,
        samples: 400,
    };
    let mut ws = GibbsWorkspace::new();
    for (i, ev) in evidences.iter().enumerate() {
        let fresh = gibbs::run(&mrf, ev, &opts, &mut StdRng::seed_from_u64(i as u64));
        gibbs::run_with(
            &mrf,
            ev,
            &opts,
            &mut StdRng::seed_from_u64(i as u64),
            &mut ws,
        );
        assert_eq!(fresh, ws.marginals(), "same seed must sample identically");
    }
}

fn dataset() -> Dataset {
    metro_small(&DatasetParams {
        training_days: 8,
        test_days: 1,
        ..DatasetParams::default()
    })
}

fn correlation(ds: &Dataset, stats: &HistoryStats) -> CorrelationGraph {
    CorrelationGraph::build(
        &ds.graph,
        &ds.history,
        stats,
        &CorrelationConfig {
            min_cotrend: 0.6,
            min_co_observations: 6,
            ..CorrelationConfig::default()
        },
    )
}

#[test]
fn compiled_slots_reproduce_mrf_for_slot_exactly() {
    let ds = dataset();
    let stats = HistoryStats::compute(&ds.history);
    let corr = correlation(&ds, &stats);
    let model =
        crowdspeed::inference::trend_model::TrendModel::new(corr, &stats, Default::default());
    let compiled = model.compiled_slots();
    assert_eq!(compiled.num_slots(), ds.clock.slots_per_day);
    for slot in 0..ds.clock.slots_per_day {
        assert_eq!(
            compiled.slot(slot),
            &model.mrf_for_slot(slot),
            "compiled MRF for slot {slot} must equal the on-demand build"
        );
    }
}

/// Trains one estimator per engine worth checking on the serving path.
fn estimators() -> (Dataset, Vec<TrafficEstimator>, Vec<RoadId>) {
    let ds = dataset();
    let stats = HistoryStats::compute(&ds.history);
    let corr = correlation(&ds, &stats);
    let seeds: Vec<RoadId> = (0..12u32).map(|i| RoadId(i * 8)).collect();
    let engines = vec![
        TrendEngine::default(),
        TrendEngine::Gibbs {
            options: GibbsOptions {
                burn_in: 20,
                samples: 100,
            },
            seed: 11,
        },
    ];
    let ests = engines
        .into_iter()
        .map(|engine| {
            TrafficEstimator::train(
                &ds.graph,
                &ds.history,
                &stats,
                &corr,
                &seeds,
                &EstimatorConfig {
                    engine,
                    ..EstimatorConfig::default()
                },
            )
            .unwrap()
        })
        .collect();
    (ds, ests, seeds)
}

#[test]
fn estimate_scratch_reuse_is_bit_identical() {
    let (ds, ests, seeds) = estimators();
    let truth = &ds.test_days[0];
    for est in &ests {
        let mut scratch = EstimateScratch::new();
        for slot in [6usize, 8, 12, 18] {
            let obs: Vec<(RoadId, f64)> =
                seeds.iter().map(|&s| (s, truth.speed(slot, s))).collect();
            let fresh = est.estimate(slot, &obs);
            let warm = est.estimate_with(slot, &obs, &mut scratch);
            assert_eq!(fresh.speeds, warm.speeds);
            assert_eq!(fresh.p_up, warm.p_up);
            assert_eq!(fresh.trends, warm.trends);
            assert_eq!(fresh.confidence, warm.confidence);
            assert_eq!(fresh.trend_iterations, warm.trend_iterations);
            assert_eq!(fresh.ignored_observations, warm.ignored_observations);
        }
    }
}

#[test]
fn parallel_batch_serving_matches_sequential() {
    let (ds, ests, seeds) = estimators();
    let truth = &ds.test_days[0];
    let requests: Vec<EstimateRequest> = (0..ds.clock.slots_per_day)
        .map(|slot| EstimateRequest {
            slot_of_day: slot,
            observations: seeds.iter().map(|&s| (s, truth.speed(slot, s))).collect(),
        })
        .collect();
    for est in &ests {
        let seq = serve_batch(est, &requests, &ServeOptions { threads: 1 });
        let par = serve_batch(est, &requests, &ServeOptions { threads: 4 });
        assert_eq!(seq.estimates.len(), par.estimates.len());
        for (slot, (a, b)) in seq.estimates.iter().zip(&par.estimates).enumerate() {
            let a = a.as_ref().expect("sequential request succeeded");
            let b = b.as_ref().expect("parallel request succeeded");
            assert_eq!(
                a.speeds, b.speeds,
                "slot {slot}: speeds must match road-for-road"
            );
            assert_eq!(a.p_up, b.p_up, "slot {slot}");
            assert_eq!(a.trends, b.trends, "slot {slot}");
        }
    }
}

#[test]
fn non_seed_observations_are_counted_not_fatal() {
    let (ds, ests, seeds) = estimators();
    let truth = &ds.test_days[0];
    let est = &ests[0];
    let slot = 8;
    let mut obs: Vec<(RoadId, f64)> = seeds.iter().map(|&s| (s, truth.speed(slot, s))).collect();
    let clean = est.estimate(slot, &obs);
    assert_eq!(clean.ignored_observations, 0);
    // A stray report for a non-seed road and one past the road range.
    let non_seed = (0..ds.graph.num_roads() as u32)
        .map(RoadId)
        .find(|r| !seeds.contains(r))
        .unwrap();
    obs.push((non_seed, 25.0));
    obs.push((RoadId(u32::MAX), 25.0));
    let noisy = est.estimate(slot, &obs);
    assert_eq!(noisy.ignored_observations, 2);
    assert_eq!(
        noisy.speeds, clean.speeds,
        "stray reports must not change estimates"
    );
}
