//! The drift-adaptation loop, proven end to end on a regime shift.
//!
//! A [`RegimeSimulator`] flips part of the city into a new traffic
//! regime; the daemon ingests the shifted days and the drift trigger
//! must fire **exactly** where the recorded signal trajectory says it
//! should — then the rebootstrapped, seed-re-selected daemon must be
//! bit-identical to a daemon cold-trained on the same post-shift
//! window. The failure paths are pinned too: a panic mid-rebootstrap
//! rolls every structure back (including the windowed-away history
//! prefix) and the previous epoch keeps serving; snapshot v3 carries
//! the drift state; v2-era files refuse cleanly into a retrain.
//!
//! Thread counts 1 and 4 are both exercised: adaptation is a policy,
//! never a numerics change.

use crowdspeed::drift::{reselect_seeds, DriftConfig, DriftState};
use crowdspeed::online::OnlineCorrelation;
use crowdspeed::prelude::*;
use crowdspeed_server::daemon::{Daemon, DaemonConfig};
use crowdspeed_server::failpoint::{self, Action};
use crowdspeed_server::snapshot::{self, RejectReason};
use crowdspeed_server::state::{RetrainError, RetrainMode, TrainInputs, TrainState};
use roadnet::RoadId;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use trafficsim::dataset::{metro_small, Dataset, DatasetParams};
use trafficsim::{HistoricalData, RegimeShiftConfig, RegimeSimulator, SpeedField};

/// Serialises the tests that trigger rebootstraps or arm the
/// `rebootstrap` failpoint: the failpoint registry is process-global,
/// so a concurrently-running trigger could consume another test's
/// armed panic.
static REBOOTSTRAP_GATE: Mutex<()> = Mutex::new(());

fn gate() -> std::sync::MutexGuard<'static, ()> {
    REBOOTSTRAP_GATE
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

const TRAINING_DAYS: usize = 6;
/// Unshifted days ingested before the regime flips.
const PRE_DAYS: usize = 2;
/// Shifted days available after the flip.
const POST_DAYS: usize = 8;
const WINDOW_DAYS: usize = 4;

fn dataset() -> Dataset {
    metro_small(&DatasetParams {
        training_days: TRAINING_DAYS,
        test_days: 2,
        ..DatasetParams::default()
    })
}

fn seeds() -> Vec<RoadId> {
    (0..12u32).map(|i| RoadId(i * 8)).collect()
}

fn corr_config() -> CorrelationConfig {
    CorrelationConfig {
        min_cotrend: 0.6,
        min_co_observations: 6,
        ..CorrelationConfig::default()
    }
}

/// Estimator config shared by every run: the coverage re-anchor is
/// disabled so the drift policy (and only the drift policy) decides
/// when the context moves, keeping the observer and subject runs on
/// one trajectory until the trigger.
fn config(threads: usize, drift: Option<DriftConfig>) -> EstimatorConfig {
    EstimatorConfig {
        train_threads: threads,
        max_incremental_fraction: f64::INFINITY,
        drift,
        ..EstimatorConfig::default()
    }
}

/// Punches deterministic probe-style holes into a truth day: roughly
/// `density`% of cells stay observed.
fn observe(truth: &SpeedField, rng: &mut u64, density: u64) -> SpeedField {
    let mut day = SpeedField::filled(truth.num_slots(), truth.num_roads(), f64::NAN);
    for slot in 0..truth.num_slots() {
        for road in 0..truth.num_roads() {
            *rng ^= *rng << 13;
            *rng ^= *rng >> 7;
            *rng ^= *rng << 17;
            if *rng % 100 < density {
                let id = RoadId(road as u32);
                day.set_speed(slot, id, truth.speed(slot, id));
            }
        }
    }
    day
}

/// The ingest sequence: `PRE_DAYS` unshifted days, then `POST_DAYS`
/// days from the shifted regime, all probe-sampled at ~70% coverage.
fn ingest_days(ds: &Dataset) -> Vec<SpeedField> {
    let regime = RegimeSimulator::new(
        ds.simulator.clone(),
        RegimeShiftConfig {
            shift_day: (TRAINING_DAYS + PRE_DAYS) as u64,
            drop_fraction: 0.5,
            capacity_drop: 0.5,
            swap_pairs: 12,
            seed: 11,
        },
    );
    let truths = regime.simulate_days(TRAINING_DAYS as u64, PRE_DAYS + POST_DAYS);
    let mut rng = 0x5EED_5EED_5EED_5EEDu64;
    truths.iter().map(|t| observe(t, &mut rng, 70)).collect()
}

/// The drift-signal trajectory an adaptation-off state observes over
/// `days` — the reference the trigger assertions calibrate against
/// (before the first trigger, the adaptation-on state is on the same
/// trajectory by construction).
fn signal_trajectory(ds: &Dataset, days: &[SpeedField]) -> Vec<f64> {
    let mut state = train_state(ds, config(1, None));
    days.iter()
        .map(|day| {
            state.ingest_day(day.clone()).expect("observer ingest");
            crowdspeed::drift::signal(state.online(), state.context()).value()
        })
        .collect()
}

/// A threshold strictly between the pre-shift and post-shift signal
/// levels, and the two levels themselves (premax, postmax).
fn calibrated_threshold(signals: &[f64]) -> (f64, f64, f64) {
    let premax = signals[..PRE_DAYS].iter().cloned().fold(0.0, f64::max);
    let postmax = signals[PRE_DAYS..].iter().cloned().fold(0.0, f64::max);
    assert!(
        postmax > premax + 0.05,
        "the regime shift must move the signal visibly: pre {premax} post {postmax}"
    );
    ((premax + postmax) / 2.0, premax, postmax)
}

/// Replays the trigger policy over a recorded signal trajectory:
/// the day index the first trigger fires on, if any.
fn expected_trigger(signals: &[f64], cfg: &DriftConfig) -> Option<usize> {
    let mut st = DriftState::default();
    for (i, &value) in signals.iter().enumerate() {
        st.note_ingest();
        if st.should_trigger(cfg, value) {
            return Some(i);
        }
    }
    None
}

fn train_state(ds: &Dataset, config: EstimatorConfig) -> TrainState {
    TrainState::new(
        ds.graph.clone(),
        &ds.history,
        seeds(),
        &corr_config(),
        config,
    )
}

fn estimator_bytes(est: &TrafficEstimator) -> Vec<u8> {
    let mut buf = bytes::BytesMut::new();
    est.encode_snapshot_into(&mut buf);
    buf.to_vec()
}

fn day_bytes(day: &SpeedField) -> Vec<u8> {
    trafficsim::snapshot::encode_field(day).to_vec()
}

fn day_rows(day: &SpeedField) -> Vec<Vec<f64>> {
    (0..day.num_slots())
        .map(|slot| day.slot_speeds(slot).to_vec())
        .collect()
}

/// The trailing calibration window at the moment the trigger fires on
/// `days[..=trigger]`: bootstrap history plus every ingested day,
/// truncated to the last `WINDOW_DAYS`.
fn window_history(ds: &Dataset, days: &[SpeedField], trigger: usize) -> HistoricalData {
    let mut all: Vec<SpeedField> = ds.history.days().to_vec();
    all.extend(days[..=trigger].iter().cloned());
    let cut = all.len() - WINDOW_DAYS;
    HistoricalData::from_days(ds.clock, all.split_off(cut))
}

/// The cold-start reference for a fired trigger: bootstrap the online
/// model on the window, re-select seeds against its graph with the old
/// budget, and return the new seed set plus the reported overlap.
fn cold_reselection(ds: &Dataset, window: &HistoricalData, threads: usize) -> (Vec<RoadId>, usize) {
    let online = OnlineCorrelation::bootstrap(&ds.graph, window, &corr_config());
    let context = online.correlation_graph();
    let config = config(threads, None);
    let reselection = reselect_seeds(&context, &config.hlm.influence, &seeds(), threads);
    (reselection.seeds, reselection.overlap)
}

#[test]
fn trigger_fires_exactly_at_the_replayed_crossing_and_respects_cooldown() {
    let _g = gate();
    let ds = dataset();
    let days = ingest_days(&ds);
    let signals = signal_trajectory(&ds, &days);
    let (threshold, _, _) = calibrated_threshold(&signals);

    let cfg = DriftConfig {
        threshold,
        cooldown_days: 3,
        window_days: WINDOW_DAYS,
    };
    let trigger = expected_trigger(&signals, &cfg)
        .expect("the calibrated threshold must be crossed after the shift");
    assert!(
        trigger >= PRE_DAYS,
        "the trigger must not fire before the regime shift (day {trigger})"
    );

    let mut state = train_state(&ds, config(1, Some(cfg.clone())));
    state.train().expect("initial train");
    for (i, day) in days[..=trigger].iter().enumerate() {
        let outcome = state.ingest_and_train(day.clone()).expect("ingest");
        if i < trigger {
            assert_ne!(
                outcome.mode,
                RetrainMode::FullRebootstrap,
                "day {i}: no rebootstrap before the replayed crossing (day {trigger})"
            );
            assert_eq!(state.drift().triggers, 0);
            assert_eq!(state.drift().days_since_anchor, (i + 1) as u64);
        } else {
            assert_eq!(
                outcome.mode,
                RetrainMode::FullRebootstrap,
                "day {i}: the trigger fires exactly at the replayed crossing"
            );
        }
        // The recorded signal matches the observer trajectory bit for
        // bit until (and including) the trigger day.
        assert_eq!(state.drift().last_signal.to_bits(), signals[i].to_bits());
    }
    assert_eq!(state.drift().triggers, 1);
    assert_eq!(state.drift().days_since_anchor, 0, "the anchor clock reset");
    assert_eq!(
        state.days().len(),
        WINDOW_DAYS,
        "the history was truncated to the calibration window"
    );

    // A longer cooldown gates the same crossing: the trigger must wait
    // for the anchor clock even though the signal is already over the
    // threshold.
    let slow = DriftConfig {
        cooldown_days: (trigger + 3) as u64,
        ..cfg
    };
    let delayed = expected_trigger(&signals, &slow)
        .expect("the shifted regime keeps the signal over the threshold");
    assert!(delayed > trigger, "cooldown must delay the trigger");
    let mut state = train_state(&ds, config(1, Some(slow)));
    state.train().expect("initial train");
    for (i, day) in days[..=delayed].iter().enumerate() {
        let outcome = state.ingest_and_train(day.clone()).expect("ingest");
        let expected = if i < delayed {
            assert!(outcome.mode != RetrainMode::FullRebootstrap, "day {i}");
            0
        } else {
            assert_eq!(outcome.mode, RetrainMode::FullRebootstrap, "day {i}");
            1
        };
        assert_eq!(state.drift().triggers, expected);
    }
}

#[test]
fn daemon_rebootstrap_is_bit_identical_to_a_cold_trained_daemon() {
    let _g = gate();
    let ds = dataset();
    let days = ingest_days(&ds);
    let signals = signal_trajectory(&ds, &days);
    let (threshold, _, _) = calibrated_threshold(&signals);
    let cfg = DriftConfig {
        threshold,
        cooldown_days: WINDOW_DAYS as u64,
        window_days: WINDOW_DAYS,
    };
    let trigger = expected_trigger(&signals, &cfg).expect("trigger fires");
    let window = window_history(&ds, &days, trigger);

    // Observations for the parity probes: post-shift truth at the
    // re-selected seed roads (identical for both daemons).
    let shifted_truth = RegimeSimulator::new(
        ds.simulator.clone(),
        RegimeShiftConfig {
            shift_day: (TRAINING_DAYS + PRE_DAYS) as u64,
            drop_fraction: 0.5,
            capacity_drop: 0.5,
            swap_pairs: 12,
            seed: 11,
        },
    )
    .simulate_day((TRAINING_DAYS + PRE_DAYS + POST_DAYS) as u64);

    for threads in [1usize, 4] {
        let (new_seeds, overlap) = cold_reselection(&ds, &window, threads);

        // The adapting daemon: ingest through the regime shift.
        let adapting = Daemon::spawn(
            train_state(&ds, config(threads, Some(cfg.clone()))),
            DaemonConfig::default(),
        )
        .expect("adapting daemon spawns");
        let mut client = crowdspeed_server::Client::connect(adapting.addr()).expect("client");
        let obs: Vec<(u32, f64)> = new_seeds
            .iter()
            .map(|&s| (s.0, shifted_truth.speed(9, s)))
            .collect();
        for (i, day) in days[..=trigger].iter().enumerate() {
            // Serving stays available through every ingest, including
            // the rebootstrap itself.
            client
                .estimate(9, obs.clone(), None)
                .unwrap_or_else(|e| panic!("threads={threads} day {i}: serving gap: {e}"));
            let (epoch, _) = client.ingest_day(day_rows(day)).expect("ingest");
            assert_eq!(epoch, (i + 2) as u64, "one epoch per ingested day");
        }
        let stats = client.stats().expect("stats");
        assert_eq!(stats.drift_triggers, 1, "threads={threads}");
        assert_eq!(stats.drift_last_rebootstrap_epoch, (trigger + 2) as u64);
        assert_eq!(stats.drift_seed_overlap, overlap as u64);
        assert!(stats.drift_signal >= threshold);
        let rebootstraps = stats
            .retrains
            .iter()
            .find(|(name, _)| name == "full_rebootstrap")
            .map(|&(_, n)| n);
        assert_eq!(rebootstraps, Some(1), "threads={threads}");

        // The reference: a daemon cold-trained on the post-shift window
        // with the re-selected seeds. Same numbers, bit for bit.
        let cold = Daemon::spawn(
            TrainState::new(
                ds.graph.clone(),
                &window,
                new_seeds.clone(),
                &corr_config(),
                config(threads, None),
            ),
            DaemonConfig::default(),
        )
        .expect("cold daemon spawns");
        let mut cold_client = crowdspeed_server::Client::connect(cold.addr()).expect("client");
        for slot in [4usize, 9, 17] {
            let obs: Vec<(u32, f64)> = new_seeds
                .iter()
                .map(|&s| (s.0, shifted_truth.speed(slot, s)))
                .collect();
            let a = client.estimate(slot, obs.clone(), None).expect("adapting");
            let b = cold_client.estimate(slot, obs, None).expect("cold");
            assert_eq!(a.speeds, b.speeds, "threads={threads} slot {slot}");
            assert_eq!(a.p_up, b.p_up, "threads={threads} slot {slot}");
            assert_eq!(a.trends, b.trends, "threads={threads} slot {slot}");
        }

        client.shutdown().expect("shutdown");
        adapting.wait();
        cold_client.shutdown().expect("shutdown");
        cold.wait();
    }
}

#[test]
fn panic_mid_rebootstrap_rolls_back_splices_the_window_and_recovers() {
    let _g = gate();
    let ds = dataset();
    let days = ingest_days(&ds);
    let signals = signal_trajectory(&ds, &days);
    let (threshold, _, _) = calibrated_threshold(&signals);
    let cfg = DriftConfig {
        threshold,
        cooldown_days: WINDOW_DAYS as u64,
        window_days: WINDOW_DAYS,
    };
    let trigger = expected_trigger(&signals, &cfg).expect("trigger fires");

    let mut state = train_state(&ds, config(1, Some(cfg.clone())));
    state.train().expect("initial train");
    for day in &days[..trigger] {
        state
            .ingest_and_train(day.clone())
            .expect("pre-shift ingest");
    }
    let days_before: Vec<Vec<u8>> = state.days().iter().map(day_bytes).collect();
    assert!(
        days_before.len() > WINDOW_DAYS,
        "the rebootstrap must actually window history away for this test to bite"
    );
    let seeds_before = state.seeds().to_vec();
    let drift_before = *state.drift();
    let ingested_before = state.days_ingested();

    // The worst moment to die: the history is already truncated to the
    // window, nothing has been rebuilt yet.
    failpoint::clear_all();
    failpoint::configure("rebootstrap", Action::Panic, Some(1));
    let result = state.ingest_and_train(days[trigger].clone());
    failpoint::clear_all();
    match result {
        Err(RetrainError::Panicked(_)) => {}
        Err(other) => panic!("expected a panic rollback, got {other:?}"),
        Ok(_) => panic!("the armed failpoint must abort the rebootstrap"),
    }

    // Everything restored — including the windowed-away history prefix,
    // in order, byte for byte.
    let days_after: Vec<Vec<u8>> = state.days().iter().map(day_bytes).collect();
    assert_eq!(days_after, days_before, "history spliced back exactly");
    assert_eq!(state.seeds(), seeds_before.as_slice(), "seeds restored");
    assert_eq!(*state.drift(), drift_before, "drift state restored");
    assert_eq!(state.days_ingested(), ingested_before, "counters restored");
    assert!(!state.has_trainer(), "the trainer is dropped on a panic");

    // Recovery: the same day retriggers and lands exactly where an
    // undisturbed run would — TrainState::new on the window history
    // with the re-selected seeds.
    let outcome = state
        .ingest_and_train(days[trigger].clone())
        .expect("recovery ingest");
    assert_eq!(outcome.mode, RetrainMode::FullRebootstrap);
    assert_eq!(state.drift().triggers, 1);
    let window = window_history(&ds, &days, trigger);
    let (new_seeds, overlap) = cold_reselection(&ds, &window, 1);
    assert_eq!(state.seeds(), new_seeds.as_slice());
    assert_eq!(state.drift().last_seed_overlap, overlap as u64);
    let mut cold = TrainState::new(
        ds.graph.clone(),
        &window,
        new_seeds,
        &corr_config(),
        config(1, None),
    );
    assert_eq!(
        estimator_bytes(&outcome.estimator),
        estimator_bytes(&cold.train().expect("cold train")),
        "recovery after the panic == the panic never happened"
    );
}

#[test]
fn daemon_survives_a_rebootstrap_panic_and_keeps_serving_the_old_epoch() {
    let _g = gate();
    let ds = dataset();
    let days = ingest_days(&ds);
    let signals = signal_trajectory(&ds, &days);
    let (threshold, _, _) = calibrated_threshold(&signals);
    let cfg = DriftConfig {
        threshold,
        cooldown_days: WINDOW_DAYS as u64,
        window_days: WINDOW_DAYS,
    };
    let trigger = expected_trigger(&signals, &cfg).expect("trigger fires");

    let handle = Daemon::spawn(
        train_state(&ds, config(1, Some(cfg))),
        DaemonConfig::default(),
    )
    .expect("daemon spawns");
    let mut client = crowdspeed_server::Client::connect(handle.addr()).expect("client");
    for day in &days[..trigger] {
        client
            .ingest_day(day_rows(day))
            .expect("pre-trigger ingest");
    }
    let obs: Vec<(u32, f64)> = seeds()
        .iter()
        .map(|&s| (s.0, ds.test_days[0].speed(9, s)))
        .collect();
    let before = client.estimate(9, obs.clone(), None).expect("estimate");
    assert_eq!(before.epoch, (trigger + 1) as u64);

    failpoint::clear_all();
    failpoint::configure("rebootstrap", Action::Panic, Some(1));
    let result = client.ingest_day(day_rows(&days[trigger]));
    failpoint::clear_all();
    assert!(
        result.is_err(),
        "the injected panic surfaces as a typed error"
    );

    // The previous epoch keeps serving, bit-identically.
    let during = client
        .estimate(9, obs.clone(), None)
        .expect("still serving");
    assert_eq!(during.epoch, before.epoch, "no new epoch was published");
    assert_eq!(during.speeds, before.speeds);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.retrain_failures, 1);
    assert_eq!(
        stats.drift_triggers, 0,
        "the rolled-back trigger left no trace"
    );

    // The retried day rebootstraps for real.
    let (epoch, _) = client.ingest_day(day_rows(&days[trigger])).expect("retry");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.drift_triggers, 1);
    assert_eq!(stats.drift_last_rebootstrap_epoch, epoch);

    client.shutdown().expect("shutdown");
    handle.wait();
}

#[test]
fn snapshot_v3_roundtrips_the_drift_state() {
    let ds = dataset();
    let mut state = train_state(&ds, config(1, None));
    let estimator = state.train().expect("train");
    let drift = DriftState {
        last_signal: 0.3125,
        triggers: 2,
        days_since_anchor: 1,
        last_rebootstrap_epoch: 7,
        last_seed_overlap: 5,
    };
    let hash = snapshot::train_state_hash(&state);
    let bytes = snapshot::encode_snapshot(
        9,
        state.clock(),
        state.days(),
        state.online(),
        &estimator,
        state.context(),
        &drift,
        hash,
    );
    let payload = snapshot::decode_snapshot(&bytes, hash).expect("valid snapshot decodes");
    assert_eq!(payload.epoch, 9);
    assert_eq!(payload.drift, drift, "drift state survives the roundtrip");

    // Corrupting the drift section (a non-finite signal) is caught by
    // the payload validator, not silently adopted.
    let mut bad = bytes.to_vec();
    let sig_at = bad.len() - 40; // 5 trailing u64s; the signal is first
    bad[sig_at..sig_at + 8].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
    // Header: magic(4) version(2) hash(8) len(8) checksum(8); refresh
    // the checksum so only the drift corruption is on trial.
    let body_hash = snapshot::fnv1a(&bad[30..]);
    bad[22..30].copy_from_slice(&body_hash.to_le_bytes());
    assert!(matches!(
        snapshot::decode_snapshot(&bad, hash),
        Err(RejectReason::Decode)
    ));
}

/// A per-test snapshot directory (removed on drop).
struct SnapDir(PathBuf);

impl SnapDir {
    fn new(tag: &str) -> SnapDir {
        let dir =
            std::env::temp_dir().join(format!("crowdspeed-drift-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("create snapshot dir");
        SnapDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for SnapDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

#[test]
fn v2_snapshots_refuse_cleanly_into_a_retrain() {
    let ds = dataset();
    let mut state = train_state(&ds, config(1, None));
    let estimator = state.train().expect("train");
    let hash = snapshot::train_state_hash(&state);
    let mut bytes = snapshot::encode_snapshot(
        3,
        state.clock(),
        state.days(),
        state.online(),
        &estimator,
        state.context(),
        &DriftState::default(),
        hash,
    )
    .to_vec();
    // Stamp the previous format version: a v2 file has no drift
    // section, so this build must refuse it rather than misparse it.
    bytes[4] = 2;
    bytes[5] = 0;
    assert!(matches!(
        snapshot::decode_snapshot(&bytes, hash),
        Err(RejectReason::BadVersion)
    ));

    let snap = SnapDir::new("v2");
    std::fs::write(snapshot::snapshot_path(snap.path(), 3), &bytes).expect("write v2 file");
    let mut rejected = Vec::new();
    assert!(
        snapshot::load_newest(snap.path(), hash, |reason, _| rejected.push(reason)).is_none(),
        "a v2 file must never resume"
    );
    assert_eq!(rejected, vec![RejectReason::BadVersion]);

    // The daemon path: spawn_from over the v2 file falls back to a
    // fresh retrain with zeroed drift state and a typed reject count.
    let handle = Daemon::spawn_from(
        TrainInputs {
            graph: ds.graph.clone(),
            history: ds.history.clone(),
            seeds: seeds(),
            corr_config: corr_config(),
            config: config(1, None),
        },
        DaemonConfig {
            snapshot_dir: Some(snap.path().to_path_buf()),
            ..DaemonConfig::default()
        },
    )
    .expect("fallback daemon spawns");
    let mut client = crowdspeed_server::Client::connect(handle.addr()).expect("client");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.snapshot_resumed, 0, "refusal, not a resume");
    assert_eq!(stats.epoch, 1, "fresh retrain");
    assert_eq!(stats.drift_triggers, 0);
    assert_eq!(stats.drift_signal, 0.0);
    let bad_version = stats
        .snapshot_rejects
        .iter()
        .find(|(name, _)| name == "bad_version")
        .map(|&(_, n)| n);
    assert_eq!(bad_version, Some(1));
    client.shutdown().expect("shutdown");
    handle.join();
}
