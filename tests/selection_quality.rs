//! Seed-selection quality: greedy family vs the exhaustive optimum on
//! correlation graphs derived from real (synthetic-city) history, not
//! just hand-built toys.

use crowdspeed::prelude::*;
use crowdspeed::seed::partition::partition_greedy;
use roadnet::RoadId;
use trafficsim::dataset::{metro_small, DatasetParams};

/// A small real correlation graph: restrict the metro-small city's
/// correlation graph to its first `n` roads.
fn small_real_influence(n: usize) -> (crowdspeed::correlation::CorrelationGraph, InfluenceModel) {
    let ds = metro_small(&DatasetParams {
        training_days: 10,
        test_days: 1,
        ..DatasetParams::default()
    });
    let stats = HistoryStats::compute(&ds.history);
    let full = CorrelationGraph::build(
        &ds.graph,
        &ds.history,
        &stats,
        &CorrelationConfig {
            min_cotrend: 0.6,
            min_co_observations: 6,
            ..CorrelationConfig::default()
        },
    );
    let edges: Vec<_> = full
        .edges()
        .iter()
        .filter(|e| e.a.index() < n && e.b.index() < n)
        .copied()
        .collect();
    let corr = CorrelationGraph::from_edges(n, edges).unwrap();
    let model = InfluenceModel::build(&corr, &InfluenceConfig::default());
    (corr, model)
}

#[test]
fn greedy_within_guarantee_of_optimum_on_real_graph() {
    let (_, model) = small_real_influence(14);
    for k in [2usize, 3, 4] {
        let opt = exhaustive(&model, k);
        let g = greedy(&model, k);
        assert!(
            g.objective >= 0.632 * opt.objective - 1e-9,
            "k={k}: greedy {:.3} below guarantee of optimum {:.3}",
            g.objective,
            opt.objective
        );
        assert!(g.objective <= opt.objective + 1e-9);
    }
}

#[test]
fn lazy_greedy_matches_plain_greedy_exactly() {
    let (_, model) = small_real_influence(60);
    for k in [3usize, 10, 25] {
        let a = greedy(&model, k);
        let b = lazy_greedy(&model, k);
        assert!(
            (a.objective - b.objective).abs() < 1e-9,
            "k={k}: {} vs {}",
            a.objective,
            b.objective
        );
        assert!(b.evaluations <= a.evaluations);
    }
}

#[test]
fn partition_greedy_quality_and_validity() {
    let (corr, model) = small_real_influence(80);
    let k = 12;
    let plain = greedy(&model, k);
    let obj = SeedObjective::new(&model);
    for parts in [2usize, 4, 8] {
        let res = partition_greedy(&corr, &InfluenceConfig::default(), k, parts);
        assert_eq!(res.seeds.len(), k, "parts={parts}");
        let mut s = res.seeds.clone();
        s.sort();
        s.dedup();
        assert_eq!(s.len(), k, "parts={parts}: duplicates");
        // Fair comparison: re-score on the shared full-graph objective
        // (the result's own objective is the cut-graph lower bound).
        let scored = obj.value(&res.seeds);
        assert!(
            scored >= plain.objective * 0.6,
            "parts={parts}: partition {scored:.2} too far below greedy {:.2}",
            plain.objective
        );
        assert!(
            res.objective <= scored + 1e-9,
            "parts={parts}: bound violated"
        );
    }
}

#[test]
fn coverage_is_monotone_in_k() {
    let (_, model) = small_real_influence(60);
    let obj = SeedObjective::new(&model);
    let sel = lazy_greedy(&model, 30);
    let mut prev = 0.0;
    for k in 1..=sel.seeds.len() {
        let v = obj.value(&sel.seeds[..k]);
        assert!(v >= prev - 1e-9, "objective must be monotone");
        prev = v;
    }
}

#[test]
fn all_selectors_return_valid_road_ids() {
    let ds = metro_small(&DatasetParams {
        training_days: 8,
        test_days: 1,
        ..DatasetParams::default()
    });
    let stats = HistoryStats::compute(&ds.history);
    let corr = CorrelationGraph::build(
        &ds.graph,
        &ds.history,
        &stats,
        &CorrelationConfig::default(),
    );
    let n = ds.graph.num_roads();
    let k = 9;
    let influence = InfluenceModel::build(&corr, &InfluenceConfig::default());
    let selections: Vec<(&str, Vec<RoadId>)> = vec![
        ("greedy", greedy(&influence, k).seeds),
        ("lazy", lazy_greedy(&influence, k).seeds),
        ("random", random_seeds(n, k, 1)),
        ("degree", top_degree(&corr, k)),
        ("variance", top_variance(&ds.history, &stats, k)),
        ("pagerank", pagerank_seeds(&corr, k, 0.85, 30)),
        ("kcenter", k_center(&corr, k)),
    ];
    for (name, seeds) in selections {
        assert_eq!(seeds.len(), k, "{name}");
        assert!(seeds.iter().all(|r| r.index() < n), "{name}");
        let mut s = seeds.clone();
        s.sort();
        s.dedup();
        assert_eq!(s.len(), k, "{name}: duplicates");
    }
}
