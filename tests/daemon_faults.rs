//! Fault-tolerance tests for the `crowdspeedd` TCP daemon: injected
//! panics, stalled peers, connection floods, thread-spawn failures, and
//! hung sockets. The daemon's promise under fault is graceful
//! degradation — every failure is answered with a typed error (or a
//! bounded timeout on the client side) and the process keeps serving.
//!
//! The failpoint registry is process-global, and cargo runs the tests
//! in this binary on parallel threads, so every test that talks to a
//! daemon serialises on [`FAULT_LOCK`] and clears the registry on both
//! sides of its scenario.

use crowdspeed::prelude::*;
use crowdspeed_server::daemon::{Daemon, DaemonConfig, DaemonHandle};
use crowdspeed_server::failpoint::{self, Action};
use crowdspeed_server::protocol::{read_frame, ErrorKind, Request, Response};
use crowdspeed_server::state::TrainState;
use crowdspeed_server::{Client, ClientConfig, ServerError};
use roadnet::RoadId;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use trafficsim::dataset::{metro_small, Dataset, DatasetParams};

static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// Serialises fault scenarios (the failpoint registry is global) and
/// guarantees a clean registry even if the previous holder panicked.
fn fault_guard() -> MutexGuard<'static, ()> {
    let guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    failpoint::clear_all();
    guard
}

fn dataset() -> Dataset {
    metro_small(&DatasetParams {
        training_days: 6,
        test_days: 2,
        ..DatasetParams::default()
    })
}

fn seeds() -> Vec<RoadId> {
    (0..12u32).map(|i| RoadId(i * 8)).collect()
}

fn corr_config() -> CorrelationConfig {
    CorrelationConfig {
        min_cotrend: 0.6,
        min_co_observations: 6,
        ..CorrelationConfig::default()
    }
}

fn train_state(ds: &Dataset) -> TrainState {
    TrainState::new(
        ds.graph.clone(),
        &ds.history,
        seeds(),
        &corr_config(),
        EstimatorConfig::default(),
    )
}

fn spawn(ds: &Dataset, config: DaemonConfig) -> DaemonHandle {
    Daemon::spawn(train_state(ds), config).expect("daemon spawns")
}

fn observations_at(ds: &Dataset, slot: usize) -> Vec<(u32, f64)> {
    let truth = &ds.test_days[0];
    seeds()
        .iter()
        .map(|&s| (s.0, truth.speed(slot, s)))
        .collect()
}

fn day_rows(day: &trafficsim::SpeedField) -> Vec<Vec<f64>> {
    (0..day.num_slots())
        .map(|slot| day.slot_speeds(slot).to_vec())
        .collect()
}

/// Scenario 1: a panic inside an estimate worker answers a typed
/// `Internal` error, the (single!) worker survives to serve the next
/// request on the same connection, and STATS both still answers and
/// counts the panic.
#[test]
fn worker_panic_answers_typed_internal_and_the_pool_survives() {
    let _guard = fault_guard();
    let ds = dataset();
    let handle = spawn(
        &ds,
        DaemonConfig {
            workers: 1,
            ..DaemonConfig::default()
        },
    );
    let mut client = Client::connect(handle.addr()).expect("client connects");
    failpoint::configure("estimate", Action::Panic, Some(1));
    match client.estimate(3, observations_at(&ds, 3), None) {
        Err(ServerError::Remote {
            kind: ErrorKind::Internal,
            message,
        }) => assert!(
            message.contains("panicked"),
            "error should say the worker panicked, got {message:?}"
        ),
        other => panic!("expected a typed Internal error, got {other:?}"),
    }
    // With exactly one worker, this request only succeeds if that
    // worker outlived the panic.
    let reply = client
        .estimate(3, observations_at(&ds, 3), None)
        .expect("the worker survives its panic");
    assert_eq!(reply.epoch, 1);
    let stats = client.stats().expect("STATS answers after a worker panic");
    assert_eq!(stats.worker_panics, 1, "the panic is counted");
    let estimate = &stats.commands[0];
    assert_eq!(estimate.0, "estimate");
    assert_eq!(
        (estimate.1.received, estimate.1.ok, estimate.1.errors),
        (2, 1, 1)
    );
    assert_eq!(
        stats.latency_counts.iter().sum::<u64>(),
        2,
        "latency is recorded for error outcomes too"
    );
    failpoint::clear_all();
    client.shutdown().expect("clean shutdown");
    handle.join();
}

/// Scenario 2: a peer that opens a connection, sends half a frame, and
/// stalls forever must not affect other connections — and must not
/// prevent shutdown from draining.
#[test]
fn stalled_peer_leaves_other_connections_unaffected() {
    let _guard = fault_guard();
    let ds = dataset();
    let handle = spawn(&ds, DaemonConfig::default());
    // Declare a 65-byte frame, deliver 11 bytes, then go silent. The
    // handler thread is now parked mid-frame on its read-timeout tick.
    let mut stalled = TcpStream::connect(handle.addr()).expect("stalled peer connects");
    stalled
        .write_all(&65u32.to_be_bytes())
        .expect("length prefix");
    stalled.write_all(&[1u8; 11]).expect("partial payload");
    stalled.flush().expect("flush");
    std::thread::sleep(Duration::from_millis(100));
    // Other connections are served normally while the peer stalls.
    let mut client = Client::connect(handle.addr()).expect("healthy client connects");
    for slot in [0usize, 5, 11] {
        let reply = client
            .estimate(slot, observations_at(&ds, slot), None)
            .expect("estimates unaffected by the stalled peer");
        assert_eq!(reply.epoch, 1);
    }
    let stats = client
        .stats()
        .expect("stats unaffected by the stalled peer");
    assert_eq!(stats.commands[0].1.ok, 3);
    client.shutdown().expect("clean shutdown");
    // join() must return even though the stalled peer never completed
    // its frame: the handler aborts at its next read-timeout tick.
    handle.join();
    drop(stalled);
}

/// Scenario 3: a connection flood past `max_connections` gets typed
/// `Overloaded` frames, an injected thread-spawn failure sheds exactly
/// one connection the same way, and the acceptor survives both to
/// serve the next client.
#[test]
fn connection_flood_and_spawn_failure_are_shed_with_typed_overloaded() {
    let _guard = fault_guard();
    let ds = dataset();
    let handle = spawn(
        &ds,
        DaemonConfig {
            max_connections: 2,
            ..DaemonConfig::default()
        },
    );
    // Fill the connection budget with two idle peers.
    let idle_a = TcpStream::connect(handle.addr()).expect("idle peer A");
    let idle_b = TcpStream::connect(handle.addr()).expect("idle peer B");
    std::thread::sleep(Duration::from_millis(100));
    // The third connection is refused before any request is sent: the
    // daemon pushes a typed Overloaded frame and hangs up.
    let mut flooded = TcpStream::connect(handle.addr()).expect("flood connection");
    let (_, payload) = read_frame(&mut flooded, 1 << 20, &|| false).expect("refusal frame");
    match Response::decode(&payload).expect("refusal decodes") {
        Response::Error { kind, message } => {
            assert_eq!(kind, ErrorKind::Overloaded);
            assert!(
                message.contains("connection limit"),
                "refusal names the cap, got {message:?}"
            );
        }
        other => panic!("expected typed Overloaded, got {other:?}"),
    }
    drop(flooded);
    // Free the budget and let the handlers notice the hang-ups.
    drop(idle_a);
    drop(idle_b);
    std::thread::sleep(Duration::from_millis(200));
    // Injected thread exhaustion: the next connection is shed the same
    // way, and the acceptor keeps accepting afterwards.
    failpoint::configure("conn_spawn", Action::Fail, Some(1));
    let mut starved = TcpStream::connect(handle.addr()).expect("starved connection");
    let (_, payload) = read_frame(&mut starved, 1 << 20, &|| false).expect("refusal frame");
    match Response::decode(&payload).expect("refusal decodes") {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::Overloaded),
        other => panic!("expected typed Overloaded, got {other:?}"),
    }
    drop(starved);
    // The acceptor survived the flood and the spawn failure.
    let mut client = Client::connect(handle.addr()).expect("post-flood client connects");
    let reply = client
        .estimate(7, observations_at(&ds, 7), None)
        .expect("daemon serves after the flood");
    assert_eq!(reply.epoch, 1);
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.rejected_connections, 2,
        "one cap refusal + one injected spawn failure"
    );
    failpoint::clear_all();
    client.shutdown().expect("clean shutdown");
    handle.join();
}

/// Scenario 4: a panic mid-retrain answers a typed `Internal` error,
/// rolls the training state back, and leaves the old epoch serving —
/// and because the rollback is complete, re-ingesting the same day
/// afterwards produces exactly the model an untouched pipeline would.
#[test]
fn retrain_panic_keeps_the_old_epoch_serving_and_rolls_back_cleanly() {
    let _guard = fault_guard();
    let ds = dataset();
    let handle = spawn(&ds, DaemonConfig::default());
    let mut client = Client::connect(handle.addr()).expect("client connects");
    let new_day = &ds.test_days[1];
    failpoint::configure("retrain", Action::Panic, Some(1));
    match client.ingest_day(day_rows(new_day)) {
        Err(ServerError::Remote {
            kind: ErrorKind::Internal,
            message,
        }) => assert!(
            message.contains("panicked"),
            "error should say the retrain panicked, got {message:?}"
        ),
        other => panic!("expected a typed Internal error, got {other:?}"),
    }
    assert_eq!(handle.epoch(), 1, "a failed retrain must not publish");
    // The old model keeps serving.
    let reply = client
        .estimate(4, observations_at(&ds, 4), None)
        .expect("estimates survive a retrain panic");
    assert_eq!(reply.epoch, 1);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.retrain_failures, 1, "the failed retrain is counted");
    // Re-ingesting the same day now succeeds, and the resulting model
    // is bit-identical to one trained by a pipeline that never saw the
    // fault — proof the rollback left no half-updated counters behind.
    let (epoch, _days) = client
        .ingest_day(day_rows(new_day))
        .expect("ingest succeeds after the rollback");
    assert_eq!(epoch, 2);
    let mut reference_state = train_state(&ds);
    reference_state
        .ingest_day(new_day.clone())
        .expect("reference ingest");
    let reference = reference_state.train().expect("reference retrain");
    let mut scratch = EstimateScratch::new();
    for slot in [2usize, 10] {
        let obs = observations_at(&ds, slot);
        let reply = client.estimate(slot, obs.clone(), None).expect("estimate");
        let direct_obs: Vec<(RoadId, f64)> = obs.iter().map(|&(r, v)| (RoadId(r), v)).collect();
        let direct = reference
            .try_estimate(slot, &direct_obs, &mut scratch)
            .expect("direct estimate");
        assert_eq!(reply.epoch, 2);
        assert_eq!(
            reply.speeds, direct.speeds,
            "slot {slot}: post-rollback model == fault-free model"
        );
    }
    client.shutdown().expect("clean shutdown");
    handle.join();
}

/// Scenario 4b: a mid-frame short write (the daemon dies between two
/// TCP segments of a response, injected via the `conn_write`
/// failpoint). The client must treat the truncated reply as a poisoned
/// connection, and its idempotent retry path must resync on a fresh
/// connection and return a reply bit-identical to an unfaulted one.
#[test]
fn short_written_reply_resyncs_through_client_retry_bit_identically() {
    let _guard = fault_guard();
    let ds = dataset();
    let handle = spawn(&ds, DaemonConfig::default());
    let config = ClientConfig {
        retries: 2,
        backoff_base: Duration::from_millis(10),
        ..ClientConfig::default()
    };
    let mut client = Client::connect_with(handle.addr(), config).expect("client connects");
    // Reference reply over a healthy wire.
    let reference = client
        .estimate(6, observations_at(&ds, 6), None)
        .expect("reference estimate");
    // The next response is cut off halfway through the frame and the
    // socket severed; the retry reconnects and must get the same bits.
    failpoint::configure("conn_write", Action::Fail, Some(1));
    let retried = client
        .estimate(6, observations_at(&ds, 6), None)
        .expect("retry resyncs past the short write");
    assert_eq!(retried.epoch, reference.epoch);
    assert_eq!(
        retried.speeds, reference.speeds,
        "resynced reply is bit-identical to the unfaulted one"
    );
    assert_eq!(retried.p_up, reference.p_up);
    assert_eq!(retried.trends, reference.trends);
    // Without retries the same fault surfaces as a typed transport
    // error, never a mangled reply.
    failpoint::configure("conn_write", Action::Fail, Some(1));
    let mut plain = Client::connect(handle.addr()).expect("no-retry client connects");
    match plain.estimate(6, observations_at(&ds, 6), None) {
        Err(ServerError::Wire(_) | ServerError::Io(_)) => {}
        other => panic!("expected a transport error from the torn frame, got {other:?}"),
    }
    failpoint::clear_all();
    client.shutdown().expect("clean shutdown");
    handle.join();
}

/// Scenario 4c: a short-written `INGEST_DAY` reply. The client must
/// surface a transport error (ingest is never retried — the day may
/// have landed), and here it did land: the epoch advanced server-side,
/// and a reconnecting client sees the new model.
#[test]
fn short_written_ingest_reply_errors_but_the_day_was_ingested() {
    let _guard = fault_guard();
    let ds = dataset();
    let handle = spawn(&ds, DaemonConfig::default());
    let mut client = Client::connect(handle.addr()).expect("client connects");
    failpoint::configure("conn_write", Action::Fail, Some(1));
    match client.ingest_day(day_rows(&ds.test_days[1])) {
        Err(ServerError::Wire(_) | ServerError::Io(_)) => {}
        other => panic!("expected a transport error, got {other:?}"),
    }
    failpoint::clear_all();
    // The reply was torn, not the ingest: the new epoch is serving.
    assert_eq!(handle.epoch(), 2, "the ingest itself completed");
    let reply = client
        .estimate(4, observations_at(&ds, 4), None)
        .expect("estimate after reconnecting");
    assert_eq!(reply.epoch, 2);
    client.shutdown().expect("clean shutdown");
    handle.join();
}

/// Scenario 6: a slow loris — a peer that starts a frame and then
/// trickles one byte at a time, never blocking long enough to look
/// dead. The per-frame read deadline must drop it and reclaim the
/// handler thread: with `max_connections: 1`, a fresh client can only
/// be served if the trickler's slot was actually freed.
#[test]
fn trickling_peer_hits_the_frame_deadline_and_frees_its_thread() {
    let _guard = fault_guard();
    let ds = dataset();
    let handle = spawn(
        &ds,
        DaemonConfig {
            max_connections: 1,
            frame_deadline_ms: Some(300),
            ..DaemonConfig::default()
        },
    );
    // The loris declares a 64-byte frame and feeds it a byte every
    // 50 ms — each read makes progress, so only the frame deadline can
    // end this.
    let mut loris = TcpStream::connect(handle.addr()).expect("loris connects");
    loris
        .write_all(&64u32.to_be_bytes())
        .expect("length prefix");
    loris.flush().expect("flush");
    let trickler = std::thread::spawn(move || {
        for _ in 0..20 {
            if loris.write_all(&[0x5a]).is_err() || loris.flush().is_err() {
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        loris
    });
    // While the loris occupies the only connection slot, new
    // connections are refused — then the deadline (300 ms after the
    // first byte) fires, the handler exits, and the slot frees. Poll
    // until the daemon serves again; a missing deadline would leave the
    // slot pinned and this loop exhausted.
    let started = Instant::now();
    let (mut client, reply) = loop {
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "connection slot never freed: the trickling peer pinned its handler thread"
        );
        let mut client = match Client::connect(handle.addr()) {
            Ok(client) => client,
            Err(_) => continue,
        };
        match client.estimate(9, observations_at(&ds, 9), None) {
            Ok(reply) => break (client, reply),
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    };
    assert_eq!(reply.epoch, 1);
    // The loris's writes eventually fail against its severed socket.
    let loris = trickler.join().expect("trickler thread");
    drop(loris);
    client.shutdown().expect("clean shutdown");
    handle.join();
}

/// Scenario 5: against a socket that accepts and then never answers,
/// the client fails with [`ServerError::TimedOut`] within its
/// configured budget, and retries reconnect (counted as fresh accepts)
/// rather than waiting on the poisoned stream.
#[test]
fn client_times_out_against_a_hung_socket_and_retries_reconnect() {
    // No daemon and no failpoints here — a bare listener plays the
    // hung server, so the global registry is untouched.
    let listener = TcpListener::bind("127.0.0.1:0").expect("hung listener binds");
    let addr = listener.local_addr().expect("addr");
    let accepts = Arc::new(AtomicU64::new(0));
    let accept_counter = Arc::clone(&accepts);
    std::thread::spawn(move || {
        // Hold every accepted socket open forever, never answering.
        let mut held = Vec::new();
        while let Ok((stream, _)) = listener.accept() {
            accept_counter.fetch_add(1, Ordering::SeqCst);
            held.push(stream);
        }
    });
    let config = ClientConfig {
        request_timeout: Some(Duration::from_millis(200)),
        retries: 2,
        backoff_base: Duration::from_millis(10),
        ..ClientConfig::default()
    };
    let mut client = Client::connect_with(addr, config).expect("client connects");
    let started = Instant::now();
    match client.request(&Request::Stats) {
        Err(ServerError::TimedOut) => {}
        other => panic!("expected TimedOut from the raw request path, got {other:?}"),
    }
    let single = started.elapsed();
    assert!(
        single < Duration::from_secs(5),
        "a hung socket must cost the timeout, not forever (took {single:?})"
    );
    // The idempotent path retries: each attempt reconnects (the timed
    // out stream is poisoned) and times out again.
    let started = Instant::now();
    match client.stats() {
        Err(ServerError::TimedOut) => {}
        other => panic!("expected TimedOut after retries, got {other:?}"),
    }
    let retried = started.elapsed();
    assert!(
        retried < Duration::from_secs(10),
        "three bounded attempts, not an unbounded wait (took {retried:?})"
    );
    assert_eq!(
        accepts.load(Ordering::SeqCst),
        4,
        "initial connect + one reconnect per attempt of the retried request"
    );
}
