//! Integration tests for the beyond-the-paper extensions: online
//! correlation maintenance, temporal seed plans, routing, and the
//! confidence channel, exercised together on one dataset.

use crowdspeed::online::OnlineCorrelation;
use crowdspeed::prelude::*;
use crowdspeed::routing::{eta_minutes, fastest_route};
use crowdspeed::seed::temporal::{standard_periods, TemporalSeedPlan};
use roadnet::RoadId;
use trafficsim::dataset::{metro_small, DatasetParams};

fn dataset() -> trafficsim::dataset::Dataset {
    metro_small(&DatasetParams {
        training_days: 10,
        test_days: 2,
        ..DatasetParams::default()
    })
}

#[test]
fn online_model_feeds_a_working_estimator() {
    // Bootstrap online correlation, ingest a fresh day, and train an
    // estimator from its live graph — the production refresh loop.
    let ds = dataset();
    let mut online =
        OnlineCorrelation::bootstrap(&ds.graph, &ds.history, &CorrelationConfig::default());
    online.ingest_day(&ds.test_days[0]).unwrap();
    let corr = online.correlation_graph();
    let stats = HistoryStats::compute(&ds.history);
    let influence = InfluenceModel::build(&corr, &InfluenceConfig::default());
    let seeds = lazy_greedy(&influence, 10).seeds;
    let est = TrafficEstimator::train(
        &ds.graph,
        &ds.history,
        &stats,
        &corr,
        &seeds,
        &EstimatorConfig::default(),
    )
    .unwrap();
    let truth = &ds.test_days[1];
    let obs: Vec<(RoadId, f64)> = seeds.iter().map(|&s| (s, truth.speed(9, s))).collect();
    let r = est.estimate(9, &obs);
    assert!(r.speeds.iter().all(|v| v.is_finite() && *v > 0.0));
}

#[test]
fn temporal_plan_drives_per_period_estimators() {
    let ds = dataset();
    let stats = HistoryStats::compute(&ds.history);
    let corr = CorrelationGraph::build(
        &ds.graph,
        &ds.history,
        &stats,
        &CorrelationConfig::default(),
    );
    let plan = TemporalSeedPlan::select(
        &ds.graph,
        &ds.history,
        &stats,
        &CorrelationConfig::default(),
        &InfluenceConfig::default(),
        standard_periods(ds.clock.slots_per_day),
        8,
    );
    // One estimator per period; estimate a slot from each period's own
    // seeds.
    let truth = &ds.test_days[0];
    for i in 0..plan.periods().len() {
        let seeds = plan.period_seeds(i).to_vec();
        let est = TrafficEstimator::train(
            &ds.graph,
            &ds.history,
            &stats,
            &corr,
            &seeds,
            &EstimatorConfig::default(),
        )
        .unwrap();
        let slot = plan.periods()[i].slots[0];
        let obs: Vec<(RoadId, f64)> = seeds.iter().map(|&s| (s, truth.speed(slot, s))).collect();
        let r = est.estimate(slot, &obs);
        assert_eq!(r.speeds.len(), ds.graph.num_roads());
        assert_eq!(plan.seeds_for_slot(slot), &seeds[..]);
    }
}

#[test]
fn estimated_speeds_produce_consistent_routes() {
    let ds = dataset();
    let stats = HistoryStats::compute(&ds.history);
    let corr = CorrelationGraph::build(
        &ds.graph,
        &ds.history,
        &stats,
        &CorrelationConfig::default(),
    );
    let influence = InfluenceModel::build(&corr, &InfluenceConfig::default());
    let seeds = lazy_greedy(&influence, 10).seeds;
    let est = TrafficEstimator::train(
        &ds.graph,
        &ds.history,
        &stats,
        &corr,
        &seeds,
        &EstimatorConfig::default(),
    )
    .unwrap();
    let truth = &ds.test_days[0];
    let slot = 8;
    let obs: Vec<(RoadId, f64)> = seeds.iter().map(|&s| (s, truth.speed(slot, s))).collect();
    let r = est.estimate(slot, &obs);

    let from = RoadId(0);
    let etas = eta_minutes(&ds.graph, &r.speeds, from);
    // The city is connected, so every ETA is finite, and every
    // reconstructed route's promised time matches the ETA matrix.
    for to in ds.graph.road_ids() {
        assert!(etas[to.index()].is_finite(), "{to} unreachable");
        let route = fastest_route(&ds.graph, &r.speeds, from, to).expect("reachable");
        assert!(
            (route.minutes - etas[to.index()]).abs() < 1e-6,
            "{to}: route {} vs eta {}",
            route.minutes,
            etas[to.index()]
        );
        assert_eq!(route.segments.first(), Some(&from));
        assert_eq!(route.segments.last(), Some(&to));
    }
}

#[test]
fn confidence_rises_with_budget() {
    let ds = dataset();
    let stats = HistoryStats::compute(&ds.history);
    let corr = CorrelationGraph::build(
        &ds.graph,
        &ds.history,
        &stats,
        &CorrelationConfig::default(),
    );
    let influence = InfluenceModel::build(&corr, &InfluenceConfig::default());
    let mean_conf = |k: usize| -> f64 {
        let seeds = lazy_greedy(&influence, k).seeds;
        let est = TrafficEstimator::train(
            &ds.graph,
            &ds.history,
            &stats,
            &corr,
            &seeds,
            &EstimatorConfig::default(),
        )
        .unwrap();
        linalg::stats::mean(est.coverage())
    };
    let small = mean_conf(5);
    let large = mean_conf(25);
    assert!(
        large > small,
        "confidence must grow with the budget: {small} vs {large}"
    );
}
