//! Equivalence and fallback tests for the incremental `INGEST_DAY`
//! retrain path.
//!
//! The hard contract under test: whatever path
//! [`TrainState::ingest_and_train`] takes — delta-incremental advance,
//! cold rebuild under the frozen context, or a coverage-triggered
//! re-anchor — the published estimator is **bit-identical** to a
//! from-scratch [`TrainState`] fed the same day sequence, at any
//! thread count. Equality is asserted on the estimator's snapshot
//! encoding, which captures every serving-relevant layer byte for
//! byte.

use crowdspeed::prelude::*;
use crowdspeed_server::failpoint::{self, Action};
use crowdspeed_server::state::{RetrainError, RetrainMode, TrainState};
use roadnet::RoadId;
use trafficsim::dataset::{metro_small, Dataset, DatasetParams};
use trafficsim::SpeedField;

fn dataset() -> Dataset {
    metro_small(&DatasetParams {
        training_days: 6,
        test_days: 2,
        ..DatasetParams::default()
    })
}

fn seeds() -> Vec<RoadId> {
    (0..12u32).map(|i| RoadId(i * 8)).collect()
}

fn corr_config() -> CorrelationConfig {
    CorrelationConfig {
        min_cotrend: 0.6,
        min_co_observations: 6,
        ..CorrelationConfig::default()
    }
}

fn train_state(ds: &Dataset, config: EstimatorConfig) -> TrainState {
    TrainState::new(
        ds.graph.clone(),
        &ds.history,
        seeds(),
        &corr_config(),
        config,
    )
}

/// The estimator's full snapshot encoding — the byte string two
/// estimators must share to be considered the same model.
fn estimator_bytes(est: &TrafficEstimator) -> Vec<u8> {
    let mut buf = bytes::BytesMut::new();
    est.encode_snapshot_into(&mut buf);
    buf.to_vec()
}

/// Deterministic pseudo-random day: roughly `density`% of cells carry
/// a speed, the rest stay NaN (unobserved).
fn random_day(rng: &mut u64, slots: usize, roads: usize, density: u64) -> SpeedField {
    let mut day = SpeedField::filled(slots, roads, f64::NAN);
    for slot in 0..slots {
        for road in 0..roads {
            // xorshift64
            *rng ^= *rng << 13;
            *rng ^= *rng >> 7;
            *rng ^= *rng << 17;
            if *rng % 100 < density {
                let speed = 5.0 + (*rng % 1000) as f64 / 12.5;
                day.set_speed(slot, RoadId(road as u32), speed);
            }
        }
    }
    day
}

/// A day radically unlike the bootstrap history: every cell observed
/// at one constant speed. Flips enough trend counters to guarantee a
/// non-empty correlation delta.
fn disruptive_day(slots: usize, roads: usize) -> SpeedField {
    SpeedField::filled(slots, roads, 3.0)
}

/// The reference trajectory: a fresh state fed `days` one at a time,
/// then trained from scratch. `ingest_day` applies the same context
/// policy the retrain path does, so this reproduces the daemon's exact
/// published model.
fn scratch_reference(ds: &Dataset, config: EstimatorConfig, days: &[SpeedField]) -> Vec<u8> {
    let mut state = train_state(ds, config);
    for day in days {
        state.ingest_day(day.clone()).expect("reference ingest");
    }
    estimator_bytes(&state.train().expect("reference trains"))
}

/// A config that never trips the coverage re-anchor, pinning the
/// decision matrix to the incremental arm.
fn forced_incremental(train_threads: usize) -> EstimatorConfig {
    EstimatorConfig {
        train_threads,
        max_incremental_fraction: f64::INFINITY,
        ..EstimatorConfig::default()
    }
}

#[test]
fn incremental_advance_is_bit_identical_to_scratch_across_threads() {
    let ds = dataset();
    let slots = ds.clock.slots_per_day;
    let roads = ds.graph.num_roads();
    let mut rng = 0x9E37_79B9_7F4A_7C15u64;
    let days: Vec<SpeedField> = (0..3)
        .map(|_| random_day(&mut rng, slots, roads, 60))
        .collect();

    let mut final_bytes: Vec<Vec<u8>> = Vec::new();
    for threads in [1usize, 2, 8] {
        let config = forced_incremental(threads);
        let mut state = train_state(&ds, config.clone());
        state.train().expect("initial train");
        assert!(state.has_trainer(), "train() leaves a trainer standing");
        let mut last = None;
        for day in &days {
            let outcome = state
                .ingest_and_train(day.clone())
                .expect("ingest succeeds");
            assert_eq!(
                outcome.mode,
                RetrainMode::Incremental,
                "coverage budget is infinite, so every ingest advances incrementally"
            );
            last = Some(outcome.estimator);
        }
        let bytes = estimator_bytes(&last.expect("at least one day ingested"));
        assert_eq!(
            bytes,
            scratch_reference(&ds, config, &days),
            "threads={threads}: incremental result == from-scratch retrain"
        );
        final_bytes.push(bytes);
    }
    assert!(
        final_bytes.windows(2).all(|w| w[0] == w[1]),
        "the published model is independent of the thread count"
    );
}

#[test]
fn random_sequences_stay_on_the_scratch_trajectory() {
    let ds = dataset();
    let slots = ds.clock.slots_per_day;
    let roads = ds.graph.num_roads();
    // Default config: the coverage policy (not the test) decides which
    // arm each day takes — bit-identity must hold regardless.
    for seed in [0xDEAD_BEEFu64, 0x0123_4567_89AB_CDEF] {
        let mut rng = seed;
        let days: Vec<SpeedField> = (0..3)
            .map(|_| random_day(&mut rng, slots, roads, 20 + (seed % 50)))
            .collect();
        let mut per_thread: Vec<Vec<u8>> = Vec::new();
        for threads in [1usize, 2, 8] {
            let config = EstimatorConfig {
                train_threads: threads,
                ..EstimatorConfig::default()
            };
            let mut state = train_state(&ds, config.clone());
            state.train().expect("initial train");
            let mut last = None;
            for day in &days {
                let outcome = state
                    .ingest_and_train(day.clone())
                    .expect("ingest succeeds");
                last = Some(outcome.estimator);
            }
            let bytes = estimator_bytes(&last.unwrap());
            assert_eq!(
                bytes,
                scratch_reference(&ds, config, &days),
                "seed={seed:#x} threads={threads}: daemon trajectory == scratch trajectory"
            );
            per_thread.push(bytes);
        }
        assert!(
            per_thread.windows(2).all(|w| w[0] == w[1]),
            "seed={seed:#x}: thread count does not leak into the model"
        );
    }
}

#[test]
fn zero_budget_forces_a_reanchor_and_stays_bit_identical() {
    let ds = dataset();
    let config = EstimatorConfig {
        max_incremental_fraction: 0.0,
        ..EstimatorConfig::default()
    };
    let day = disruptive_day(ds.clock.slots_per_day, ds.graph.num_roads());

    let mut state = train_state(&ds, config.clone());
    state.train().expect("initial train");
    let context_before = state.context().clone();
    let outcome = state
        .ingest_and_train(day.clone())
        .expect("ingest succeeds");
    assert_eq!(outcome.mode, RetrainMode::FullReanchor);
    assert!(
        outcome.coverage > 0.0,
        "the disruptive day must touch the live graph"
    );
    assert!(state.has_trainer(), "the re-anchor rebuilds the trainer");
    assert_ne!(
        state.context().edges(),
        context_before.edges(),
        "the training context moved to the post-ingest live graph"
    );
    assert_eq!(
        estimator_bytes(&outcome.estimator),
        scratch_reference(&ds, config, std::slice::from_ref(&day)),
        "re-anchored result == from-scratch retrain"
    );
}

#[test]
fn cold_rebuild_after_a_dropped_trainer_is_bit_identical() {
    let ds = dataset();
    let slots = ds.clock.slots_per_day;
    let roads = ds.graph.num_roads();
    let config = forced_incremental(0);
    let mut rng = 0xA5A5_5A5A_DEAD_F00Du64;
    let day1 = random_day(&mut rng, slots, roads, 50);
    let day2 = random_day(&mut rng, slots, roads, 50);

    let mut state = train_state(&ds, config.clone());
    state.train().expect("initial train");
    // Plain ingest (no retrain) drops the standing trainer — the next
    // retrain has nothing to advance and must cold-rebuild.
    state.ingest_day(day1.clone()).expect("plain ingest");
    assert!(!state.has_trainer(), "plain ingest drops the trainer");
    let outcome = state
        .ingest_and_train(day2.clone())
        .expect("ingest succeeds");
    assert_eq!(outcome.mode, RetrainMode::FullCold);
    assert!(
        state.has_trainer(),
        "the cold rebuild leaves a trainer standing"
    );
    assert_eq!(
        estimator_bytes(&outcome.estimator),
        scratch_reference(&ds, config, &[day1, day2]),
        "cold rebuild == from-scratch retrain on the same sequence"
    );
}

#[test]
fn shape_mismatch_is_rejected_without_mutating_state() {
    let ds = dataset();
    let slots = ds.clock.slots_per_day;
    let roads = ds.graph.num_roads();
    let config = forced_incremental(0);
    let mut rng = 0x0BAD_CAFE_0000_0001u64;
    let good_day = random_day(&mut rng, slots, roads, 50);

    let mut state = train_state(&ds, config.clone());
    state.train().expect("initial train");
    let days_before = state.days().len();
    let ingested_before = state.days_ingested();
    let wrong_shape = SpeedField::filled(slots + 1, roads, f64::NAN);
    match state.ingest_and_train(wrong_shape) {
        Err(RetrainError::Core(_)) => {}
        Err(other) => panic!("expected a typed Core error, got {other:?}"),
        Ok(_) => panic!("a wrong-shape day must not retrain"),
    }
    assert_eq!(state.days().len(), days_before, "history unchanged");
    assert_eq!(state.days_ingested(), ingested_before, "counters unchanged");

    // The failed retrain dropped the trainer; the next ingest must
    // cold-rebuild and still land on the scratch trajectory.
    assert!(!state.has_trainer());
    let outcome = state
        .ingest_and_train(good_day.clone())
        .expect("recovery ingest");
    assert_eq!(outcome.mode, RetrainMode::FullCold);
    assert_eq!(
        estimator_bytes(&outcome.estimator),
        scratch_reference(&ds, config, std::slice::from_ref(&good_day)),
        "recovery after a rejected day == never having sent it"
    );
}

#[test]
fn injected_panic_rolls_back_and_recovery_is_bit_identical() {
    let ds = dataset();
    let slots = ds.clock.slots_per_day;
    let roads = ds.graph.num_roads();
    let config = forced_incremental(0);
    let mut rng = 0xFEED_FACE_CAFE_BEEFu64;
    let day = random_day(&mut rng, slots, roads, 50);

    let mut state = train_state(&ds, config.clone());
    state.train().expect("initial train");
    let days_before = state.days().len();
    let ingested_before = state.days_ingested();

    failpoint::clear_all();
    failpoint::configure("retrain", Action::Panic, Some(1));
    let result = state.ingest_and_train(day.clone());
    failpoint::clear_all();
    match result {
        Err(RetrainError::Panicked(_)) => {}
        Err(other) => panic!("expected a panic rollback, got {other:?}"),
        Ok(_) => panic!("the armed failpoint must abort the retrain"),
    }
    assert_eq!(state.days().len(), days_before, "day history rolled back");
    assert_eq!(
        state.days_ingested(),
        ingested_before,
        "online counters rolled back"
    );
    assert!(!state.has_trainer(), "the trainer is dropped on a panic");

    let outcome = state
        .ingest_and_train(day.clone())
        .expect("recovery ingest");
    assert_eq!(outcome.mode, RetrainMode::FullCold);
    assert_eq!(
        estimator_bytes(&outcome.estimator),
        scratch_reference(&ds, config, std::slice::from_ref(&day)),
        "recovery after a panic == the panic never happened"
    );
}

#[test]
fn retrain_outcome_reports_patch_telemetry_on_the_incremental_arm() {
    let ds = dataset();
    let config = forced_incremental(0);
    let day = disruptive_day(ds.clock.slots_per_day, ds.graph.num_roads());

    let mut state = train_state(&ds, config);
    state.train().expect("initial train");
    let outcome = state.ingest_and_train(day).expect("ingest succeeds");
    assert_eq!(outcome.mode, RetrainMode::Incremental);
    let s = &outcome.stats;
    assert!(
        s.edges_updated + s.edges_added + s.edges_removed > 0,
        "the disruptive day must change correlation edges"
    );
    assert!(outcome.coverage > 0.0);
}
