//! Property tests for the online correlation model: whatever sequence
//! of days gets ingested (including sparse days full of unobserved
//! cells), every edge the model materialises satisfies the configured
//! thresholds — support of at least `min_co_observations` slot-level
//! co-observations, and a smoothed co-trend probability outside the
//! indeterminate band. Edges may come and go between materialisations
//! (promotion *and* demotion are legal); meeting the thresholds at the
//! moment of materialisation is the invariant.

use crowdspeed::correlation::CorrelationEdge;
use crowdspeed::drift::signal_between;
use crowdspeed::online::OnlineCorrelation;
use crowdspeed::prelude::*;
use proptest::prelude::*;
use roadnet::{RoadGraph, RoadGraphBuilder, RoadId, RoadMeta};
use trafficsim::{HistoricalData, SlotClock, SpeedField};

/// A line topology: road i adjacent to road i+1. Small enough for the
/// proptest to run hundreds of ingest sequences quickly, connected
/// enough that `max_hops > 1` yields non-trivial candidate pairs.
fn line_graph(roads: usize) -> RoadGraph {
    let mut builder = RoadGraphBuilder::new();
    let ids: Vec<RoadId> = (0..roads)
        .map(|_| builder.add_road(RoadMeta::default()))
        .collect();
    for pair in ids.windows(2) {
        builder.add_adjacency(pair[0], pair[1]).unwrap();
    }
    builder.build()
}

/// Materialises `cells` (flat, possibly-NaN) into a day of the given
/// shape, reading cells by index so one fixed-size strategy serves
/// every generated shape.
fn day_from_cells(slots: usize, roads: usize, cells: &[f64]) -> SpeedField {
    let mut day = SpeedField::filled(slots, roads, f64::NAN);
    for slot in 0..slots {
        for road in 0..roads {
            let v = cells[(slot * roads + road) % cells.len()];
            day.set_speed(slot, RoadId(road as u32), v);
        }
    }
    day
}

/// One cell: usually an observed speed, sometimes an unobserved hole.
fn cell() -> impl Strategy<Value = f64> {
    (0u32..5, 5.0f64..60.0).prop_map(|(hole, v)| if hole == 0 { f64::NAN } else { v })
}

/// Materialises a random `(include, cotrend)` mask over the `a < b`
/// pairs of an `n`-road set into a correlation graph. Iterating pairs
/// lexicographically keeps the edge list `(a, b)`-sorted, the order
/// [`signal_between`]'s merge-walk requires.
fn graph_from_mask(n: usize, mask: &[(bool, f64)]) -> CorrelationGraph {
    let mut edges = Vec::new();
    let mut k = 0usize;
    for a in 0..n as u32 {
        for b in a + 1..n as u32 {
            let (include, cotrend) = mask[k % mask.len()];
            k += 1;
            if include {
                edges.push(CorrelationEdge {
                    a: RoadId(a),
                    b: RoadId(b),
                    cotrend,
                    support: 10,
                });
            }
        }
    }
    CorrelationGraph::from_edges(n, edges).expect("valid edges")
}

fn mask_entry() -> impl Strategy<Value = (bool, f64)> {
    (any::<bool>(), 0.05f64..0.95)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn materialised_edges_always_meet_the_thresholds(
        roads in 3usize..6,
        slots in 2usize..5,
        max_hops in 1u32..3,
        min_cotrend in 0.55f64..0.95,
        min_co_observations in 1u32..12,
        laplace in 0.5f64..2.0,
        bootstrap_cells in prop::collection::vec(prop::collection::vec(cell(), 20), 1..4),
        ingest_cells in prop::collection::vec(prop::collection::vec(cell(), 20), 0..6),
    ) {
        let graph = line_graph(roads);
        let clock = SlotClock { slots_per_day: slots };
        let config = CorrelationConfig {
            max_hops,
            min_cotrend,
            min_co_observations,
            laplace,
        };
        let bootstrap_days: Vec<SpeedField> = bootstrap_cells
            .iter()
            .map(|cells| day_from_cells(slots, roads, cells))
            .collect();
        let history = HistoricalData::from_days(clock, bootstrap_days);
        let mut online = OnlineCorrelation::bootstrap(&graph, &history, &config);
        // The invariant must hold at every materialisation point, not
        // just the final one — edges demoted mid-sequence must actually
        // disappear from the graph.
        for cells in std::iter::once(None).chain(ingest_cells.iter().map(Some)) {
            if let Some(cells) = cells {
                online
                    .ingest_day(&day_from_cells(slots, roads, cells))
                    .unwrap();
            }
            let corr = online.correlation_graph();
            for edge in corr.edges() {
                prop_assert!(
                    edge.support >= min_co_observations,
                    "edge {:?}-{:?} materialised with support {} < {min_co_observations}",
                    edge.a, edge.b, edge.support
                );
                prop_assert!(
                    edge.cotrend >= min_cotrend || edge.cotrend <= 1.0 - min_cotrend,
                    "edge {:?}-{:?} materialised inside the indeterminate band: \
                     cotrend {} in ({}, {min_cotrend})",
                    edge.a, edge.b, edge.cotrend, 1.0 - min_cotrend
                );
                prop_assert!(
                    edge.cotrend > 0.0 && edge.cotrend < 1.0,
                    "Laplace smoothing keeps cotrend strictly inside (0, 1), got {}",
                    edge.cotrend
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Drift-signal identity: whatever accumulator state a random
    /// ingest sequence leaves behind, the signal of the materialised
    /// graph against itself is exactly zero — an adaptation-on daemon
    /// whose context just re-anchored can never immediately re-fire.
    #[test]
    fn drift_signal_is_zero_for_identical_accumulators(
        roads in 3usize..6,
        slots in 2usize..5,
        bootstrap_cells in prop::collection::vec(prop::collection::vec(cell(), 20), 1..4),
        ingest_cells in prop::collection::vec(prop::collection::vec(cell(), 20), 0..5),
    ) {
        let graph = line_graph(roads);
        let clock = SlotClock { slots_per_day: slots };
        let config = CorrelationConfig {
            min_cotrend: 0.6,
            min_co_observations: 2,
            ..CorrelationConfig::default()
        };
        let bootstrap_days: Vec<SpeedField> = bootstrap_cells
            .iter()
            .map(|cells| day_from_cells(slots, roads, cells))
            .collect();
        let history = HistoricalData::from_days(clock, bootstrap_days);
        let mut online = OnlineCorrelation::bootstrap(&graph, &history, &config);
        for cells in &ingest_cells {
            online.ingest_day(&day_from_cells(slots, roads, cells)).unwrap();
        }
        let live = online.correlation_graph();
        let s = crowdspeed::drift::signal(&online, &live);
        prop_assert_eq!(s.edge_churn, 0.0);
        prop_assert_eq!(s.trend_shift, 0.0);
        prop_assert_eq!(s.value(), 0.0);
    }

    /// The signal is a symmetric, `[0, 1]`-bounded distance on random
    /// graph pairs, bit-identical in both directions.
    #[test]
    fn drift_signal_is_symmetric_and_bounded(
        roads in 2usize..8,
        mask_a in prop::collection::vec(mask_entry(), 8),
        mask_b in prop::collection::vec(mask_entry(), 8),
    ) {
        let a = graph_from_mask(roads, &mask_a);
        let b = graph_from_mask(roads, &mask_b);
        let ab = signal_between(&a, &b);
        let ba = signal_between(&b, &a);
        prop_assert_eq!(ab.edge_churn.to_bits(), ba.edge_churn.to_bits());
        prop_assert_eq!(ab.trend_shift.to_bits(), ba.trend_shift.to_bits());
        prop_assert!((0.0..=1.0).contains(&ab.edge_churn));
        prop_assert!((0.0..=1.0).contains(&ab.trend_shift));
        prop_assert!((0.0..=1.0).contains(&ab.value()));
        // Zero exactly when the graphs agree edge-for-edge.
        let self_sig = signal_between(&a, &a);
        prop_assert_eq!(self_sig.value(), 0.0);
    }

    /// Removing ever more edges from a random graph can only grow the
    /// churn component: the signal is monotone under growing edge
    /// churn, so a drifting deployment can never read as *less*
    /// drifted by churning harder.
    #[test]
    fn drift_churn_is_monotone_under_growing_edge_removal(
        roads in 3usize..8,
        mask in prop::collection::vec((any::<bool>(), 0.55f64..0.95), 12),
    ) {
        // Force at least one edge so the removal sequence is non-trivial.
        let mut mask = mask;
        mask[0].0 = true;
        let full = graph_from_mask(roads, &mask);
        let edges: Vec<CorrelationEdge> = full.edges().to_vec();
        let mut prev_churn = 0.0f64;
        for removed in 0..=edges.len() {
            let kept: Vec<CorrelationEdge> =
                edges[..edges.len() - removed].to_vec();
            let partial = CorrelationGraph::from_edges(roads, kept).expect("valid edges");
            let churn = signal_between(&full, &partial).edge_churn;
            prop_assert!(
                churn >= prev_churn,
                "removing one more edge shrank the churn: {} < {}",
                churn,
                prev_churn
            );
            prop_assert!((0.0..=1.0).contains(&churn));
            prev_churn = churn;
        }
        // Removing everything is maximal churn (unless the graph was
        // empty to begin with).
        if !edges.is_empty() {
            prop_assert_eq!(prev_churn, 1.0);
        }
    }
}
