//! Property tests for the online correlation model: whatever sequence
//! of days gets ingested (including sparse days full of unobserved
//! cells), every edge the model materialises satisfies the configured
//! thresholds — support of at least `min_co_observations` slot-level
//! co-observations, and a smoothed co-trend probability outside the
//! indeterminate band. Edges may come and go between materialisations
//! (promotion *and* demotion are legal); meeting the thresholds at the
//! moment of materialisation is the invariant.

use crowdspeed::online::OnlineCorrelation;
use crowdspeed::prelude::*;
use proptest::prelude::*;
use roadnet::{RoadGraph, RoadGraphBuilder, RoadId, RoadMeta};
use trafficsim::{HistoricalData, SlotClock, SpeedField};

/// A line topology: road i adjacent to road i+1. Small enough for the
/// proptest to run hundreds of ingest sequences quickly, connected
/// enough that `max_hops > 1` yields non-trivial candidate pairs.
fn line_graph(roads: usize) -> RoadGraph {
    let mut builder = RoadGraphBuilder::new();
    let ids: Vec<RoadId> = (0..roads)
        .map(|_| builder.add_road(RoadMeta::default()))
        .collect();
    for pair in ids.windows(2) {
        builder.add_adjacency(pair[0], pair[1]).unwrap();
    }
    builder.build()
}

/// Materialises `cells` (flat, possibly-NaN) into a day of the given
/// shape, reading cells by index so one fixed-size strategy serves
/// every generated shape.
fn day_from_cells(slots: usize, roads: usize, cells: &[f64]) -> SpeedField {
    let mut day = SpeedField::filled(slots, roads, f64::NAN);
    for slot in 0..slots {
        for road in 0..roads {
            let v = cells[(slot * roads + road) % cells.len()];
            day.set_speed(slot, RoadId(road as u32), v);
        }
    }
    day
}

/// One cell: usually an observed speed, sometimes an unobserved hole.
fn cell() -> impl Strategy<Value = f64> {
    (0u32..5, 5.0f64..60.0).prop_map(|(hole, v)| if hole == 0 { f64::NAN } else { v })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn materialised_edges_always_meet_the_thresholds(
        roads in 3usize..6,
        slots in 2usize..5,
        max_hops in 1u32..3,
        min_cotrend in 0.55f64..0.95,
        min_co_observations in 1u32..12,
        laplace in 0.5f64..2.0,
        bootstrap_cells in prop::collection::vec(prop::collection::vec(cell(), 20), 1..4),
        ingest_cells in prop::collection::vec(prop::collection::vec(cell(), 20), 0..6),
    ) {
        let graph = line_graph(roads);
        let clock = SlotClock { slots_per_day: slots };
        let config = CorrelationConfig {
            max_hops,
            min_cotrend,
            min_co_observations,
            laplace,
        };
        let bootstrap_days: Vec<SpeedField> = bootstrap_cells
            .iter()
            .map(|cells| day_from_cells(slots, roads, cells))
            .collect();
        let history = HistoricalData::from_days(clock, bootstrap_days);
        let mut online = OnlineCorrelation::bootstrap(&graph, &history, &config);
        // The invariant must hold at every materialisation point, not
        // just the final one — edges demoted mid-sequence must actually
        // disappear from the graph.
        for cells in std::iter::once(None).chain(ingest_cells.iter().map(Some)) {
            if let Some(cells) = cells {
                online
                    .ingest_day(&day_from_cells(slots, roads, cells))
                    .unwrap();
            }
            let corr = online.correlation_graph();
            for edge in corr.edges() {
                prop_assert!(
                    edge.support >= min_co_observations,
                    "edge {:?}-{:?} materialised with support {} < {min_co_observations}",
                    edge.a, edge.b, edge.support
                );
                prop_assert!(
                    edge.cotrend >= min_cotrend || edge.cotrend <= 1.0 - min_cotrend,
                    "edge {:?}-{:?} materialised inside the indeterminate band: \
                     cotrend {} in ({}, {min_cotrend})",
                    edge.a, edge.b, edge.cotrend, 1.0 - min_cotrend
                );
                prop_assert!(
                    edge.cotrend > 0.0 && edge.cotrend < 1.0,
                    "Laplace smoothing keeps cotrend strictly inside (0, 1), got {}",
                    edge.cotrend
                );
            }
        }
    }
}
