//! Parallel-training determinism tests.
//!
//! The training pipeline parallelizes its embarrassingly parallel
//! kernels (per-pair co-trend counting, per-source influence search,
//! the CELF initial gain pass, per-slot MRF compilation, and the HLM's
//! per-cell/per-road passes) with static index-ordered chunking over
//! disjoint output slots (`crowdspeed::parallel`). That layout is a
//! *determinism contract*: every floating-point reduction keeps its
//! serial summation order, so a model trained on 8 threads is
//! bit-identical to one trained on 1. These tests pin that contract at
//! every layer for `threads ∈ {1, 2, 8}`.

use crowdspeed::correlation::CorrelationConfig;
use crowdspeed::inference::trend_model::TrendEngine;
use crowdspeed::prelude::*;
use crowdspeed::seed::lazy_greedy::lazy_greedy_threads;
use roadnet::RoadId;
use trafficsim::dataset::{metro_small, Dataset, DatasetParams};

const THREADS: [usize; 2] = [2, 8];

fn dataset() -> Dataset {
    metro_small(&DatasetParams {
        training_days: 8,
        test_days: 1,
        ..DatasetParams::default()
    })
}

fn corr_config() -> CorrelationConfig {
    CorrelationConfig {
        min_cotrend: 0.6,
        min_co_observations: 6,
        ..CorrelationConfig::default()
    }
}

fn seeds() -> Vec<RoadId> {
    (0..12u32).map(|i| RoadId(i * 8)).collect()
}

#[test]
fn correlation_build_is_bit_identical_across_thread_counts() {
    let ds = dataset();
    let stats = HistoryStats::compute(&ds.history);
    let serial = CorrelationGraph::build(&ds.graph, &ds.history, &stats, &corr_config());
    for threads in THREADS {
        let par = CorrelationGraph::build_threaded(
            &ds.graph,
            &ds.history,
            &stats,
            &corr_config(),
            threads,
        );
        assert_eq!(par.num_edges(), serial.num_edges(), "threads={threads}");
        for (a, b) in par.edges().iter().zip(serial.edges()) {
            assert_eq!((a.a, a.b, a.support), (b.a, b.b, b.support));
            assert_eq!(
                a.cotrend.to_bits(),
                b.cotrend.to_bits(),
                "threads={threads}: edge ({}, {})",
                a.a,
                a.b
            );
        }
    }
}

#[test]
fn influence_build_is_bit_identical_across_thread_counts() {
    let ds = dataset();
    let stats = HistoryStats::compute(&ds.history);
    let corr = CorrelationGraph::build(&ds.graph, &ds.history, &stats, &corr_config());
    let serial = InfluenceModel::build(&corr, &InfluenceConfig::default());
    for threads in THREADS {
        let par = InfluenceModel::build_threaded(&corr, &InfluenceConfig::default(), threads);
        for s in 0..corr.num_roads() as u32 {
            let a = par.reach(RoadId(s));
            let b = serial.reach(RoadId(s));
            assert_eq!(a.roads, b.roads, "threads={threads}: source {s}");
            for ((r, qa), (_, qb)) in a.iter().zip(b.iter()) {
                assert_eq!(
                    qa.to_bits(),
                    qb.to_bits(),
                    "threads={threads}: q({s} -> {r})"
                );
            }
        }
    }
}

#[test]
fn lazy_greedy_selection_is_bit_identical_across_thread_counts() {
    let ds = dataset();
    let stats = HistoryStats::compute(&ds.history);
    let corr = CorrelationGraph::build(&ds.graph, &ds.history, &stats, &corr_config());
    let influence = InfluenceModel::build(&corr, &InfluenceConfig::default());
    let k = 16;
    let serial = lazy_greedy(&influence, k);
    for threads in THREADS {
        let par = lazy_greedy_threads(&influence, k, threads);
        assert_eq!(par.seeds, serial.seeds, "threads={threads}");
        assert_eq!(par.evaluations, serial.evaluations, "threads={threads}");
        assert_eq!(
            par.objective.to_bits(),
            serial.objective.to_bits(),
            "threads={threads}"
        );
        for (round, (a, b)) in par.gains.iter().zip(&serial.gains).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}, round {round}");
        }
    }
}

/// The headline contract: the *entire* trained estimator — trend MRFs,
/// HLM coefficients, coverage — is bit-identical for every thread
/// count, verified through the serving outputs it produces.
#[test]
fn trained_estimator_is_bit_identical_across_thread_counts() {
    let ds = dataset();
    let stats = HistoryStats::compute(&ds.history);
    let corr = CorrelationGraph::build(&ds.graph, &ds.history, &stats, &corr_config());
    let seeds = seeds();
    let train = |train_threads: usize| {
        TrafficEstimator::train(
            &ds.graph,
            &ds.history,
            &stats,
            &corr,
            &seeds,
            &EstimatorConfig {
                engine: TrendEngine::default(),
                train_threads,
                ..EstimatorConfig::default()
            },
        )
        .unwrap()
    };
    let reference = train(1);
    let truth = &ds.test_days[0];
    let slots = [6usize, 8, 12, 18];
    let ref_estimates: Vec<_> = slots
        .iter()
        .map(|&slot| {
            let obs: Vec<(RoadId, f64)> =
                seeds.iter().map(|&s| (s, truth.speed(slot, s))).collect();
            reference.estimate(slot, &obs)
        })
        .collect();
    for threads in THREADS {
        let est = train(threads);
        assert_eq!(est.seeds(), reference.seeds(), "threads={threads}");
        for (c, r) in est.coverage().iter().zip(reference.coverage()) {
            assert_eq!(c.to_bits(), r.to_bits(), "threads={threads}: coverage");
        }
        for (&slot, want) in slots.iter().zip(&ref_estimates) {
            let obs: Vec<(RoadId, f64)> =
                seeds.iter().map(|&s| (s, truth.speed(slot, s))).collect();
            let got = est.estimate(slot, &obs);
            for (r, (a, b)) in got.speeds.iter().zip(&want.speeds).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "threads={threads}, slot {slot}, road {r}: speed {a} vs {b}"
                );
            }
            for (r, (a, b)) in got.p_up.iter().zip(&want.p_up).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "threads={threads}, slot {slot}, road {r}: p_up {a} vs {b}"
                );
            }
            assert_eq!(got.trends, want.trends, "threads={threads}, slot {slot}");
        }
    }
}

/// Snapshot encoding of a trained HLM — the byte string two trainers
/// must agree on to count as bit-identical.
fn hlm_bytes(model: &crowdspeed::inference::hlm::HlmModel) -> Vec<u8> {
    let mut buf = bytes::BytesMut::new();
    model.encode_snapshot_into(&mut buf);
    buf.to_vec()
}

/// The flattened fold keeps per-worker scratch (propagation buffers,
/// trend workspace, row-staging vectors) alive across cells and across
/// successive `fold` calls. Reused scratch must be invisible: a trainer
/// folding the history in two calls (scratch reused within and across
/// folds) must match a fresh trainer folding everything in one call —
/// at every thread-count pairing.
#[test]
fn fold_scratch_reuse_is_bit_identical_to_fresh_fold() {
    use crowdspeed::inference::hlm::{HlmConfig, HlmTrainer};
    use crowdspeed::inference::trend_model::{TrendModel, TrendModelConfig};
    use std::borrow::Cow;

    let ds = dataset();
    let stats = HistoryStats::compute(&ds.history);
    let corr = CorrelationGraph::build(&ds.graph, &ds.history, &stats, &corr_config());
    let seeds = seeds();
    let config = HlmConfig::default();
    let trend = TrendModel::new(corr.clone(), &stats, TrendModelConfig::default());
    let engine = TrendEngine::default();

    let mut fresh = HlmTrainer::new(
        &ds.graph,
        &corr,
        &seeds,
        &config,
        Some((Cow::Borrowed(&trend), engine.clone())),
        1,
    )
    .unwrap();
    fresh.fold(&ds.history, &stats, 1).unwrap();
    let want = hlm_bytes(&fresh.fit(1).unwrap());

    for threads in [1, 2, 8] {
        let mut staged = HlmTrainer::new(
            &ds.graph,
            &corr,
            &seeds,
            &config,
            Some((Cow::Borrowed(&trend), engine.clone())),
            threads,
        )
        .unwrap();
        staged
            .fold(&ds.history.truncated(4), &stats, threads)
            .unwrap();
        staged.fold(&ds.history, &stats, threads).unwrap();
        let got = hlm_bytes(&staged.fit(threads).unwrap());
        assert_eq!(
            got, want,
            "threads={threads}: two-stage fold with reused scratch diverged"
        );
    }
}

/// `FoldStats` must be thread-count invariant: the flattened layout may
/// not silently drop, duplicate or reorder cells or rows when the cell
/// chunks land on different workers.
#[test]
fn fold_stats_are_invariant_across_thread_counts() {
    use crowdspeed::inference::hlm::{HlmConfig, HlmTrainer};
    use crowdspeed::inference::trend_model::{TrendModel, TrendModelConfig};
    use std::borrow::Cow;

    let ds = dataset();
    let stats = HistoryStats::compute(&ds.history);
    let corr = CorrelationGraph::build(&ds.graph, &ds.history, &stats, &corr_config());
    let seeds = seeds();
    let config = HlmConfig::default();
    let trend = TrendModel::new(corr.clone(), &stats, TrendModelConfig::default());
    let engine = TrendEngine::default();

    let fold_at = |threads: usize| {
        let mut trainer = HlmTrainer::new(
            &ds.graph,
            &corr,
            &seeds,
            &config,
            Some((Cow::Borrowed(&trend), engine.clone())),
            threads,
        )
        .unwrap();
        trainer.fold(&ds.history, &stats, threads).unwrap()
    };
    let serial = fold_at(1);
    assert!(serial.cells_sampled > 0 && serial.rows_folded > 0);
    for threads in THREADS {
        let par = fold_at(threads);
        assert_eq!(
            par.cells_sampled, serial.cells_sampled,
            "threads={threads}: cells_sampled diverged"
        );
        assert_eq!(
            par.rows_folded, serial.rows_folded,
            "threads={threads}: rows_folded diverged"
        );
        assert_eq!(par, serial, "threads={threads}: FoldStats diverged");
    }
}

/// `train_threads = 0` (auto) must resolve to some positive worker
/// count and still produce the bit-identical model — the knob is safe
/// to leave on auto everywhere.
#[test]
fn auto_thread_count_matches_serial() {
    let ds = dataset();
    let stats = HistoryStats::compute(&ds.history);
    let corr = CorrelationGraph::build(&ds.graph, &ds.history, &stats, &corr_config());
    let seeds = seeds();
    let train = |train_threads: usize| {
        TrafficEstimator::train(
            &ds.graph,
            &ds.history,
            &stats,
            &corr,
            &seeds,
            &EstimatorConfig {
                train_threads,
                ..EstimatorConfig::default()
            },
        )
        .unwrap()
    };
    assert!(crowdspeed::parallel::resolve_threads(0) >= 1);
    let auto = train(0);
    let serial = train(1);
    let truth = &ds.test_days[0];
    let obs: Vec<(RoadId, f64)> = seeds.iter().map(|&s| (s, truth.speed(8, s))).collect();
    let a = auto.estimate(8, &obs);
    let b = serial.estimate(8, &obs);
    assert_eq!(a.speeds, b.speeds);
    assert_eq!(a.p_up, b.p_up);
}
