//! Minimal, API-compatible subset of the `bytes` crate sufficient for
//! this workspace: `Bytes`, `BytesMut`, and the `Buf` / `BufMut`
//! traits with little-endian integer and float accessors.
//!
//! Semantics match the upstream crate for every operation used here:
//! reads consume from the front, writes append at the back, and
//! out-of-bounds reads panic (callers bounds-check with `remaining`).

use std::ops::{Deref, DerefMut};

/// Read access to a contiguous, consumable byte buffer.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Consumes `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64` (bit-exact).
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Copies `dst.len()` bytes out of the buffer.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Copies the next `len` bytes into an owned [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write access to an append-only byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64` (bit-exact).
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// A growable byte buffer; writes append, reads consume from the front.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    start: usize,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
            start: 0,
        }
    }

    /// Unconsumed length.
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// Whether no unconsumed bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reserves space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Appends raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Removes all contents.
    pub fn clear(&mut self) {
        self.data.clear();
        self.start = 0;
    }

    /// Splits off and returns the first `at` unconsumed bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len());
        let head = self.data[self.start..self.start + at].to_vec();
        self.start += at;
        BytesMut {
            data: head,
            start: 0,
        }
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(mut self) -> Bytes {
        if self.start > 0 {
            self.data.drain(..self.start);
        }
        Bytes {
            data: std::sync::Arc::new(self.data),
            start: 0,
            end_offset: 0,
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..]
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data[self.start..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len());
        self.start += cnt;
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> BytesMut {
        BytesMut {
            data: src.to_vec(),
            start: 0,
        }
    }
}

/// A cheaply cloneable immutable byte buffer; reads consume a view.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: std::sync::Arc<Vec<u8>>,
    start: usize,
    /// Bytes trimmed off the back (so `slice` can narrow both ends).
    end_offset: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes {
            data: std::sync::Arc::new(Vec::new()),
            start: 0,
            end_offset: 0,
        }
    }

    /// Copies a slice into an owned buffer.
    pub fn copy_from_slice(src: &[u8]) -> Bytes {
        Bytes {
            data: std::sync::Arc::new(src.to_vec()),
            start: 0,
            end_offset: 0,
        }
    }

    /// Unconsumed length.
    pub fn len(&self) -> usize {
        self.data.len() - self.end_offset - self.start
    }

    /// Whether no unconsumed bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view over `range` of the unconsumed bytes.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: std::sync::Arc::clone(&self.data),
            start: self.start + range.start,
            end_offset: self.data.len() - (self.start + range.end),
        }
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.data.len() - self.end_offset]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        **self == **other
    }
}

impl Eq for Bytes {}

impl PartialEq<BytesMut> for Bytes {
    fn eq(&self, other: &BytesMut) -> bool {
        **self == **other
    }
}

impl PartialEq<Bytes> for BytesMut {
    fn eq(&self, other: &Bytes) -> bool {
        **self == **other
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes {
            data: std::sync::Arc::new(data),
            start: 0,
            end_offset: 0,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(src: &[u8]) -> Bytes {
        Bytes::copy_from_slice(src)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len());
        self.start += cnt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_ints_and_floats() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u16_le(0xBEEF);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        buf.put_f64_le(f64::NAN);
        let mut b = buf.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16_le(), 0xBEEF);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(b.get_f64_le().to_bits(), f64::NAN.to_bits());
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn slice_buf_consumes() {
        let data = [1u8, 2, 3, 4];
        let mut s: &[u8] = &data;
        assert_eq!(s.get_u8(), 1);
        assert_eq!(s.remaining(), 3);
        let mut out = [0u8; 2];
        s.copy_to_slice(&mut out);
        assert_eq!(out, [2, 3]);
    }

    #[test]
    fn bytes_slice_views() {
        let b = Bytes::copy_from_slice(&[0, 1, 2, 3, 4, 5]);
        let mid = b.slice(2..5);
        assert_eq!(&*mid, &[2, 3, 4]);
        let nested = mid.slice(1..2);
        assert_eq!(&*nested, &[3]);
    }
}
