//! Minimal `criterion`-compatible micro-benchmark harness. Keeps the
//! upstream API shape used by `crates/bench/benches/kernels.rs`
//! (`bench_function`, `benchmark_group`/`bench_with_input`,
//! `Bencher::iter`, the `criterion_group!`/`criterion_main!` macros)
//! while replacing the statistical machinery with a single calibrated
//! timing pass: warm up, pick an iteration count targeting ~100 ms of
//! wall time, and report mean nanoseconds per iteration.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measures one benchmark body via [`Bencher::iter`].
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by `iter`.
    mean_ns: f64,
}

impl Bencher {
    /// Times `f`, storing the mean per-iteration cost. The closure's
    /// return value is passed through `black_box` so the computation
    /// is not optimized away.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up and calibration: run until ~10 ms has elapsed.
        let mut calib_iters = 0u64;
        let start = Instant::now();
        while start.elapsed() < Duration::from_millis(10) {
            std::hint::black_box(f());
            calib_iters += 1;
        }
        let per_iter = start.elapsed().as_nanos() as f64 / calib_iters as f64;
        // Measurement pass sized for roughly 100 ms of wall time.
        let iters = ((100e6 / per_iter.max(1.0)) as u64).clamp(1, 1_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, mut body: F) {
    let mut b = Bencher { mean_ns: 0.0 };
    body(&mut b);
    let (value, unit) = if b.mean_ns >= 1e6 {
        (b.mean_ns / 1e6, "ms")
    } else if b.mean_ns >= 1e3 {
        (b.mean_ns / 1e3, "us")
    } else {
        (b.mean_ns, "ns")
    };
    println!("{id:<40} {value:>10.3} {unit}/iter");
}

/// Entry point handed to each registered benchmark function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, body: F) -> &mut Self {
        run_benchmark(id, body);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
        }
    }
}

/// A labelled collection of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id.label), |b| body(b, input));
        self
    }

    /// Finishes the group (no-op; parity with upstream).
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter value.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `new("greedy", 8)` renders as `greedy/8`.
    pub fn new<P: Display>(function: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

/// Defines a group runner invoking each benchmark function in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Defines `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_a_body() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_runs_parameterized_benchmarks() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        for k in [1u32, 2] {
            g.bench_with_input(BenchmarkId::new("id", k), &k, |b, &k| b.iter(|| k * 2));
        }
        g.finish();
    }
}
