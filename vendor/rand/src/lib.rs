//! Minimal `rand`-compatible generator for this workspace. Everything
//! is seeded explicitly (`StdRng::seed_from_u64`) — there is no OS
//! entropy path, which keeps all synthetic datasets reproducible.
//!
//! The core generator is xoshiro256** with a SplitMix64 seed expander;
//! sampling helpers (`gen`, `gen_range`, `gen_bool`, slice shuffle and
//! choose) follow the upstream call signatures used in this repo.

use std::ops::{Range, RangeInclusive};

/// Low-level source of uniform 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from their "standard" distribution
/// (`[0, 1)` for floats, the full value range for integers).
pub trait StandardSample: Sized {
    /// Draws one sample from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 significant bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range; panics if empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

// Uniform integer in [0, span) via widening-multiply (Lemire) with
// rejection, so every span is sampled exactly uniformly and the
// output stream is fully determined by the seed.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        let m = (v as u128) * (span as u128);
        if (m as u64) <= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample(rng);
        let v = self.start + (self.end - self.start) * u;
        // Guard against rounding up to the excluded endpoint.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + (hi - lo) * f64::sample(rng)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a standard-distribution sample (`[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range`; panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose whole output stream is a pure function
    /// of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator
    /// (xoshiro256**, seeded via SplitMix64 expansion).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Random-order helpers for slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Common imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn float_samples_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5usize..=9);
            assert!((5..=9).contains(&w));
            let f = rng.gen_range(0.65..0.95);
            assert!((0.65..0.95).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((24_000..26_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
