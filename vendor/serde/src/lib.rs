//! Marker-only serde surface. The workspace serializes exclusively via
//! its own binary codec; `Serialize`/`Deserialize` appear in derives as
//! forward-compatibility markers, never called through, so the traits
//! carry no methods and the derive macros expand to nothing.

/// Marker: the type opts into serialization support.
pub trait Serialize {}

/// Marker: the type opts into deserialization support.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
