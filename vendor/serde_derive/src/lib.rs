//! No-op `#[derive(Serialize, Deserialize)]` shims. The workspace uses
//! its own hand-rolled binary codec (`crowdspeed::codec`); the serde
//! derives on model types exist only as markers, so the macros expand
//! to nothing rather than generating trait impls.

use proc_macro::TokenStream;

/// Accepts and discards `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
