//! Minimal `crossbeam`-compatible scoped threads for this workspace,
//! layered over `std::thread::scope` (stable since 1.63).
//!
//! Matches the upstream contract used here: `thread::scope(|s| ...)`
//! joins every spawned thread before returning, and returns `Err` with
//! the first panic payload if any spawned thread panicked (instead of
//! propagating the panic), so callers can `.expect(...)`.

pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::{Arc, Mutex};

    type PanicSlot = Arc<Mutex<Option<Box<dyn Any + Send + 'static>>>>;

    /// Handle used inside [`scope`] to spawn worker threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        panic: PanicSlot,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped worker. A panic in the worker is captured
        /// and surfaced through the enclosing [`scope`] result rather
        /// than aborting the join.
        pub fn spawn<F, T>(&self, f: F)
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let nested = Scope {
                inner: self.inner,
                panic: Arc::clone(&self.panic),
            };
            let slot = Arc::clone(&self.panic);
            self.inner.spawn(move || {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(&nested))) {
                    let mut guard = slot.lock().unwrap_or_else(|p| p.into_inner());
                    guard.get_or_insert(payload);
                }
            });
        }
    }

    /// Runs `f` with a [`Scope`], joining all spawned threads before
    /// returning. Returns the closure's value, or `Err` with the first
    /// worker panic payload.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        let panic: PanicSlot = Arc::new(Mutex::new(None));
        let out = {
            let panic = Arc::clone(&panic);
            std::thread::scope(move |s| {
                let scope = Scope { inner: s, panic };
                f(&scope)
            })
        };
        let payload = panic
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .take();
        match payload {
            Some(p) => Err(p),
            None => Ok(out),
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn scope_joins_all_workers() {
        let total = AtomicU32::new(0);
        super::thread::scope(|s| {
            for _ in 0..4 {
                let total = &total;
                s.spawn(move |_| {
                    total.fetch_add(1, Ordering::Relaxed);
                });
            }
        })
        .expect("no panics");
        assert_eq!(total.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn nested_spawn_through_scope_handle() {
        let total = AtomicU32::new(0);
        super::thread::scope(|s| {
            let total = &total;
            s.spawn(move |s2| {
                s2.spawn(move |_| {
                    total.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .expect("no panics");
        assert_eq!(total.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn worker_panic_surfaces_as_err() {
        let res = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(res.is_err());
    }
}
