//! Minimal `parking_lot`-compatible locks for this workspace, built on
//! `std::sync`. The one semantic that matters here is preserved:
//! **no lock poisoning** — a panic while holding a guard leaves the
//! lock usable, matching upstream `parking_lot`.

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock that does not poison.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Never
    /// poisons: a previous panic while locked is ignored.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock that does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wraps `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_survives_a_panic_while_held() {
        let m = std::sync::Arc::new(Mutex::new(1u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1, "lock must stay usable after a panic");
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
