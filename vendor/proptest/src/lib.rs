//! Minimal `proptest`-compatible property-testing harness.
//!
//! Keeps the upstream surface used by this workspace — the `proptest!`
//! macro, `prop_assert*`/`prop_assume!`, `Strategy` with
//! `prop_map`/`prop_flat_map`/`boxed`, `Just`, `any::<T>()`, range and
//! tuple strategies, `prop::collection::vec`, `prop::num::f64::ANY`,
//! and `ProptestConfig::with_cases` — while replacing the engine with
//! a deterministic generator: each case's inputs are a pure function
//! of the test's module path, name, and attempt number, so failures
//! reproduce exactly across runs and thread counts. There is no
//! shrinking; the failure report carries the attempt number instead.
//!
//! Case bodies run in a closure returning `Result<(), String>`:
//! `prop_assert*` return `Err` with the formatted message,
//! `prop_assume!` returns `Err` with a reserved rejection sentinel,
//! and bodies may use `?` on any `Result<_, String>` (as the protocol
//! round-trip tests do).

pub mod test_runner {
    /// Error type threaded out of a single proptest case body.
    pub type TestCaseError = String;

    /// Reserved prefix marking a `prop_assume!` rejection (never a
    /// plausible user assertion message — it starts with a NUL).
    pub const REJECT_SENTINEL: &str = "\u{0}proptest-reject";

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful (non-rejected) cases to run.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running exactly `cases` successful cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// FNV-1a hash, used to derive a per-test seed from its name.
    pub fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Deterministic generator (xoshiro256**) feeding all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// Generator for one attempt of one named test.
        pub fn for_attempt(name_seed: u64, attempt: u64) -> TestRng {
            let mut sm = name_seed ^ attempt.wrapping_mul(0xA076_1D64_78BD_642F);
            TestRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        /// The next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }

        /// Uniform integer in `[0, span)` via widening multiply with
        /// rejection (exactly uniform, fully seed-determined).
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            let zone = u64::MAX - (u64::MAX - span + 1) % span;
            loop {
                let v = self.next_u64();
                let m = (v as u128) * (span as u128);
                if (m as u64) <= zone {
                    return (m >> 64) as u64;
                }
            }
        }

        /// Uniform `f64` in `[0, 1)` with 53 significant bits.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Derives a dependent strategy from each generated value.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { source: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Always yields a clone of one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            let mid = self.source.generate(rng);
            (self.f)(mid).generate(rng)
        }
    }

    /// A type-erased strategy; see [`Strategy::boxed`].
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy range is empty");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "strategy range is empty");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "strategy range is empty");
            let v = self.start + (self.end - self.start) * rng.unit_f64();
            if v < self.end {
                v
            } else {
                self.start
            }
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "strategy range is empty");
            lo + (hi - lo) * rng.unit_f64()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    // A vector of strategies yields a vector of one draw from each, in
    // order (used for per-index dependent strategies, e.g. tree
    // parents where `parent[i] < i`).
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }

    /// Types with a "standard" whole-domain strategy via [`any`].
    pub trait ArbitraryValue: Sized {
        /// Draws one value covering the type's domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() >> 63 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i32, i64);

    impl ArbitraryValue for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Any finite f64: redraw the (rare) inf/NaN exponent
            // patterns. Finite-only keeps `prop_assert_eq!` usable on
            // generated values while still exercising full magnitude
            // range, subnormals, and signed zero.
            loop {
                let v = f64::from_bits(rng.next_u64());
                if v.is_finite() {
                    return v;
                }
            }
        }
    }

    /// Whole-domain strategy for `T`; see [`any`].
    pub struct StdAny<T>(PhantomData<T>);

    impl<T: ArbitraryValue> Strategy for StdAny<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The standard strategy for `T` (`any::<bool>()`, `any::<u64>()`, …).
    pub fn any<T: ArbitraryValue>() -> StdAny<T> {
        StdAny(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length bound accepted by [`vec`]: a fixed length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// Strategy yielding vectors of draws from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, len)` / `vec(element, lo..hi)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod num {
    /// Float strategies mirroring `proptest::num`.
    pub mod f64 {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Every `f64` bit pattern, including NaN, infinities,
        /// subnormals, and signed zero (for bit-exact codec tests).
        #[derive(Debug, Clone, Copy)]
        pub struct AnyF64;

        /// See [`AnyF64`].
        pub const ANY: AnyF64 = AnyF64;

        impl Strategy for AnyF64 {
            type Value = f64;

            fn generate(&self, rng: &mut TestRng) -> f64 {
                f64::from_bits(rng.next_u64())
            }
        }
    }
}

/// Fails the current proptest case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Fails the current proptest case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n  {}",
            stringify!($lhs),
            stringify!($rhs),
            lhs,
            rhs,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Fails the current proptest case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs
        );
    }};
}

/// Discards the current case (drawing a fresh one) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(::std::string::String::from(
                $crate::test_runner::REJECT_SENTINEL,
            ));
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...)` body
/// runs `config.cases` times over deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let name_seed = $crate::test_runner::fnv1a(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut passed = 0u32;
            let mut rejected = 0u64;
            let mut attempt = 0u64;
            while passed < config.cases {
                let mut rng = $crate::test_runner::TestRng::for_attempt(name_seed, attempt);
                let outcome = (|| -> ::std::result::Result<(), ::std::string::String> {
                    $(
                        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err(msg)
                        if msg.starts_with($crate::test_runner::REJECT_SENTINEL) =>
                    {
                        rejected += 1;
                        assert!(
                            rejected <= 65_536,
                            "proptest {}: too many rejected cases ({rejected})",
                            stringify!($name),
                        );
                    }
                    ::std::result::Result::Err(msg) => {
                        panic!(
                            "proptest {} failed at attempt {attempt}:\n{msg}",
                            stringify!($name),
                        );
                    }
                }
                attempt += 1;
            }
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Mirror of the upstream `prop` module path used in preludes
    /// (`prop::collection::vec`, `prop::num::f64::ANY`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::num;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in 0.25f64..0.75, n in 1usize..=9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
            prop_assert!((1..=9).contains(&n));
        }

        #[test]
        fn vec_and_tuple_strategies((n, pairs) in (2usize..10).prop_flat_map(|n| {
            (Just(n), prop::collection::vec((0..n as u32, 0..n as u32), 0..8))
        })) {
            prop_assert!(n >= 2);
            for (a, b) in pairs {
                prop_assert!((a as usize) < n && (b as usize) < n);
            }
        }

        #[test]
        fn assume_discards(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn boxed_strategies_in_vec(parents in (2usize..6).prop_flat_map(|n| {
            (1..n).map(|i| (0..i).boxed()).collect::<Vec<BoxedStrategy<usize>>>()
        })) {
            for (i, &p) in parents.iter().enumerate() {
                prop_assert!(p <= i);
            }
        }

        #[test]
        fn question_mark_on_string_errors(x in 0u32..4) {
            let parsed: u32 = x.to_string().parse().map_err(|_| "parse".to_string())?;
            prop_assert_eq!(parsed, x);
        }
    }

    #[test]
    fn generation_is_deterministic_per_attempt() {
        use crate::strategy::Strategy;
        let s = 0u64..1_000_000;
        let mut a = crate::test_runner::TestRng::for_attempt(7, 3);
        let mut b = crate::test_runner::TestRng::for_attempt(7, 3);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
        let mut c = crate::test_runner::TestRng::for_attempt(7, 4);
        let _ = s.generate(&mut c);
    }

    #[test]
    fn full_bit_float_strategy_hits_special_values_eventually() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::TestRng::for_attempt(1, 0);
        let mut any_nonfinite = false;
        for _ in 0..100_000 {
            let v = crate::num::f64::ANY.generate(&mut rng);
            if !v.is_finite() {
                any_nonfinite = true;
            }
        }
        assert!(any_nonfinite, "full-bit f64 should produce inf/NaN");
    }
}
