//! Ridge and hierarchically-shrunk least squares.
//!
//! These are the fitting primitives behind the paper's *hierarchical
//! linear model* (step 2 of speed inference): per-road coefficient
//! vectors are ridge-shrunk towards a group-level (road-class) prior, so
//! roads with thin history borrow strength from their class.

use crate::{Cholesky, LinalgError, Matrix, Result};

/// Ordinary ridge regression: minimises `||X beta - y||^2 + lambda ||beta||^2`.
///
/// Solves the SPD normal equations `(XᵀX + lambda I) beta = Xᵀ y` via
/// Cholesky. `lambda` must be `>= 0`; `lambda = 0` requires `X` to have
/// full column rank or the factorisation fails with
/// [`LinalgError::NotPositiveDefinite`].
pub fn ridge_fit(x: &Matrix, y: &[f64], lambda: f64) -> Result<Vec<f64>> {
    shrunk_fit(x, y, lambda, None)
}

/// Ridge regression shrunk towards a prior coefficient vector:
/// minimises `||X beta - y||^2 + lambda ||beta - prior||^2`.
///
/// With `prior = None` this reduces to plain ridge (prior at the
/// origin). This is the level-1 fit of the hierarchical linear model,
/// where `prior` is the group-level coefficient vector.
pub fn shrunk_fit(x: &Matrix, y: &[f64], lambda: f64, prior: Option<&[f64]>) -> Result<Vec<f64>> {
    if x.rows() != y.len() {
        return Err(LinalgError::DimensionMismatch {
            op: "ridge_fit",
            lhs: (x.rows(), x.cols()),
            rhs: (y.len(), 1),
        });
    }
    if x.rows() == 0 || x.cols() == 0 {
        return Err(LinalgError::Empty);
    }
    if let Some(p) = prior {
        if p.len() != x.cols() {
            return Err(LinalgError::DimensionMismatch {
                op: "ridge_fit prior",
                lhs: (x.rows(), x.cols()),
                rhs: (p.len(), 1),
            });
        }
    }
    let mut gram = x.gram();
    gram.add_diag(lambda);
    let mut rhs = x.tr_matvec(y)?;
    if let Some(p) = prior {
        for (r, pi) in rhs.iter_mut().zip(p) {
            *r += lambda * pi;
        }
    }
    let ch = Cholesky::factor(&gram)?;
    ch.solve(&rhs)
}

/// A fitted two-level hierarchical regression.
///
/// Level 2 pools all groups' data into a single ridge fit (`global`);
/// each group's level-1 fit is shrunk towards the global coefficients
/// with strength `lambda_group`. Groups map to road classes in the
/// traffic model.
#[derive(Debug, Clone)]
pub struct HierarchicalFit {
    /// Pooled (level-2) coefficients.
    pub global: Vec<f64>,
    /// Per-group (level-1) coefficients, indexed by group id.
    pub per_group: Vec<Vec<f64>>,
}

/// Fits a two-level hierarchy over `groups.len()` design/response pairs.
///
/// * `groups[g] = (X_g, y_g)` — the design matrix and response of group `g`;
///   all groups must share the feature dimension.
/// * `lambda_global` — ridge strength of the pooled fit.
/// * `lambda_group` — shrinkage of each group towards the pooled fit.
///   Larger values pull harder; groups with few rows end up close to the
///   global coefficients, which is the hierarchical borrowing-of-strength.
///
/// Groups with zero rows receive the global coefficients verbatim.
pub fn hierarchical_fit(
    groups: &[(Matrix, Vec<f64>)],
    lambda_global: f64,
    lambda_group: f64,
) -> Result<HierarchicalFit> {
    if groups.is_empty() {
        return Err(LinalgError::Empty);
    }
    let dim = groups
        .iter()
        .map(|(x, _)| x.cols())
        .find(|&c| c > 0)
        .ok_or(LinalgError::Empty)?;

    // Level 2: pooled fit. Accumulate gram/rhs directly instead of
    // materialising a concatenated design matrix.
    let mut gram = Matrix::zeros(dim, dim);
    let mut rhs = vec![0.0; dim];
    let mut total_rows = 0usize;
    for (x, y) in groups {
        if x.rows() == 0 {
            continue;
        }
        if x.cols() != dim {
            return Err(LinalgError::DimensionMismatch {
                op: "hierarchical_fit",
                lhs: (x.rows(), x.cols()),
                rhs: (x.rows(), dim),
            });
        }
        if x.rows() != y.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "hierarchical_fit group",
                lhs: (x.rows(), x.cols()),
                rhs: (y.len(), 1),
            });
        }
        let g = x.gram();
        for i in 0..dim {
            for j in 0..dim {
                gram[(i, j)] += g[(i, j)];
            }
        }
        let r = x.tr_matvec(y)?;
        for (a, b) in rhs.iter_mut().zip(&r) {
            *a += b;
        }
        total_rows += x.rows();
    }
    if total_rows == 0 {
        return Err(LinalgError::Empty);
    }
    gram.add_diag(lambda_global.max(1e-12));
    let global = Cholesky::factor(&gram)?.solve(&rhs)?;

    // Level 1: shrink each group towards the global coefficients.
    let mut per_group = Vec::with_capacity(groups.len());
    for (x, y) in groups {
        if x.rows() == 0 {
            per_group.push(global.clone());
        } else {
            per_group.push(shrunk_fit(x, y, lambda_group, Some(&global))?);
        }
    }
    Ok(HierarchicalFit { global, per_group })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design(rows: &[&[f64]]) -> Matrix {
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn ridge_recovers_exact_solution_with_tiny_lambda() {
        let x = design(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let y = [3.0, -1.0, 2.0];
        let b = ridge_fit(&x, &y, 1e-10).unwrap();
        assert!((b[0] - 3.0).abs() < 1e-5);
        assert!((b[1] + 1.0).abs() < 1e-5);
    }

    #[test]
    fn ridge_shrinks_towards_zero_as_lambda_grows() {
        let x = design(&[&[1.0], &[1.0], &[1.0]]);
        let y = [2.0, 2.0, 2.0];
        let small = ridge_fit(&x, &y, 0.01).unwrap()[0];
        let large = ridge_fit(&x, &y, 100.0).unwrap()[0];
        assert!(small > large);
        assert!(large > 0.0 && large < 0.2);
    }

    #[test]
    fn shrunk_fit_converges_to_prior_for_huge_lambda() {
        let x = design(&[&[1.0], &[1.0]]);
        let y = [0.0, 0.0];
        let b = shrunk_fit(&x, &y, 1e9, Some(&[5.0])).unwrap();
        assert!((b[0] - 5.0).abs() < 1e-3, "{b:?}");
    }

    #[test]
    fn shrunk_fit_rejects_bad_prior_len() {
        let x = design(&[&[1.0, 2.0]]);
        assert!(shrunk_fit(&x, &[1.0], 1.0, Some(&[1.0])).is_err());
    }

    #[test]
    fn ridge_rejects_mismatched_response() {
        let x = design(&[&[1.0], &[2.0]]);
        assert!(ridge_fit(&x, &[1.0], 1.0).is_err());
    }

    #[test]
    fn hierarchical_borrows_strength_for_thin_groups() {
        // Group 0 has lots of data with slope 2; group 1 has one noisy
        // point that alone would give slope 10. With shrinkage, group 1's
        // slope must land between 2 and 10, much closer to the pool.
        let g0 = (
            design(&[&[1.0], &[2.0], &[3.0], &[4.0]]),
            vec![2.0, 4.0, 6.0, 8.0],
        );
        let g1 = (design(&[&[1.0]]), vec![10.0]);
        let fit = hierarchical_fit(&[g0, g1], 1e-6, 1.0).unwrap();
        assert!((fit.global[0] - 2.0).abs() < 0.5, "{:?}", fit.global);
        let b1 = fit.per_group[1][0];
        assert!(b1 > fit.global[0] && b1 < 10.0, "b1 = {b1}");
        assert!(b1 < 7.0, "shrinkage too weak: {b1}");
    }

    #[test]
    fn hierarchical_empty_group_gets_global() {
        let g0 = (design(&[&[1.0], &[2.0]]), vec![3.0, 6.0]);
        let g1 = (Matrix::zeros(0, 1), vec![]);
        let fit = hierarchical_fit(&[g0, g1], 1e-6, 1.0).unwrap();
        assert_eq!(fit.per_group[1], fit.global);
    }

    #[test]
    fn hierarchical_rejects_all_empty() {
        let groups = vec![(Matrix::zeros(0, 2), vec![])];
        assert!(hierarchical_fit(&groups, 1.0, 1.0).is_err());
    }

    #[test]
    fn hierarchical_rejects_dim_mismatch_between_groups() {
        let g0 = (design(&[&[1.0, 2.0]]), vec![1.0]);
        let g1 = (design(&[&[1.0]]), vec![1.0]);
        assert!(hierarchical_fit(&[g0, g1], 1.0, 1.0).is_err());
    }
}
