//! Ridge and hierarchically-shrunk least squares.
//!
//! These are the fitting primitives behind the paper's *hierarchical
//! linear model* (step 2 of speed inference): per-road coefficient
//! vectors are ridge-shrunk towards a group-level (road-class) prior, so
//! roads with thin history borrow strength from their class.

use crate::{Cholesky, LinalgError, Matrix, Result};

/// Ordinary ridge regression: minimises `||X beta - y||^2 + lambda ||beta||^2`.
///
/// Solves the SPD normal equations `(XᵀX + lambda I) beta = Xᵀ y` via
/// Cholesky. `lambda` must be `>= 0`; `lambda = 0` requires `X` to have
/// full column rank or the factorisation fails with
/// [`LinalgError::NotPositiveDefinite`].
pub fn ridge_fit(x: &Matrix, y: &[f64], lambda: f64) -> Result<Vec<f64>> {
    shrunk_fit(x, y, lambda, None)
}

/// Ridge regression shrunk towards a prior coefficient vector:
/// minimises `||X beta - y||^2 + lambda ||beta - prior||^2`.
///
/// With `prior = None` this reduces to plain ridge (prior at the
/// origin). This is the level-1 fit of the hierarchical linear model,
/// where `prior` is the group-level coefficient vector.
pub fn shrunk_fit(x: &Matrix, y: &[f64], lambda: f64, prior: Option<&[f64]>) -> Result<Vec<f64>> {
    if x.rows() != y.len() {
        return Err(LinalgError::DimensionMismatch {
            op: "ridge_fit",
            lhs: (x.rows(), x.cols()),
            rhs: (y.len(), 1),
        });
    }
    if x.rows() == 0 || x.cols() == 0 {
        return Err(LinalgError::Empty);
    }
    if let Some(p) = prior {
        if p.len() != x.cols() {
            return Err(LinalgError::DimensionMismatch {
                op: "ridge_fit prior",
                lhs: (x.rows(), x.cols()),
                rhs: (p.len(), 1),
            });
        }
    }
    let mut gram = x.gram();
    gram.add_diag(lambda);
    let mut rhs = x.tr_matvec(y)?;
    if let Some(p) = prior {
        for (r, pi) in rhs.iter_mut().zip(p) {
            *r += lambda * pi;
        }
    }
    let ch = Cholesky::factor(&gram)?;
    ch.solve(&rhs)
}

/// A streaming normal-equation accumulator: the Gram matrix `XᵀX`, the
/// moment vector `Xᵀy`, and the row count of a design that is never
/// materialised.
///
/// Rows are folded one at a time in call order, so two accumulators fed
/// the same row sequence hold bit-identical state — the property the
/// incremental trainer leans on: continuing a fold with new rows equals
/// refolding the whole extended sequence from scratch. `merge` adds
/// another accumulator's sums entrywise (index order), which is how
/// per-road systems combine into a class-level system deterministically.
///
/// The Gram matrix is symmetric, so only the upper triangle (`j >= i`)
/// is accumulated — half the FLOPs per row — and the lower half is
/// mirrored when a solver needs the full matrix. `x[i]*x[j]` and
/// `x[j]*x[i]` round identically, so the mirrored matrix is bit-equal
/// to one accumulated in full.
#[derive(Debug, Clone, PartialEq)]
pub struct GramSystem {
    /// Upper triangle of `XᵀX`; entries below the diagonal stay zero.
    gram: Matrix,
    rhs: Vec<f64>,
    rows: usize,
}

impl GramSystem {
    /// An empty system over `dim` features.
    pub fn new(dim: usize) -> GramSystem {
        GramSystem {
            gram: Matrix::zeros(dim, dim),
            rhs: vec![0.0; dim],
            rows: 0,
        }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.rhs.len()
    }

    /// Rows folded so far.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Folds one `(x, y)` row into the sums. `x.len()` must equal
    /// [`GramSystem::dim`].
    pub fn push_row(&mut self, x: &[f64], y: f64) {
        debug_assert_eq!(x.len(), self.dim());
        let dim = self.rhs.len();
        for i in 0..dim {
            let xi = x[i];
            for (j, &xj) in x.iter().enumerate().take(dim).skip(i) {
                self.gram[(i, j)] += xi * xj;
            }
            self.rhs[i] += y * xi;
        }
        self.rows += 1;
    }

    /// Adds `other`'s sums entrywise (and its row count) into `self`.
    pub fn merge(&mut self, other: &GramSystem) {
        debug_assert_eq!(self.dim(), other.dim());
        let dim = self.rhs.len();
        for i in 0..dim {
            for j in i..dim {
                self.gram[(i, j)] += other.gram[(i, j)];
            }
            self.rhs[i] += other.rhs[i];
        }
        self.rows += other.rows;
    }

    /// The full symmetric Gram matrix: the accumulated upper triangle
    /// mirrored into the lower half.
    fn full_gram(&self) -> Matrix {
        let dim = self.rhs.len();
        let mut gram = self.gram.clone();
        for i in 1..dim {
            for j in 0..i {
                gram[(i, j)] = gram[(j, i)];
            }
        }
        gram
    }

    /// Resets the sums to zero.
    pub fn clear(&mut self) {
        let dim = self.rhs.len();
        self.gram = Matrix::zeros(dim, dim);
        self.rhs.fill(0.0);
        self.rows = 0;
    }
}

/// [`shrunk_fit`] on pre-accumulated normal equations: minimises
/// `||X beta - y||^2 + lambda ||beta - prior||^2` given only `XᵀX` and
/// `Xᵀy` as carried by a [`GramSystem`].
///
/// A system with zero rows (or zero dimension) is rejected with
/// [`LinalgError::Empty`], mirroring the design-matrix path.
pub fn shrunk_fit_gram(sys: &GramSystem, lambda: f64, prior: Option<&[f64]>) -> Result<Vec<f64>> {
    if sys.rows == 0 || sys.dim() == 0 {
        return Err(LinalgError::Empty);
    }
    if let Some(p) = prior {
        if p.len() != sys.dim() {
            return Err(LinalgError::DimensionMismatch {
                op: "shrunk_fit_gram prior",
                lhs: (sys.rows, sys.dim()),
                rhs: (p.len(), 1),
            });
        }
    }
    let mut gram = sys.full_gram();
    gram.add_diag(lambda);
    let mut rhs = sys.rhs.clone();
    if let Some(p) = prior {
        for (r, pi) in rhs.iter_mut().zip(p) {
            *r += lambda * pi;
        }
    }
    let ch = Cholesky::factor(&gram)?;
    ch.solve(&rhs)
}

/// [`hierarchical_fit`] on pre-accumulated normal equations: the pooled
/// level-2 system is the entrywise sum of every non-empty group's
/// [`GramSystem`] in group order, and each non-empty group is then
/// shrunk towards the pooled coefficients. Groups with zero rows receive
/// the global coefficients verbatim.
pub fn hierarchical_fit_grams(
    groups: &[GramSystem],
    lambda_global: f64,
    lambda_group: f64,
) -> Result<HierarchicalFit> {
    if groups.is_empty() {
        return Err(LinalgError::Empty);
    }
    let dim = groups
        .iter()
        .map(|g| g.dim())
        .find(|&d| d > 0)
        .ok_or(LinalgError::Empty)?;
    let mut pooled = GramSystem::new(dim);
    for g in groups {
        if g.rows == 0 {
            continue;
        }
        if g.dim() != dim {
            return Err(LinalgError::DimensionMismatch {
                op: "hierarchical_fit_grams",
                lhs: (g.rows, g.dim()),
                rhs: (g.rows, dim),
            });
        }
        pooled.merge(g);
    }
    if pooled.rows == 0 {
        return Err(LinalgError::Empty);
    }
    let mut gram = pooled.full_gram();
    gram.add_diag(lambda_global.max(1e-12));
    let global = Cholesky::factor(&gram)?.solve(&pooled.rhs)?;

    let mut per_group = Vec::with_capacity(groups.len());
    for g in groups {
        if g.rows == 0 {
            per_group.push(global.clone());
        } else {
            per_group.push(shrunk_fit_gram(g, lambda_group, Some(&global))?);
        }
    }
    Ok(HierarchicalFit { global, per_group })
}

/// A fitted two-level hierarchical regression.
///
/// Level 2 pools all groups' data into a single ridge fit (`global`);
/// each group's level-1 fit is shrunk towards the global coefficients
/// with strength `lambda_group`. Groups map to road classes in the
/// traffic model.
#[derive(Debug, Clone)]
pub struct HierarchicalFit {
    /// Pooled (level-2) coefficients.
    pub global: Vec<f64>,
    /// Per-group (level-1) coefficients, indexed by group id.
    pub per_group: Vec<Vec<f64>>,
}

/// Fits a two-level hierarchy over `groups.len()` design/response pairs.
///
/// * `groups[g] = (X_g, y_g)` — the design matrix and response of group `g`;
///   all groups must share the feature dimension.
/// * `lambda_global` — ridge strength of the pooled fit.
/// * `lambda_group` — shrinkage of each group towards the pooled fit.
///   Larger values pull harder; groups with few rows end up close to the
///   global coefficients, which is the hierarchical borrowing-of-strength.
///
/// Groups with zero rows receive the global coefficients verbatim.
pub fn hierarchical_fit(
    groups: &[(Matrix, Vec<f64>)],
    lambda_global: f64,
    lambda_group: f64,
) -> Result<HierarchicalFit> {
    if groups.is_empty() {
        return Err(LinalgError::Empty);
    }
    let dim = groups
        .iter()
        .map(|(x, _)| x.cols())
        .find(|&c| c > 0)
        .ok_or(LinalgError::Empty)?;

    // Level 2: pooled fit. Accumulate gram/rhs directly instead of
    // materialising a concatenated design matrix.
    let mut gram = Matrix::zeros(dim, dim);
    let mut rhs = vec![0.0; dim];
    let mut total_rows = 0usize;
    for (x, y) in groups {
        if x.rows() == 0 {
            continue;
        }
        if x.cols() != dim {
            return Err(LinalgError::DimensionMismatch {
                op: "hierarchical_fit",
                lhs: (x.rows(), x.cols()),
                rhs: (x.rows(), dim),
            });
        }
        if x.rows() != y.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "hierarchical_fit group",
                lhs: (x.rows(), x.cols()),
                rhs: (y.len(), 1),
            });
        }
        let g = x.gram();
        for i in 0..dim {
            for j in 0..dim {
                gram[(i, j)] += g[(i, j)];
            }
        }
        let r = x.tr_matvec(y)?;
        for (a, b) in rhs.iter_mut().zip(&r) {
            *a += b;
        }
        total_rows += x.rows();
    }
    if total_rows == 0 {
        return Err(LinalgError::Empty);
    }
    gram.add_diag(lambda_global.max(1e-12));
    let global = Cholesky::factor(&gram)?.solve(&rhs)?;

    // Level 1: shrink each group towards the global coefficients.
    let mut per_group = Vec::with_capacity(groups.len());
    for (x, y) in groups {
        if x.rows() == 0 {
            per_group.push(global.clone());
        } else {
            per_group.push(shrunk_fit(x, y, lambda_group, Some(&global))?);
        }
    }
    Ok(HierarchicalFit { global, per_group })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design(rows: &[&[f64]]) -> Matrix {
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn ridge_recovers_exact_solution_with_tiny_lambda() {
        let x = design(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let y = [3.0, -1.0, 2.0];
        let b = ridge_fit(&x, &y, 1e-10).unwrap();
        assert!((b[0] - 3.0).abs() < 1e-5);
        assert!((b[1] + 1.0).abs() < 1e-5);
    }

    #[test]
    fn ridge_shrinks_towards_zero_as_lambda_grows() {
        let x = design(&[&[1.0], &[1.0], &[1.0]]);
        let y = [2.0, 2.0, 2.0];
        let small = ridge_fit(&x, &y, 0.01).unwrap()[0];
        let large = ridge_fit(&x, &y, 100.0).unwrap()[0];
        assert!(small > large);
        assert!(large > 0.0 && large < 0.2);
    }

    #[test]
    fn shrunk_fit_converges_to_prior_for_huge_lambda() {
        let x = design(&[&[1.0], &[1.0]]);
        let y = [0.0, 0.0];
        let b = shrunk_fit(&x, &y, 1e9, Some(&[5.0])).unwrap();
        assert!((b[0] - 5.0).abs() < 1e-3, "{b:?}");
    }

    #[test]
    fn shrunk_fit_rejects_bad_prior_len() {
        let x = design(&[&[1.0, 2.0]]);
        assert!(shrunk_fit(&x, &[1.0], 1.0, Some(&[1.0])).is_err());
    }

    #[test]
    fn ridge_rejects_mismatched_response() {
        let x = design(&[&[1.0], &[2.0]]);
        assert!(ridge_fit(&x, &[1.0], 1.0).is_err());
    }

    #[test]
    fn hierarchical_borrows_strength_for_thin_groups() {
        // Group 0 has lots of data with slope 2; group 1 has one noisy
        // point that alone would give slope 10. With shrinkage, group 1's
        // slope must land between 2 and 10, much closer to the pool.
        let g0 = (
            design(&[&[1.0], &[2.0], &[3.0], &[4.0]]),
            vec![2.0, 4.0, 6.0, 8.0],
        );
        let g1 = (design(&[&[1.0]]), vec![10.0]);
        let fit = hierarchical_fit(&[g0, g1], 1e-6, 1.0).unwrap();
        assert!((fit.global[0] - 2.0).abs() < 0.5, "{:?}", fit.global);
        let b1 = fit.per_group[1][0];
        assert!(b1 > fit.global[0] && b1 < 10.0, "b1 = {b1}");
        assert!(b1 < 7.0, "shrinkage too weak: {b1}");
    }

    #[test]
    fn hierarchical_empty_group_gets_global() {
        let g0 = (design(&[&[1.0], &[2.0]]), vec![3.0, 6.0]);
        let g1 = (Matrix::zeros(0, 1), vec![]);
        let fit = hierarchical_fit(&[g0, g1], 1e-6, 1.0).unwrap();
        assert_eq!(fit.per_group[1], fit.global);
    }

    #[test]
    fn hierarchical_rejects_all_empty() {
        let groups = vec![(Matrix::zeros(0, 2), vec![])];
        assert!(hierarchical_fit(&groups, 1.0, 1.0).is_err());
    }

    #[test]
    fn hierarchical_rejects_dim_mismatch_between_groups() {
        let g0 = (design(&[&[1.0, 2.0]]), vec![1.0]);
        let g1 = (design(&[&[1.0]]), vec![1.0]);
        assert!(hierarchical_fit(&[g0, g1], 1.0, 1.0).is_err());
    }

    fn folded(rows: &[(&[f64], f64)]) -> GramSystem {
        let mut sys = GramSystem::new(rows[0].0.len());
        for &(x, y) in rows {
            sys.push_row(x, y);
        }
        sys
    }

    #[test]
    fn gram_fit_matches_design_matrix_fit() {
        let rows: [(&[f64], f64); 3] =
            [(&[1.0, 0.5], 3.0), (&[0.0, 1.0], -1.0), (&[1.0, 1.0], 2.0)];
        let sys = folded(&rows);
        let x = design(&[rows[0].0, rows[1].0, rows[2].0]);
        let y = [rows[0].1, rows[1].1, rows[2].1];
        let a = shrunk_fit(&x, &y, 0.3, Some(&[0.1, -0.2])).unwrap();
        let b = shrunk_fit_gram(&sys, 0.3, Some(&[0.1, -0.2])).unwrap();
        for (ai, bi) in a.iter().zip(&b) {
            assert!((ai - bi).abs() < 1e-12, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn gram_fold_continuation_is_bit_identical_to_refold() {
        // The incremental contract in miniature: folding rows in two
        // batches must equal folding them in one pass, bit for bit.
        let rows: [(&[f64], f64); 4] = [
            (&[1.0, 0.3], 1.5),
            (&[0.7, 0.0], -0.25),
            (&[1.0, 2.0], 4.0),
            (&[0.1, 0.9], 0.75),
        ];
        let whole = folded(&rows);
        let mut staged = folded(&rows[..2]);
        for &(x, y) in &rows[2..] {
            staged.push_row(x, y);
        }
        assert_eq!(staged, whole);
        let a = shrunk_fit_gram(&whole, 0.5, None).unwrap();
        let b = shrunk_fit_gram(&staged, 0.5, None).unwrap();
        for (ai, bi) in a.iter().zip(&b) {
            assert_eq!(ai.to_bits(), bi.to_bits());
        }
    }

    #[test]
    fn gram_merge_orders_like_group_concatenation() {
        let a = folded(&[(&[1.0, 0.0], 1.0), (&[0.0, 1.0], 2.0)]);
        let b = folded(&[(&[1.0, 1.0], 3.0)]);
        let mut class = GramSystem::new(2);
        class.merge(&a);
        class.merge(&b);
        assert_eq!(class.rows(), 3);
        let fit = shrunk_fit_gram(&class, 1e-9, None).unwrap();
        let x = design(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let direct = shrunk_fit(&x, &[1.0, 2.0, 3.0], 1e-9, None).unwrap();
        for (f, d) in fit.iter().zip(&direct) {
            assert!((f - d).abs() < 1e-9);
        }
    }

    #[test]
    fn gram_hierarchy_matches_matrix_hierarchy() {
        let g0 = (
            design(&[&[1.0], &[2.0], &[3.0], &[4.0]]),
            vec![2.0, 4.0, 6.0, 8.0],
        );
        let g1 = (design(&[&[1.0]]), vec![10.0]);
        let want = hierarchical_fit(&[g0, g1], 1e-6, 1.0).unwrap();
        let s0 = folded(&[(&[1.0], 2.0), (&[2.0], 4.0), (&[3.0], 6.0), (&[4.0], 8.0)]);
        let s1 = folded(&[(&[1.0], 10.0)]);
        let got = hierarchical_fit_grams(&[s0, s1], 1e-6, 1.0).unwrap();
        assert!((want.global[0] - got.global[0]).abs() < 1e-9);
        for (w, g) in want.per_group.iter().zip(&got.per_group) {
            assert!((w[0] - g[0]).abs() < 1e-9);
        }
    }

    #[test]
    fn gram_empty_group_gets_global_and_all_empty_is_rejected() {
        let s0 = folded(&[(&[1.0], 3.0), (&[2.0], 6.0)]);
        let empty = GramSystem::new(1);
        let fit = hierarchical_fit_grams(&[s0, empty.clone()], 1e-6, 1.0).unwrap();
        assert_eq!(fit.per_group[1], fit.global);
        assert!(hierarchical_fit_grams(&[empty], 1.0, 1.0).is_err());
        assert!(shrunk_fit_gram(&GramSystem::new(2), 1.0, None).is_err());
    }
}
