//! Cholesky factorisation for symmetric positive-definite systems.

use crate::{LinalgError, Matrix, Result};

/// Lower-triangular Cholesky factor `L` of a symmetric positive-definite
/// matrix `A = L Lᵀ`.
///
/// Used to solve the (ridge-regularised, hence SPD) normal equations of
/// the hierarchical linear model.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorises `a`, which must be square and SPD. Only the lower
    /// triangle of `a` is read, so a symmetric matrix with a noisy upper
    /// triangle still factorises from its lower half.
    pub fn factor(a: &Matrix) -> Result<Self> {
        let n = a.rows();
        if n != a.cols() {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky",
                lhs: (a.rows(), a.cols()),
                rhs: (a.cols(), a.rows()),
            });
        }
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            // Diagonal pivot.
            let mut d = a[(j, j)];
            for k in 0..j {
                let ljk = l[(j, k)];
                d -= ljk * ljk;
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { pivot: j });
            }
            let dj = d.sqrt();
            l[(j, j)] = dj;
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / dj;
            }
        }
        Ok(Cholesky { l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// The lower-triangular factor.
    pub fn factor_matrix(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` via forward/backward substitution.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Forward: L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            let row = self.l.row(i);
            for k in 0..i {
                s -= row[k] * y[k];
            }
            y[i] = s / row[i];
        }
        // Backward: Lᵀ x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for (k, xk) in x.iter().enumerate().skip(i + 1) {
                s -= self.l[(k, i)] * xk;
            }
            x[i] = s / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Log-determinant of the factored matrix `A` (twice the log-det of
    /// `L`). Handy for model-evidence style diagnostics.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = Bᵀ B + I for a full-rank-ish B, guaranteed SPD.
        Matrix::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 5.0, 1.0], &[0.6, 1.0, 3.0]]).unwrap()
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let l = ch.factor_matrix();
        let rec = l.matmul(&l.transpose()).unwrap();
        assert!(rec.max_abs_diff(&a).unwrap() < 1e-10);
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd3();
        let x_true = [1.0, -2.0, 0.5];
        let b = a.matvec(&x_true).unwrap();
        let ch = Cholesky::factor(&a).unwrap();
        let x = ch.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10, "{x:?}");
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap(); // eigenvalues 3, -1
        match Cholesky::factor(&a) {
            Err(LinalgError::NotPositiveDefinite { pivot }) => assert_eq!(pivot, 1),
            other => panic!("expected NotPositiveDefinite, got {other:?}"),
        }
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(Cholesky::factor(&a).is_err());
    }

    #[test]
    fn rejects_empty() {
        let a = Matrix::zeros(0, 0);
        assert_eq!(Cholesky::factor(&a).unwrap_err(), LinalgError::Empty);
    }

    #[test]
    fn solve_checks_rhs_length() {
        let ch = Cholesky::factor(&spd3()).unwrap();
        assert!(ch.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn log_det_identity_is_zero() {
        let ch = Cholesky::factor(&Matrix::identity(4)).unwrap();
        assert!(ch.log_det().abs() < 1e-12);
    }

    #[test]
    fn log_det_diagonal() {
        let mut a = Matrix::identity(3);
        a[(0, 0)] = 2.0;
        a[(1, 1)] = 3.0;
        a[(2, 2)] = 4.0;
        let ch = Cholesky::factor(&a).unwrap();
        assert!((ch.log_det() - (24.0f64).ln()).abs() < 1e-10);
    }
}
