#![warn(missing_docs)]

//! Small dense linear-algebra substrate for the `crowdspeed` workspace.
//!
//! The hierarchical linear model in the paper only needs modest dense
//! solves (a few dozen features per road), so this crate provides exactly
//! that: a row-major [`Matrix`], a Cholesky/LDLᵀ factorisation for
//! symmetric positive-definite systems, and ridge / hierarchically-shrunk
//! least-squares solvers built on top of them.
//!
//! No external linear-algebra crate from the approved dependency list
//! exists, so this is written from scratch (see `DESIGN.md` §5).
//!
//! # Example
//!
//! ```
//! use linalg::{Matrix, ridge::ridge_fit};
//!
//! // Fit y = 2*x0 + 1*x1 with a tiny ridge penalty.
//! let x = Matrix::from_rows(&[
//!     &[1.0, 0.0],
//!     &[0.0, 1.0],
//!     &[1.0, 1.0],
//!     &[2.0, 1.0],
//! ]).unwrap();
//! let y = [2.0, 1.0, 3.0, 5.0];
//! let beta = ridge_fit(&x, &y, 1e-9).unwrap();
//! assert!((beta[0] - 2.0).abs() < 1e-6);
//! assert!((beta[1] - 1.0).abs() < 1e-6);
//! ```

pub mod cholesky;
pub mod matrix;
pub mod ridge;
pub mod stats;

pub use cholesky::Cholesky;
pub use matrix::Matrix;

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand dimensions are incompatible for the requested operation.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Dimensions of the left operand (rows, cols).
        lhs: (usize, usize),
        /// Dimensions of the right operand (rows, cols).
        rhs: (usize, usize),
    },
    /// The matrix is not (numerically) symmetric positive definite.
    NotPositiveDefinite {
        /// Index of the pivot where factorisation broke down.
        pivot: usize,
    },
    /// An empty matrix or vector was supplied where data is required.
    Empty,
    /// Rows of irregular length were supplied to a constructor.
    RaggedRows,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: lhs {}x{}, rhs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            LinalgError::Empty => write!(f, "empty matrix or vector"),
            LinalgError::RaggedRows => write!(f, "rows have differing lengths"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, LinalgError>;

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics in debug builds if the slices differ in length; in release
/// builds the shorter length wins (standard `zip` semantics), which is
/// never intended — callers must pass equal lengths.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm of a slice.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y += alpha * x` for equal-length slices.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn norm2_pythagorean() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = [1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, [7.0, 9.0]);
    }

    #[test]
    fn error_display_mentions_dims() {
        let e = LinalgError::DimensionMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        let s = e.to_string();
        assert!(s.contains("matmul") && s.contains("2x3") && s.contains("4x5"));
    }
}
