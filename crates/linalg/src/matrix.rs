//! Row-major dense matrix.

use crate::{LinalgError, Result};
use serde::{Deserialize, Serialize};

/// A dense, row-major `f64` matrix.
///
/// Sized for the workloads in this workspace: design matrices with at
/// most a few hundred rows (historical time slots) and a few dozen
/// columns (correlated seed neighbours). All storage is a single
/// contiguous `Vec<f64>` for cache-friendly row traversal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices. All rows must share a length.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        let nrows = rows.len();
        if nrows == 0 {
            return Err(LinalgError::Empty);
        }
        let ncols = rows[0].len();
        if ncols == 0 {
            return Err(LinalgError::Empty);
        }
        if rows.iter().any(|r| r.len() != ncols) {
            return Err(LinalgError::RaggedRows);
        }
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major vector.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                op: "from_vec",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Appends a row to the bottom of the matrix.
    pub fn push_row(&mut self, row: &[f64]) -> Result<()> {
        if self.rows == 0 && self.cols == 0 {
            self.cols = row.len();
        }
        if row.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "push_row",
                lhs: (self.rows, self.cols),
                rhs: (1, row.len()),
            });
        }
        self.data.extend_from_slice(row);
        self.rows += 1;
        Ok(())
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul",
                lhs: (self.rows, self.cols),
                rhs: (rhs.rows, rhs.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order keeps the inner loop streaming over contiguous
        // rows of both `rhs` and `out`.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = out.row_mut(i);
                crate::axpy(a, rrow, orow);
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols != v.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "matvec",
                lhs: (self.rows, self.cols),
                rhs: (v.len(), 1),
            });
        }
        Ok((0..self.rows).map(|i| crate::dot(self.row(i), v)).collect())
    }

    /// Gram matrix `selfᵀ * self`, exploiting symmetry (only the upper
    /// triangle is computed, then mirrored).
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut g = Matrix::zeros(n, n);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..n {
                let xi = row[i];
                if xi == 0.0 {
                    continue;
                }
                for j in i..n {
                    g[(i, j)] += xi * row[j];
                }
            }
        }
        for i in 0..n {
            for j in (i + 1)..n {
                g[(j, i)] = g[(i, j)];
            }
        }
        g
    }

    /// `selfᵀ * y` for a response vector `y` with one entry per row.
    pub fn tr_matvec(&self, y: &[f64]) -> Result<Vec<f64>> {
        if self.rows != y.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "tr_matvec",
                lhs: (self.rows, self.cols),
                rhs: (y.len(), 1),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (r, &yi) in y.iter().enumerate() {
            if yi == 0.0 {
                continue;
            }
            crate::axpy(yi, self.row(r), &mut out);
        }
        Ok(out)
    }

    /// Adds `alpha` to every diagonal entry (ridge regularisation).
    pub fn add_diag(&mut self, alpha: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += alpha;
        }
    }

    /// Maximum absolute difference to another matrix of equal shape.
    pub fn max_abs_diff(&self, other: &Matrix) -> Result<f64> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "max_abs_diff",
                lhs: (self.rows, self.cols),
                rhs: (other.rows, other.cols),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max))
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_index() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        m[(1, 2)] = 5.0;
        assert_eq!(m[(1, 2)], 5.0);
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert_eq!(err, LinalgError::RaggedRows);
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert_eq!(Matrix::from_rows(&[]).unwrap_err(), LinalgError::Empty);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn gram_matches_explicit_transpose_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let g = a.gram();
        let explicit = a.transpose().matmul(&a).unwrap();
        assert!(g.max_abs_diff(&explicit).unwrap() < 1e-12);
    }

    #[test]
    fn matvec_known() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
    }

    #[test]
    fn tr_matvec_matches_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let y = [1.0, -1.0, 2.0];
        let direct = a.tr_matvec(&y).unwrap();
        let via_t = a.transpose().matvec(&y).unwrap();
        for (d, v) in direct.iter().zip(&via_t) {
            assert!((d - v).abs() < 1e-12);
        }
    }

    #[test]
    fn push_row_grows_and_checks() {
        let mut m = Matrix::zeros(0, 0);
        m.push_row(&[1.0, 2.0]).unwrap();
        m.push_row(&[3.0, 4.0]).unwrap();
        assert_eq!(m.rows(), 2);
        assert!(m.push_row(&[1.0]).is_err());
    }

    #[test]
    fn add_diag_only_touches_diagonal() {
        let mut m = Matrix::zeros(2, 2);
        m[(0, 1)] = 7.0;
        m.add_diag(3.0);
        assert_eq!(m[(0, 0)], 3.0);
        assert_eq!(m[(1, 1)], 3.0);
        assert_eq!(m[(0, 1)], 7.0);
    }
}
