//! Small statistical helpers shared across the workspace.

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance; `0.0` for fewer than two samples.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Pearson correlation coefficient of two equal-length samples.
/// Returns `0.0` when either sample is (near-)constant.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    debug_assert_eq!(xs.len(), ys.len());
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    let denom = (sxx * syy).sqrt();
    if denom < 1e-12 {
        0.0
    } else {
        sxy / denom
    }
}

/// Median of a sample (average of middle two for even length); `0.0`
/// when empty. Copies the input to sort.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("median: NaN in sample"));
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

/// Trimmed mean after dropping a `trim` fraction (0 ≤ trim < 0.5) of the
/// smallest and largest samples each. Used to aggregate noisy
/// crowdsourced speed reports.
pub fn trimmed_mean(xs: &[f64], trim: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let trim = trim.clamp(0.0, 0.499);
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("trimmed_mean: NaN in sample"));
    let drop = (v.len() as f64 * trim).floor() as usize;
    let kept = &v[drop..v.len() - drop];
    mean(kept)
}

/// Quantile (0 ≤ q ≤ 1) via linear interpolation between order statistics.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("quantile: NaN in sample"));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn variance_known() {
        // var([1,2,3,4]) with Bessel = 5/3
        assert!((variance(&[1.0, 2.0, 3.0, 4.0]) - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(variance(&[7.0]), 0.0);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let yneg = [-2.0, -4.0, -6.0, -8.0];
        assert!((pearson(&x, &yneg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn trimmed_mean_drops_outliers() {
        let xs = [1.0, 1.0, 1.0, 1.0, 100.0];
        assert!(trimmed_mean(&xs, 0.2) < 2.0);
        // Zero trim is just the mean.
        assert_eq!(trimmed_mean(&xs, 0.0), mean(&xs));
    }

    #[test]
    fn quantile_endpoints_and_middle() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
        assert_eq!(quantile(&xs, 0.5), 3.0);
        assert!((quantile(&xs, 0.25) - 2.0).abs() < 1e-12);
    }
}
