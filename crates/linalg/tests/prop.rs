//! Property-based tests of the linear-algebra substrate.

use linalg::ridge::{ridge_fit, shrunk_fit};
use linalg::{Cholesky, Matrix};
use proptest::prelude::*;

/// Strategy: a random matrix with entries in [-10, 10].
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data).unwrap())
}

/// Strategy: a random SPD matrix A = BᵀB + I.
fn spd(n: usize) -> impl Strategy<Value = Matrix> {
    matrix(n + 2, n).prop_map(move |b| {
        let mut a = b.gram();
        a.add_diag(1.0);
        a
    })
}

proptest! {
    #[test]
    fn transpose_is_involution(m in matrix(4, 6)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn gram_is_symmetric_psd_diag(m in matrix(5, 4)) {
        let g = m.gram();
        for i in 0..4 {
            prop_assert!(g[(i, i)] >= -1e-12, "diagonal of a Gram matrix is nonnegative");
            for j in 0..4 {
                prop_assert!((g[(i, j)] - g[(j, i)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn matmul_associates_with_vectors(m in matrix(4, 4), v in prop::collection::vec(-5.0f64..5.0, 4)) {
        // (M * M) * v == M * (M * v)
        let left = m.matmul(&m).unwrap().matvec(&v).unwrap();
        let right = m.matvec(&m.matvec(&v).unwrap()).unwrap();
        for (a, b) in left.iter().zip(&right) {
            prop_assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn cholesky_solve_recovers_solution(a in spd(5), x in prop::collection::vec(-5.0f64..5.0, 5)) {
        let b = a.matvec(&x).unwrap();
        let ch = Cholesky::factor(&a).unwrap();
        let got = ch.solve(&b).unwrap();
        for (g, want) in got.iter().zip(&x) {
            prop_assert!((g - want).abs() < 1e-6, "{g} vs {want}");
        }
    }

    #[test]
    fn cholesky_factor_reconstructs(a in spd(4)) {
        let ch = Cholesky::factor(&a).unwrap();
        let l = ch.factor_matrix();
        let rec = l.matmul(&l.transpose()).unwrap();
        prop_assert!(rec.max_abs_diff(&a).unwrap() < 1e-8);
    }

    #[test]
    fn ridge_norm_shrinks_with_lambda(x in matrix(8, 3), y in prop::collection::vec(-5.0f64..5.0, 8)) {
        let small = ridge_fit(&x, &y, 0.01).unwrap();
        let large = ridge_fit(&x, &y, 100.0).unwrap();
        let n2 = |v: &[f64]| v.iter().map(|a| a * a).sum::<f64>();
        prop_assert!(n2(&large) <= n2(&small) + 1e-9);
    }

    #[test]
    fn huge_shrinkage_lands_on_prior(x in matrix(6, 2), y in prop::collection::vec(-5.0f64..5.0, 6), prior in prop::collection::vec(-3.0f64..3.0, 2)) {
        let beta = shrunk_fit(&x, &y, 1e12, Some(&prior)).unwrap();
        for (b, p) in beta.iter().zip(&prior) {
            prop_assert!((b - p).abs() < 1e-3, "{b} vs {p}");
        }
    }

    #[test]
    fn ridge_residual_is_orthogonal_ish(x in matrix(10, 3), y in prop::collection::vec(-5.0f64..5.0, 10)) {
        // Normal equations: Xᵀ(y - X beta) = lambda * beta.
        let lambda = 0.5;
        let beta = ridge_fit(&x, &y, lambda).unwrap();
        let pred = x.matvec(&beta).unwrap();
        let resid: Vec<f64> = y.iter().zip(&pred).map(|(a, b)| a - b).collect();
        let xtr = x.tr_matvec(&resid).unwrap();
        for (g, b) in xtr.iter().zip(&beta) {
            prop_assert!((g - lambda * b).abs() < 1e-6, "{g} vs {}", lambda * b);
        }
    }

    #[test]
    fn stats_quantile_bounded_by_extremes(xs in prop::collection::vec(-100.0f64..100.0, 1..50), q in 0.0f64..1.0) {
        let v = linalg::stats::quantile(&xs, q);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }

    #[test]
    fn trimmed_mean_bounded_by_extremes(xs in prop::collection::vec(-100.0f64..100.0, 1..50), trim in 0.0f64..0.49) {
        let v = linalg::stats::trimmed_mean(&xs, trim);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
    }
}
