//! Immutable CSR road graph and per-segment metadata.

use serde::{Deserialize, Serialize};

/// Identifier of a road segment; dense in `0..num_roads`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct RoadId(pub u32);

impl RoadId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for RoadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Functional class of a road segment. Classes double as the *groups* of
/// the hierarchical linear model: segments of the same class share a
/// level-2 coefficient prior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoadClass {
    /// Grade-separated, high free-flow speed (ring roads, expressways).
    Highway,
    /// Major urban through-roads.
    Arterial,
    /// Distributor roads between arterials and locals.
    Collector,
    /// Neighbourhood streets.
    Local,
}

impl RoadClass {
    /// All classes, in descending free-flow speed order.
    pub const ALL: [RoadClass; 4] = [
        RoadClass::Highway,
        RoadClass::Arterial,
        RoadClass::Collector,
        RoadClass::Local,
    ];

    /// Dense index of the class, used as the HLM group id.
    #[inline]
    pub fn group(self) -> usize {
        match self {
            RoadClass::Highway => 0,
            RoadClass::Arterial => 1,
            RoadClass::Collector => 2,
            RoadClass::Local => 3,
        }
    }

    /// Typical free-flow speed in km/h for the class.
    pub fn base_speed_kmh(self) -> f64 {
        match self {
            RoadClass::Highway => 90.0,
            RoadClass::Arterial => 60.0,
            RoadClass::Collector => 45.0,
            RoadClass::Local => 30.0,
        }
    }
}

impl std::fmt::Display for RoadClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RoadClass::Highway => "highway",
            RoadClass::Arterial => "arterial",
            RoadClass::Collector => "collector",
            RoadClass::Local => "local",
        };
        f.write_str(s)
    }
}

/// Static metadata of one road segment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoadMeta {
    /// Functional class.
    pub class: RoadClass,
    /// Segment length in metres.
    pub length_m: f64,
    /// Free-flow speed in km/h (class base speed with per-segment jitter).
    pub free_flow_kmh: f64,
    /// Midpoint position in metres, for spatial baselines and plotting.
    pub position: (f64, f64),
}

impl Default for RoadMeta {
    fn default() -> Self {
        RoadMeta {
            class: RoadClass::Local,
            length_m: 200.0,
            free_flow_kmh: RoadClass::Local.base_speed_kmh(),
            position: (0.0, 0.0),
        }
    }
}

/// An immutable road-segment graph in compressed-sparse-row form.
///
/// Adjacency is undirected and stored symmetrically: if `b ∈ neighbors(a)`
/// then `a ∈ neighbors(b)`. Construct via
/// [`RoadGraphBuilder`](crate::builder::RoadGraphBuilder).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoadGraph {
    pub(crate) offsets: Vec<u32>,
    pub(crate) targets: Vec<RoadId>,
    pub(crate) meta: Vec<RoadMeta>,
}

impl RoadGraph {
    /// Number of road segments.
    #[inline]
    pub fn num_roads(&self) -> usize {
        self.meta.len()
    }

    /// Number of undirected adjacency edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// Iterator over all road ids.
    pub fn road_ids(&self) -> impl Iterator<Item = RoadId> + '_ {
        (0..self.num_roads() as u32).map(RoadId)
    }

    /// Neighbours of `r` (sorted by id).
    #[inline]
    pub fn neighbors(&self, r: RoadId) -> &[RoadId] {
        let i = r.index();
        debug_assert!(i < self.num_roads());
        &self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Degree of `r`.
    #[inline]
    pub fn degree(&self, r: RoadId) -> usize {
        self.neighbors(r).len()
    }

    /// Metadata of `r`.
    #[inline]
    pub fn meta(&self, r: RoadId) -> &RoadMeta {
        &self.meta[r.index()]
    }

    /// All metadata, indexed by road id.
    #[inline]
    pub fn all_meta(&self) -> &[RoadMeta] {
        &self.meta
    }

    /// Euclidean distance between the midpoints of two segments (metres).
    pub fn distance(&self, a: RoadId, b: RoadId) -> f64 {
        let pa = self.meta(a).position;
        let pb = self.meta(b).position;
        ((pa.0 - pb.0).powi(2) + (pa.1 - pb.1).powi(2)).sqrt()
    }

    /// True when `a` and `b` are adjacent. Binary search over the sorted
    /// neighbour list.
    pub fn are_adjacent(&self, a: RoadId, b: RoadId) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Count of roads per class, indexed by [`RoadClass::group`].
    pub fn class_counts(&self) -> [usize; 4] {
        let mut counts = [0usize; 4];
        for m in &self.meta {
            counts[m.class.group()] += 1;
        }
        counts
    }

    /// Average degree across all segments.
    pub fn avg_degree(&self) -> f64 {
        if self.num_roads() == 0 {
            return 0.0;
        }
        self.targets.len() as f64 / self.num_roads() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::RoadGraphBuilder;

    fn triangle() -> RoadGraph {
        let mut b = RoadGraphBuilder::new();
        let r0 = b.add_road(RoadMeta::default());
        let r1 = b.add_road(RoadMeta::default());
        let r2 = b.add_road(RoadMeta::default());
        b.add_adjacency(r0, r1).unwrap();
        b.add_adjacency(r1, r2).unwrap();
        b.add_adjacency(r2, r0).unwrap();
        b.build()
    }

    #[test]
    fn triangle_counts() {
        let g = triangle();
        assert_eq!(g.num_roads(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.avg_degree(), 2.0);
    }

    #[test]
    fn neighbors_sorted_and_symmetric() {
        let g = triangle();
        for r in g.road_ids() {
            let ns = g.neighbors(r);
            assert!(ns.windows(2).all(|w| w[0] < w[1]));
            for &n in ns {
                assert!(g.are_adjacent(n, r));
            }
        }
    }

    #[test]
    fn are_adjacent_negative() {
        let mut b = RoadGraphBuilder::new();
        let r0 = b.add_road(RoadMeta::default());
        let r1 = b.add_road(RoadMeta::default());
        let _r2 = b.add_road(RoadMeta::default());
        b.add_adjacency(r0, r1).unwrap();
        let g = b.build();
        assert!(!g.are_adjacent(r0, RoadId(2)));
    }

    #[test]
    fn class_group_roundtrip() {
        for c in RoadClass::ALL {
            assert_eq!(RoadClass::ALL[c.group()], c);
        }
    }

    #[test]
    fn distance_euclidean() {
        let mut b = RoadGraphBuilder::new();
        let r0 = b.add_road(RoadMeta {
            position: (0.0, 0.0),
            ..RoadMeta::default()
        });
        let r1 = b.add_road(RoadMeta {
            position: (3.0, 4.0),
            ..RoadMeta::default()
        });
        let g = b.build();
        assert!((g.distance(r0, r1) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn display_forms() {
        assert_eq!(RoadId(7).to_string(), "r7");
        assert_eq!(RoadClass::Arterial.to_string(), "arterial");
    }
}
