//! Synthetic city generators.
//!
//! The paper evaluates on two real city maps. Real map data is not
//! available here, so these generators produce the two standard urban
//! topologies — a **grid** ("port-city" style) and a **ring-radial**
//! ("metro" style, Beijing-like) — whose segment-adjacency structure is
//! what the correlation/seed algorithms actually consume. See
//! `DESIGN.md` §1 for the substitution argument.

use crate::builder::RoadGraphBuilder;
use crate::graph::{RoadClass, RoadGraph, RoadId, RoadMeta};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Parameters of the grid-city generator.
#[derive(Debug, Clone)]
pub struct GridParams {
    /// Intersections along the x axis (>= 2).
    pub width: usize,
    /// Intersections along the y axis (>= 2).
    pub height: usize,
    /// Block edge length in metres.
    pub block_m: f64,
    /// Every `arterial_every`-th street is an arterial (0 disables).
    pub arterial_every: usize,
    /// Every `collector_every`-th street is a collector (0 disables).
    pub collector_every: usize,
    /// RNG seed for free-flow-speed jitter.
    pub seed: u64,
}

impl Default for GridParams {
    fn default() -> Self {
        GridParams {
            width: 10,
            height: 10,
            block_m: 250.0,
            arterial_every: 5,
            collector_every: 2,
            seed: 7,
        }
    }
}

/// Parameters of the ring-radial (metro-style) generator.
#[derive(Debug, Clone)]
pub struct RingRadialParams {
    /// Number of concentric rings (>= 1).
    pub rings: usize,
    /// Number of radial spokes (>= 3).
    pub spokes: usize,
    /// Radius increment per ring in metres.
    pub ring_gap_m: f64,
    /// Every `major_spoke_every`-th spoke is an arterial corridor.
    pub major_spoke_every: usize,
    /// RNG seed for free-flow-speed jitter.
    pub seed: u64,
}

impl Default for RingRadialParams {
    fn default() -> Self {
        RingRadialParams {
            rings: 5,
            spokes: 12,
            ring_gap_m: 800.0,
            major_spoke_every: 3,
            seed: 11,
        }
    }
}

fn class_speed(class: RoadClass, rng: &mut StdRng) -> f64 {
    // ±10 % per-segment jitter around the class base speed.
    class.base_speed_kmh() * rng.gen_range(0.9..1.1)
}

/// Connects every pair of segments that meet at a shared intersection.
fn connect_by_intersection(
    builder: &mut RoadGraphBuilder,
    intersections: &HashMap<(i64, i64), Vec<RoadId>>,
) {
    for roads in intersections.values() {
        for (i, &a) in roads.iter().enumerate() {
            for &b in &roads[i + 1..] {
                builder
                    .add_adjacency(a, b)
                    .expect("generator produced invalid adjacency");
            }
        }
    }
}

/// Generates a rectangular grid city.
///
/// Segments are the unit street pieces between adjacent intersections.
/// The outer boundary is a highway ring; interior streets whose row or
/// column index is a multiple of `arterial_every` are arterials, of
/// `collector_every` collectors, and locals otherwise.
pub fn grid_city(p: &GridParams) -> RoadGraph {
    assert!(
        p.width >= 2 && p.height >= 2,
        "grid needs >= 2x2 intersections"
    );
    let mut rng = StdRng::seed_from_u64(p.seed);
    let mut b = RoadGraphBuilder::with_capacity(2 * p.width * p.height, 8 * p.width * p.height);
    let mut at: HashMap<(i64, i64), Vec<RoadId>> = HashMap::new();

    let street_class = |idx: usize, last: usize| -> RoadClass {
        if idx == 0 || idx == last {
            RoadClass::Highway
        } else if p.arterial_every != 0 && idx % p.arterial_every == 0 {
            RoadClass::Arterial
        } else if p.collector_every != 0 && idx % p.collector_every == 0 {
            RoadClass::Collector
        } else {
            RoadClass::Local
        }
    };

    // Horizontal segments run along rows y = const.
    for y in 0..p.height {
        let class = street_class(y, p.height - 1);
        for x in 0..p.width - 1 {
            let meta = RoadMeta {
                class,
                length_m: p.block_m,
                free_flow_kmh: class_speed(class, &mut rng),
                position: ((x as f64 + 0.5) * p.block_m, y as f64 * p.block_m),
            };
            let id = b.add_road(meta);
            at.entry((x as i64, y as i64)).or_default().push(id);
            at.entry((x as i64 + 1, y as i64)).or_default().push(id);
        }
    }
    // Vertical segments run along columns x = const.
    for x in 0..p.width {
        let class = street_class(x, p.width - 1);
        for y in 0..p.height - 1 {
            let meta = RoadMeta {
                class,
                length_m: p.block_m,
                free_flow_kmh: class_speed(class, &mut rng),
                position: (x as f64 * p.block_m, (y as f64 + 0.5) * p.block_m),
            };
            let id = b.add_road(meta);
            at.entry((x as i64, y as i64)).or_default().push(id);
            at.entry((x as i64, y as i64 + 1)).or_default().push(id);
        }
    }

    connect_by_intersection(&mut b, &at);
    b.build()
}

/// Generates a ring-radial metro city: `rings` concentric ring roads
/// crossed by `spokes` radial corridors, all meeting at a centre point.
///
/// The outermost ring is a highway (ring expressway); inner rings are
/// arterials; radial segments are collectors, upgraded to arterials on
/// every `major_spoke_every`-th spoke; the innermost radial stubs are
/// locals.
pub fn ring_radial_city(p: &RingRadialParams) -> RoadGraph {
    assert!(
        p.rings >= 1 && p.spokes >= 3,
        "need >= 1 ring and >= 3 spokes"
    );
    let mut rng = StdRng::seed_from_u64(p.seed);
    let mut b = RoadGraphBuilder::with_capacity(2 * p.rings * p.spokes, 8 * p.rings * p.spokes);
    let mut at: HashMap<(i64, i64), Vec<RoadId>> = HashMap::new();

    // Intersection key: (ring, spoke); the centre is (0, 0) shared by all
    // first radial segments.
    let key = |ring: usize, spoke: usize| -> (i64, i64) {
        if ring == 0 {
            (0, 0)
        } else {
            (ring as i64, spoke as i64)
        }
    };
    let pos = |ring: usize, spoke: usize| -> (f64, f64) {
        let r = ring as f64 * p.ring_gap_m;
        let theta = spoke as f64 / p.spokes as f64 * std::f64::consts::TAU;
        (r * theta.cos(), r * theta.sin())
    };
    let midpoint = |a: (f64, f64), c: (f64, f64)| ((a.0 + c.0) / 2.0, (a.1 + c.1) / 2.0);

    // Ring segments.
    for ring in 1..=p.rings {
        let class = if ring == p.rings {
            RoadClass::Highway
        } else {
            RoadClass::Arterial
        };
        let radius = ring as f64 * p.ring_gap_m;
        let arc = std::f64::consts::TAU * radius / p.spokes as f64;
        for spoke in 0..p.spokes {
            let next = (spoke + 1) % p.spokes;
            let meta = RoadMeta {
                class,
                length_m: arc,
                free_flow_kmh: class_speed(class, &mut rng),
                position: midpoint(pos(ring, spoke), pos(ring, next)),
            };
            let id = b.add_road(meta);
            at.entry(key(ring, spoke)).or_default().push(id);
            at.entry(key(ring, next)).or_default().push(id);
        }
    }
    // Radial segments (ring -> ring+1 along each spoke, starting at the
    // centre).
    for spoke in 0..p.spokes {
        let major = p.major_spoke_every != 0 && spoke % p.major_spoke_every == 0;
        for ring in 0..p.rings {
            let class = if ring == 0 {
                RoadClass::Local
            } else if major {
                RoadClass::Arterial
            } else {
                RoadClass::Collector
            };
            let meta = RoadMeta {
                class,
                length_m: p.ring_gap_m,
                free_flow_kmh: class_speed(class, &mut rng),
                position: midpoint(pos(ring, spoke), pos(ring + 1, spoke)),
            };
            let id = b.add_road(meta);
            at.entry(key(ring, spoke)).or_default().push(id);
            at.entry(key(ring + 1, spoke)).or_default().push(id);
        }
    }

    connect_by_intersection(&mut b, &at);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_segment_count() {
        // w x h intersections: h rows of (w-1) horizontals + w cols of
        // (h-1) verticals.
        let g = grid_city(&GridParams {
            width: 4,
            height: 3,
            ..GridParams::default()
        });
        assert_eq!(g.num_roads(), 3 * 3 + 4 * 2);
    }

    #[test]
    fn grid_is_connected() {
        let g = grid_city(&GridParams {
            width: 6,
            height: 5,
            ..GridParams::default()
        });
        let comps = crate::path::connected_components(&g);
        assert_eq!(comps.iter().copied().max().unwrap() + 1, 1);
    }

    #[test]
    fn grid_has_highway_boundary() {
        let g = grid_city(&GridParams::default());
        let counts = g.class_counts();
        assert!(counts[RoadClass::Highway.group()] > 0);
        assert!(counts[RoadClass::Local.group()] > 0);
    }

    #[test]
    fn grid_deterministic_for_same_seed() {
        let p = GridParams::default();
        assert_eq!(grid_city(&p), grid_city(&p));
    }

    #[test]
    fn grid_seed_changes_speeds_only() {
        let a = grid_city(&GridParams::default());
        let b = grid_city(&GridParams {
            seed: 99,
            ..GridParams::default()
        });
        assert_eq!(a.num_roads(), b.num_roads());
        assert_eq!(a.num_edges(), b.num_edges());
        let differs = a
            .road_ids()
            .any(|r| a.meta(r).free_flow_kmh != b.meta(r).free_flow_kmh);
        assert!(differs);
    }

    #[test]
    fn ring_radial_segment_count() {
        let p = RingRadialParams {
            rings: 3,
            spokes: 8,
            ..RingRadialParams::default()
        };
        let g = ring_radial_city(&p);
        // rings * spokes ring segments + spokes * rings radial segments.
        assert_eq!(g.num_roads(), 3 * 8 + 8 * 3);
    }

    #[test]
    fn ring_radial_is_connected() {
        let g = ring_radial_city(&RingRadialParams::default());
        let comps = crate::path::connected_components(&g);
        assert_eq!(comps.iter().copied().max().unwrap() + 1, 1);
    }

    #[test]
    fn ring_radial_outer_ring_is_highway() {
        let p = RingRadialParams {
            rings: 2,
            spokes: 6,
            ..RingRadialParams::default()
        };
        let g = ring_radial_city(&p);
        let highways = g
            .road_ids()
            .filter(|&r| g.meta(r).class == RoadClass::Highway)
            .count();
        assert_eq!(highways, 6); // outer ring only
    }

    #[test]
    fn free_flow_jitter_within_ten_percent() {
        let g = grid_city(&GridParams::default());
        for r in g.road_ids() {
            let m = g.meta(r);
            let base = m.class.base_speed_kmh();
            assert!(m.free_flow_kmh >= base * 0.9 && m.free_flow_kmh <= base * 1.1);
        }
    }
}
