#![warn(missing_docs)]

//! Urban road-network substrate for the `crowdspeed` workspace.
//!
//! The paper's algorithms operate on *road segments*: the entities whose
//! speeds are estimated are segments, and two segments interact when they
//! meet at an intersection. This crate therefore models the network as a
//! graph whose **nodes are road segments** and whose undirected edges are
//! segment adjacencies (the line-graph view of the street map), stored in
//! compressed-sparse-row form for cache-friendly traversal.
//!
//! Provided here:
//! * [`graph::RoadGraph`] — immutable CSR road graph with per-segment
//!   metadata (class, length, free-flow speed, position);
//! * [`builder::RoadGraphBuilder`] — incremental construction;
//! * [`generate`] — synthetic city generators (grid and ring-radial),
//!   standing in for the paper's two real city maps (see `DESIGN.md` §1);
//! * [`path`] — BFS hop distances and Dijkstra used by the seed-selection
//!   influence computation;
//! * [`io`] — plain-text serialisation for datasets and debugging.
//!
//! # Example
//!
//! ```
//! use roadnet::generate::{grid_city, GridParams};
//!
//! let g = grid_city(&GridParams { width: 4, height: 3, ..GridParams::default() });
//! assert!(g.num_roads() > 0);
//! // Every adjacency is symmetric.
//! for r in g.road_ids() {
//!     for &n in g.neighbors(r) {
//!         assert!(g.neighbors(n).contains(&r));
//!     }
//! }
//! ```

pub mod builder;
pub mod generate;
pub mod graph;
pub mod io;
pub mod path;

pub use builder::RoadGraphBuilder;
pub use graph::{RoadClass, RoadGraph, RoadId, RoadMeta};

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// A road id is out of range for the graph.
    InvalidRoad(u32),
    /// A self-loop adjacency was requested.
    SelfLoop(u32),
    /// Parse failure while reading a serialised graph.
    Parse(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::InvalidRoad(r) => write!(f, "invalid road id {r}"),
            NetError::SelfLoop(r) => write!(f, "self-loop on road {r}"),
            NetError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, NetError>;
