//! Plain-text serialisation of road graphs.
//!
//! Format (line-oriented, whitespace-separated):
//!
//! ```text
//! roadnet v1
//! roads <n>
//! <id> <class> <length_m> <free_flow_kmh> <x> <y>     # n lines
//! edges <m>
//! <a> <b>                                             # m lines, a < b
//! ```
//!
//! The format is meant for fixtures, debugging and dataset snapshots;
//! it round-trips exactly for finite inputs printed at full precision.

use crate::builder::RoadGraphBuilder;
use crate::graph::{RoadClass, RoadGraph, RoadId, RoadMeta};
use crate::{NetError, Result};
use std::fmt::Write as _;

fn class_token(c: RoadClass) -> &'static str {
    match c {
        RoadClass::Highway => "H",
        RoadClass::Arterial => "A",
        RoadClass::Collector => "C",
        RoadClass::Local => "L",
    }
}

fn parse_class(tok: &str) -> Result<RoadClass> {
    match tok {
        "H" => Ok(RoadClass::Highway),
        "A" => Ok(RoadClass::Arterial),
        "C" => Ok(RoadClass::Collector),
        "L" => Ok(RoadClass::Local),
        other => Err(NetError::Parse(format!("unknown road class {other:?}"))),
    }
}

/// Serialises a graph to the text format.
pub fn write_text(g: &RoadGraph) -> String {
    let mut s = String::new();
    s.push_str("roadnet v1\n");
    let _ = writeln!(s, "roads {}", g.num_roads());
    for r in g.road_ids() {
        let m = g.meta(r);
        let _ = writeln!(
            s,
            "{} {} {} {} {} {}",
            r.0,
            class_token(m.class),
            m.length_m,
            m.free_flow_kmh,
            m.position.0,
            m.position.1
        );
    }
    let _ = writeln!(s, "edges {}", g.num_edges());
    for a in g.road_ids() {
        for &b in g.neighbors(a) {
            if a < b {
                let _ = writeln!(s, "{} {}", a.0, b.0);
            }
        }
    }
    s
}

fn parse_err(msg: impl Into<String>) -> NetError {
    NetError::Parse(msg.into())
}

fn parse_num<T: std::str::FromStr>(tok: Option<&str>, what: &str) -> Result<T> {
    tok.ok_or_else(|| parse_err(format!("missing {what}")))?
        .parse::<T>()
        .map_err(|_| parse_err(format!("bad {what}")))
}

/// Parses a graph from the text format produced by [`write_text`].
pub fn read_text(input: &str) -> Result<RoadGraph> {
    let mut lines = input.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or_else(|| parse_err("empty input"))?;
    if header.trim() != "roadnet v1" {
        return Err(parse_err(format!("bad header {header:?}")));
    }

    let roads_line = lines
        .next()
        .ok_or_else(|| parse_err("missing roads line"))?;
    let mut toks = roads_line.split_whitespace();
    if toks.next() != Some("roads") {
        return Err(parse_err("expected `roads <n>`"));
    }
    let n: usize = parse_num(toks.next(), "road count")?;

    let mut builder = RoadGraphBuilder::with_capacity(n, n * 3);
    for i in 0..n {
        let line = lines
            .next()
            .ok_or_else(|| parse_err(format!("missing road line {i}")))?;
        let mut t = line.split_whitespace();
        let id: u32 = parse_num(t.next(), "road id")?;
        if id as usize != i {
            return Err(parse_err(format!(
                "road ids must be dense; got {id} at {i}"
            )));
        }
        let class = parse_class(t.next().ok_or_else(|| parse_err("missing class"))?)?;
        let length_m: f64 = parse_num(t.next(), "length")?;
        let free_flow_kmh: f64 = parse_num(t.next(), "free-flow speed")?;
        let x: f64 = parse_num(t.next(), "x")?;
        let y: f64 = parse_num(t.next(), "y")?;
        builder.add_road(RoadMeta {
            class,
            length_m,
            free_flow_kmh,
            position: (x, y),
        });
    }

    let edges_line = lines
        .next()
        .ok_or_else(|| parse_err("missing edges line"))?;
    let mut toks = edges_line.split_whitespace();
    if toks.next() != Some("edges") {
        return Err(parse_err("expected `edges <m>`"));
    }
    let m: usize = parse_num(toks.next(), "edge count")?;
    for i in 0..m {
        let line = lines
            .next()
            .ok_or_else(|| parse_err(format!("missing edge line {i}")))?;
        let mut t = line.split_whitespace();
        let a: u32 = parse_num(t.next(), "edge endpoint")?;
        let b: u32 = parse_num(t.next(), "edge endpoint")?;
        builder.add_adjacency(RoadId(a), RoadId(b))?;
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{grid_city, GridParams};

    #[test]
    fn roundtrip_grid() {
        let g = grid_city(&GridParams {
            width: 4,
            height: 4,
            ..GridParams::default()
        });
        let text = write_text(&g);
        let g2 = read_text(&text).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(read_text("nope"), Err(NetError::Parse(_))));
    }

    #[test]
    fn rejects_truncated_roads() {
        let input = "roadnet v1\nroads 2\n0 L 100 30 0 0\n";
        assert!(read_text(input).is_err());
    }

    #[test]
    fn rejects_non_dense_ids() {
        let input = "roadnet v1\nroads 1\n5 L 100 30 0 0\nedges 0\n";
        assert!(read_text(input).is_err());
    }

    #[test]
    fn rejects_unknown_class() {
        let input = "roadnet v1\nroads 1\n0 X 100 30 0 0\nedges 0\n";
        assert!(matches!(read_text(input), Err(NetError::Parse(msg)) if msg.contains("class")));
    }

    #[test]
    fn rejects_edge_to_missing_road() {
        let input = "roadnet v1\nroads 1\n0 L 100 30 0 0\nedges 1\n0 9\n";
        assert_eq!(read_text(input).unwrap_err(), NetError::InvalidRoad(9));
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = RoadGraphBuilder::new().build();
        assert_eq!(read_text(&write_text(&g)).unwrap(), g);
    }
}
