//! Graph traversal: BFS hop distances, k-hop neighbourhoods, connected
//! components, and Dijkstra over arbitrary edge weights.
//!
//! Seed selection needs (a) the k-hop neighbourhood of a candidate seed
//! and (b) best-path influence products, which reduce to Dijkstra over
//! `-ln(weight)`; both live here so other crates can reuse them.

use crate::graph::{RoadGraph, RoadId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// BFS hop distance from `source` to every road, `u32::MAX` when
/// unreachable. `max_hops` bounds the frontier (use `u32::MAX` for
/// unbounded).
pub fn bfs_hops(g: &RoadGraph, source: RoadId, max_hops: u32) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.num_roads()];
    if g.num_roads() == 0 {
        return dist;
    }
    let mut queue = std::collections::VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        if du >= max_hops {
            continue;
        }
        for &v in g.neighbors(u) {
            if dist[v.index()] == u32::MAX {
                dist[v.index()] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Roads within `k` hops of `source` (excluding `source` itself), paired
/// with their hop distance, in BFS order.
pub fn k_hop_neighborhood(g: &RoadGraph, source: RoadId, k: u32) -> Vec<(RoadId, u32)> {
    let dist = bfs_hops(g, source, k);
    let mut out: Vec<(RoadId, u32)> = g
        .road_ids()
        .filter(|r| *r != source)
        .filter_map(|r| {
            let d = dist[r.index()];
            (d != u32::MAX && d <= k).then_some((r, d))
        })
        .collect();
    out.sort_by_key(|&(r, d)| (d, r));
    out
}

/// Connected-component label per road (labels are dense, assigned in
/// ascending road-id order of each component's first member).
pub fn connected_components(g: &RoadGraph) -> Vec<usize> {
    let n = g.num_roads();
    let mut comp = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut stack = Vec::new();
    for r in g.road_ids() {
        if comp[r.index()] != usize::MAX {
            continue;
        }
        comp[r.index()] = next;
        stack.push(r);
        while let Some(u) = stack.pop() {
            for &v in g.neighbors(u) {
                if comp[v.index()] == usize::MAX {
                    comp[v.index()] = next;
                    stack.push(v);
                }
            }
        }
        next += 1;
    }
    comp
}

#[derive(PartialEq)]
struct HeapEntry {
    cost: f64,
    node: RoadId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by cost; costs are finite non-NaN by construction.
        other
            .cost
            .partial_cmp(&self.cost)
            .expect("NaN cost in Dijkstra heap")
            .then_with(|| self.node.cmp(&other.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra from `source` with per-edge costs supplied by `edge_cost`
/// (must be `>= 0` and finite; return `f64::INFINITY` to forbid an
/// edge). Expansion stops beyond `max_cost`. Returns the distance array
/// (`f64::INFINITY` when unreachable).
pub fn dijkstra<F>(g: &RoadGraph, source: RoadId, max_cost: f64, mut edge_cost: F) -> Vec<f64>
where
    F: FnMut(RoadId, RoadId) -> f64,
{
    let mut dist = vec![f64::INFINITY; g.num_roads()];
    if g.num_roads() == 0 {
        return dist;
    }
    dist[source.index()] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(HeapEntry {
        cost: 0.0,
        node: source,
    });
    while let Some(HeapEntry { cost, node }) = heap.pop() {
        if cost > dist[node.index()] {
            continue; // stale entry
        }
        for &v in g.neighbors(node) {
            let w = edge_cost(node, v);
            debug_assert!(w >= 0.0, "negative edge cost in Dijkstra");
            let nd = cost + w;
            if nd < dist[v.index()] && nd <= max_cost {
                dist[v.index()] = nd;
                heap.push(HeapEntry { cost: nd, node: v });
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::RoadGraphBuilder;
    use crate::graph::RoadMeta;

    /// Path graph r0 - r1 - r2 - r3.
    fn path4() -> RoadGraph {
        let mut b = RoadGraphBuilder::new();
        let ids: Vec<_> = (0..4).map(|_| b.add_road(RoadMeta::default())).collect();
        for w in ids.windows(2) {
            b.add_adjacency(w[0], w[1]).unwrap();
        }
        b.build()
    }

    #[test]
    fn bfs_hops_on_path() {
        let g = path4();
        let d = bfs_hops(&g, RoadId(0), u32::MAX);
        assert_eq!(d, vec![0, 1, 2, 3]);
    }

    #[test]
    fn bfs_respects_max_hops() {
        let g = path4();
        let d = bfs_hops(&g, RoadId(0), 1);
        assert_eq!(d, vec![0, 1, u32::MAX, u32::MAX]);
    }

    #[test]
    fn k_hop_neighborhood_excludes_source_and_orders() {
        let g = path4();
        let nb = k_hop_neighborhood(&g, RoadId(1), 2);
        assert_eq!(nb, vec![(RoadId(0), 1), (RoadId(2), 1), (RoadId(3), 2)]);
    }

    #[test]
    fn components_two_islands() {
        let mut b = RoadGraphBuilder::new();
        let r0 = b.add_road(RoadMeta::default());
        let r1 = b.add_road(RoadMeta::default());
        let r2 = b.add_road(RoadMeta::default());
        let r3 = b.add_road(RoadMeta::default());
        b.add_adjacency(r0, r1).unwrap();
        b.add_adjacency(r2, r3).unwrap();
        let comps = connected_components(&b.build());
        assert_eq!(comps, vec![0, 0, 1, 1]);
    }

    #[test]
    fn dijkstra_uniform_matches_bfs() {
        let g = path4();
        let d = dijkstra(&g, RoadId(0), f64::INFINITY, |_, _| 1.0);
        assert_eq!(d, vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn dijkstra_prefers_cheaper_path() {
        // Square r0-r1-r3, r0-r2-r3 where the r2 route is cheaper.
        let mut b = RoadGraphBuilder::new();
        let ids: Vec<_> = (0..4).map(|_| b.add_road(RoadMeta::default())).collect();
        b.add_adjacency(ids[0], ids[1]).unwrap();
        b.add_adjacency(ids[1], ids[3]).unwrap();
        b.add_adjacency(ids[0], ids[2]).unwrap();
        b.add_adjacency(ids[2], ids[3]).unwrap();
        let g = b.build();
        let d = dijkstra(&g, ids[0], f64::INFINITY, |a, bb| {
            if a == ids[2] || bb == ids[2] {
                0.1
            } else {
                1.0
            }
        });
        assert!((d[3] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn dijkstra_max_cost_cuts_frontier() {
        let g = path4();
        let d = dijkstra(&g, RoadId(0), 1.5, |_, _| 1.0);
        assert_eq!(d[0], 0.0);
        assert_eq!(d[1], 1.0);
        assert!(d[2].is_infinite());
    }

    #[test]
    fn dijkstra_infinite_edge_blocks() {
        let g = path4();
        let d = dijkstra(&g, RoadId(0), f64::INFINITY, |a, b| {
            if a == RoadId(1) && b == RoadId(2) || a == RoadId(2) && b == RoadId(1) {
                f64::INFINITY
            } else {
                1.0
            }
        });
        assert!(d[2].is_infinite() && d[3].is_infinite());
    }
}
