//! Incremental construction of [`RoadGraph`]s.

use crate::graph::{RoadGraph, RoadId, RoadMeta};
use crate::{NetError, Result};

/// Builds a [`RoadGraph`] by adding segments and adjacencies, then
/// freezing into CSR with [`RoadGraphBuilder::build`].
///
/// Duplicate adjacencies are deduplicated at build time; self-loops are
/// rejected eagerly.
#[derive(Debug, Default, Clone)]
pub struct RoadGraphBuilder {
    meta: Vec<RoadMeta>,
    edges: Vec<(RoadId, RoadId)>,
}

impl RoadGraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder expecting roughly `roads` segments and `edges`
    /// adjacencies.
    pub fn with_capacity(roads: usize, edges: usize) -> Self {
        RoadGraphBuilder {
            meta: Vec::with_capacity(roads),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Adds a road segment, returning its id.
    pub fn add_road(&mut self, meta: RoadMeta) -> RoadId {
        let id = RoadId(self.meta.len() as u32);
        self.meta.push(meta);
        id
    }

    /// Number of roads added so far.
    pub fn num_roads(&self) -> usize {
        self.meta.len()
    }

    /// Declares that roads `a` and `b` meet at an intersection.
    pub fn add_adjacency(&mut self, a: RoadId, b: RoadId) -> Result<()> {
        let n = self.meta.len() as u32;
        if a.0 >= n {
            return Err(NetError::InvalidRoad(a.0));
        }
        if b.0 >= n {
            return Err(NetError::InvalidRoad(b.0));
        }
        if a == b {
            return Err(NetError::SelfLoop(a.0));
        }
        self.edges.push(if a < b { (a, b) } else { (b, a) });
        Ok(())
    }

    /// Freezes into an immutable CSR graph. Deduplicates parallel
    /// adjacencies and sorts each neighbour list.
    pub fn build(mut self) -> RoadGraph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let n = self.meta.len();
        let mut degrees = vec![0u32; n];
        for &(a, b) in &self.edges {
            degrees[a.index()] += 1;
            degrees[b.index()] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        for d in &degrees {
            let last = *offsets.last().expect("offsets non-empty");
            offsets.push(last + d);
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut targets = vec![RoadId(0); self.edges.len() * 2];
        for &(a, b) in &self.edges {
            targets[cursor[a.index()] as usize] = b;
            cursor[a.index()] += 1;
            targets[cursor[b.index()] as usize] = a;
            cursor[b.index()] += 1;
        }
        // Sort each neighbour list so `are_adjacent` can binary search.
        for i in 0..n {
            targets[offsets[i] as usize..offsets[i + 1] as usize].sort_unstable();
        }
        RoadGraph {
            offsets,
            targets,
            meta: self.meta,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_self_loop() {
        let mut b = RoadGraphBuilder::new();
        let r = b.add_road(RoadMeta::default());
        assert_eq!(b.add_adjacency(r, r).unwrap_err(), NetError::SelfLoop(0));
    }

    #[test]
    fn rejects_unknown_road() {
        let mut b = RoadGraphBuilder::new();
        let r = b.add_road(RoadMeta::default());
        assert_eq!(
            b.add_adjacency(r, RoadId(5)).unwrap_err(),
            NetError::InvalidRoad(5)
        );
    }

    #[test]
    fn dedups_parallel_edges() {
        let mut b = RoadGraphBuilder::new();
        let r0 = b.add_road(RoadMeta::default());
        let r1 = b.add_road(RoadMeta::default());
        b.add_adjacency(r0, r1).unwrap();
        b.add_adjacency(r1, r0).unwrap();
        b.add_adjacency(r0, r1).unwrap();
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(r0), 1);
        assert_eq!(g.degree(r1), 1);
    }

    #[test]
    fn empty_graph_builds() {
        let g = RoadGraphBuilder::new().build();
        assert_eq!(g.num_roads(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn isolated_roads_have_no_neighbors() {
        let mut b = RoadGraphBuilder::new();
        let r0 = b.add_road(RoadMeta::default());
        let _ = b.add_road(RoadMeta::default());
        let g = b.build();
        assert!(g.neighbors(r0).is_empty());
    }

    #[test]
    fn star_graph_degrees() {
        let mut b = RoadGraphBuilder::new();
        let hub = b.add_road(RoadMeta::default());
        let spokes: Vec<_> = (0..5).map(|_| b.add_road(RoadMeta::default())).collect();
        for &s in &spokes {
            b.add_adjacency(hub, s).unwrap();
        }
        let g = b.build();
        assert_eq!(g.degree(hub), 5);
        for &s in &spokes {
            assert_eq!(g.degree(s), 1);
            assert_eq!(g.neighbors(s), &[hub]);
        }
    }
}
