//! Property-based tests of the road-network substrate.

use proptest::prelude::*;
use roadnet::generate::{grid_city, ring_radial_city, GridParams, RingRadialParams};
use roadnet::{io, path, RoadGraphBuilder, RoadId, RoadMeta};

/// Strategy: a random undirected graph as (n, edge list).
fn random_graph() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..40).prop_flat_map(|n| {
        let edges = prop::collection::vec((0..n as u32, 0..n as u32), 0..80);
        (Just(n), edges)
    })
}

fn build(n: usize, edges: &[(u32, u32)]) -> roadnet::RoadGraph {
    let mut b = RoadGraphBuilder::new();
    for _ in 0..n {
        b.add_road(RoadMeta::default());
    }
    for &(x, y) in edges {
        if x != y {
            b.add_adjacency(RoadId(x), RoadId(y)).unwrap();
        }
    }
    b.build()
}

proptest! {
    #[test]
    fn adjacency_is_always_symmetric((n, edges) in random_graph()) {
        let g = build(n, &edges);
        for r in g.road_ids() {
            for &nb in g.neighbors(r) {
                prop_assert!(g.are_adjacent(nb, r));
                prop_assert!(g.are_adjacent(r, nb));
            }
        }
    }

    #[test]
    fn degree_sum_is_twice_edges((n, edges) in random_graph()) {
        let g = build(n, &edges);
        let degree_sum: usize = g.road_ids().map(|r| g.degree(r)).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
    }

    #[test]
    fn neighbor_lists_sorted_and_deduped((n, edges) in random_graph()) {
        let g = build(n, &edges);
        for r in g.road_ids() {
            let ns = g.neighbors(r);
            prop_assert!(ns.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn bfs_satisfies_triangle_inequality_on_edges((n, edges) in random_graph()) {
        let g = build(n, &edges);
        let d = path::bfs_hops(&g, RoadId(0), u32::MAX);
        for r in g.road_ids() {
            if d[r.index()] == u32::MAX {
                continue;
            }
            for &nb in g.neighbors(r) {
                if d[nb.index()] != u32::MAX {
                    let a = d[r.index()] as i64;
                    let b = d[nb.index()] as i64;
                    prop_assert!((a - b).abs() <= 1, "adjacent hops differ by more than 1");
                }
            }
        }
    }

    #[test]
    fn dijkstra_unit_costs_match_bfs((n, edges) in random_graph()) {
        let g = build(n, &edges);
        let bfs = path::bfs_hops(&g, RoadId(0), u32::MAX);
        let dij = path::dijkstra(&g, RoadId(0), f64::INFINITY, |_, _| 1.0);
        for r in g.road_ids() {
            match bfs[r.index()] {
                u32::MAX => prop_assert!(dij[r.index()].is_infinite()),
                h => prop_assert!((dij[r.index()] - h as f64).abs() < 1e-9),
            }
        }
    }

    #[test]
    fn components_partition_and_respect_edges((n, edges) in random_graph()) {
        let g = build(n, &edges);
        let comp = path::connected_components(&g);
        prop_assert_eq!(comp.len(), g.num_roads());
        for r in g.road_ids() {
            for &nb in g.neighbors(r) {
                prop_assert_eq!(comp[r.index()], comp[nb.index()]);
            }
        }
    }

    #[test]
    fn io_roundtrip_any_graph((n, edges) in random_graph()) {
        let g = build(n, &edges);
        let text = io::write_text(&g);
        let back = io::read_text(&text).unwrap();
        prop_assert_eq!(back, g);
    }

    #[test]
    fn grid_generator_invariants(w in 2usize..12, h in 2usize..12, seed in 0u64..1000) {
        let g = grid_city(&GridParams { width: w, height: h, seed, ..GridParams::default() });
        prop_assert_eq!(g.num_roads(), h * (w - 1) + w * (h - 1));
        // Connected.
        let comp = path::connected_components(&g);
        prop_assert!(comp.iter().all(|&c| c == 0));
        // Physical speeds.
        for r in g.road_ids() {
            prop_assert!(g.meta(r).free_flow_kmh > 0.0);
            prop_assert!(g.meta(r).length_m > 0.0);
        }
    }

    #[test]
    fn ring_radial_generator_invariants(rings in 1usize..8, spokes in 3usize..16, seed in 0u64..1000) {
        let g = ring_radial_city(&RingRadialParams { rings, spokes, seed, ..RingRadialParams::default() });
        prop_assert_eq!(g.num_roads(), 2 * rings * spokes);
        let comp = path::connected_components(&g);
        prop_assert!(comp.iter().all(|&c| c == 0));
    }
}
