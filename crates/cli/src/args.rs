//! Minimal `--key value` argument parsing (no external dependency).

use crate::{CliError, Result};
use std::collections::HashMap;

/// Parsed flags of one subcommand invocation.
#[derive(Debug, Default, Clone)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `--key value` pairs and bare `--switch` flags. A token
    /// starting with `--` followed by another `--token` (or nothing) is
    /// treated as a switch.
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Args> {
        let tokens: Vec<String> = tokens.into_iter().collect();
        let mut values = HashMap::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < tokens.len() {
            let t = &tokens[i];
            let Some(key) = t.strip_prefix("--") else {
                return Err(CliError::new(format!("unexpected argument {t:?}")));
            };
            if key.is_empty() {
                return Err(CliError::new("empty flag `--`"));
            }
            let next_is_value = tokens
                .get(i + 1)
                .map(|n| !n.starts_with("--"))
                .unwrap_or(false);
            if next_is_value {
                values.insert(key.to_string(), tokens[i + 1].clone());
                i += 2;
            } else {
                flags.push(key.to_string());
                i += 1;
            }
        }
        Ok(Args { values, flags })
    }

    /// String value of `key`, or an error naming the missing flag.
    pub fn require(&self, key: &str) -> Result<&str> {
        self.values
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| CliError::new(format!("missing required flag --{key}")))
    }

    /// Optional string value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Parsed numeric value with a default.
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::new(format!("flag --{key}: cannot parse {v:?}"))),
        }
    }

    /// True when the bare switch was passed.
    pub fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn key_values_and_switches() {
        let a = parse("--city metro --k 20 --verbose --out dir");
        assert_eq!(a.require("city").unwrap(), "metro");
        assert_eq!(a.num::<usize>("k", 0).unwrap(), 20);
        assert!(a.has_flag("verbose"));
        assert!(!a.has_flag("quiet"));
        assert_eq!(a.get("out"), Some("dir"));
    }

    #[test]
    fn missing_required_flag_errors() {
        let a = parse("--k 5");
        assert!(a.require("city").is_err());
    }

    #[test]
    fn numeric_default_and_parse_error() {
        let a = parse("--k notanumber");
        assert!(a.num::<usize>("k", 1).is_err());
        let b = parse("");
        assert_eq!(b.num::<usize>("k", 7).unwrap(), 7);
    }

    #[test]
    fn rejects_positional_arguments() {
        assert!(Args::parse(vec!["stray".to_string()]).is_err());
    }

    #[test]
    fn consecutive_switches() {
        let a = parse("--quick --force --k 3");
        assert!(a.has_flag("quick") && a.has_flag("force"));
        assert_eq!(a.num::<usize>("k", 0).unwrap(), 3);
    }
}
