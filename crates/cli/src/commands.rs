//! Subcommand implementations.

use crate::args::Args;
use crate::{store, CliError, Result};
use crowdspeed::eval::{evaluate, EvalConfig, Method};
use crowdspeed::prelude::*;
use std::path::{Path, PathBuf};
use trafficsim::dataset::{grid_medium, metro_medium, metro_small, Dataset, DatasetParams};

fn dataset_dir(args: &Args) -> Result<PathBuf> {
    Ok(PathBuf::from(args.require("dir")?))
}

fn preset(name: &str, params: &DatasetParams) -> Result<Dataset> {
    match name {
        "metro" => Ok(metro_medium(params)),
        "grid" => Ok(grid_medium(params)),
        "metro-small" => Ok(metro_small(params)),
        other => Err(CliError::new(format!(
            "unknown city {other:?} (expected metro | grid | metro-small)"
        ))),
    }
}

/// `generate --city metro --dir DIR [--training-days N --test-days N --seed S]
/// [--shift-day D --shift-fraction F --shift-drop C --shift-swaps N --shift-seed S]
/// [--history-from-tests A:B]`
///
/// With `--shift-day D`, truth days `D` onward carry a reproducible
/// regime shift ([`trafficsim::RegimeSimulator`]): a fraction of roads
/// permanently lose capacity and rerouted corridor pairs swap their
/// traffic profiles. The probe-observed training history stays
/// pre-shift. `--history-from-tests A:B` replaces the written history
/// with the *dense* truth days `[A, B)` — how a drift drill builds the
/// cold-trained reference dataset matching a rebootstrapped daemon's
/// trailing window.
pub fn generate(args: &Args) -> Result<String> {
    let dir = dataset_dir(args)?;
    std::fs::create_dir_all(&dir)?;
    let params = DatasetParams {
        training_days: args.num("training-days", 20)?,
        test_days: args.num("test-days", 3)?,
        seed: args.num("seed", 2016)?,
        ..DatasetParams::default()
    };
    let mut ds = preset(args.require("city")?, &params)?;
    let mut shift_note = String::new();
    if let Some(day) = args.get("shift-day") {
        let shift_truth_day: u64 = day
            .parse()
            .map_err(|_| CliError::new("--shift-day: bad integer"))?;
        let config = trafficsim::RegimeShiftConfig {
            // The flag counts truth days; truth day d is simulated day
            // training_days + d, so the training history is untouched.
            shift_day: params.training_days as u64 + shift_truth_day,
            drop_fraction: args.num("shift-fraction", 0.3)?,
            capacity_drop: args.num("shift-drop", 0.35)?,
            swap_pairs: args.num("shift-swaps", 8)?,
            seed: args.num("shift-seed", 7)?,
        };
        let regime = trafficsim::RegimeSimulator::new(ds.simulator.clone(), config);
        ds.test_days = regime.simulate_days(params.training_days as u64, params.test_days);
        shift_note = format!(
            ", shift from truth day {shift_truth_day} ({} roads affected)",
            regime.plan().affected_roads().len()
        );
    }
    if let Some(range) = args.get("history-from-tests") {
        let (a, b) = range
            .split_once(':')
            .and_then(|(a, b)| Some((a.parse::<usize>().ok()?, b.parse::<usize>().ok()?)))
            .filter(|&(a, b)| a < b && b <= ds.test_days.len())
            .ok_or_else(|| {
                CliError::new(format!(
                    "--history-from-tests expects A:B with A < B <= {}",
                    ds.test_days.len()
                ))
            })?;
        ds.history = HistoricalData::from_days(ds.clock, ds.test_days[a..b].to_vec());
    }
    store::write_network(&dir, &ds.graph)?;
    store::write_clock(&dir, ds.clock)?;
    store::write_history(&dir, &ds.history)?;
    for (d, field) in ds.test_days.iter().enumerate() {
        store::write_truth(&dir, d, field)?;
    }
    Ok(format!(
        "wrote {} ({} roads, {} training days, {} truth days{shift_note}) to {}",
        ds.name,
        ds.graph.num_roads(),
        ds.history.num_days(),
        ds.test_days.len(),
        dir.display()
    ))
}

/// Loads (graph, history, stats, correlation) from a dataset dir.
fn load_model_inputs(
    dir: &Path,
) -> Result<(
    roadnet::RoadGraph,
    HistoricalData,
    HistoryStats,
    CorrelationGraph,
)> {
    let graph = store::read_network(dir)?;
    let history = store::read_history(dir)?;
    if history.num_roads() != graph.num_roads() {
        return Err(CliError::new("history and network disagree on road count"));
    }
    let stats = HistoryStats::compute(&history);
    let corr = CorrelationGraph::build(&graph, &history, &stats, &CorrelationConfig::default());
    Ok((graph, history, stats, corr))
}

/// `select --dir DIR --k N [--algo lazy|greedy|partition|random|degree|pagerank]`
pub fn select(args: &Args) -> Result<String> {
    let dir = dataset_dir(args)?;
    let k: usize = args.num("k", 0)?;
    if k == 0 {
        return Err(CliError::new("missing or zero --k"));
    }
    let (graph, history, stats, corr) = load_model_inputs(&dir)?;
    let algo = args.get("algo").unwrap_or("lazy");
    let influence_cfg = InfluenceConfig::default();
    let seeds = match algo {
        "lazy" => {
            let influence = InfluenceModel::build(&corr, &influence_cfg);
            lazy_greedy(&influence, k).seeds
        }
        "greedy" => {
            let influence = InfluenceModel::build(&corr, &influence_cfg);
            greedy(&influence, k).seeds
        }
        "partition" => partition_greedy(&corr, &influence_cfg, k, 8).seeds,
        "random" => random_seeds(graph.num_roads(), k, args.num("seed", 42)?),
        "degree" => top_degree(&corr, k),
        "pagerank" => pagerank_seeds(&corr, k, 0.85, 50),
        "variance" => top_variance(&history, &stats, k),
        other => {
            return Err(CliError::new(format!(
                "unknown --algo {other:?} (lazy | greedy | partition | random | degree | pagerank | variance)"
            )))
        }
    };
    store::write_seeds(&dir, &seeds)?;
    let influence = InfluenceModel::build(&corr, &influence_cfg);
    let coverage = SeedObjective::new(&influence).value(&seeds);
    Ok(format!(
        "selected {} seeds via {algo} (coverage {coverage:.1} of {} roads) -> {}/seeds.txt",
        seeds.len(),
        graph.num_roads(),
        dir.display()
    ))
}

/// `estimate --dir DIR --slot S (--obs FILE | --truth-day D)`
///
/// Prints `road_id estimated_speed trend` per road to stdout.
pub fn estimate(args: &Args) -> Result<String> {
    let dir = dataset_dir(args)?;
    let slot: usize = args.num("slot", usize::MAX)?;
    let (graph, history, stats, corr) = load_model_inputs(&dir)?;
    if slot >= history.clock().slots_per_day {
        return Err(CliError::new(format!(
            "--slot must be < {}",
            history.clock().slots_per_day
        )));
    }
    let seeds = store::read_seeds(&dir, graph.num_roads())?;

    let obs: Vec<(roadnet::RoadId, f64)> = if let Some(path) = args.get("obs") {
        let text = std::fs::read_to_string(path)?;
        let parsed = store::parse_observations(&text, graph.num_roads())?;
        // Keep only observations for actual seeds.
        parsed
            .into_iter()
            .filter(|(r, _)| seeds.contains(r))
            .collect()
    } else {
        let day: usize = args.num("truth-day", 0)?;
        let truth = store::read_truth(&dir, day)?;
        seeds.iter().map(|&s| (s, truth.speed(slot, s))).collect()
    };

    let est = TrafficEstimator::train(
        &graph,
        &history,
        &stats,
        &corr,
        &seeds,
        &EstimatorConfig::default(),
    )
    .map_err(|e| CliError::new(format!("training failed: {e}")))?;
    let result = est.estimate(slot, &obs);

    let mut out = String::new();
    for r in graph.road_ids() {
        out.push_str(&format!(
            "{} {:.2} {}\n",
            r.0,
            result.speeds[r.index()],
            if result.trends[r.index()] {
                "up"
            } else {
                "down"
            }
        ));
    }
    print!("{out}");
    Ok(format!(
        "estimated {} roads at slot {slot} from {} observations",
        graph.num_roads(),
        obs.len()
    ))
}

/// `train --dir DIR [--train-threads N]`
///
/// Trains the full two-step estimator (trend MRFs + HLM) from the
/// dataset dir's seeds on `N` worker threads (`0` = all cores, the
/// default; `1` = serial) and reports wall-clock timing. The trained
/// model is bit-identical for every thread count, so this doubles as a
/// scaling smoke check on the target machine.
pub fn train(args: &Args) -> Result<String> {
    let dir = dataset_dir(args)?;
    let (graph, history, stats, corr) = load_model_inputs(&dir)?;
    let seeds = store::read_seeds(&dir, graph.num_roads())?;
    let config = EstimatorConfig {
        train_threads: args.num("train-threads", 0)?,
        ..EstimatorConfig::default()
    };
    let start = std::time::Instant::now();
    let est = TrafficEstimator::train(&graph, &history, &stats, &corr, &seeds, &config)
        .map_err(|e| CliError::new(format!("training failed: {e}")))?;
    let elapsed = start.elapsed();
    let threads = crowdspeed::parallel::resolve_threads(config.train_threads);
    let covered = est.coverage().iter().filter(|&&c| c > 0.5).count();
    Ok(format!(
        "trained two-step estimator in {elapsed:?} on {threads} thread(s): \
         {} seeds, {} corr edges, {covered}/{} roads covered (>0.5 confidence)",
        est.seeds().len(),
        corr.num_edges(),
        graph.num_roads()
    ))
}

/// Parses `--method` into an evaluation [`Method`] (default two-step).
fn parse_method(args: &Args) -> Result<Method> {
    match args.get("method").unwrap_or("two-step") {
        "two-step" => Ok(Method::TwoStep(EstimatorConfig::default())),
        "hist-mean" => Ok(Method::HistoricalMean),
        "knn" => Ok(Method::KnnSpatial { k: 5 }),
        "global-lr" => Ok(Method::GlobalRegression),
        "label-prop" => Ok(Method::LabelPropagation {
            iterations: 30,
            anchor: 0.2,
        }),
        other => Err(CliError::new(format!("unknown --method {other:?}"))),
    }
}

/// `eval --dir DIR [--method two-step|hist-mean|knn|global-lr|label-prop] [--truth-days N]`
pub fn eval(args: &Args) -> Result<String> {
    let dir = dataset_dir(args)?;
    let (graph, history, _stats, _corr) = load_model_inputs(&dir)?;
    let seeds = store::read_seeds(&dir, graph.num_roads())?;
    let method = parse_method(args)?;
    // Rebuild a Dataset shell for the harness from on-disk pieces.
    let mut test_days = Vec::new();
    let mut d = 0;
    while let Ok(field) = store::read_truth(&dir, d) {
        test_days.push(field);
        d += 1;
        if d >= args.num("truth-days", 31)? {
            break;
        }
    }
    if test_days.is_empty() {
        return Err(CliError::new("no truth-<d>.snap files in the dataset dir"));
    }
    let clock = *history.clock();
    let simulator = trafficsim::TrafficSimulator::new(
        graph.clone(),
        clock,
        trafficsim::TrafficParams::default(),
        0,
    );
    let ds = Dataset {
        name: "on-disk",
        graph,
        clock,
        history,
        test_days,
        simulator,
    };
    let step = (clock.slots_per_day / 12).max(1);
    let rep = evaluate(
        &ds,
        &seeds,
        &method,
        &EvalConfig {
            slots: (0..clock.slots_per_day).step_by(step).collect(),
            ..EvalConfig::default()
        },
    );
    Ok(format!(
        "{}: K={} rounds={} MAPE={:.4} MAE={:.2} RMSE={:.2} trend-acc={:.3} train={:?} est/slot={:?}",
        rep.method,
        rep.k,
        rep.rounds,
        rep.error.mape,
        rep.error.mae,
        rep.error.rmse,
        rep.trend_accuracy,
        rep.train_time,
        rep.estimate_time_per_slot,
    ))
}

/// `serve --dir DIR [--method M] [--threads N] [--truth-day D] [--repeat R]`
///
/// Replays every slot of a truth day as one batch of estimation
/// requests through the parallel serving front end and reports
/// throughput and per-request latency. `--repeat` replays the day R
/// times to lengthen the batch for stable numbers.
pub fn serve(args: &Args) -> Result<String> {
    let dir = dataset_dir(args)?;
    let (graph, history, stats, corr) = load_model_inputs(&dir)?;
    let seeds = store::read_seeds(&dir, graph.num_roads())?;
    let method = parse_method(args)?;
    let threads: usize = args.num::<usize>("threads", 4)?.max(1);
    let repeat: usize = args.num("repeat", 1)?;
    let day: usize = args.num("truth-day", 0)?;
    let truth = store::read_truth(&dir, day)?;
    let clock = *history.clock();

    let requests: Vec<EstimateRequest> = (0..repeat.max(1))
        .flat_map(|_| {
            let truth = &truth;
            let seeds = &seeds;
            (0..clock.slots_per_day).map(move |slot| EstimateRequest {
                slot_of_day: slot,
                observations: seeds.iter().map(|&s| (s, truth.speed(slot, s))).collect(),
            })
        })
        .collect();

    // Dataset shell so any method can be built through the shared
    // serving interface.
    let simulator = trafficsim::TrafficSimulator::new(
        graph.clone(),
        clock,
        trafficsim::TrafficParams::default(),
        0,
    );
    let ds = Dataset {
        name: "on-disk",
        graph,
        clock,
        history,
        test_days: vec![truth.clone()],
        simulator,
    };
    let model = crowdspeed::eval::build_model(&ds, &stats, &corr, &seeds, &method);

    let out = serve_batch(model.as_ref(), &requests, &ServeOptions { threads });
    let errors = out.estimates.iter().filter(|e| e.is_err()).count();
    let m = out.metrics;
    Ok(format!(
        "{}: served {} requests ({errors} errors) on {} thread(s): {:.1} req/s (wall {:?}), latency mean {:?} / min {:?} / max {:?}",
        method.name(),
        m.requests,
        threads,
        m.throughput(),
        m.wall_time,
        m.mean_latency(),
        m.min_latency,
        m.max_latency,
    ))
}

/// `daemon --dir DIR [--addr HOST:PORT] [--workers N] [--queue N] [--deadline-ms D]
/// [--snapshot-dir DIR] [--snapshot-keep N] [--frame-deadline-ms D]
/// [--rate-limit-rps R] [--shards N [--shard-index I]] [--restart-backoff-ms MS]
/// [--drift-threshold T [--drift-cooldown-days N] [--drift-window-days W]]`
///
/// `--drift-threshold T` (> 0) arms drift adaptation: every ingest
/// compares the live correlation accumulator against the frozen
/// training context, and when the signal reaches `T` (cooldown and
/// window permitting) the daemon rebootstraps on the trailing
/// `--drift-window-days` days, re-selects the seed set, and publishes
/// the rebuilt model atomically — surfaced as the `drift_*` family in
/// `STATS`.
///
/// Trains an estimator from the dataset dir and serves it over TCP
/// until a `SHUTDOWN` frame arrives. With `--snapshot-dir` the daemon
/// resumes from the newest valid snapshot instead of retraining (and
/// persists every epoch it publishes). Prints `listening on ADDR` once
/// reachable (scripts wait for that line).
///
/// `--shards N` (N > 1) starts sharded mode: N worker processes (this
/// same binary with `--shard-index I`) supervised by a fleet manager,
/// fronted by a scatter-gather router on `--addr` that speaks the
/// identical protocol. `--shard-index` alone runs one shard worker
/// serving only its owned roads.
pub fn daemon(args: &Args) -> Result<String> {
    use std::io::Write;
    let shards: usize = args.num("shards", 1)?;
    let shard_index: Option<usize> = args
        .get("shard-index")
        .map(|_| args.num("shard-index", 0))
        .transpose()?;
    if shards > 1 && shard_index.is_none() {
        return daemon_fleet(args, shards);
    }
    let dir = dataset_dir(args)?;
    let graph = store::read_network(&dir)?;
    let history = store::read_history(&dir)?;
    if history.num_roads() != graph.num_roads() {
        return Err(CliError::new("history and network disagree on road count"));
    }
    let seeds = store::read_seeds(&dir, graph.num_roads())?;
    let shard = match shard_index {
        None => None,
        Some(index) => {
            if index >= shards.max(1) {
                return Err(CliError::new(format!(
                    "--shard-index {index} out of range for --shards {shards}"
                )));
            }
            // The plan is a pure function of the dataset, so every
            // worker (and the router) derives the identical plan
            // independently — no coordination channel needed.
            let plan = crowdspeed_server::dataset_plan(
                &graph,
                &history,
                &CorrelationConfig::default(),
                shards.max(1),
            )
            .map_err(|e| CliError::new(format!("shard planning failed: {e}")))?;
            Some(crowdspeed_server::ShardSpec { index, plan })
        }
    };
    let inputs = crowdspeed_server::TrainInputs {
        graph,
        history,
        seeds,
        corr_config: CorrelationConfig::default(),
        config: EstimatorConfig {
            // Initial training and INGEST_DAY retrains both run off the
            // serving path, so they can use every core by default.
            train_threads: args.num("train-threads", 0)?,
            // Largest fraction of the live graph's edges one day's
            // delta may touch before the retrain re-anchors and falls
            // back to a full rebuild.
            max_incremental_fraction: args.num(
                "max-incremental-fraction",
                EstimatorConfig::default().max_incremental_fraction,
            )?,
            // `--drift-threshold 0` (the default) leaves drift
            // detection off entirely.
            drift: {
                let threshold: f64 = args.num("drift-threshold", 0.0)?;
                (threshold > 0.0).then_some(crowdspeed::drift::DriftConfig {
                    threshold,
                    cooldown_days: args.num(
                        "drift-cooldown-days",
                        crowdspeed::drift::DriftConfig::default().cooldown_days,
                    )?,
                    window_days: args.num(
                        "drift-window-days",
                        crowdspeed::drift::DriftConfig::default().window_days,
                    )?,
                })
            },
            ..EstimatorConfig::default()
        },
    };
    let deadline_ms: u64 = args.num("deadline-ms", 0)?;
    let defaults = crowdspeed_server::DaemonConfig::default();
    let frame_deadline_ms: u64 =
        args.num("frame-deadline-ms", defaults.frame_deadline_ms.unwrap_or(0))?;
    let rate_limit_rps: u32 = args.num("rate-limit-rps", 0)?;
    let config = crowdspeed_server::DaemonConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:7700").to_string(),
        workers: args.num::<usize>("workers", 4)?.max(1),
        queue_capacity: args.num::<usize>("queue", 64)?.max(1),
        default_deadline_ms: (deadline_ms > 0).then_some(deadline_ms),
        max_connections: args.num::<usize>("max-connections", 1024)?.max(1),
        snapshot_dir: args.get("snapshot-dir").map(PathBuf::from),
        snapshot_keep: args
            .num::<usize>("snapshot-keep", defaults.snapshot_keep)?
            .max(1),
        frame_deadline_ms: (frame_deadline_ms > 0).then_some(frame_deadline_ms),
        rate_limit_rps: (rate_limit_rps > 0).then_some(rate_limit_rps),
        shard,
        ..defaults
    };
    let handle = crowdspeed_server::Daemon::spawn_from(inputs, config)
        .map_err(|e| CliError::new(format!("daemon failed to start: {e}")))?;
    let addr = handle.addr();
    println!("listening on {addr}");
    std::io::stdout().flush().ok();
    handle.wait();
    Ok(format!("daemon on {addr} shut down cleanly"))
}

/// Copies a `--key value` flag into a worker's argv if it was given.
fn forward_flag(args: &Args, worker_args: &mut Vec<String>, key: &str) {
    if let Some(v) = args.get(key) {
        worker_args.push(format!("--{key}"));
        worker_args.push(v.to_string());
    }
}

/// Sharded `daemon --shards N`: spawn the worker fleet, wait until
/// every worker answers, then run the scatter-gather router on
/// `--addr`. Workers are this same binary with `--shard-index`, listen
/// on consecutive ports after the router's, and are restarted by the
/// fleet supervisor if they crash.
fn daemon_fleet(args: &Args, shards: usize) -> Result<String> {
    use std::io::Write;
    let dir = dataset_dir(args)?;
    let dirs = dir.display().to_string();
    let graph = store::read_network(&dir)?;
    let history = store::read_history(&dir)?;
    if history.num_roads() != graph.num_roads() {
        return Err(CliError::new("history and network disagree on road count"));
    }
    // Fail before spawning anything if the dataset is incomplete —
    // workers would just crash-loop on the same error.
    store::read_seeds(&dir, graph.num_roads())?;
    let plan =
        crowdspeed_server::dataset_plan(&graph, &history, &CorrelationConfig::default(), shards)
            .map_err(|e| CliError::new(format!("shard planning failed: {e}")))?;

    let addr = args.get("addr").unwrap_or("127.0.0.1:7700");
    let (host, port) = addr
        .rsplit_once(':')
        .and_then(|(h, p)| p.parse::<u16>().ok().map(|p| (h, p)))
        .ok_or_else(|| CliError::new(format!("--addr {addr:?} is not HOST:PORT")))?;
    if port == 0 {
        return Err(CliError::new(
            "--shards needs a fixed --addr port (workers bind the ports after it)",
        ));
    }
    let exe = std::env::current_exe()?;
    let snapshot_root = args.get("snapshot-dir").map(PathBuf::from);
    let mut shard_addrs = Vec::with_capacity(shards);
    let mut specs = Vec::with_capacity(shards);
    for i in 0..shards {
        let worker_port = port
            .checked_add(1 + i as u16)
            .ok_or_else(|| CliError::new("worker port overflows u16; pick a lower --addr port"))?;
        let worker_addr = format!("{host}:{worker_port}");
        let mut worker_args = vec![
            "daemon".to_string(),
            "--dir".to_string(),
            dirs.clone(),
            "--shards".to_string(),
            shards.to_string(),
            "--shard-index".to_string(),
            i.to_string(),
            "--addr".to_string(),
            worker_addr.clone(),
        ];
        for key in [
            "workers",
            "queue",
            "deadline-ms",
            "train-threads",
            "max-incremental-fraction",
            "max-connections",
            "snapshot-keep",
            "frame-deadline-ms",
            "rate-limit-rps",
            "drift-threshold",
            "drift-cooldown-days",
            "drift-window-days",
        ] {
            forward_flag(args, &mut worker_args, key);
        }
        if let Some(root) = &snapshot_root {
            let shard_dir = root.join(format!("shard-{i}"));
            std::fs::create_dir_all(&shard_dir)?;
            worker_args.push("--snapshot-dir".to_string());
            worker_args.push(shard_dir.display().to_string());
        }
        let owned = plan.owned_roads(i);
        let sample: Vec<String> = owned.iter().take(3).map(|r| r.0.to_string()).collect();
        println!(
            "shard {i} owns {} roads sample={} addr={worker_addr}",
            owned.len(),
            sample.join(",")
        );
        shard_addrs.push(worker_addr);
        specs.push(crowdspeed_server::WorkerSpec {
            program: exe.clone(),
            args: worker_args,
        });
    }
    std::io::stdout().flush().ok();

    let backoff_ms: u64 = args.num("restart-backoff-ms", 1000)?;
    let fleet =
        crowdspeed_server::Fleet::spawn(specs, std::time::Duration::from_millis(backoff_ms.max(1)));

    // Workers replicate full training at first boot, so give them real
    // time; with snapshot dirs a restart resumes in milliseconds.
    let probe_config = crowdspeed_server::ClientConfig {
        connect_timeout: Some(std::time::Duration::from_millis(500)),
        ..crowdspeed_server::ClientConfig::default()
    };
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(600);
    for (i, worker_addr) in shard_addrs.iter().enumerate() {
        loop {
            if crowdspeed_server::Client::connect_with(worker_addr.as_str(), probe_config.clone())
                .is_ok()
            {
                break;
            }
            if std::time::Instant::now() > deadline {
                fleet.shutdown();
                return Err(CliError::new(format!(
                    "shard {i} at {worker_addr} never became reachable"
                )));
            }
            std::thread::sleep(std::time::Duration::from_millis(100));
        }
    }
    println!("fleet ready ({shards} shards)");
    std::io::stdout().flush().ok();

    let mut router_config =
        crowdspeed_server::RouterConfig::new(addr.to_string(), shard_addrs, plan);
    router_config.fleet = Some(fleet.status_handle());
    if args.has_flag("shard-binary") {
        // Router → worker links speak the compact binary codec; the
        // client-facing side still answers in whatever codec each
        // request arrived in.
        router_config.shard_client.codec = crowdspeed_server::Codec::Binary;
    }
    let handle = crowdspeed_server::Router::spawn(router_config)
        .map_err(|e| CliError::new(format!("router failed to start: {e}")))?;
    let bound = handle.addr();
    println!("listening on {bound}");
    std::io::stdout().flush().ok();
    handle.wait();
    fleet.shutdown();
    Ok(format!(
        "router on {bound} and its {shards}-shard fleet shut down cleanly"
    ))
}

/// Parses `--key value` flags shared by the client actions and builds
/// a client with the requested timeout/retry policy. Defaults mirror
/// [`crowdspeed_server::ClientConfig::default`]; `--timeout-ms 0` or
/// `--connect-timeout-ms 0` disables the respective bound, and the
/// bare `--binary` switch selects the compact binary codec (replies
/// stay bit-identical to JSON either way).
fn client_config(args: &Args) -> Result<crowdspeed_server::ClientConfig> {
    let defaults = crowdspeed_server::ClientConfig::default();
    let timeout_ms: u64 = args.num(
        "timeout-ms",
        defaults.request_timeout.map_or(0, |t| t.as_millis() as u64),
    )?;
    let connect_timeout_ms: u64 = args.num(
        "connect-timeout-ms",
        defaults.connect_timeout.map_or(0, |t| t.as_millis() as u64),
    )?;
    let backoff_ms: u64 = args.num("backoff-ms", defaults.backoff_base.as_millis() as u64)?;
    Ok(crowdspeed_server::ClientConfig {
        connect_timeout: (connect_timeout_ms > 0)
            .then(|| std::time::Duration::from_millis(connect_timeout_ms)),
        request_timeout: (timeout_ms > 0).then(|| std::time::Duration::from_millis(timeout_ms)),
        write_timeout: (timeout_ms > 0).then(|| std::time::Duration::from_millis(timeout_ms)),
        retries: args.num("retries", defaults.retries)?,
        backoff_base: std::time::Duration::from_millis(backoff_ms.max(1)),
        codec: if args.has_flag("binary") {
            crowdspeed_server::Codec::Binary
        } else {
            crowdspeed_server::Codec::Json
        },
        ..defaults
    })
}

fn client_connect(args: &Args) -> Result<crowdspeed_server::Client> {
    let addr = args.get("addr").unwrap_or("127.0.0.1:7700");
    let config = client_config(args)?;
    crowdspeed_server::Client::connect_with(addr, config)
        .map_err(|e| CliError::new(format!("cannot reach daemon at {addr}: {e}")))
}

/// `client ACTION --addr HOST:PORT ...` where ACTION is one of
/// `estimate`, `ingest`, `stats`, `snapshot`, `drill`, `shutdown`.
/// Every action accepts `--binary` to speak the compact binary codec.
pub fn client(action: &str, args: &Args) -> Result<String> {
    let mut client = client_connect(args)?;
    match action {
        // `client estimate (--slot S | --slots A,B,C) (--obs FILE | --dir DIR --truth-day D)`
        //
        // `--slots` sends one batched ESTIMATE_BATCH frame instead of a
        // round-trip per slot and prints a summary line per item.
        "estimate" => {
            let slots: Vec<usize> = match args.get("slots") {
                Some(csv) => csv
                    .split(',')
                    .filter(|t| !t.trim().is_empty())
                    .map(|t| {
                        t.trim().parse().map_err(|_| {
                            CliError::new(format!("--slots: cannot parse {:?}", t.trim()))
                        })
                    })
                    .collect::<Result<_>>()?,
                None => {
                    let slot: usize = args.num("slot", usize::MAX)?;
                    if slot == usize::MAX {
                        return Err(CliError::new("missing required flag --slot or --slots"));
                    }
                    vec![slot]
                }
            };
            if slots.is_empty() {
                return Err(CliError::new("--slots lists no slots"));
            }
            // Observation source: a file applies to every slot, a truth
            // day samples the chosen seeds per slot.
            let file_obs: Option<Vec<(u32, f64)>> = match args.get("obs") {
                Some(path) => {
                    let text = std::fs::read_to_string(path)?;
                    Some(
                        store::parse_observations(&text, u32::MAX as usize)?
                            .into_iter()
                            .map(|(r, v)| (r.0, v))
                            .collect(),
                    )
                }
                None => None,
            };
            let truth_seeds = match &file_obs {
                Some(_) => None,
                None => {
                    let dir = dataset_dir(args)?;
                    let day: usize = args.num("truth-day", 0)?;
                    let truth = store::read_truth(&dir, day)?;
                    let seeds = store::read_seeds(&dir, truth.num_roads())?;
                    Some((truth, seeds))
                }
            };
            let obs_for = |slot: usize| -> Vec<(u32, f64)> {
                match (&file_obs, &truth_seeds) {
                    (Some(obs), _) => obs.clone(),
                    (None, Some((truth, seeds))) => {
                        seeds.iter().map(|&s| (s.0, truth.speed(slot, s))).collect()
                    }
                    (None, None) => unreachable!("one observation source is always built"),
                }
            };
            let deadline: u64 = args.num("deadline-ms", 0)?;
            let deadline = (deadline > 0).then_some(deadline);

            if args.get("slots").is_some() {
                let items: Vec<crowdspeed_server::BatchItem> = slots
                    .iter()
                    .map(|&slot| crowdspeed_server::BatchItem {
                        slot_of_day: slot,
                        observations: obs_for(slot),
                        roads: None,
                    })
                    .collect();
                let outcomes = client
                    .estimate_batch(items, deadline)
                    .map_err(|e| CliError::new(format!("estimate batch failed: {e}")))?;
                let mut ok = 0usize;
                for (slot, outcome) in slots.iter().zip(&outcomes) {
                    match outcome {
                        crowdspeed_server::BatchOutcome::Estimate(reply) => {
                            ok += 1;
                            println!(
                                "slot {slot}: {} roads, epoch {}, {} ignored observations",
                                reply.speeds.len(),
                                reply.epoch,
                                reply.ignored_observations
                            );
                        }
                        crowdspeed_server::BatchOutcome::Error { kind, message } => {
                            println!("slot {slot}: error ({kind}) {message}");
                        }
                    }
                }
                return Ok(format!(
                    "batched {} estimates in one frame ({ok} ok, {} errors)",
                    outcomes.len(),
                    outcomes.len() - ok
                ));
            }

            let slot = slots[0];
            let reply = client
                .estimate(slot, obs_for(slot), deadline)
                .map_err(|e| CliError::new(format!("estimate failed: {e}")))?;
            let mut out = String::new();
            for (road, &speed) in reply.speeds.iter().enumerate() {
                let trend = match reply.trends.get(road) {
                    Some(true) => "up",
                    Some(false) => "down",
                    None => "-",
                };
                out.push_str(&format!("{road} {speed:.2} {trend}\n"));
            }
            print!("{out}");
            Ok(format!(
                "estimated {} roads at slot {slot} (model epoch {}, {} ignored observations)",
                reply.speeds.len(),
                reply.epoch,
                reply.ignored_observations
            ))
        }
        // `client ingest --dir DIR --truth-day D`
        "ingest" => {
            let dir = dataset_dir(args)?;
            let day: usize = args.num("truth-day", 0)?;
            let field = store::read_truth(&dir, day)?;
            let rows: Vec<Vec<f64>> = (0..field.num_slots())
                .map(|slot| field.slot_speeds(slot).to_vec())
                .collect();
            let (epoch, days) = client
                .ingest_day(rows)
                .map_err(|e| CliError::new(format!("ingest failed: {e}")))?;
            Ok(format!(
                "ingested truth day {day}: model epoch {epoch}, {days} days total"
            ))
        }
        "stats" => {
            let stats = client
                .stats()
                .map_err(|e| CliError::new(format!("stats failed: {e}")))?;
            let mut out = format!(
                "epoch {} | uptime {}ms | {} days ingested | rejected: {} overload, {} deadline\n",
                stats.epoch,
                stats.uptime_ms,
                stats.days_ingested,
                stats.rejected_overload,
                stats.rejected_deadline
            );
            out.push_str(&format!(
                "faults: {} worker panics, {} retrain failures, {} rejected connections\n",
                stats.worker_panics, stats.retrain_failures, stats.rejected_connections
            ));
            out.push_str(&format!(
                "snapshots: {} written, {} write failures, resumed={} | {} ignored observations\n",
                stats.snapshot_writes,
                stats.snapshot_write_failures,
                stats.snapshot_resumed,
                stats.ignored_observations
            ));
            let total_retrains: u64 = stats.retrains.iter().map(|(_, c)| c).sum();
            if total_retrains > 0 {
                out.push_str("retrains:");
                for (mode, count) in stats.retrains.iter().filter(|(_, c)| *c > 0) {
                    out.push_str(&format!(" {mode}={count}"));
                }
                out.push_str(&format!(
                    " | {} edges changed, {} rows folded, {}ms incremental\n",
                    stats.retrain_edges_changed,
                    stats.retrain_rows_folded,
                    stats.retrain_incremental_ms
                ));
            }
            if stats.rate_limited_requests > 0 {
                out.push_str(&format!(
                    "rate limited: {} requests\n",
                    stats.rate_limited_requests
                ));
            }
            out.push_str(&format!(
                "drift: signal={:.4} triggers={} last_rebootstrap_epoch={} seed_overlap={}\n",
                stats.drift_signal,
                stats.drift_triggers,
                stats.drift_last_rebootstrap_epoch,
                stats.drift_seed_overlap
            ));
            if let Some(id) = &stats.shard {
                out.push_str(&format!(
                    "shard worker {}/{}: {} owned roads, plan {:016x}\n",
                    id.index, id.count, id.owned_roads, id.fingerprint
                ));
            }
            for h in &stats.shards {
                out.push_str(&format!(
                    "shard {}: {} plan_ok={} epoch={} days={} restarts={} owned={}\n",
                    h.shard,
                    if h.up { "up" } else { "down" },
                    h.plan_ok,
                    h.epoch,
                    h.days_ingested,
                    h.restarts,
                    h.owned_roads
                ));
            }
            let rejected: u64 = stats.snapshot_rejects.iter().map(|(_, c)| c).sum();
            if rejected > 0 {
                out.push_str("snapshot rejects:");
                for (reason, count) in stats.snapshot_rejects.iter().filter(|(_, c)| *c > 0) {
                    out.push_str(&format!(" {reason}={count}"));
                }
                out.push('\n');
            }
            for (name, c) in &stats.commands {
                out.push_str(&format!(
                    "  {name}: {} received, {} ok, {} errors\n",
                    c.received, c.ok, c.errors
                ));
            }
            print!("{out}");
            Ok(format!(
                "daemon serving epoch {} ({} estimates ok)",
                stats.epoch,
                stats.commands.first().map_or(0, |(_, c)| c.ok)
            ))
        }
        // `client snapshot [--addr HOST:PORT]` — forces a snapshot write
        // and prints where it landed.
        "snapshot" => {
            let (epoch, path) = client
                .snapshot()
                .map_err(|e| CliError::new(format!("snapshot failed: {e}")))?;
            Ok(format!("snapshotted model epoch {epoch} to {path}"))
        }
        // `client drill --conns N [--requests R] [--slot S --dir DIR --truth-day D]`
        //
        // Event-loop drill for CI: parks N idle keep-alive connections
        // on the daemon, then measures request latency through a live
        // client while they sit there and reports the daemon's
        // `open_connections` gauge. With `--dir` the probe sends real
        // ESTIMATE requests (truth-day seed observations); otherwise it
        // sends STATS.
        "drill" => {
            let conns: usize = args.num("conns", 1000)?;
            let requests: usize = args.num("requests", 50)?.max(1);
            let addr = args.get("addr").unwrap_or("127.0.0.1:7700");
            let slot: usize = args.num("slot", 0)?;
            let estimate_obs: Option<Vec<(u32, f64)>> = match args.get("dir") {
                Some(_) => {
                    let dir = dataset_dir(args)?;
                    let day: usize = args.num("truth-day", 0)?;
                    let truth = store::read_truth(&dir, day)?;
                    let seeds = store::read_seeds(&dir, truth.num_roads())?;
                    Some(seeds.iter().map(|&s| (s.0, truth.speed(slot, s))).collect())
                }
                None => None,
            };
            let mut idle = Vec::with_capacity(conns);
            for i in 0..conns {
                let stream = std::net::TcpStream::connect(addr)
                    .map_err(|e| CliError::new(format!("idle connection {i} failed: {e}")))?;
                idle.push(stream);
            }
            let mut latencies = Vec::with_capacity(requests);
            for _ in 0..requests {
                let start = std::time::Instant::now();
                match &estimate_obs {
                    Some(obs) => {
                        client
                            .estimate(slot, obs.clone(), None)
                            .map_err(|e| CliError::new(format!("drill estimate failed: {e}")))?;
                    }
                    None => {
                        client
                            .stats()
                            .map_err(|e| CliError::new(format!("drill stats failed: {e}")))?;
                    }
                }
                latencies.push(start.elapsed());
            }
            latencies.sort();
            let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p).round() as usize];
            let stats = client
                .stats()
                .map_err(|e| CliError::new(format!("drill stats failed: {e}")))?;
            let probe = if estimate_obs.is_some() {
                "ESTIMATE"
            } else {
                "STATS"
            };
            drop(idle);
            Ok(format!(
                "drill: {} open connections with {conns} idle parked; \
                 {probe} latency p50 {:?} p99 {:?} over {requests} requests",
                stats.open_connections,
                pct(0.50),
                pct(0.99),
            ))
        }
        "shutdown" => {
            client
                .shutdown()
                .map_err(|e| CliError::new(format!("shutdown failed: {e}")))?;
            Ok("daemon acknowledged shutdown".to_string())
        }
        other => Err(CliError::new(format!(
            "unknown client action {other:?} (estimate | ingest | stats | snapshot | drill | shutdown)"
        ))),
    }
}

/// `route --dir DIR --slot S --from A --to B (--obs FILE | --truth-day D)`
///
/// Plans the fastest route between two road segments under live
/// estimated speeds and prints the segment list and ETA.
pub fn route(args: &Args) -> Result<String> {
    let dir = dataset_dir(args)?;
    let slot: usize = args.num("slot", usize::MAX)?;
    let (graph, history, stats, corr) = load_model_inputs(&dir)?;
    if slot >= history.clock().slots_per_day {
        return Err(CliError::new(format!(
            "--slot must be < {}",
            history.clock().slots_per_day
        )));
    }
    let from = roadnet::RoadId(args.num("from", u32::MAX)?);
    let to = roadnet::RoadId(args.num("to", u32::MAX)?);
    for r in [from, to] {
        if r.index() >= graph.num_roads() {
            return Err(CliError::new(format!("road {r} out of range")));
        }
    }
    let seeds = store::read_seeds(&dir, graph.num_roads())?;
    let obs: Vec<(roadnet::RoadId, f64)> = if let Some(path) = args.get("obs") {
        let text = std::fs::read_to_string(path)?;
        store::parse_observations(&text, graph.num_roads())?
            .into_iter()
            .filter(|(r, _)| seeds.contains(r))
            .collect()
    } else {
        let day: usize = args.num("truth-day", 0)?;
        let truth = store::read_truth(&dir, day)?;
        seeds.iter().map(|&s| (s, truth.speed(slot, s))).collect()
    };
    let est = TrafficEstimator::train(
        &graph,
        &history,
        &stats,
        &corr,
        &seeds,
        &EstimatorConfig::default(),
    )
    .map_err(|e| CliError::new(format!("training failed: {e}")))?;
    let estimate = est.estimate(slot, &obs);
    let Some(plan) = crowdspeed::routing::fastest_route(&graph, &estimate.speeds, from, to) else {
        return Err(CliError::new(format!("{to} unreachable from {from}")));
    };
    let ids: Vec<String> = plan.segments.iter().map(|r| r.0.to_string()).collect();
    println!("{}", ids.join(" "));
    Ok(format!(
        "route {from} -> {to}: {} segments, ETA {:.1} min at slot {slot}",
        plan.segments.len(),
        plan.minutes
    ))
}

/// Usage text.
pub fn usage() -> &'static str {
    "crowdspeed — crowdsourcing-based real-time traffic speed estimation

USAGE:
  crowdspeed generate --city metro|grid|metro-small --dir DIR
                      [--training-days N] [--test-days N] [--seed S]
                      [--shift-day D] [--shift-fraction F] [--shift-drop C]
                      [--shift-swaps N] [--shift-seed S] [--history-from-tests A:B]
  crowdspeed select   --dir DIR --k N
                      [--algo lazy|greedy|partition|random|degree|pagerank|variance]
  crowdspeed train    --dir DIR [--train-threads N]
  crowdspeed estimate --dir DIR --slot S (--obs FILE | --truth-day D)
  crowdspeed eval     --dir DIR [--method two-step|hist-mean|knn|global-lr|label-prop]
  crowdspeed serve    --dir DIR [--method M] [--threads N] [--truth-day D] [--repeat R]
  crowdspeed route    --dir DIR --slot S --from A --to B (--obs FILE | --truth-day D)
  crowdspeed daemon   --dir DIR [--addr HOST:PORT] [--workers N] [--queue N]
                      [--deadline-ms D] [--train-threads N] [--max-connections N]
                      [--snapshot-dir DIR] [--snapshot-keep N] [--frame-deadline-ms D]
                      [--rate-limit-rps R] [--shards N [--shard-index I] [--shard-binary]]
                      [--restart-backoff-ms MS] [--drift-threshold T]
                      [--drift-cooldown-days N] [--drift-window-days W]
  crowdspeed client   estimate (--slot S | --slots A,B,C)
                      (--obs FILE | --dir DIR --truth-day D)
                      [--addr HOST:PORT] [--deadline-ms D] [--binary]
  crowdspeed client   ingest --dir DIR --truth-day D [--addr HOST:PORT]
  crowdspeed client   stats|snapshot|shutdown [--addr HOST:PORT] [--binary]
  crowdspeed client   drill --conns N [--requests R] [--addr HOST:PORT]
                      [--slot S --dir DIR --truth-day D] [--binary]
  crowdspeed help

With --snapshot-dir the daemon persists every published model epoch
(keeping the newest --snapshot-keep files, default 3) and on restart
resumes from the newest valid snapshot instead of retraining;
--frame-deadline-ms bounds how long a connection may take to deliver
one request frame (0 disables; default 30000); --rate-limit-rps caps
each connection's request rate (token bucket, typed `rate_limited`
reject; 0 disables).

daemon --shards N (N > 1) runs sharded: N supervised worker processes
(ports addr+1..addr+N, each with snapshot dir DIR/shard-i) behind a
scatter-gather router on --addr speaking the unchanged protocol.
Crashed workers restart after --restart-backoff-ms (default 1000);
road-filtered estimates degrade per shard while a worker is down.

Client actions also accept [--timeout-ms MS] [--connect-timeout-ms MS]
[--retries N] [--backoff-ms MS]; 0 disables a timeout, and retries
apply only to the idempotent estimate/stats actions. --binary switches
the wire codec from JSON to the compact binary framing (bit-identical
replies); `client estimate --slots A,B,C` batches every listed slot
into one ESTIMATE_BATCH frame; `client drill` parks idle keep-alive
connections and reports probe latency plus the daemon's
open_connections gauge. daemon --shards accepts --shard-binary to run
the router -> worker links over the binary codec.

generate --shift-day D layers a reproducible regime shift on truth
days D onward (capacity drops on --shift-fraction of roads scaled by
--shift-drop, plus --shift-swaps rerouted corridor pairs, drawn from
--shift-seed); --history-from-tests A:B writes the dense truth days
[A, B) as the history (cold-reference datasets for drift drills).
daemon --drift-threshold T (> 0) arms drift adaptation: when the
live-vs-context correlation drift signal reaches T (after
--drift-cooldown-days and a full --drift-window-days window), the
daemon rebootstraps on the trailing window, re-selects seeds, and
publishes atomically; progress appears as drift_* in `client stats`.

Observation files are `road_id speed_kmh` lines; `#` starts a comment."
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("crowdspeed-cli-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn generate_select_estimate_eval_pipeline() {
        let dir = tmpdir("pipeline");
        let dirs = dir.display().to_string();

        let msg = generate(&parse(&format!(
            "--city metro-small --dir {dirs} --training-days 6 --test-days 1"
        )))
        .unwrap();
        assert!(msg.contains("100 roads"), "{msg}");

        let msg = select(&parse(&format!("--dir {dirs} --k 10"))).unwrap();
        assert!(msg.contains("10 seeds"), "{msg}");

        let msg = train(&parse(&format!("--dir {dirs} --train-threads 2"))).unwrap();
        assert!(msg.contains("2 thread(s)"), "{msg}");

        let msg = estimate(&parse(&format!("--dir {dirs} --slot 8 --truth-day 0"))).unwrap();
        assert!(msg.contains("100 roads"), "{msg}");

        let msg = eval(&parse(&format!("--dir {dirs} --method hist-mean"))).unwrap();
        assert!(msg.contains("MAPE"), "{msg}");

        let msg = serve(&parse(&format!(
            "--dir {dirs} --method hist-mean --threads 2 --truth-day 0"
        )))
        .unwrap();
        assert!(msg.contains("req/s"), "{msg}");

        let msg = route(&parse(&format!(
            "--dir {dirs} --slot 8 --from 0 --to 99 --truth-day 0"
        )))
        .unwrap();
        assert!(msg.contains("ETA"), "{msg}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn client_commands_talk_to_a_live_daemon() {
        let dir = tmpdir("daemon");
        let dirs = dir.display().to_string();
        generate(&parse(&format!(
            "--city metro-small --dir {dirs} --training-days 6 --test-days 1"
        )))
        .unwrap();
        select(&parse(&format!("--dir {dirs} --k 10"))).unwrap();
        // Boot the daemon in-process on an ephemeral port; the CLI
        // `daemon` subcommand is this same path plus a blocking wait.
        let graph = store::read_network(&dir).unwrap();
        let history = store::read_history(&dir).unwrap();
        let seeds = store::read_seeds(&dir, graph.num_roads()).unwrap();
        let train = crowdspeed_server::TrainState::new(
            graph,
            &history,
            seeds,
            &CorrelationConfig::default(),
            EstimatorConfig::default(),
        );
        let handle =
            crowdspeed_server::Daemon::spawn(train, crowdspeed_server::DaemonConfig::default())
                .unwrap();
        let addr = handle.addr();

        let msg = client(
            "estimate",
            &parse(&format!(
                "--addr {addr} --dir {dirs} --slot 5 --truth-day 0"
            )),
        )
        .unwrap();
        assert!(msg.contains("model epoch 1"), "{msg}");
        let msg = client(
            "estimate",
            &parse(&format!(
                "--addr {addr} --dir {dirs} --slots 1,2,3 --truth-day 0 --binary"
            )),
        )
        .unwrap();
        assert!(
            msg.contains("batched 3 estimates in one frame (3 ok"),
            "{msg}"
        );
        let msg = client(
            "drill",
            &parse(&format!("--addr {addr} --conns 32 --requests 5")),
        )
        .unwrap();
        assert!(msg.contains("idle parked"), "{msg}");
        let msg = client("ingest", &parse(&format!("--addr {addr} --dir {dirs}"))).unwrap();
        assert!(msg.contains("epoch 2"), "{msg}");
        let msg = client("stats", &parse(&format!("--addr {addr}"))).unwrap();
        assert!(msg.contains("epoch 2"), "{msg}");
        let msg = client("shutdown", &parse(&format!("--addr {addr}"))).unwrap();
        assert!(msg.contains("shutdown"), "{msg}");
        handle.join();

        let err = client("dance", &parse(&format!("--addr {addr}"))).unwrap_err();
        assert!(
            err.message.contains("unknown client action") || err.message.contains("cannot reach")
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn generate_rejects_unknown_city() {
        let dir = tmpdir("badcity");
        let err = generate(&parse(&format!("--city venus --dir {}", dir.display()))).unwrap_err();
        assert!(err.message.contains("unknown city"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn select_requires_budget() {
        let dir = tmpdir("nobudget");
        generate(&parse(&format!(
            "--city metro-small --dir {} --training-days 3 --test-days 1",
            dir.display()
        )))
        .unwrap();
        let err = select(&parse(&format!("--dir {}", dir.display()))).unwrap_err();
        assert!(err.message.contains("--k"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn estimate_accepts_observation_file() {
        let dir = tmpdir("obsfile");
        let dirs = dir.display().to_string();
        generate(&parse(&format!(
            "--city metro-small --dir {dirs} --training-days 6 --test-days 1"
        )))
        .unwrap();
        select(&parse(&format!("--dir {dirs} --k 5"))).unwrap();
        // Build an observation file from the chosen seeds.
        let seeds = store::read_seeds(&dir, 100).unwrap();
        let obs: String = seeds.iter().map(|s| format!("{} 25.0\n", s.0)).collect();
        let obs_path = dir.join("obs.txt");
        std::fs::write(&obs_path, obs).unwrap();
        let msg = estimate(&parse(&format!(
            "--dir {dirs} --slot 7 --obs {}",
            obs_path.display()
        )))
        .unwrap();
        assert!(msg.contains("5 observations"), "{msg}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
