#![warn(missing_docs)]

//! Library backing the `crowdspeed` command-line tool.
//!
//! Subcommands (see `crowdspeed help`):
//!
//! * `generate` — synthesise a city dataset to disk (road network in
//!   the `roadnet` text format, history/truth as binary snapshots);
//! * `select` — pick `K` seed roads from a dataset on disk;
//! * `estimate` — serve one slot's speed estimates from crowd
//!   observations;
//! * `eval` — run the train/test harness for a method.
//!
//! Everything is factored into testable functions; `main.rs` is a thin
//! dispatcher.

pub mod args;
pub mod commands;
pub mod store;

/// CLI error type: message plus exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message printed to stderr.
    pub message: String,
}

impl CliError {
    /// Creates an error from anything printable.
    pub fn new(msg: impl Into<String>) -> CliError {
        CliError {
            message: msg.into(),
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::new(format!("io error: {e}"))
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, CliError>;
