//! `crowdspeed` command-line entry point.

use crowdspeed_cli::args::Args;
use crowdspeed_cli::commands;

fn main() {
    let mut argv = std::env::args().skip(1);
    let sub = argv.next().unwrap_or_else(|| "help".to_string());
    // `client` carries an action token (`client estimate --addr ...`)
    // ahead of the flag list; pop it before flag parsing.
    let action = if sub == "client" {
        match argv.next() {
            Some(a) if !a.starts_with("--") => Some(a),
            _ => {
                eprintln!("error: client needs an action (estimate | ingest | stats | shutdown)");
                eprintln!("{}", commands::usage());
                std::process::exit(2);
            }
        }
    } else {
        None
    };
    let parsed = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::usage());
            std::process::exit(2);
        }
    };
    let result = match sub.as_str() {
        "generate" => commands::generate(&parsed),
        "select" => commands::select(&parsed),
        "train" => commands::train(&parsed),
        "estimate" => commands::estimate(&parsed),
        "eval" => commands::eval(&parsed),
        "serve" => commands::serve(&parsed),
        "route" => commands::route(&parsed),
        "daemon" => commands::daemon(&parsed),
        "client" => commands::client(action.as_deref().unwrap_or_default(), &parsed),
        "help" | "--help" | "-h" => {
            println!("{}", commands::usage());
            return;
        }
        other => {
            eprintln!("error: unknown subcommand {other:?}");
            eprintln!("{}", commands::usage());
            std::process::exit(2);
        }
    };
    match result {
        Ok(msg) => eprintln!("{msg}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
