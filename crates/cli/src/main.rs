//! `crowdspeed` command-line entry point.

use crowdspeed_cli::args::Args;
use crowdspeed_cli::commands;

fn main() {
    let mut argv = std::env::args().skip(1);
    let sub = argv.next().unwrap_or_else(|| "help".to_string());
    let parsed = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::usage());
            std::process::exit(2);
        }
    };
    let result = match sub.as_str() {
        "generate" => commands::generate(&parsed),
        "select" => commands::select(&parsed),
        "estimate" => commands::estimate(&parsed),
        "eval" => commands::eval(&parsed),
        "serve" => commands::serve(&parsed),
        "route" => commands::route(&parsed),
        "help" | "--help" | "-h" => {
            println!("{}", commands::usage());
            return;
        }
        other => {
            eprintln!("error: unknown subcommand {other:?}");
            eprintln!("{}", commands::usage());
            std::process::exit(2);
        }
    };
    match result {
        Ok(msg) => eprintln!("{msg}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
