//! On-disk dataset layout.
//!
//! A dataset directory contains:
//!
//! ```text
//! network.roadnet      road graph, `roadnet::io` text format
//! clock.txt            slots-per-day
//! history.snap         probe-observed training days (binary snapshot)
//! truth-<d>.snap       held-out ground-truth days
//! seeds.txt            one road id per line (written by `select`)
//! ```

use crate::{CliError, Result};
use roadnet::{RoadGraph, RoadId};
use std::path::Path;
use trafficsim::{snapshot, HistoricalData, SlotClock, SpeedField};

/// Writes the road network file.
pub fn write_network(dir: &Path, graph: &RoadGraph) -> Result<()> {
    std::fs::write(dir.join("network.roadnet"), roadnet::io::write_text(graph))?;
    Ok(())
}

/// Reads the road network file.
pub fn read_network(dir: &Path) -> Result<RoadGraph> {
    let text = std::fs::read_to_string(dir.join("network.roadnet"))?;
    roadnet::io::read_text(&text).map_err(|e| CliError::new(format!("network.roadnet: {e}")))
}

/// Writes the clock file.
pub fn write_clock(dir: &Path, clock: SlotClock) -> Result<()> {
    std::fs::write(dir.join("clock.txt"), format!("{}\n", clock.slots_per_day))?;
    Ok(())
}

/// Reads the clock file.
pub fn read_clock(dir: &Path) -> Result<SlotClock> {
    let text = std::fs::read_to_string(dir.join("clock.txt"))?;
    let slots_per_day = text
        .trim()
        .parse()
        .map_err(|_| CliError::new("clock.txt: bad slot count"))?;
    Ok(SlotClock { slots_per_day })
}

/// Writes the training history snapshot.
pub fn write_history(dir: &Path, history: &HistoricalData) -> Result<()> {
    std::fs::write(dir.join("history.snap"), snapshot::encode_history(history))?;
    Ok(())
}

/// Reads the training history snapshot.
pub fn read_history(dir: &Path) -> Result<HistoricalData> {
    let clock = read_clock(dir)?;
    let data = std::fs::read(dir.join("history.snap"))?;
    snapshot::decode_history(clock, &data[..])
        .map_err(|e| CliError::new(format!("history.snap: {e}")))
}

/// Writes ground-truth day `d`.
pub fn write_truth(dir: &Path, d: usize, field: &SpeedField) -> Result<()> {
    std::fs::write(
        dir.join(format!("truth-{d}.snap")),
        snapshot::encode_field(field),
    )?;
    Ok(())
}

/// Reads ground-truth day `d`.
pub fn read_truth(dir: &Path, d: usize) -> Result<SpeedField> {
    let data = std::fs::read(dir.join(format!("truth-{d}.snap")))?;
    snapshot::decode_field(&data[..]).map_err(|e| CliError::new(format!("truth-{d}.snap: {e}")))
}

/// Writes the selected seeds, one id per line.
pub fn write_seeds(dir: &Path, seeds: &[RoadId]) -> Result<()> {
    let body: String = seeds.iter().map(|s| format!("{}\n", s.0)).collect();
    std::fs::write(dir.join("seeds.txt"), body)?;
    Ok(())
}

/// Reads the seed list, validating ids against `n` roads.
pub fn read_seeds(dir: &Path, n: usize) -> Result<Vec<RoadId>> {
    let text = std::fs::read_to_string(dir.join("seeds.txt"))?;
    parse_seeds(&text, n)
}

/// Parses a seed list from text (one id per line, `#` comments allowed).
pub fn parse_seeds(text: &str, n: usize) -> Result<Vec<RoadId>> {
    let mut seeds = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let id: u32 = line
            .parse()
            .map_err(|_| CliError::new(format!("seeds line {}: bad id {line:?}", lineno + 1)))?;
        if id as usize >= n {
            return Err(CliError::new(format!(
                "seeds line {}: road {id} out of range (n = {n})",
                lineno + 1
            )));
        }
        seeds.push(RoadId(id));
    }
    if seeds.is_empty() {
        return Err(CliError::new("seed list is empty"));
    }
    Ok(seeds)
}

/// Parses crowd observations: `road_id speed_kmh` per line.
pub fn parse_observations(text: &str, n: usize) -> Result<Vec<(RoadId, f64)>> {
    let mut obs = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let bad = || {
            CliError::new(format!(
                "observations line {}: expected `road speed`",
                lineno + 1
            ))
        };
        let id: u32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let speed: f64 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        if id as usize >= n {
            return Err(CliError::new(format!(
                "observations line {}: road {id} out of range",
                lineno + 1
            )));
        }
        if !(speed.is_finite() && speed > 0.0) {
            return Err(CliError::new(format!(
                "observations line {}: non-physical speed {speed}",
                lineno + 1
            )));
        }
        obs.push((RoadId(id), speed));
    }
    Ok(obs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_seeds_with_comments_and_blanks() {
        let s = parse_seeds("3\n# comment\n\n7 # trailing\n", 10).unwrap();
        assert_eq!(s, vec![RoadId(3), RoadId(7)]);
    }

    #[test]
    fn parse_seeds_rejects_out_of_range() {
        assert!(parse_seeds("12\n", 10).is_err());
        assert!(parse_seeds("", 10).is_err());
        assert!(parse_seeds("abc\n", 10).is_err());
    }

    #[test]
    fn parse_observations_roundtrip() {
        let o = parse_observations("0 31.5\n4 22\n", 5).unwrap();
        assert_eq!(o, vec![(RoadId(0), 31.5), (RoadId(4), 22.0)]);
    }

    #[test]
    fn parse_observations_rejects_garbage() {
        assert!(parse_observations("0\n", 5).is_err());
        assert!(parse_observations("0 -3\n", 5).is_err());
        assert!(parse_observations("9 20\n", 5).is_err());
        assert!(parse_observations("0 inf\n", 5).is_err());
    }

    #[test]
    fn store_roundtrips_on_disk() {
        use roadnet::generate::{grid_city, GridParams};
        let dir = std::env::temp_dir().join(format!("crowdspeed-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let g = grid_city(&GridParams {
            width: 3,
            height: 3,
            ..GridParams::default()
        });
        let clock = SlotClock { slots_per_day: 4 };
        let day = SpeedField::filled(4, g.num_roads(), 25.0);
        let history = HistoricalData::from_days(clock, vec![day.clone(), day.clone()]);

        write_network(&dir, &g).unwrap();
        write_clock(&dir, clock).unwrap();
        write_history(&dir, &history).unwrap();
        write_truth(&dir, 0, &day).unwrap();
        write_seeds(&dir, &[RoadId(1), RoadId(5)]).unwrap();

        assert_eq!(read_network(&dir).unwrap(), g);
        assert_eq!(read_clock(&dir).unwrap(), clock);
        assert_eq!(read_history(&dir).unwrap().num_days(), 2);
        assert_eq!(read_truth(&dir, 0).unwrap(), day);
        assert_eq!(
            read_seeds(&dir, g.num_roads()).unwrap(),
            vec![RoadId(1), RoadId(5)]
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
