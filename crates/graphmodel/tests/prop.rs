//! Property-based tests of the MRF inference engines.

use graphmodel::{exact, gibbs, lbp, Evidence, MrfBuilder, PairwiseMrf};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a random tree-structured MRF (BP is exact on trees).
fn random_tree() -> impl Strategy<Value = PairwiseMrf> {
    (2usize..10).prop_flat_map(|n| {
        let priors = prop::collection::vec(0.1f64..0.9, n);
        // parent[i] < i forms a tree over n nodes.
        let parents: Vec<BoxedStrategy<usize>> = (1..n).map(|i| (0..i).boxed()).collect();
        let couplings = prop::collection::vec(0.15f64..0.85, n - 1);
        (Just(n), priors, parents, couplings).prop_map(|(n, priors, parents, couplings)| {
            let mut b = MrfBuilder::new(n);
            for (v, p) in priors.iter().enumerate() {
                b.set_prior(v, *p);
            }
            for (i, (&parent, &c)) in parents.iter().zip(&couplings).enumerate() {
                b.add_edge(parent, i + 1, c).unwrap();
            }
            b.build()
        })
    })
}

/// Strategy: a random general (possibly loopy) MRF with mild couplings.
fn random_mrf() -> impl Strategy<Value = PairwiseMrf> {
    (3usize..9).prop_flat_map(|n| {
        let priors = prop::collection::vec(0.2f64..0.8, n);
        let edges = prop::collection::vec((0..n, 0..n, 0.35f64..0.65), 0..12);
        (Just(n), priors, edges).prop_map(|(n, priors, edges)| {
            let mut b = MrfBuilder::new(n);
            for (v, p) in priors.iter().enumerate() {
                b.set_prior(v, *p);
            }
            for (u, v, c) in edges {
                if u != v {
                    b.add_edge(u, v, c).unwrap();
                }
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lbp_is_exact_on_trees(mrf in random_tree(), ev_state in any::<bool>()) {
        let mut ev = Evidence::none(mrf.num_vars());
        ev.observe(0, ev_state);
        let exact = exact::marginals(&mrf, &ev).unwrap();
        let lbp = lbp::run(&mrf, &ev, &lbp::LbpOptions::default());
        prop_assert!(lbp.converged);
        for (v, (l, e)) in lbp.marginals.iter().zip(&exact).enumerate() {
            prop_assert!((l - e).abs() < 1e-4, "var {v}: {l} vs {e}");
        }
    }

    #[test]
    fn lbp_close_to_exact_with_mild_couplings(mrf in random_mrf()) {
        let ev = Evidence::from_pairs(mrf.num_vars(), [(0, true)]);
        let exact = exact::marginals(&mrf, &ev).unwrap();
        let lbp = lbp::run(&mrf, &ev, &lbp::LbpOptions::default());
        for (v, (l, e)) in lbp.marginals.iter().zip(&exact).enumerate() {
            prop_assert!((l - e).abs() < 0.05, "var {v}: {l} vs {e}");
        }
    }

    #[test]
    fn marginals_are_probabilities(mrf in random_mrf()) {
        let res = lbp::run(&mrf, &Evidence::none(mrf.num_vars()), &lbp::LbpOptions::default());
        for m in &res.marginals {
            prop_assert!((0.0..=1.0).contains(m));
        }
    }

    #[test]
    fn evidence_is_always_respected(mrf in random_mrf(), state in any::<bool>()) {
        let ev = Evidence::from_pairs(mrf.num_vars(), [(1, state)]);
        let lbp = lbp::run(&mrf, &ev, &lbp::LbpOptions::default());
        prop_assert_eq!(lbp.marginals[1], if state { 1.0 } else { 0.0 });
        let mut rng = StdRng::seed_from_u64(7);
        let gb = gibbs::run(&mrf, &ev, &gibbs::GibbsOptions { burn_in: 10, samples: 50 }, &mut rng);
        prop_assert_eq!(gb[1], if state { 1.0 } else { 0.0 });
    }

    #[test]
    fn joint_weight_positive_and_bounded(mrf in random_mrf(), bits in any::<u16>()) {
        let assignment: Vec<bool> = (0..mrf.num_vars()).map(|v| (bits >> v) & 1 == 1).collect();
        let w = mrf.joint_weight(&assignment);
        prop_assert!(w > 0.0 && w <= 1.0, "weight {w}");
    }

    #[test]
    fn exact_marginals_sum_consistency(mrf in random_mrf()) {
        // Marginal of v equals the weighted fraction of up-assignments;
        // re-derive it by brute force independently of exact::marginals'
        // bookkeeping.
        let ev = Evidence::none(mrf.num_vars());
        let marg = exact::marginals(&mrf, &ev).unwrap();
        let n = mrf.num_vars();
        let mut up = vec![0.0; n];
        let mut total = 0.0;
        for bits in 0..(1u32 << n) {
            let assignment: Vec<bool> = (0..n).map(|v| (bits >> v) & 1 == 1).collect();
            let w = mrf.joint_weight(&assignment);
            total += w;
            for (v, &s) in assignment.iter().enumerate() {
                if s {
                    up[v] += w;
                }
            }
        }
        for (v, m) in marg.iter().enumerate() {
            prop_assert!((m - up[v] / total).abs() < 1e-9);
        }
    }

    #[test]
    fn gibbs_is_seed_deterministic(mrf in random_mrf(), seed in any::<u64>()) {
        let ev = Evidence::none(mrf.num_vars());
        let opts = gibbs::GibbsOptions { burn_in: 5, samples: 20 };
        let a = gibbs::run(&mrf, &ev, &opts, &mut StdRng::seed_from_u64(seed));
        let b = gibbs::run(&mrf, &ev, &opts, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(a, b);
    }
}
