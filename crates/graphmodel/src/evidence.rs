//! Observed variables ("clamped" evidence).

use serde::{Deserialize, Serialize};

/// A partial assignment: which variables have been observed, and their
/// values. In the traffic model the observed variables are the seed
/// roads, with trends derived from crowdsourced speeds.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Evidence {
    observed: Vec<Option<bool>>,
}

impl Evidence {
    /// No observations over `n` variables.
    pub fn none(n: usize) -> Self {
        Evidence {
            observed: vec![None; n],
        }
    }

    /// Builds evidence from `(variable, state)` pairs.
    pub fn from_pairs(n: usize, pairs: impl IntoIterator<Item = (usize, bool)>) -> Self {
        let mut ev = Evidence::none(n);
        for (v, s) in pairs {
            ev.observe(v, s);
        }
        ev
    }

    /// Number of variables covered (observed or not).
    pub fn len(&self) -> usize {
        self.observed.len()
    }

    /// True when no variable is covered.
    pub fn is_empty(&self) -> bool {
        self.observed.is_empty()
    }

    /// Records that variable `v` was observed in state `s`.
    /// Re-observing overwrites.
    pub fn observe(&mut self, v: usize, s: bool) {
        self.observed[v] = Some(s);
    }

    /// Removes the observation on `v`, if any.
    pub fn clear(&mut self, v: usize) {
        self.observed[v] = None;
    }

    /// Drops every observation and re-sizes to cover `n` variables,
    /// keeping the allocation. Equivalent to `*self = Evidence::none(n)`
    /// without the reallocation; lets serving loops reuse one evidence
    /// buffer across requests.
    pub fn reset(&mut self, n: usize) {
        self.observed.clear();
        self.observed.resize(n, None);
    }

    /// The observation on `v`.
    #[inline]
    pub fn get(&self, v: usize) -> Option<bool> {
        self.observed[v]
    }

    /// True if `v` is observed.
    #[inline]
    pub fn is_observed(&self, v: usize) -> bool {
        self.observed[v].is_some()
    }

    /// Number of observed variables.
    pub fn num_observed(&self) -> usize {
        self.observed.iter().filter(|o| o.is_some()).count()
    }

    /// Iterator over `(variable, state)` observations.
    pub fn iter(&self) -> impl Iterator<Item = (usize, bool)> + '_ {
        self.observed
            .iter()
            .enumerate()
            .filter_map(|(v, o)| o.map(|s| (v, s)))
    }

    /// True when an assignment agrees with every observation.
    pub fn consistent_with(&self, assignment: &[bool]) -> bool {
        self.iter().all(|(v, s)| assignment[v] == s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_and_clear() {
        let mut ev = Evidence::none(3);
        assert_eq!(ev.num_observed(), 0);
        ev.observe(1, true);
        assert_eq!(ev.get(1), Some(true));
        assert!(ev.is_observed(1));
        ev.observe(1, false); // overwrite
        assert_eq!(ev.get(1), Some(false));
        ev.clear(1);
        assert_eq!(ev.get(1), None);
    }

    #[test]
    fn from_pairs_collects() {
        let ev = Evidence::from_pairs(4, [(0, true), (3, false)]);
        assert_eq!(ev.num_observed(), 2);
        let pairs: Vec<_> = ev.iter().collect();
        assert_eq!(pairs, vec![(0, true), (3, false)]);
    }

    #[test]
    fn consistency_check() {
        let ev = Evidence::from_pairs(3, [(0, true), (2, false)]);
        assert!(ev.consistent_with(&[true, false, false]));
        assert!(ev.consistent_with(&[true, true, false]));
        assert!(!ev.consistent_with(&[false, true, false]));
    }
}
