//! Damped sum-product loopy belief propagation.
//!
//! The production inference engine for trend estimation. One sweep is
//! `O(edges)`; on the near-planar correlation graphs of road networks
//! LBP converges in a few dozen sweeps, which is where the paper's
//! "2 orders of magnitude" efficiency edge over sampling comes from
//! (reproduced in experiment E6).

use crate::mrf::PROB_FLOOR;
use crate::{Evidence, PairwiseMrf};

/// Options controlling the LBP schedule.
#[derive(Debug, Clone)]
pub struct LbpOptions {
    /// Maximum number of full sweeps.
    pub max_iters: usize,
    /// Convergence threshold on the maximum message change per sweep.
    pub tol: f64,
    /// Damping factor in `[0, 1)`: new message = `damping * old +
    /// (1 - damping) * computed`. Damping suppresses oscillation on
    /// loopy graphs.
    pub damping: f64,
}

impl Default for LbpOptions {
    fn default() -> Self {
        LbpOptions {
            max_iters: 100,
            tol: 1e-6,
            damping: 0.3,
        }
    }
}

/// Result of an LBP run.
#[derive(Debug, Clone)]
pub struct LbpResult {
    /// Posterior up-probability per variable. Observed variables report
    /// their clamped value.
    pub marginals: Vec<f64>,
    /// Number of sweeps performed.
    pub iterations: usize,
    /// Whether the message updates fell below `tol`.
    pub converged: bool,
    /// Final sweep's maximum message change.
    pub max_delta: f64,
}

impl LbpResult {
    /// Hard trend decisions: `true` where the posterior up-probability
    /// is at least 0.5.
    pub fn decisions(&self) -> Vec<bool> {
        self.marginals.iter().map(|&p| p >= 0.5).collect()
    }
}

/// Convergence statistics of a workspace-based LBP run; the marginals
/// themselves live in the [`LbpWorkspace`].
#[derive(Debug, Clone, Copy)]
pub struct LbpStats {
    /// Number of sweeps performed.
    pub iterations: usize,
    /// Whether the message updates fell below `tol`.
    pub converged: bool,
    /// Final sweep's maximum message change.
    pub max_delta: f64,
}

/// Reusable buffers for repeated LBP runs.
///
/// A workspace keeps the per-directed-slot message vector and the
/// marginal vector alive between calls to [`run_with`], so a serving
/// loop pays the allocation cost once per worker instead of once per
/// request. Buffers grow to the largest model seen and are then reused.
#[derive(Debug, Clone, Default)]
pub struct LbpWorkspace {
    messages: Vec<f64>,
    marginals: Vec<f64>,
    comp_delta: Vec<f64>,
    frozen: Vec<bool>,
    /// `ln(messages[d])`, maintained at message-write time so the sweep
    /// and belief loops never recompute logs of unchanged messages.
    log_up: Vec<f64>,
    /// `ln(1 - messages[d])`, same discipline as `log_up`.
    log_down: Vec<f64>,
    /// Per-node `ln(node_up)` / `ln(1 - node_up)`; node potentials are
    /// sweep-invariant, so these are computed once per run.
    node_log_up: Vec<f64>,
    node_log_down: Vec<f64>,
}

impl LbpWorkspace {
    /// An empty workspace; buffers are sized lazily on first use.
    pub fn new() -> Self {
        LbpWorkspace::default()
    }

    /// Posterior marginals written by the most recent [`run_with`].
    pub fn marginals(&self) -> &[f64] {
        &self.marginals
    }
}

#[inline]
fn clamp_msg(p: f64) -> f64 {
    p.clamp(PROB_FLOOR, 1.0 - PROB_FLOOR)
}

/// Effective node potential mass on "up", honouring evidence clamps.
#[inline]
fn node_up(mrf: &PairwiseMrf, evidence: &Evidence, v: usize) -> f64 {
    match evidence.get(v) {
        Some(true) => 1.0 - PROB_FLOOR,
        Some(false) => PROB_FLOOR,
        None => mrf.prior_up(v),
    }
}

/// Runs damped sum-product LBP and returns posterior marginals.
///
/// Messages are stored per directed adjacency slot as the normalised
/// probability of the "up" state; products are accumulated in log space
/// so high-degree nodes stay numerically stable.
///
/// Allocates fresh buffers per call; serving paths that answer many
/// queries should hold an [`LbpWorkspace`] and call [`run_with`].
pub fn run(mrf: &PairwiseMrf, evidence: &Evidence, opts: &LbpOptions) -> LbpResult {
    let mut ws = LbpWorkspace::new();
    let stats = run_with(mrf, evidence, opts, &mut ws);
    LbpResult {
        marginals: std::mem::take(&mut ws.marginals),
        iterations: stats.iterations,
        converged: stats.converged,
        max_delta: stats.max_delta,
    }
}

/// Runs LBP reusing the buffers in `ws`; identical message schedule and
/// arithmetic to [`run`], so results are bit-identical.
///
/// Convergence is tracked **per connected component**: a component
/// whose sweep-maximum message change falls below `tol` freezes and is
/// skipped in later sweeps; the run converges when every component is
/// frozen. Messages never cross components, so freezing is exact — and
/// it makes each component's message trajectory depend only on its own
/// nodes, edges and evidence. That restriction property is what lets a
/// sharded server run LBP on a component-aligned sub-model and obtain
/// bit-identical marginals to the full model (`core::shard`).
pub fn run_with(
    mrf: &PairwiseMrf,
    evidence: &Evidence,
    opts: &LbpOptions,
    ws: &mut LbpWorkspace,
) -> LbpStats {
    let n = mrf.num_vars();
    assert_eq!(evidence.len(), n, "evidence covers a different model");
    let nslots = mrf.targets.len();
    let ncomp = mrf.num_components();
    // Split borrows: messages and marginals are used simultaneously.
    let LbpWorkspace {
        messages: m,
        marginals,
        comp_delta,
        frozen,
        log_up,
        log_down,
        node_log_up,
        node_log_down,
    } = ws;
    // m[d]: message from the owner of slot d to targets[d], as P(up).
    // The log caches hold ln(m[d]) / ln(1 - m[d]) and are updated on
    // every message write, so each sweep takes the logs of a message
    // once instead of once per reader — same values, same bits, half
    // the `ln` calls in the hottest loop of training.
    m.clear();
    m.resize(nslots, 0.5);
    let log_half = 0.5f64.ln();
    log_up.clear();
    log_up.resize(nslots, log_half);
    log_down.clear();
    log_down.resize(nslots, log_half);
    comp_delta.clear();
    comp_delta.resize(ncomp, 0.0);
    frozen.clear();
    frozen.resize(ncomp, false);
    // Node potentials never change across sweeps: take their logs once.
    node_log_up.clear();
    node_log_up.reserve(n);
    node_log_down.clear();
    node_log_down.reserve(n);
    for v in 0..n {
        let pv = node_up(mrf, evidence, v);
        node_log_up.push(pv.ln());
        node_log_down.push((1.0 - pv).ln());
    }

    let mut iterations = 0;
    let mut max_delta = f64::INFINITY;
    let mut converged = false;
    while iterations < opts.max_iters {
        iterations += 1;
        for (c, d) in comp_delta.iter_mut().enumerate() {
            if !frozen[c] {
                *d = 0.0;
            }
        }
        for u in 0..n {
            let c = mrf.component(u);
            if frozen[c] {
                continue;
            }
            // Total incoming log-product for both states.
            let mut lup = node_log_up[u];
            let mut ldown = node_log_down[u];
            for d in mrf.slots(u) {
                let rev = mrf.reverse[d] as usize;
                lup += log_up[rev];
                ldown += log_down[rev];
            }
            for d in mrf.slots(u) {
                let rev = mrf.reverse[d] as usize;
                // Cavity: exclude the incoming message along this edge.
                let cup = lup - log_up[rev];
                let cdown = ldown - log_down[rev];
                // Normalise the cavity distribution before mixing with
                // the edge potential (log-sum-exp). One side of the
                // branch is `exp(0) = 1` exactly, matching the generic
                // `exp(c - max(cup, cdown))` bit for bit at half the
                // `exp` calls.
                let (eu, ed) = if cup >= cdown {
                    (1.0, (cdown - cup).exp())
                } else {
                    ((cup - cdown).exp(), 1.0)
                };
                let z = eu + ed;
                let pre_up = eu / z;
                let pre_down = ed / z;
                let p = mrf.same_prob[d];
                let out_up = pre_up * p + pre_down * (1.0 - p);
                let out_down = pre_up * (1.0 - p) + pre_down * p;
                let new = clamp_msg(out_up / (out_up + out_down));
                let damped = clamp_msg(opts.damping * m[d] + (1.0 - opts.damping) * new);
                let delta = (damped - m[d]).abs();
                if delta > comp_delta[c] {
                    comp_delta[c] = delta;
                }
                m[d] = damped;
                log_up[d] = damped.ln();
                log_down[d] = (1.0 - damped).ln();
            }
        }
        // max_delta reports this sweep's active components (a component
        // freezing right now still contributes its final sub-tol delta,
        // matching the pre-freezing semantics on connected graphs).
        max_delta = 0.0;
        let mut all_frozen = true;
        for (c, f) in frozen.iter_mut().enumerate() {
            if *f {
                continue;
            }
            if comp_delta[c] > max_delta {
                max_delta = comp_delta[c];
            }
            if comp_delta[c] < opts.tol {
                *f = true;
            } else {
                all_frozen = false;
            }
        }
        if all_frozen {
            converged = true;
            break;
        }
    }

    // Beliefs.
    marginals.clear();
    marginals.reserve(n);
    for v in 0..n {
        if let Some(s) = evidence.get(v) {
            marginals.push(if s { 1.0 } else { 0.0 });
            continue;
        }
        let mut lup = node_log_up[v];
        let mut ldown = node_log_down[v];
        for d in mrf.slots(v) {
            let rev = mrf.reverse[d] as usize;
            lup += log_up[rev];
            ldown += log_down[rev];
        }
        let (eu, ed) = if lup >= ldown {
            (1.0, (ldown - lup).exp())
        } else {
            ((lup - ldown).exp(), 1.0)
        };
        marginals.push(eu / (eu + ed));
    }

    LbpStats {
        iterations,
        converged,
        max_delta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exact, MrfBuilder};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "var {i}: lbp {x} vs exact {y}");
        }
    }

    #[test]
    fn exact_on_tree() {
        // BP is exact on trees: star with mixed couplings and priors.
        let mut b = MrfBuilder::new(5);
        b.set_prior(0, 0.6);
        b.set_prior(1, 0.3);
        b.set_prior(2, 0.7);
        b.set_prior(3, 0.5);
        b.set_prior(4, 0.45);
        b.add_edge(0, 1, 0.8).unwrap();
        b.add_edge(0, 2, 0.65).unwrap();
        b.add_edge(0, 3, 0.2).unwrap();
        b.add_edge(3, 4, 0.9).unwrap();
        let m = b.build();
        let ev = Evidence::from_pairs(5, [(1, true)]);
        let res = run(&m, &ev, &LbpOptions::default());
        assert!(res.converged);
        let ex = exact::marginals(&m, &ev).unwrap();
        assert_close(&res.marginals, &ex, 1e-5);
    }

    #[test]
    fn close_to_exact_on_loopy_graph() {
        // Random loopy model with moderate couplings: LBP approximate
        // but close.
        let mut rng = StdRng::seed_from_u64(42);
        let n = 10;
        let mut b = MrfBuilder::new(n);
        for v in 0..n {
            b.set_prior(v, rng.gen_range(0.3..0.7));
        }
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(0.3) {
                    b.add_edge(u, v, rng.gen_range(0.55..0.75)).unwrap();
                }
            }
        }
        let m = b.build();
        let ev = Evidence::from_pairs(n, [(0, true), (5, false)]);
        let res = run(&m, &ev, &LbpOptions::default());
        let ex = exact::marginals(&m, &ev).unwrap();
        assert_close(&res.marginals, &ex, 0.05);
    }

    #[test]
    fn observed_marginals_are_hard() {
        let mut b = MrfBuilder::new(2);
        b.add_edge(0, 1, 0.7).unwrap();
        let m = b.build();
        let ev = Evidence::from_pairs(2, [(0, true)]);
        let res = run(&m, &ev, &LbpOptions::default());
        assert_eq!(res.marginals[0], 1.0);
    }

    #[test]
    fn no_evidence_reproduces_priors_on_uncoupled_model() {
        let mut b = MrfBuilder::new(3);
        b.set_prior(0, 0.2);
        b.set_prior(1, 0.5);
        b.set_prior(2, 0.9);
        let m = b.build();
        let res = run(&m, &Evidence::none(3), &LbpOptions::default());
        assert!(res.converged);
        assert_close(&res.marginals, &[0.2, 0.5, 0.9], 1e-9);
    }

    #[test]
    fn converges_on_grid_with_strong_couplings() {
        // 4x4 grid, strong couplings — the hard case for undamped BP.
        let n = 16;
        let mut b = MrfBuilder::new(n);
        let idx = |x: usize, y: usize| y * 4 + x;
        for y in 0..4 {
            for x in 0..4 {
                if x + 1 < 4 {
                    b.add_edge(idx(x, y), idx(x + 1, y), 0.9).unwrap();
                }
                if y + 1 < 4 {
                    b.add_edge(idx(x, y), idx(x, y + 1), 0.9).unwrap();
                }
            }
        }
        let m = b.build();
        let ev = Evidence::from_pairs(n, [(0, true), (15, true)]);
        let res = run(&m, &ev, &LbpOptions::default());
        assert!(res.converged, "LBP failed to converge: {}", res.max_delta);
        // Everything should lean up.
        for (v, &p) in res.marginals.iter().enumerate() {
            assert!(p > 0.5, "var {v} = {p}");
        }
    }

    #[test]
    fn decisions_threshold() {
        let r = LbpResult {
            marginals: vec![0.4, 0.5, 0.9],
            iterations: 1,
            converged: true,
            max_delta: 0.0,
        };
        assert_eq!(r.decisions(), vec![false, true, true]);
    }

    #[test]
    fn component_restriction_is_bitwise_exact() {
        // Two loopy components with very different convergence speeds:
        // running the full model and running a same-width model that
        // keeps only one component's edges must produce bit-identical
        // marginals on that component's nodes. This is the property the
        // sharded serving path relies on.
        let mut rng = StdRng::seed_from_u64(7);
        let n = 14;
        let comp_a: Vec<usize> = (0..6).collect();
        let comp_b: Vec<usize> = (6..n).collect();
        let mut priors = vec![0.5; n];
        for p in priors.iter_mut() {
            *p = rng.gen_range(0.2..0.8);
        }
        let mut edges_a = Vec::new();
        for i in 0..comp_a.len() {
            // Ring plus a chord: loopy.
            edges_a.push((comp_a[i], comp_a[(i + 1) % comp_a.len()], 0.6));
        }
        edges_a.push((comp_a[0], comp_a[3], 0.7));
        let mut edges_b = Vec::new();
        for i in 0..comp_b.len() {
            edges_b.push((comp_b[i], comp_b[(i + 1) % comp_b.len()], 0.92));
        }
        edges_b.push((comp_b[1], comp_b[5], 0.9));
        edges_b.push((comp_b[2], comp_b[6], 0.88));

        let build = |edge_sets: &[&[(usize, usize, f64)]]| {
            let mut b = MrfBuilder::new(n);
            for (v, &p) in priors.iter().enumerate() {
                b.set_prior(v, p);
            }
            for es in edge_sets {
                for &(u, v, w) in *es {
                    b.add_edge(u, v, w).unwrap();
                }
            }
            b.build()
        };
        let full = build(&[&edges_a, &edges_b]);
        let only_a = build(&[&edges_a]);
        let only_b = build(&[&edges_b]);
        assert_eq!(full.num_components(), 2);

        let ev = Evidence::from_pairs(n, [(1, true), (8, false)]);
        let rf = run(&full, &ev, &LbpOptions::default());
        let ra = run(&only_a, &ev, &LbpOptions::default());
        let rb = run(&only_b, &ev, &LbpOptions::default());
        assert!(rf.converged && ra.converged && rb.converged);
        for &v in &comp_a {
            assert_eq!(
                rf.marginals[v].to_bits(),
                ra.marginals[v].to_bits(),
                "comp A var {v}"
            );
        }
        for &v in &comp_b {
            assert_eq!(
                rf.marginals[v].to_bits(),
                rb.marginals[v].to_bits(),
                "comp B var {v}"
            );
        }
        // The full run stops when the slowest component does.
        assert_eq!(rf.iterations, ra.iterations.max(rb.iterations));
    }

    #[test]
    fn respects_max_iters() {
        let mut b = MrfBuilder::new(2);
        b.add_edge(0, 1, 0.9).unwrap();
        let m = b.build();
        let opts = LbpOptions {
            max_iters: 1,
            tol: 0.0,
            damping: 0.0,
        };
        let res = run(&m, &Evidence::none(2), &opts);
        assert_eq!(res.iterations, 1);
        assert!(!res.converged);
    }
}
