//! Exact marginals by brute-force enumeration.
//!
//! Exponential in the number of *unobserved* variables, so it is only
//! usable as a correctness oracle on small models — which is exactly how
//! the test suites of [`crate::lbp`] and [`crate::gibbs`] use it.

use crate::{Evidence, ModelError, PairwiseMrf, Result};

/// Hard cap on the number of free variables the enumerator accepts
/// (2^24 assignments ≈ 16M joint-weight evaluations).
pub const MAX_FREE_VARS: usize = 24;

/// Exact posterior up-probabilities `P(v = true | evidence)` for every
/// variable. Observed variables report their clamped value (1.0 / 0.0).
///
/// Returns [`ModelError::TooLargeForExact`] when more than
/// [`MAX_FREE_VARS`] variables are unobserved.
pub fn marginals(mrf: &PairwiseMrf, evidence: &Evidence) -> Result<Vec<f64>> {
    let n = mrf.num_vars();
    assert_eq!(evidence.len(), n, "evidence covers a different model");
    let free: Vec<usize> = (0..n).filter(|&v| !evidence.is_observed(v)).collect();
    if free.len() > MAX_FREE_VARS {
        return Err(ModelError::TooLargeForExact {
            free_vars: free.len(),
            limit: MAX_FREE_VARS,
        });
    }

    let mut assignment: Vec<bool> = (0..n).map(|v| evidence.get(v).unwrap_or(false)).collect();
    let mut up_mass = vec![0.0f64; n];
    let mut total = 0.0f64;
    let combos: u64 = 1u64 << free.len();
    for bits in 0..combos {
        for (i, &v) in free.iter().enumerate() {
            assignment[v] = (bits >> i) & 1 == 1;
        }
        let w = mrf.joint_weight(&assignment);
        total += w;
        for (v, &s) in assignment.iter().enumerate() {
            if s {
                up_mass[v] += w;
            }
        }
    }
    // total > 0 because all potentials are clamped away from zero.
    Ok(up_mass.into_iter().map(|m| m / total).collect())
}

/// Exact most-probable full assignment (MAP) by enumeration, honouring
/// evidence. Same size limit as [`marginals`]. Ties resolve to the
/// lexicographically-first enumeration order (all-false first).
pub fn map_assignment(mrf: &PairwiseMrf, evidence: &Evidence) -> Result<Vec<bool>> {
    let n = mrf.num_vars();
    assert_eq!(evidence.len(), n, "evidence covers a different model");
    let free: Vec<usize> = (0..n).filter(|&v| !evidence.is_observed(v)).collect();
    if free.len() > MAX_FREE_VARS {
        return Err(ModelError::TooLargeForExact {
            free_vars: free.len(),
            limit: MAX_FREE_VARS,
        });
    }
    let mut assignment: Vec<bool> = (0..n).map(|v| evidence.get(v).unwrap_or(false)).collect();
    let mut best = assignment.clone();
    let mut best_w = f64::NEG_INFINITY;
    for bits in 0..(1u64 << free.len()) {
        for (i, &v) in free.iter().enumerate() {
            assignment[v] = (bits >> i) & 1 == 1;
        }
        let w = mrf.joint_weight(&assignment);
        if w > best_w {
            best_w = w;
            best.copy_from_slice(&assignment);
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MrfBuilder;

    #[test]
    fn single_variable_marginal_is_prior() {
        let mut b = MrfBuilder::new(1);
        b.set_prior(0, 0.7);
        let m = b.build();
        let marg = marginals(&m, &Evidence::none(1)).unwrap();
        assert!((marg[0] - 0.7).abs() < 1e-9);
    }

    #[test]
    fn evidence_clamps_marginal() {
        let mut b = MrfBuilder::new(2);
        b.add_edge(0, 1, 0.9).unwrap();
        let m = b.build();
        let ev = Evidence::from_pairs(2, [(0, true)]);
        let marg = marginals(&m, &ev).unwrap();
        assert!((marg[0] - 1.0).abs() < 1e-9);
        assert!((marg[1] - 0.9).abs() < 1e-9); // uniform prior, 0.9 coupling
    }

    #[test]
    fn negative_coupling_flips() {
        let mut b = MrfBuilder::new(2);
        b.add_edge(0, 1, 0.1).unwrap();
        let m = b.build();
        let ev = Evidence::from_pairs(2, [(0, true)]);
        let marg = marginals(&m, &ev).unwrap();
        assert!((marg[1] - 0.1).abs() < 1e-9);
    }

    #[test]
    fn chain_marginal_attenuates() {
        // v0 -0.8- v1 -0.8- v2, observe v0 = up. Exact: P(v1) = 0.8,
        // P(v2) = 0.8*0.8 + 0.2*0.2 = 0.68.
        let mut b = MrfBuilder::new(3);
        b.add_edge(0, 1, 0.8).unwrap();
        b.add_edge(1, 2, 0.8).unwrap();
        let m = b.build();
        let ev = Evidence::from_pairs(3, [(0, true)]);
        let marg = marginals(&m, &ev).unwrap();
        assert!((marg[1] - 0.8).abs() < 1e-9);
        assert!((marg[2] - 0.68).abs() < 1e-9);
    }

    #[test]
    fn rejects_oversized_query() {
        let m = MrfBuilder::new(MAX_FREE_VARS + 1).build();
        let err = marginals(&m, &Evidence::none(MAX_FREE_VARS + 1)).unwrap_err();
        assert!(matches!(err, ModelError::TooLargeForExact { .. }));
    }

    #[test]
    fn oversized_model_ok_with_enough_evidence() {
        let n = MAX_FREE_VARS + 4;
        let m = MrfBuilder::new(n).build();
        // Observing enough variables brings the free count back under
        // the limit (here well under, to keep the test fast).
        let ev = Evidence::from_pairs(n, (0..n - 12).map(|v| (v, true)));
        assert!(marginals(&m, &ev).is_ok());
    }

    #[test]
    fn map_respects_evidence_and_coupling() {
        let mut b = MrfBuilder::new(3);
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(1, 2, 0.9).unwrap();
        let m = b.build();
        let ev = Evidence::from_pairs(3, [(0, false)]);
        let map = map_assignment(&m, &ev).unwrap();
        assert_eq!(map, vec![false, false, false]);
    }

    #[test]
    fn map_prefers_prior_when_uncoupled() {
        let mut b = MrfBuilder::new(2);
        b.set_prior(0, 0.9);
        b.set_prior(1, 0.2);
        let m = b.build();
        let map = map_assignment(&m, &Evidence::none(2)).unwrap();
        assert_eq!(map, vec![true, false]);
    }
}
