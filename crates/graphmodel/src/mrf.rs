//! Model definition: variables, priors, pairwise couplings.

use crate::{ModelError, Result};
use serde::{Deserialize, Serialize};

/// Smallest probability the model stores; keeps all logs finite.
pub const PROB_FLOOR: f64 = 1e-9;

fn clamp_prob(p: f64) -> f64 {
    p.clamp(PROB_FLOOR, 1.0 - PROB_FLOOR)
}

/// Builder for a [`PairwiseMrf`].
#[derive(Debug, Clone)]
pub struct MrfBuilder {
    prior_up: Vec<f64>,
    edges: Vec<(u32, u32, f64)>,
}

impl MrfBuilder {
    /// Creates a builder for `n` binary variables with uninformative
    /// (0.5) priors.
    pub fn new(n: usize) -> Self {
        MrfBuilder {
            prior_up: vec![0.5; n],
            edges: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.prior_up.len()
    }

    /// Sets the prior probability that variable `v` is `true` ("up").
    /// Clamped away from {0, 1} to keep the model proper.
    pub fn set_prior(&mut self, v: usize, p_up: f64) {
        self.prior_up[v] = clamp_prob(p_up);
    }

    /// Adds a coupling between `u` and `v`: `same_prob` is the potential
    /// mass on agreeing states, i.e. `φ(s_u, s_v) = same_prob` when
    /// `s_u == s_v` and `1 − same_prob` otherwise. `same_prob > 0.5`
    /// couples positively (the co-trend case), `< 0.5` negatively.
    ///
    /// Duplicate edges are kept and act as independent factors (their
    /// potentials multiply), matching how repeated correlation evidence
    /// compounds; callers that want one factor per pair must deduplicate.
    pub fn add_edge(&mut self, u: usize, v: usize, same_prob: f64) -> Result<()> {
        let n = self.prior_up.len();
        if u >= n {
            return Err(ModelError::InvalidVariable(u));
        }
        if v >= n {
            return Err(ModelError::InvalidVariable(v));
        }
        if u == v {
            return Err(ModelError::SelfEdge(u));
        }
        self.edges.push((u as u32, v as u32, clamp_prob(same_prob)));
        Ok(())
    }

    /// Freezes the model into CSR adjacency form.
    pub fn build(self) -> PairwiseMrf {
        let n = self.prior_up.len();
        // Connected components via union-find, relabelled compactly in
        // ascending order of each component's smallest variable so the
        // ids are deterministic for a given edge set.
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(parent: &mut [u32], x: u32) -> u32 {
            let mut root = x;
            while parent[root as usize] != root {
                root = parent[root as usize];
            }
            let mut cur = x;
            while parent[cur as usize] != root {
                let next = parent[cur as usize];
                parent[cur as usize] = root;
                cur = next;
            }
            root
        }
        for &(u, v, _) in &self.edges {
            let ru = find(&mut parent, u);
            let rv = find(&mut parent, v);
            if ru != rv {
                // Union by smaller root id keeps the result order-free.
                let (lo, hi) = if ru < rv { (ru, rv) } else { (rv, ru) };
                parent[hi as usize] = lo;
            }
        }
        let mut component = vec![u32::MAX; n];
        let mut num_components = 0u32;
        for v in 0..n {
            let root = find(&mut parent, v as u32) as usize;
            if component[root] == u32::MAX {
                component[root] = num_components;
                num_components += 1;
            }
            component[v] = component[root];
        }
        let mut degree = vec![0u32; n];
        for &(u, v, _) in &self.edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        for d in &degree {
            let last = *offsets.last().expect("non-empty");
            offsets.push(last + d);
        }
        let total = *offsets.last().expect("non-empty") as usize;
        let mut targets = vec![0u32; total];
        let mut same_prob = vec![0.0f64; total];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        // Temporarily remember the paired slot to wire `reverse`.
        let mut slot_of = Vec::with_capacity(self.edges.len());
        for &(u, v, p) in &self.edges {
            let su = cursor[u as usize] as usize;
            targets[su] = v;
            same_prob[su] = p;
            cursor[u as usize] += 1;
            let sv = cursor[v as usize] as usize;
            targets[sv] = u;
            same_prob[sv] = p;
            cursor[v as usize] += 1;
            slot_of.push((su as u32, sv as u32));
        }
        let mut reverse = vec![0u32; total];
        for &(su, sv) in &slot_of {
            reverse[su as usize] = sv;
            reverse[sv as usize] = su;
        }
        PairwiseMrf {
            prior_up: self.prior_up,
            offsets,
            targets,
            same_prob,
            reverse,
            component,
            num_components,
        }
    }
}

/// An immutable pairwise binary MRF.
///
/// Variables are `0..num_vars()`; each directed adjacency slot `d`
/// represents the directed edge (owner-of-slot → `targets[d]`) and
/// `reverse[d]` is the opposite direction's slot, which is how belief
/// propagation finds a node's inbox.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairwiseMrf {
    pub(crate) prior_up: Vec<f64>,
    pub(crate) offsets: Vec<u32>,
    pub(crate) targets: Vec<u32>,
    pub(crate) same_prob: Vec<f64>,
    pub(crate) reverse: Vec<u32>,
    pub(crate) component: Vec<u32>,
    pub(crate) num_components: u32,
}

impl PairwiseMrf {
    /// Number of variables.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.prior_up.len()
    }

    /// Number of undirected coupling edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// Prior up-probability of variable `v`.
    #[inline]
    pub fn prior_up(&self, v: usize) -> f64 {
        self.prior_up[v]
    }

    /// Directed adjacency slot range of variable `v`.
    #[inline]
    pub(crate) fn slots(&self, v: usize) -> std::ops::Range<usize> {
        self.offsets[v] as usize..self.offsets[v + 1] as usize
    }

    /// Neighbours of `v` with the coupling strength of each edge.
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.slots(v)
            .map(move |d| (self.targets[d] as usize, self.same_prob[d]))
    }

    /// Degree of variable `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.slots(v).len()
    }

    /// Connected-component id of variable `v` (compact, deterministic:
    /// components are numbered in ascending order of their smallest
    /// variable). Isolated variables are singleton components.
    #[inline]
    pub fn component(&self, v: usize) -> usize {
        self.component[v] as usize
    }

    /// Number of connected components (isolated variables count).
    #[inline]
    pub fn num_components(&self) -> usize {
        self.num_components as usize
    }

    /// Re-weights the (first) coupling edge between `u` and `v` in
    /// place, clamping like [`MrfBuilder::add_edge`]. Both directed
    /// slots are patched, preserving the CSR symmetry invariant, and
    /// the result is bit-identical to rebuilding the model with the
    /// new weight (build copies the clamped weight into both
    /// directions verbatim).
    ///
    /// The slot is found by scanning `u`'s adjacency row — rows are
    /// short (correlation-graph degrees are single digits) and the
    /// scan assumes nothing about row order. With duplicate edges
    /// only the first factor is touched; the incremental-retrain
    /// caller builds one factor per correlated pair.
    pub fn set_coupling(&mut self, u: usize, v: usize, same_prob: f64) -> Result<()> {
        if u >= self.num_vars() {
            return Err(ModelError::InvalidVariable(u));
        }
        if v >= self.num_vars() {
            return Err(ModelError::InvalidVariable(v));
        }
        let d = self
            .slots(u)
            .find(|&d| self.targets[d] as usize == v)
            .ok_or(ModelError::MissingEdge(u, v))?;
        let p = clamp_prob(same_prob);
        self.same_prob[d] = p;
        self.same_prob[self.reverse[d] as usize] = p;
        Ok(())
    }

    /// Unnormalised joint weight of a full assignment — the product of
    /// all node priors and edge potentials. Exposed for testing and for
    /// the exact enumerator.
    pub fn joint_weight(&self, assignment: &[bool]) -> f64 {
        debug_assert_eq!(assignment.len(), self.num_vars());
        let mut w = 1.0;
        for (v, &s) in assignment.iter().enumerate() {
            w *= if s {
                self.prior_up[v]
            } else {
                1.0 - self.prior_up[v]
            };
        }
        for v in 0..self.num_vars() {
            for d in self.slots(v) {
                let u = self.targets[d] as usize;
                if u < v {
                    continue; // count each undirected edge once
                }
                let p = self.same_prob[d];
                w *= if assignment[v] == assignment[u] {
                    p
                } else {
                    1.0 - p
                };
            }
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_rejects_bad_indices() {
        let mut b = MrfBuilder::new(2);
        assert_eq!(b.add_edge(0, 5, 0.9), Err(ModelError::InvalidVariable(5)));
        assert_eq!(b.add_edge(1, 1, 0.9), Err(ModelError::SelfEdge(1)));
    }

    #[test]
    fn priors_are_clamped() {
        let mut b = MrfBuilder::new(1);
        b.set_prior(0, 1.0);
        let m = b.build();
        assert!(m.prior_up(0) < 1.0 && m.prior_up(0) > 0.999);
    }

    #[test]
    fn csr_symmetry_and_reverse() {
        let mut b = MrfBuilder::new(3);
        b.add_edge(0, 1, 0.8).unwrap();
        b.add_edge(1, 2, 0.7).unwrap();
        let m = b.build();
        assert_eq!(m.num_edges(), 2);
        for v in 0..3 {
            for d in m.slots(v) {
                let u = m.targets[d] as usize;
                let r = m.reverse[d] as usize;
                assert_eq!(m.targets[r] as usize, v);
                assert!(m.slots(u).contains(&r));
                assert_eq!(m.same_prob[d], m.same_prob[r]);
            }
        }
    }

    #[test]
    fn joint_weight_two_var() {
        let mut b = MrfBuilder::new(2);
        b.set_prior(0, 0.6);
        b.set_prior(1, 0.5);
        b.add_edge(0, 1, 0.9).unwrap();
        let m = b.build();
        let w_uu = m.joint_weight(&[true, true]);
        assert!((w_uu - 0.6 * 0.5 * 0.9).abs() < 1e-12);
        let w_ud = m.joint_weight(&[true, false]);
        assert!((w_ud - 0.6 * 0.5 * 0.1).abs() < 1e-9);
    }

    #[test]
    fn duplicate_edges_compound() {
        let mut b = MrfBuilder::new(2);
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(0, 1, 0.9).unwrap();
        let m = b.build();
        assert_eq!(m.num_edges(), 2);
        let agree = m.joint_weight(&[true, true]);
        let disagree = m.joint_weight(&[true, false]);
        // Two factors of 0.9 vs two of 0.1: ratio 81.
        assert!((agree / disagree - 81.0).abs() < 1e-6);
    }

    #[test]
    fn set_coupling_matches_rebuild_bitwise() {
        let build = |w02: f64| {
            let mut b = MrfBuilder::new(4);
            b.set_prior(1, 0.7);
            b.add_edge(0, 1, 0.8).unwrap();
            b.add_edge(0, 2, w02).unwrap();
            b.add_edge(2, 3, 0.4).unwrap();
            b.build()
        };
        for w in [0.55, 0.1, 1.5, -0.2] {
            let mut patched = build(0.6);
            // Patch through either endpoint order; both must land on
            // the same undirected edge.
            patched.set_coupling(2, 0, w).unwrap();
            assert_eq!(patched, build(w), "w={w}");
        }
    }

    #[test]
    fn set_coupling_rejects_missing_edge() {
        let mut b = MrfBuilder::new(3);
        b.add_edge(0, 1, 0.8).unwrap();
        let mut m = b.build();
        let before = m.clone();
        assert_eq!(
            m.set_coupling(1, 2, 0.9),
            Err(ModelError::MissingEdge(1, 2))
        );
        assert_eq!(
            m.set_coupling(0, 7, 0.9),
            Err(ModelError::InvalidVariable(7))
        );
        assert_eq!(m, before);
    }

    #[test]
    fn components_are_compact_and_deterministic() {
        // {0,1,4} ∪ {2,3} ∪ {5}: ids follow smallest member order.
        let mut b = MrfBuilder::new(6);
        b.add_edge(4, 1, 0.8).unwrap();
        b.add_edge(0, 4, 0.7).unwrap();
        b.add_edge(3, 2, 0.6).unwrap();
        let m = b.build();
        assert_eq!(m.num_components(), 3);
        assert_eq!(
            (0..6).map(|v| m.component(v)).collect::<Vec<_>>(),
            vec![0, 0, 1, 1, 0, 2]
        );
        // Edge insertion order must not change the labelling.
        let mut b2 = MrfBuilder::new(6);
        b2.add_edge(3, 2, 0.6).unwrap();
        b2.add_edge(0, 4, 0.7).unwrap();
        b2.add_edge(4, 1, 0.8).unwrap();
        let m2 = b2.build();
        assert_eq!(
            (0..6).map(|v| m.component(v)).collect::<Vec<_>>(),
            (0..6).map(|v| m2.component(v)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn edgeless_model_is_all_singletons() {
        let m = MrfBuilder::new(4).build();
        assert_eq!(m.num_components(), 4);
        for v in 0..4 {
            assert_eq!(m.component(v), v);
        }
    }

    #[test]
    fn neighbors_lists_couplings() {
        let mut b = MrfBuilder::new(3);
        b.add_edge(0, 1, 0.8).unwrap();
        b.add_edge(0, 2, 0.6).unwrap();
        let m = b.build();
        let mut ns: Vec<_> = m.neighbors(0).collect();
        ns.sort_by_key(|n| n.0);
        assert_eq!(ns, vec![(1, 0.8), (2, 0.6)]);
        assert_eq!(m.degree(0), 2);
        assert_eq!(m.degree(1), 1);
    }
}
