//! Gibbs sampling — the accuracy/efficiency baseline engine.
//!
//! The evaluation (experiment E6) compares LBP against Gibbs sampling to
//! reproduce the paper's efficiency claim: a sampler needs thousands of
//! sweeps to reach the accuracy LBP reaches in tens, which is the
//! two-orders-of-magnitude gap.

use crate::{Evidence, PairwiseMrf};
use rand::Rng;

/// Options controlling the Gibbs sampler.
#[derive(Debug, Clone)]
pub struct GibbsOptions {
    /// Sweeps discarded before collecting statistics.
    pub burn_in: usize,
    /// Sweeps whose states are averaged into the marginal estimates.
    pub samples: usize,
}

impl Default for GibbsOptions {
    fn default() -> Self {
        GibbsOptions {
            burn_in: 200,
            samples: 2000,
        }
    }
}

/// Reusable buffers for repeated Gibbs runs: the chain state, the
/// up-sweep counters, and the marginal vector survive between calls to
/// [`run_with`].
#[derive(Debug, Clone, Default)]
pub struct GibbsWorkspace {
    state: Vec<bool>,
    up_counts: Vec<u64>,
    marginals: Vec<f64>,
}

impl GibbsWorkspace {
    /// An empty workspace; buffers are sized lazily on first use.
    pub fn new() -> Self {
        GibbsWorkspace::default()
    }

    /// Estimated marginals written by the most recent [`run_with`].
    pub fn marginals(&self) -> &[f64] {
        &self.marginals
    }
}

/// Runs Gibbs sampling and returns estimated up-probabilities per
/// variable. Observed variables stay clamped to their evidence and
/// report hard 0/1 marginals.
///
/// Allocates fresh buffers per call; serving paths should hold a
/// [`GibbsWorkspace`] and call [`run_with`].
pub fn run<R: Rng>(
    mrf: &PairwiseMrf,
    evidence: &Evidence,
    opts: &GibbsOptions,
    rng: &mut R,
) -> Vec<f64> {
    let mut ws = GibbsWorkspace::new();
    run_with(mrf, evidence, opts, rng, &mut ws);
    std::mem::take(&mut ws.marginals)
}

/// Runs Gibbs sampling reusing the buffers in `ws`; identical sampling
/// schedule and RNG consumption to [`run`], so results are bit-identical
/// for the same seed.
pub fn run_with<R: Rng>(
    mrf: &PairwiseMrf,
    evidence: &Evidence,
    opts: &GibbsOptions,
    rng: &mut R,
    ws: &mut GibbsWorkspace,
) {
    let n = mrf.num_vars();
    assert_eq!(evidence.len(), n, "evidence covers a different model");

    // Split borrows: all three buffers are used simultaneously.
    let GibbsWorkspace {
        state,
        up_counts,
        marginals,
    } = ws;

    // Initialise: evidence clamped, free variables from their priors.
    state.clear();
    state.extend((0..n).map(|v| match evidence.get(v) {
        Some(s) => s,
        None => rng.gen_bool(mrf.prior_up(v)),
    }));
    up_counts.clear();
    up_counts.resize(n, 0);

    for sweep in 0..opts.burn_in + opts.samples {
        for v in 0..n {
            if evidence.is_observed(v) {
                continue;
            }
            // Conditional P(v = up | neighbours) in log space.
            let pv = mrf.prior_up(v);
            let mut lup = pv.ln();
            let mut ldown = (1.0 - pv).ln();
            for (u, p) in mrf.neighbors(v) {
                if state[u] {
                    lup += p.ln();
                    ldown += (1.0 - p).ln();
                } else {
                    lup += (1.0 - p).ln();
                    ldown += p.ln();
                }
            }
            let p_up = 1.0 / (1.0 + (ldown - lup).exp());
            state[v] = rng.gen_bool(p_up);
        }
        if sweep >= opts.burn_in {
            for (v, &s) in state.iter().enumerate() {
                if s {
                    up_counts[v] += 1;
                }
            }
        }
    }

    marginals.clear();
    marginals.extend((0..n).map(|v| match evidence.get(v) {
        Some(true) => 1.0,
        Some(false) => 0.0,
        None => up_counts[v] as f64 / opts.samples.max(1) as f64,
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exact, MrfBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_exact_on_small_model() {
        let mut b = MrfBuilder::new(4);
        b.set_prior(0, 0.6);
        b.set_prior(3, 0.4);
        b.add_edge(0, 1, 0.8).unwrap();
        b.add_edge(1, 2, 0.7).unwrap();
        b.add_edge(2, 3, 0.6).unwrap();
        b.add_edge(3, 0, 0.75).unwrap(); // loop
        let m = b.build();
        let ev = Evidence::from_pairs(4, [(0, true)]);
        let mut rng = StdRng::seed_from_u64(1);
        let est = run(&m, &ev, &GibbsOptions::default(), &mut rng);
        let ex = exact::marginals(&m, &ev).unwrap();
        for (v, (g, e)) in est.iter().zip(&ex).enumerate() {
            assert!((g - e).abs() < 0.05, "var {v}: gibbs {g} vs exact {e}");
        }
    }

    #[test]
    fn evidence_stays_clamped() {
        let mut b = MrfBuilder::new(2);
        b.add_edge(0, 1, 0.5).unwrap();
        let m = b.build();
        let ev = Evidence::from_pairs(2, [(1, false)]);
        let mut rng = StdRng::seed_from_u64(2);
        let est = run(&m, &ev, &GibbsOptions::default(), &mut rng);
        assert_eq!(est[1], 0.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut b = MrfBuilder::new(3);
        b.add_edge(0, 1, 0.7).unwrap();
        b.add_edge(1, 2, 0.7).unwrap();
        let m = b.build();
        let ev = Evidence::none(3);
        let opts = GibbsOptions {
            burn_in: 10,
            samples: 50,
        };
        let a = run(&m, &ev, &opts, &mut StdRng::seed_from_u64(3));
        let b2 = run(&m, &ev, &opts, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b2);
    }

    #[test]
    fn uncoupled_variable_tracks_prior() {
        let mut b = MrfBuilder::new(1);
        b.set_prior(0, 0.8);
        let m = b.build();
        let mut rng = StdRng::seed_from_u64(4);
        let est = run(
            &m,
            &Evidence::none(1),
            &GibbsOptions {
                burn_in: 100,
                samples: 5000,
            },
            &mut rng,
        );
        assert!((est[0] - 0.8).abs() < 0.03, "{}", est[0]);
    }
}
