//! Naive mean-field variational inference.
//!
//! Approximates the posterior with a fully factorised distribution
//! `q(s) = Π_v q_v(s_v)` and iterates the coordinate-ascent fixed
//! point. Cheaper per sweep than belief propagation (no per-edge
//! messages, one value per variable) and typically a little less
//! accurate — it is offered as a third engine for the
//! efficiency/accuracy trade-off study.
//!
//! Update rule for a pairwise binary MRF with "same" potentials `p_e`:
//!
//! ```text
//! logit(q_v) = logit(prior_v)
//!            + Σ_{e=(v,u)} (2 q_u − 1) · ln(p_e / (1 − p_e))
//! ```

use crate::mrf::PROB_FLOOR;
use crate::{Evidence, PairwiseMrf};

/// Options controlling the mean-field schedule.
#[derive(Debug, Clone)]
pub struct MeanFieldOptions {
    /// Maximum coordinate-ascent sweeps.
    pub max_iters: usize,
    /// Convergence threshold on the largest per-variable change.
    pub tol: f64,
    /// Damping in `[0, 1)` (new = damping·old + (1−damping)·update).
    pub damping: f64,
}

impl Default for MeanFieldOptions {
    fn default() -> Self {
        MeanFieldOptions {
            max_iters: 200,
            tol: 1e-6,
            damping: 0.2,
        }
    }
}

/// Result of a mean-field run.
#[derive(Debug, Clone)]
pub struct MeanFieldResult {
    /// Approximate posterior up-probability per variable (observed
    /// variables report their clamped value).
    pub marginals: Vec<f64>,
    /// Sweeps performed.
    pub iterations: usize,
    /// Whether updates fell below `tol`.
    pub converged: bool,
}

/// Convergence statistics of a workspace-based mean-field run; the
/// marginals themselves live in the [`MeanFieldWorkspace`].
#[derive(Debug, Clone, Copy)]
pub struct MeanFieldStats {
    /// Sweeps performed.
    pub iterations: usize,
    /// Whether updates fell below `tol`.
    pub converged: bool,
}

/// Reusable buffer for repeated mean-field runs: the factorised
/// marginal vector `q` survives between calls to [`run_with`].
#[derive(Debug, Clone, Default)]
pub struct MeanFieldWorkspace {
    q: Vec<f64>,
}

impl MeanFieldWorkspace {
    /// An empty workspace; the buffer is sized lazily on first use.
    pub fn new() -> Self {
        MeanFieldWorkspace::default()
    }

    /// Approximate marginals written by the most recent [`run_with`].
    pub fn marginals(&self) -> &[f64] {
        &self.q
    }
}

/// Runs naive mean-field coordinate ascent.
///
/// Allocates a fresh buffer per call; serving paths should hold a
/// [`MeanFieldWorkspace`] and call [`run_with`].
pub fn run(mrf: &PairwiseMrf, evidence: &Evidence, opts: &MeanFieldOptions) -> MeanFieldResult {
    let mut ws = MeanFieldWorkspace::new();
    let stats = run_with(mrf, evidence, opts, &mut ws);
    MeanFieldResult {
        marginals: std::mem::take(&mut ws.q),
        iterations: stats.iterations,
        converged: stats.converged,
    }
}

/// Runs mean-field reusing the buffer in `ws`; identical update order
/// and arithmetic to [`run`], so results are bit-identical.
pub fn run_with(
    mrf: &PairwiseMrf,
    evidence: &Evidence,
    opts: &MeanFieldOptions,
    ws: &mut MeanFieldWorkspace,
) -> MeanFieldStats {
    let n = mrf.num_vars();
    assert_eq!(evidence.len(), n, "evidence covers a different model");

    // q[v] = current approximate P(v = up); evidence clamped.
    let q = &mut ws.q;
    q.clear();
    q.extend((0..n).map(|v| match evidence.get(v) {
        Some(true) => 1.0,
        Some(false) => 0.0,
        None => mrf.prior_up(v),
    }));

    let logit = |p: f64| {
        let p = p.clamp(PROB_FLOOR, 1.0 - PROB_FLOOR);
        (p / (1.0 - p)).ln()
    };

    let mut iterations = 0;
    let mut converged = false;
    while iterations < opts.max_iters {
        iterations += 1;
        let mut max_delta = 0.0f64;
        for v in 0..n {
            if evidence.is_observed(v) {
                continue;
            }
            let mut l = logit(mrf.prior_up(v));
            for (u, p) in mrf.neighbors(v) {
                l += (2.0 * q[u] - 1.0) * logit(p);
            }
            let update = 1.0 / (1.0 + (-l).exp());
            let new = opts.damping * q[v] + (1.0 - opts.damping) * update;
            max_delta = max_delta.max((new - q[v]).abs());
            q[v] = new;
        }
        if max_delta < opts.tol {
            converged = true;
            break;
        }
    }

    MeanFieldStats {
        iterations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exact, MrfBuilder};

    #[test]
    fn uncoupled_model_reproduces_priors() {
        let mut b = MrfBuilder::new(3);
        b.set_prior(0, 0.2);
        b.set_prior(1, 0.5);
        b.set_prior(2, 0.85);
        let m = b.build();
        let r = run(&m, &Evidence::none(3), &MeanFieldOptions::default());
        assert!(r.converged);
        for (q, want) in r.marginals.iter().zip(&[0.2, 0.5, 0.85]) {
            assert!((q - want).abs() < 1e-6);
        }
    }

    #[test]
    fn evidence_is_clamped_and_propagates_direction() {
        let mut b = MrfBuilder::new(3);
        b.add_edge(0, 1, 0.8).unwrap();
        b.add_edge(1, 2, 0.8).unwrap();
        let m = b.build();
        let ev = Evidence::from_pairs(3, [(0, true)]);
        let r = run(&m, &ev, &MeanFieldOptions::default());
        assert_eq!(r.marginals[0], 1.0);
        assert!(r.marginals[1] > 0.6, "{:?}", r.marginals);
        assert!(r.marginals[2] > 0.5);
        // Mean field notoriously overshoots, but direction and ordering
        // must match exact inference.
        let ex = exact::marginals(&m, &ev).unwrap();
        assert_eq!(r.marginals[1] > 0.5, ex[1] > 0.5);
    }

    #[test]
    fn close_to_exact_on_weakly_coupled_model() {
        let mut b = MrfBuilder::new(4);
        b.set_prior(0, 0.6);
        b.set_prior(3, 0.4);
        b.add_edge(0, 1, 0.58).unwrap();
        b.add_edge(1, 2, 0.56).unwrap();
        b.add_edge(2, 3, 0.6).unwrap();
        let m = b.build();
        let ev = Evidence::from_pairs(4, [(0, false)]);
        let r = run(&m, &ev, &MeanFieldOptions::default());
        let ex = exact::marginals(&m, &ev).unwrap();
        for (v, (q, e)) in r.marginals.iter().zip(&ex).enumerate() {
            assert!((q - e).abs() < 0.03, "var {v}: {q} vs {e}");
        }
    }

    #[test]
    fn respects_iteration_budget() {
        let mut b = MrfBuilder::new(2);
        b.add_edge(0, 1, 0.9).unwrap();
        let m = b.build();
        let opts = MeanFieldOptions {
            max_iters: 1,
            tol: 0.0,
            damping: 0.0,
        };
        let r = run(&m, &Evidence::none(2), &opts);
        assert_eq!(r.iterations, 1);
        assert!(!r.converged);
    }

    #[test]
    fn marginals_stay_probabilities_under_strong_coupling() {
        let mut b = MrfBuilder::new(6);
        for u in 0..6 {
            for v in (u + 1)..6 {
                b.add_edge(u, v, 0.95).unwrap();
            }
        }
        let m = b.build();
        let ev = Evidence::from_pairs(6, [(0, true)]);
        let r = run(&m, &ev, &MeanFieldOptions::default());
        for q in &r.marginals {
            assert!((0.0..=1.0).contains(q));
        }
        // Strong agreement coupling + up evidence => everything up.
        for q in &r.marginals[1..] {
            assert!(*q > 0.9);
        }
    }
}
