#![warn(missing_docs)]

//! Pairwise binary Markov random field (MRF) substrate.
//!
//! The paper's step-1 *trend inference* is posterior inference in a
//! pairwise MRF over the road correlation graph: each road carries a
//! binary trend variable (`true` = speed above its historical average),
//! node potentials come from historical up-trend rates, edge potentials
//! from co-trend probabilities, and crowdsourced seed trends are clamped
//! as evidence.
//!
//! No mature graphical-model crate exists in the approved dependency
//! set, so this crate implements the model from scratch with three
//! inference engines:
//!
//! * [`exact`] — brute-force enumeration, the correctness oracle for
//!   small graphs;
//! * [`lbp`] — damped sum-product loopy belief propagation, the
//!   production engine (near-linear per sweep);
//! * [`gibbs`] — Gibbs sampling, the accuracy/efficiency baseline the
//!   evaluation compares against.
//!
//! # Example
//!
//! ```
//! use graphmodel::{MrfBuilder, Evidence, lbp};
//!
//! // Chain v0 - v1 - v2 with strong positive coupling; observe v0 = up.
//! let mut b = MrfBuilder::new(3);
//! b.set_prior(0, 0.5); b.set_prior(1, 0.5); b.set_prior(2, 0.5);
//! b.add_edge(0, 1, 0.9).unwrap();
//! b.add_edge(1, 2, 0.9).unwrap();
//! let mrf = b.build();
//!
//! let mut ev = Evidence::none(3);
//! ev.observe(0, true);
//! let res = lbp::run(&mrf, &ev, &lbp::LbpOptions::default());
//! assert!(res.converged);
//! assert!(res.marginals[1] > 0.85);          // direct neighbour: strong pull
//! assert!(res.marginals[2] > 0.7);           // two hops: attenuated pull
//! assert!(res.marginals[2] < res.marginals[1]);
//! ```

pub mod evidence;
pub mod exact;
pub mod gibbs;
pub mod lbp;
pub mod meanfield;
pub mod mrf;

pub use evidence::Evidence;
pub use gibbs::GibbsWorkspace;
pub use lbp::LbpWorkspace;
pub use meanfield::MeanFieldWorkspace;
pub use mrf::{MrfBuilder, PairwiseMrf};

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A variable index is out of range.
    InvalidVariable(usize),
    /// A self-coupling edge was requested.
    SelfEdge(usize),
    /// A coupling patch named a variable pair no edge connects.
    MissingEdge(usize, usize),
    /// Exact inference was asked for more free variables than feasible.
    TooLargeForExact {
        /// Number of unobserved variables in the query.
        free_vars: usize,
        /// Maximum supported by the enumerator.
        limit: usize,
    },
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::InvalidVariable(v) => write!(f, "invalid variable {v}"),
            ModelError::SelfEdge(v) => write!(f, "self-edge on variable {v}"),
            ModelError::MissingEdge(u, v) => {
                write!(f, "no coupling edge between variables {u} and {v}")
            }
            ModelError::TooLargeForExact { free_vars, limit } => write!(
                f,
                "exact inference over {free_vars} free variables exceeds limit {limit}"
            ),
        }
    }
}

impl std::error::Error for ModelError {}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, ModelError>;
