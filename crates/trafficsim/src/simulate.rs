//! Day-level traffic simulation.

use crate::congestion::{apply_events, sample_events, CongestionParams};
use crate::profile::{diurnal_multiplier, DiurnalParams, SlotClock};
use crate::rng_ext;
use rand::rngs::StdRng;
use rand::SeedableRng;
use roadnet::{RoadGraph, RoadId};
use serde::{Deserialize, Serialize};

/// All tunables of the traffic generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrafficParams {
    /// Diurnal profile shape.
    pub diurnal: DiurnalParams,
    /// Congestion event generation.
    pub congestion: CongestionParams,
    /// AR(1) persistence of the citywide factor across slots, in `[0, 1)`.
    pub citywide_rho: f64,
    /// Innovation std-dev of the citywide factor.
    pub citywide_sigma: f64,
    /// Std-dev of per-(road, slot) multiplicative log-noise.
    pub noise_sigma: f64,
    /// Lower bound on the congestion multiplier.
    pub congestion_floor: f64,
    /// Absolute minimum speed (km/h) — queues crawl, they do not stop.
    pub min_speed_kmh: f64,
}

impl Default for TrafficParams {
    fn default() -> Self {
        TrafficParams {
            diurnal: DiurnalParams::default(),
            congestion: CongestionParams::default(),
            citywide_rho: 0.9,
            citywide_sigma: 0.02,
            noise_sigma: 0.05,
            congestion_floor: 0.15,
            min_speed_kmh: 3.0,
        }
    }
}

/// One day of ground-truth speeds: `speed(slot, road)` in km/h, stored
/// row-major by slot for cache-friendly per-slot access.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeedField {
    slots: usize,
    roads: usize,
    data: Vec<f64>,
}

impl SpeedField {
    /// Creates a field filled with `value`.
    pub fn filled(slots: usize, roads: usize, value: f64) -> Self {
        SpeedField {
            slots,
            roads,
            data: vec![value; slots * roads],
        }
    }

    /// Number of slots.
    #[inline]
    pub fn num_slots(&self) -> usize {
        self.slots
    }

    /// Number of roads.
    #[inline]
    pub fn num_roads(&self) -> usize {
        self.roads
    }

    /// Speed of `road` at `slot`.
    #[inline]
    pub fn speed(&self, slot: usize, road: RoadId) -> f64 {
        self.data[slot * self.roads + road.index()]
    }

    /// Sets the speed of `road` at `slot`.
    #[inline]
    pub fn set_speed(&mut self, slot: usize, road: RoadId, v: f64) {
        self.data[slot * self.roads + road.index()] = v;
    }

    /// All speeds at `slot`, indexed by road.
    #[inline]
    pub fn slot_speeds(&self, slot: usize) -> &[f64] {
        &self.data[slot * self.roads..(slot + 1) * self.roads]
    }

    /// Raw storage (slot-major).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }
}

/// Deterministic (seeded) multi-day traffic simulator over a road graph.
#[derive(Debug, Clone)]
pub struct TrafficSimulator {
    graph: RoadGraph,
    clock: SlotClock,
    params: TrafficParams,
    seed: u64,
    rush_slots: Vec<usize>,
}

impl TrafficSimulator {
    /// Creates a simulator. `seed` makes every day reproducible: day `d`
    /// is generated from a generator-specific sub-seed, so days can be
    /// produced in any order.
    pub fn new(graph: RoadGraph, clock: SlotClock, params: TrafficParams, seed: u64) -> Self {
        let rush_slots = vec![
            clock.slot_of_hour(params.diurnal.am_peak_hour),
            clock.slot_of_hour(params.diurnal.pm_peak_hour),
        ];
        TrafficSimulator {
            graph,
            clock,
            params,
            seed,
            rush_slots,
        }
    }

    /// The simulated road graph.
    pub fn graph(&self) -> &RoadGraph {
        &self.graph
    }

    /// The time discretisation.
    pub fn clock(&self) -> &SlotClock {
        &self.clock
    }

    /// The generator parameters.
    pub fn params(&self) -> &TrafficParams {
        &self.params
    }

    /// Expected (noise- and event-free) speed of a road at a slot — the
    /// "idealised historical average" of the generator.
    pub fn expected_speed(&self, road: RoadId, slot_of_day: usize) -> f64 {
        let meta = self.graph.meta(road);
        meta.free_flow_kmh
            * diurnal_multiplier(&self.params.diurnal, &self.clock, meta.class, slot_of_day)
    }

    /// Generates the ground-truth speeds of day `day_index`.
    pub fn simulate_day(&self, day_index: u64) -> SpeedField {
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ day_index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let n = self.graph.num_roads();
        let slots = self.clock.slots_per_day;

        // 1. Congestion multipliers, starting from 1.
        let mut mult = vec![1.0f64; slots * n];
        let events = sample_events(
            &self.graph,
            &self.params.congestion,
            slots,
            &self.rush_slots,
            &mut rng,
        );
        apply_events(
            &self.graph,
            &events,
            slots,
            &mut mult,
            self.params.congestion_floor,
        );

        // 2. Citywide AR(1) factor (weather-like, shared by all roads).
        // Initialised from the stationary distribution so the morning
        // is as (un)predictable as the afternoon — the factor models
        // conditions that persist across midnight, not ones that reset.
        let mut citywide = Vec::with_capacity(slots);
        let stationary_sd = self.params.citywide_sigma
            / (1.0 - self.params.citywide_rho * self.params.citywide_rho)
                .max(1e-6)
                .sqrt();
        let mut g = 1.0 + stationary_sd * rng_ext::gaussian(&mut rng);
        for _ in 0..slots {
            g = 1.0
                + self.params.citywide_rho * (g - 1.0)
                + self.params.citywide_sigma * rng_ext::gaussian(&mut rng);
            citywide.push(g.clamp(0.7, 1.3));
        }

        // 3. Compose: diurnal base x citywide x congestion x log-noise.
        let mut field = SpeedField::filled(slots, n, 0.0);
        for slot in 0..slots {
            let cw = citywide[slot];
            for road in self.graph.road_ids() {
                let base = self.expected_speed(road, slot);
                let noise = (self.params.noise_sigma * rng_ext::gaussian(&mut rng)).exp();
                let v = base * cw * mult[slot * n + road.index()] * noise;
                let cap = self.graph.meta(road).free_flow_kmh * 1.3;
                field.set_speed(slot, road, v.clamp(self.params.min_speed_kmh, cap));
            }
        }
        field
    }

    /// Generates `days` consecutive days starting at `first_day`.
    pub fn simulate_days(&self, first_day: u64, days: usize) -> Vec<SpeedField> {
        (0..days as u64)
            .map(|d| self.simulate_day(first_day + d))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::generate::{grid_city, GridParams};

    fn sim() -> TrafficSimulator {
        let g = grid_city(&GridParams {
            width: 5,
            height: 5,
            ..GridParams::default()
        });
        TrafficSimulator::new(g, SlotClock::hourly(), TrafficParams::default(), 99)
    }

    #[test]
    fn day_is_deterministic() {
        let s = sim();
        assert_eq!(s.simulate_day(3), s.simulate_day(3));
    }

    #[test]
    fn different_days_differ() {
        let s = sim();
        assert_ne!(s.simulate_day(0), s.simulate_day(1));
    }

    #[test]
    fn speeds_physical() {
        let s = sim();
        let day = s.simulate_day(0);
        for slot in 0..day.num_slots() {
            for r in s.graph().road_ids() {
                let v = day.speed(slot, r);
                assert!(v >= s.params().min_speed_kmh);
                assert!(v <= s.graph().meta(r).free_flow_kmh * 1.3 + 1e-9);
            }
        }
    }

    #[test]
    fn rush_hour_slower_on_average() {
        let s = sim();
        let days = s.simulate_days(0, 6);
        let clock = *s.clock();
        let rush = clock.slot_of_hour(8.25);
        let calm = clock.slot_of_hour(12.5);
        let mut rush_total = 0.0;
        let mut calm_total = 0.0;
        for d in &days {
            rush_total += d.slot_speeds(rush).iter().sum::<f64>();
            calm_total += d.slot_speeds(calm).iter().sum::<f64>();
        }
        assert!(
            rush_total < calm_total * 0.95,
            "rush {rush_total} vs calm {calm_total}"
        );
    }

    #[test]
    fn neighbours_co_trend_more_than_distant_roads() {
        // The structural property the whole paper rests on: adjacent
        // roads agree on trend direction more often than far-apart ones.
        let s = sim();
        let days: Vec<_> = s.simulate_days(0, 14);
        let g = s.graph();
        let n = g.num_roads();
        let slots = s.clock().slots_per_day;

        // Historical mean per (slot, road).
        let mut mean = vec![0.0f64; slots * n];
        for d in &days {
            for (m, v) in mean.iter_mut().zip(d.as_slice()) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= days.len() as f64;
        }
        let trend =
            |d: &SpeedField, slot: usize, r: RoadId| d.speed(slot, r) >= mean[slot * n + r.index()];

        let mut agree_adj = 0u64;
        let mut total_adj = 0u64;
        let mut agree_far = 0u64;
        let mut total_far = 0u64;
        let far_pairs: Vec<(RoadId, RoadId)> = (0..n as u32 / 2)
            .map(|i| (RoadId(i), RoadId(n as u32 - 1 - i)))
            .filter(|&(a, b)| !g.are_adjacent(a, b) && g.distance(a, b) > 600.0)
            .collect();
        for d in &days {
            for slot in 0..slots {
                for a in g.road_ids() {
                    for &b in g.neighbors(a) {
                        if a < b {
                            total_adj += 1;
                            if trend(d, slot, a) == trend(d, slot, b) {
                                agree_adj += 1;
                            }
                        }
                    }
                }
                for &(a, b) in &far_pairs {
                    total_far += 1;
                    if trend(d, slot, a) == trend(d, slot, b) {
                        agree_far += 1;
                    }
                }
            }
        }
        let p_adj = agree_adj as f64 / total_adj as f64;
        let p_far = agree_far as f64 / total_far as f64;
        assert!(
            p_adj > p_far + 0.03,
            "adjacent co-trend {p_adj:.3} should exceed distant {p_far:.3}"
        );
        assert!(p_adj > 0.6, "adjacent co-trend too weak: {p_adj:.3}");
    }

    #[test]
    fn expected_speed_uses_class_profile() {
        let s = sim();
        let r = s.graph().road_ids().next().unwrap();
        let rush = s.clock().slot_of_hour(8.25);
        let calm = s.clock().slot_of_hour(12.5);
        assert!(s.expected_speed(r, rush) < s.expected_speed(r, calm));
    }

    #[test]
    fn speed_field_accessors() {
        let mut f = SpeedField::filled(2, 3, 1.0);
        f.set_speed(1, RoadId(2), 42.0);
        assert_eq!(f.speed(1, RoadId(2)), 42.0);
        assert_eq!(f.slot_speeds(0), &[1.0, 1.0, 1.0]);
        assert_eq!(f.slot_speeds(1), &[1.0, 1.0, 42.0]);
        assert_eq!(f.num_slots(), 2);
        assert_eq!(f.num_roads(), 3);
    }
}
