//! Diffusing congestion events.
//!
//! Each event has an epicentre road, a time window and a severity. Its
//! effect spreads over the road graph with exponential hop decay and
//! over time with a triangular ramp, so that roads *near* an event slow
//! down *together* — the co-trending structure the paper's correlation
//! graph captures.

use rand::Rng;
use roadnet::{path, RoadGraph, RoadId};
use serde::{Deserialize, Serialize};

/// One congestion event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CongestionEvent {
    /// Road at the centre of the event.
    pub epicenter: RoadId,
    /// First affected slot (within one day).
    pub start_slot: usize,
    /// Number of affected slots.
    pub duration_slots: usize,
    /// Peak fractional slow-down at the epicentre, in `(0, 1)`.
    pub severity: f64,
    /// Hop radius of the spatial spread.
    pub radius_hops: u32,
    /// Multiplicative decay of the effect per hop, in `(0, 1)`.
    pub hop_decay: f64,
}

/// Parameters governing event generation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CongestionParams {
    /// Expected number of events per day per 100 roads.
    pub events_per_day_per_100_roads: f64,
    /// Severity range (uniform).
    pub severity: (f64, f64),
    /// Duration range in slots (uniform, inclusive).
    pub duration_slots: (usize, usize),
    /// Spatial radius in hops.
    pub radius_hops: u32,
    /// Per-hop decay of the effect.
    pub hop_decay: f64,
    /// Bias event start times towards rush hours (probability that an
    /// event is re-sampled near a peak instead of uniformly).
    pub rush_bias: f64,
}

impl Default for CongestionParams {
    fn default() -> Self {
        CongestionParams {
            events_per_day_per_100_roads: 3.0,
            severity: (0.25, 0.6),
            duration_slots: (4, 16),
            radius_hops: 4,
            hop_decay: 0.6,
            rush_bias: 0.5,
        }
    }
}

impl CongestionEvent {
    /// Temporal intensity of the event at `slot` (0 outside the window,
    /// triangular ramp up to 1 at the middle inside it).
    pub fn temporal_intensity(&self, slot: usize) -> f64 {
        if slot < self.start_slot || slot >= self.start_slot + self.duration_slots {
            return 0.0;
        }
        let pos = (slot - self.start_slot) as f64 + 0.5;
        let half = self.duration_slots as f64 / 2.0;
        1.0 - (pos - half).abs() / half
    }

    /// Spatial intensity at a road `hops` away from the epicentre.
    pub fn spatial_intensity(&self, hops: u32) -> f64 {
        if hops > self.radius_hops {
            0.0
        } else {
            self.hop_decay.powi(hops as i32)
        }
    }
}

/// Samples one day's worth of congestion events.
pub fn sample_events<R: Rng>(
    graph: &RoadGraph,
    params: &CongestionParams,
    slots_per_day: usize,
    rush_slots: &[usize],
    rng: &mut R,
) -> Vec<CongestionEvent> {
    let lambda = params.events_per_day_per_100_roads * graph.num_roads() as f64 / 100.0;
    let count = crate::rng_ext::poisson(rng, lambda);
    let max_dur = params.duration_slots.1.max(params.duration_slots.0).max(1);
    (0..count)
        .map(|_| {
            let epicenter = RoadId(rng.gen_range(0..graph.num_roads() as u32));
            let duration_slots = rng
                .gen_range(params.duration_slots.0..=params.duration_slots.1.max(1))
                .max(1);
            let start_slot = if !rush_slots.is_empty() && rng.gen_bool(params.rush_bias) {
                // Centre near a rush slot, jittered by up to half the
                // event duration.
                let peak = rush_slots[rng.gen_range(0..rush_slots.len())];
                let jitter = rng.gen_range(0..=max_dur / 2 + 1) as i64
                    * if rng.gen_bool(0.5) { 1 } else { -1 };
                (peak as i64 + jitter).clamp(0, slots_per_day.saturating_sub(duration_slots) as i64)
                    as usize
            } else {
                rng.gen_range(0..slots_per_day.saturating_sub(duration_slots).max(1))
            };
            CongestionEvent {
                epicenter,
                start_slot,
                duration_slots,
                severity: rng.gen_range(params.severity.0..params.severity.1),
                radius_hops: params.radius_hops,
                hop_decay: params.hop_decay,
            }
        })
        .collect()
}

/// Applies a set of events to a day's speed-multiplier field.
///
/// `multipliers` is indexed `[slot * n_roads + road]` and is multiplied
/// in place by `(1 − effect)` per event, floored at `floor` so speeds
/// never collapse to zero.
pub fn apply_events(
    graph: &RoadGraph,
    events: &[CongestionEvent],
    slots_per_day: usize,
    multipliers: &mut [f64],
    floor: f64,
) {
    let n = graph.num_roads();
    debug_assert_eq!(multipliers.len(), slots_per_day * n);
    for ev in events {
        let hops = path::bfs_hops(graph, ev.epicenter, ev.radius_hops);
        let affected: Vec<(usize, f64)> = hops
            .iter()
            .enumerate()
            .filter(|&(_, &h)| h != u32::MAX)
            .map(|(r, &h)| (r, ev.spatial_intensity(h)))
            .collect();
        let end = (ev.start_slot + ev.duration_slots).min(slots_per_day);
        for slot in ev.start_slot..end {
            let ti = ev.temporal_intensity(slot);
            if ti <= 0.0 {
                continue;
            }
            let row = &mut multipliers[slot * n..(slot + 1) * n];
            for &(r, si) in &affected {
                let effect = ev.severity * si * ti;
                row[r] = (row[r] * (1.0 - effect)).max(floor);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use roadnet::generate::{grid_city, GridParams};

    fn small_grid() -> RoadGraph {
        grid_city(&GridParams {
            width: 5,
            height: 5,
            ..GridParams::default()
        })
    }

    fn event(epicenter: u32) -> CongestionEvent {
        CongestionEvent {
            epicenter: RoadId(epicenter),
            start_slot: 4,
            duration_slots: 8,
            severity: 0.5,
            radius_hops: 2,
            hop_decay: 0.5,
        }
    }

    #[test]
    fn temporal_intensity_shape() {
        let ev = event(0);
        assert_eq!(ev.temporal_intensity(3), 0.0);
        assert_eq!(ev.temporal_intensity(12), 0.0);
        let mid = ev.temporal_intensity(7).max(ev.temporal_intensity(8));
        assert!(mid > 0.8);
        assert!(ev.temporal_intensity(4) < mid);
        assert!(ev.temporal_intensity(11) < mid);
    }

    #[test]
    fn spatial_intensity_decays() {
        let ev = event(0);
        assert_eq!(ev.spatial_intensity(0), 1.0);
        assert_eq!(ev.spatial_intensity(1), 0.5);
        assert_eq!(ev.spatial_intensity(2), 0.25);
        assert_eq!(ev.spatial_intensity(3), 0.0); // beyond radius
    }

    #[test]
    fn apply_events_slows_epicenter_most() {
        let g = small_grid();
        let n = g.num_roads();
        let slots = 24;
        let mut mult = vec![1.0; slots * n];
        let ev = event(0);
        apply_events(&g, std::slice::from_ref(&ev), slots, &mut mult, 0.1);
        let mid_slot = 7;
        let epi = mult[mid_slot * n + ev.epicenter.index()];
        assert!(epi < 0.7);
        // One-hop neighbours slowed, but less.
        for &nb in g.neighbors(ev.epicenter) {
            let v = mult[mid_slot * n + nb.index()];
            assert!(v < 1.0 && v > epi);
        }
        // Slots outside the window untouched.
        assert_eq!(mult[ev.epicenter.index()], 1.0);
    }

    #[test]
    fn apply_events_respects_floor() {
        let g = small_grid();
        let n = g.num_roads();
        let slots = 24;
        let mut mult = vec![1.0; slots * n];
        let severe = CongestionEvent {
            severity: 0.99,
            ..event(0)
        };
        apply_events(
            &g,
            &vec![severe; 10], // stacked events
            slots,
            &mut mult,
            0.15,
        );
        assert!(mult.iter().all(|&m| m >= 0.15));
    }

    #[test]
    fn sample_events_scales_with_network_size() {
        let g = small_grid();
        let params = CongestionParams {
            events_per_day_per_100_roads: 10.0,
            ..CongestionParams::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        let mut total = 0usize;
        let trials = 200;
        for _ in 0..trials {
            total += sample_events(&g, &params, 96, &[33, 72], &mut rng).len();
        }
        let expected = 10.0 * g.num_roads() as f64 / 100.0;
        let mean = total as f64 / trials as f64;
        assert!(
            (mean - expected).abs() < expected * 0.2,
            "mean {mean} vs {expected}"
        );
    }

    #[test]
    fn sampled_events_are_valid() {
        let g = small_grid();
        let params = CongestionParams::default();
        let mut rng = StdRng::seed_from_u64(2);
        for ev in sample_events(&g, &params, 96, &[33, 72], &mut rng) {
            assert!(ev.epicenter.index() < g.num_roads());
            assert!(ev.start_slot + ev.duration_slots <= 96 + ev.duration_slots);
            assert!(ev.severity > 0.0 && ev.severity < 1.0);
            assert!(ev.duration_slots >= 1);
        }
    }
}
