//! Historical traffic data and its summary statistics.
//!
//! A [`HistoricalData`] is a stack of observed days. Observations may be
//! missing (GPS-probe coverage gaps), encoded as `NaN` in the underlying
//! [`SpeedField`]s. [`HistoryStats`] summarises it into the quantities
//! the paper's model consumes: per-(slot-of-day, road) **historical
//! average speeds** and **up-trend rates**.

use crate::profile::SlotClock;
use crate::simulate::SpeedField;
use roadnet::RoadId;
use serde::{Deserialize, Serialize};

/// A collection of (possibly partially observed) historical days.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HistoricalData {
    clock: SlotClock,
    days: Vec<SpeedField>,
}

impl HistoricalData {
    /// Wraps observed days. Panics if the days disagree on shape or do
    /// not match the clock.
    pub fn from_days(clock: SlotClock, days: Vec<SpeedField>) -> Self {
        assert!(!days.is_empty(), "history needs at least one day");
        let roads = days[0].num_roads();
        for d in &days {
            assert_eq!(d.num_slots(), clock.slots_per_day, "day/clock mismatch");
            assert_eq!(d.num_roads(), roads, "days disagree on road count");
        }
        HistoricalData { clock, days }
    }

    /// The time discretisation.
    pub fn clock(&self) -> &SlotClock {
        &self.clock
    }

    /// Number of days.
    pub fn num_days(&self) -> usize {
        self.days.len()
    }

    /// Number of roads.
    pub fn num_roads(&self) -> usize {
        self.days[0].num_roads()
    }

    /// Observed speed, or `None` when the probe fleet missed this
    /// (day, slot, road).
    #[inline]
    pub fn speed(&self, day: usize, slot: usize, road: RoadId) -> Option<f64> {
        let v = self.days[day].speed(slot, road);
        (!v.is_nan()).then_some(v)
    }

    /// Borrow the raw day fields.
    pub fn days(&self) -> &[SpeedField] {
        &self.days
    }

    /// Truncated copy keeping only the first `days` days (used by the
    /// training-history-size experiment E11).
    pub fn truncated(&self, days: usize) -> HistoricalData {
        assert!(days >= 1 && days <= self.days.len());
        HistoricalData {
            clock: self.clock,
            days: self.days[..days].to_vec(),
        }
    }
}

/// Summary statistics of a [`HistoricalData`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HistoryStats {
    slots: usize,
    roads: usize,
    /// Mean observed speed per (slot-of-day, road); falls back to the
    /// road's all-day mean, then to 0, when a cell was never observed.
    mean: Vec<f64>,
    /// Fraction of observed days whose speed was >= the mean, per
    /// (slot-of-day, road) — the prior up-trend rate of the MRF.
    up_rate: Vec<f64>,
    /// Number of observations behind each cell.
    obs_count: Vec<u32>,
}

impl HistoryStats {
    /// Computes statistics from historical data.
    pub fn compute(history: &HistoricalData) -> Self {
        let slots = history.clock().slots_per_day;
        let roads = history.num_roads();
        let mut sum = vec![0.0f64; slots * roads];
        let mut count = vec![0u32; slots * roads];
        for day in history.days() {
            for slot in 0..slots {
                let row = day.slot_speeds(slot);
                let base = slot * roads;
                for (r, &v) in row.iter().enumerate() {
                    if !v.is_nan() {
                        sum[base + r] += v;
                        count[base + r] += 1;
                    }
                }
            }
        }

        // Per-road fallback mean over all slots (for never-observed cells).
        let mut road_sum = vec![0.0f64; roads];
        let mut road_count = vec![0u32; roads];
        for slot in 0..slots {
            for r in 0..roads {
                road_sum[r] += sum[slot * roads + r];
                road_count[r] += count[slot * roads + r];
            }
        }

        let mut mean = vec![0.0f64; slots * roads];
        for slot in 0..slots {
            for r in 0..roads {
                let i = slot * roads + r;
                mean[i] = if count[i] > 0 {
                    sum[i] / count[i] as f64
                } else if road_count[r] > 0 {
                    road_sum[r] / road_count[r] as f64
                } else {
                    0.0
                };
            }
        }

        // Up-trend rate given the means.
        let mut up = vec![0u32; slots * roads];
        for day in history.days() {
            for slot in 0..slots {
                let row = day.slot_speeds(slot);
                let base = slot * roads;
                for (r, &v) in row.iter().enumerate() {
                    if !v.is_nan() && v >= mean[base + r] {
                        up[base + r] += 1;
                    }
                }
            }
        }
        let up_rate = up
            .iter()
            .zip(&count)
            .map(|(&u, &c)| if c > 0 { u as f64 / c as f64 } else { 0.5 })
            .collect();

        HistoryStats {
            slots,
            roads,
            mean,
            up_rate,
            obs_count: count,
        }
    }

    /// Number of slots per day.
    pub fn num_slots(&self) -> usize {
        self.slots
    }

    /// Number of roads.
    pub fn num_roads(&self) -> usize {
        self.roads
    }

    /// Historical average speed of `road` at `slot_of_day`.
    #[inline]
    pub fn mean(&self, slot_of_day: usize, road: RoadId) -> f64 {
        self.mean[slot_of_day * self.roads + road.index()]
    }

    /// Historical up-trend rate of `road` at `slot_of_day`.
    #[inline]
    pub fn up_rate(&self, slot_of_day: usize, road: RoadId) -> f64 {
        self.up_rate[slot_of_day * self.roads + road.index()]
    }

    /// Observations behind the (slot, road) cell.
    #[inline]
    pub fn obs_count(&self, slot_of_day: usize, road: RoadId) -> u32 {
        self.obs_count[slot_of_day * self.roads + road.index()]
    }

    /// Trend of an observed speed against the historical mean:
    /// `true` when at least the mean ("up").
    #[inline]
    pub fn trend_of(&self, slot_of_day: usize, road: RoadId, speed: f64) -> bool {
        speed >= self.mean(slot_of_day, road)
    }

    /// Deviation ratio `speed / mean`, or `None` when the mean is
    /// degenerate (never-observed road).
    #[inline]
    pub fn deviation_of(&self, slot_of_day: usize, road: RoadId, speed: f64) -> Option<f64> {
        let m = self.mean(slot_of_day, road);
        (m > 1e-9).then(|| speed / m)
    }

    /// Serialises the statistics in the snapshot codec style
    /// (length-prefixed little-endian, `NaN`-bit-exact `f64`s).
    pub fn encode_into(&self, buf: &mut bytes::BytesMut) {
        use bytes::BufMut;
        buf.put_u32_le(self.slots as u32);
        buf.put_u32_le(self.roads as u32);
        for &v in &self.mean {
            buf.put_f64_le(v);
        }
        for &v in &self.up_rate {
            buf.put_f64_le(v);
        }
        for &v in &self.obs_count {
            buf.put_u32_le(v);
        }
    }

    /// Decodes statistics written by [`HistoryStats::encode_into`].
    pub fn decode_from(buf: &mut impl bytes::Buf) -> Result<Self, crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        if buf.remaining() < 8 {
            return Err(SnapshotError::Truncated);
        }
        let slots = buf.get_u32_le() as usize;
        let roads = buf.get_u32_le() as usize;
        let cells = slots * roads;
        if buf.remaining() < cells.saturating_mul(8 + 8 + 4) {
            return Err(SnapshotError::Truncated);
        }
        let mut mean = Vec::with_capacity(cells);
        for _ in 0..cells {
            mean.push(buf.get_f64_le());
        }
        let mut up_rate = Vec::with_capacity(cells);
        for _ in 0..cells {
            up_rate.push(buf.get_f64_le());
        }
        let mut obs_count = Vec::with_capacity(cells);
        for _ in 0..cells {
            obs_count.push(buf.get_u32_le());
        }
        Ok(HistoryStats {
            slots,
            roads,
            mean,
            up_rate,
            obs_count,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field(slots: usize, roads: usize, f: impl Fn(usize, usize) -> f64) -> SpeedField {
        let mut sf = SpeedField::filled(slots, roads, 0.0);
        for s in 0..slots {
            for r in 0..roads {
                sf.set_speed(s, RoadId(r as u32), f(s, r));
            }
        }
        sf
    }

    fn two_day_history() -> HistoricalData {
        let clock = SlotClock { slots_per_day: 2 };
        // Road 0: day0 = 10, day1 = 20 at both slots -> mean 15.
        // Road 1: constant 30 -> mean 30.
        let d0 = field(2, 2, |_, r| if r == 0 { 10.0 } else { 30.0 });
        let d1 = field(2, 2, |_, r| if r == 0 { 20.0 } else { 30.0 });
        HistoricalData::from_days(clock, vec![d0, d1])
    }

    #[test]
    fn mean_is_per_cell() {
        let stats = HistoryStats::compute(&two_day_history());
        assert_eq!(stats.mean(0, RoadId(0)), 15.0);
        assert_eq!(stats.mean(1, RoadId(0)), 15.0);
        assert_eq!(stats.mean(0, RoadId(1)), 30.0);
    }

    #[test]
    fn up_rate_counts_at_or_above_mean() {
        let stats = HistoryStats::compute(&two_day_history());
        // Road 0: one day below mean, one above -> 0.5.
        assert_eq!(stats.up_rate(0, RoadId(0)), 0.5);
        // Road 1: always exactly at the mean -> counted as up.
        assert_eq!(stats.up_rate(0, RoadId(1)), 1.0);
    }

    #[test]
    fn trend_and_deviation() {
        let stats = HistoryStats::compute(&two_day_history());
        assert!(stats.trend_of(0, RoadId(0), 16.0));
        assert!(!stats.trend_of(0, RoadId(0), 14.0));
        assert!((stats.deviation_of(0, RoadId(0), 30.0).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn missing_observations_excluded() {
        let clock = SlotClock { slots_per_day: 1 };
        let mut d0 = field(1, 1, |_, _| 10.0);
        let d1 = field(1, 1, |_, _| 30.0);
        d0.set_speed(0, RoadId(0), f64::NAN);
        let h = HistoricalData::from_days(clock, vec![d0, d1]);
        let stats = HistoryStats::compute(&h);
        assert_eq!(stats.mean(0, RoadId(0)), 30.0);
        assert_eq!(stats.obs_count(0, RoadId(0)), 1);
        assert_eq!(h.speed(0, 0, RoadId(0)), None);
        assert_eq!(h.speed(1, 0, RoadId(0)), Some(30.0));
    }

    #[test]
    fn never_observed_cell_falls_back_to_road_mean() {
        let clock = SlotClock { slots_per_day: 2 };
        let mut d0 = field(2, 1, |s, _| if s == 0 { 10.0 } else { 20.0 });
        d0.set_speed(0, RoadId(0), f64::NAN);
        let h = HistoricalData::from_days(clock, vec![d0]);
        let stats = HistoryStats::compute(&h);
        // Slot 0 never observed: falls back to road mean (20 from slot 1).
        assert_eq!(stats.mean(0, RoadId(0)), 20.0);
        // Unobserved cells get a neutral up-rate.
        assert_eq!(stats.up_rate(0, RoadId(0)), 0.5);
    }

    #[test]
    fn truncated_keeps_prefix() {
        let h = two_day_history();
        let t = h.truncated(1);
        assert_eq!(t.num_days(), 1);
        assert_eq!(t.speed(0, 0, RoadId(0)), Some(10.0));
    }

    #[test]
    #[should_panic(expected = "at least one day")]
    fn empty_history_panics() {
        let _ = HistoricalData::from_days(SlotClock { slots_per_day: 1 }, vec![]);
    }
}
