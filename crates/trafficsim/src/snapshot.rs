//! Compact binary snapshots of speed data.
//!
//! Real deployments archive every day of traffic data; a day of
//! `f64` speeds for a mid-size city is a few megabytes, so snapshots
//! use a simple length-prefixed little-endian binary layout
//! (via `bytes`) rather than a text format. `NaN` cells (missing probe
//! observations) round-trip bit-exactly.
//!
//! Layout:
//!
//! ```text
//! magic "CSPD" | version u16 | slots u32 | roads u32 | data f64 * (slots*roads)
//! ```

use crate::history::HistoricalData;
use crate::profile::SlotClock;
use crate::simulate::SpeedField;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use roadnet::RoadId;

const MAGIC: &[u8; 4] = b"CSPD";
const VERSION: u16 = 1;

/// Snapshot decode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Input shorter than its headers/payload claim.
    Truncated,
    /// Wrong magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "not a speed snapshot"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Encodes one day's speed field.
pub fn encode_field(field: &SpeedField) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + 2 + 8 + field.num_slots() * field.num_roads() * 8);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u32_le(field.num_slots() as u32);
    buf.put_u32_le(field.num_roads() as u32);
    for &v in field.as_slice() {
        buf.put_f64_le(v);
    }
    buf.freeze()
}

/// Decodes one day's speed field.
pub fn decode_field(mut buf: impl Buf) -> Result<SpeedField, SnapshotError> {
    if buf.remaining() < 14 {
        return Err(SnapshotError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    let slots = buf.get_u32_le() as usize;
    let roads = buf.get_u32_le() as usize;
    if buf.remaining() < slots * roads * 8 {
        return Err(SnapshotError::Truncated);
    }
    let mut field = SpeedField::filled(slots, roads, 0.0);
    for slot in 0..slots {
        for r in 0..roads {
            field.set_speed(slot, RoadId(r as u32), buf.get_f64_le());
        }
    }
    Ok(field)
}

/// Encodes a multi-day history (day count prefix + concatenated days).
pub fn encode_history(history: &HistoricalData) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(history.num_days() as u32);
    for day in history.days() {
        let enc = encode_field(day);
        buf.put_u32_le(enc.len() as u32);
        buf.put_slice(&enc);
    }
    buf.freeze()
}

/// Decodes a multi-day history.
pub fn decode_history(
    clock: SlotClock,
    mut buf: impl Buf,
) -> Result<HistoricalData, SnapshotError> {
    if buf.remaining() < 4 {
        return Err(SnapshotError::Truncated);
    }
    let days = buf.get_u32_le() as usize;
    let mut fields = Vec::with_capacity(days);
    for _ in 0..days {
        if buf.remaining() < 4 {
            return Err(SnapshotError::Truncated);
        }
        let len = buf.get_u32_le() as usize;
        if buf.remaining() < len {
            return Err(SnapshotError::Truncated);
        }
        let day = buf.copy_to_bytes(len);
        fields.push(decode_field(day)?);
    }
    Ok(HistoricalData::from_days(clock, fields))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field_with_nan() -> SpeedField {
        let mut f = SpeedField::filled(3, 4, 30.0);
        f.set_speed(1, RoadId(2), f64::NAN);
        f.set_speed(2, RoadId(0), 87.125);
        f
    }

    fn bits(f: &SpeedField) -> Vec<u64> {
        f.as_slice().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn field_roundtrips_bit_exact() {
        let f = field_with_nan();
        let enc = encode_field(&f);
        let dec = decode_field(enc).unwrap();
        assert_eq!(bits(&f), bits(&dec));
        assert_eq!(dec.num_slots(), 3);
        assert_eq!(dec.num_roads(), 4);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut enc = BytesMut::from(&encode_field(&field_with_nan())[..]);
        enc[0] = b'X';
        assert_eq!(decode_field(enc.freeze()), Err(SnapshotError::BadMagic));
    }

    #[test]
    fn rejects_bad_version() {
        let mut enc = BytesMut::from(&encode_field(&field_with_nan())[..]);
        enc[4] = 99;
        assert_eq!(
            decode_field(enc.freeze()),
            Err(SnapshotError::BadVersion(99))
        );
    }

    #[test]
    fn rejects_truncation() {
        let enc = encode_field(&field_with_nan());
        let cut = enc.slice(0..enc.len() - 5);
        assert_eq!(decode_field(cut), Err(SnapshotError::Truncated));
        assert_eq!(decode_field(&b"CS"[..]), Err(SnapshotError::Truncated));
    }

    #[test]
    fn history_roundtrips() {
        let clock = SlotClock { slots_per_day: 3 };
        let h = HistoricalData::from_days(clock, vec![field_with_nan(), field_with_nan()]);
        let enc = encode_history(&h);
        let dec = decode_history(clock, enc).unwrap();
        assert_eq!(dec.num_days(), 2);
        for (a, b) in h.days().iter().zip(dec.days()) {
            assert_eq!(bits(a), bits(b));
        }
    }
}
