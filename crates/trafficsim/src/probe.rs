//! GPS-probe sampling of ground-truth speeds.
//!
//! Historical data in the paper comes from taxi floating-car reports:
//! noisy and with coverage gaps (not every road sees a probe vehicle in
//! every slot). [`ProbeSampler`] degrades a simulated ground-truth day
//! the same way, so the statistics the model trains on carry realistic
//! imperfections.

use crate::rng_ext;
use crate::simulate::SpeedField;
use rand::Rng;
use roadnet::{RoadClass, RoadGraph};
use serde::{Deserialize, Serialize};

/// Probe-fleet characteristics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProbeParams {
    /// Probability that a (road, slot) cell is observed at all, on the
    /// busiest class. Busier road classes see more probe vehicles.
    pub coverage_highway: f64,
    /// Coverage on local streets (the sparsest).
    pub coverage_local: f64,
    /// Std-dev of the multiplicative log-normal measurement noise.
    pub noise_sigma: f64,
}

impl Default for ProbeParams {
    fn default() -> Self {
        ProbeParams {
            coverage_highway: 0.98,
            coverage_local: 0.75,
            noise_sigma: 0.04,
        }
    }
}

impl ProbeParams {
    /// Coverage probability for a road class, interpolated between the
    /// local and highway endpoints by "busyness".
    pub fn coverage(&self, class: RoadClass) -> f64 {
        let busyness = match class {
            RoadClass::Highway => 1.0,
            RoadClass::Arterial => 0.8,
            RoadClass::Collector => 0.45,
            RoadClass::Local => 0.0,
        };
        self.coverage_local + (self.coverage_highway - self.coverage_local) * busyness
    }
}

/// Samples probe observations from ground truth.
#[derive(Debug, Clone)]
pub struct ProbeSampler {
    params: ProbeParams,
}

impl ProbeSampler {
    /// Creates a sampler.
    pub fn new(params: ProbeParams) -> Self {
        ProbeSampler { params }
    }

    /// The sampler's parameters.
    pub fn params(&self) -> &ProbeParams {
        &self.params
    }

    /// Degrades a ground-truth day into a probe-observed day: missing
    /// cells become `NaN`, observed cells get multiplicative noise.
    pub fn observe_day<R: Rng>(
        &self,
        graph: &RoadGraph,
        truth: &SpeedField,
        rng: &mut R,
    ) -> SpeedField {
        assert_eq!(truth.num_roads(), graph.num_roads());
        let mut out = truth.clone();
        let coverage: Vec<f64> = graph
            .all_meta()
            .iter()
            .map(|m| self.params.coverage(m.class))
            .collect();
        for slot in 0..truth.num_slots() {
            for road in graph.road_ids() {
                if rng.gen::<f64>() >= coverage[road.index()] {
                    out.set_speed(slot, road, f64::NAN);
                } else if self.params.noise_sigma > 0.0 {
                    let noise = (self.params.noise_sigma * rng_ext::gaussian(rng)).exp();
                    out.set_speed(slot, road, truth.speed(slot, road) * noise);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use roadnet::generate::{grid_city, GridParams};

    fn setup() -> (RoadGraph, SpeedField) {
        let g = grid_city(&GridParams {
            width: 6,
            height: 6,
            ..GridParams::default()
        });
        let f = SpeedField::filled(24, g.num_roads(), 40.0);
        (g, f)
    }

    #[test]
    fn coverage_ordering_by_class() {
        let p = ProbeParams::default();
        assert!(p.coverage(RoadClass::Highway) > p.coverage(RoadClass::Arterial));
        assert!(p.coverage(RoadClass::Arterial) > p.coverage(RoadClass::Collector));
        assert!(p.coverage(RoadClass::Collector) > p.coverage(RoadClass::Local));
        assert_eq!(p.coverage(RoadClass::Local), p.coverage_local);
    }

    #[test]
    fn observe_day_drops_roughly_right_fraction() {
        let (g, f) = setup();
        let sampler = ProbeSampler::new(ProbeParams {
            coverage_highway: 0.5,
            coverage_local: 0.5,
            noise_sigma: 0.0,
        });
        let mut rng = StdRng::seed_from_u64(1);
        let obs = sampler.observe_day(&g, &f, &mut rng);
        let total = obs.as_slice().len();
        let missing = obs.as_slice().iter().filter(|v| v.is_nan()).count();
        let frac = missing as f64 / total as f64;
        assert!((frac - 0.5).abs() < 0.05, "missing fraction {frac}");
    }

    #[test]
    fn zero_noise_preserves_observed_values() {
        let (g, f) = setup();
        let sampler = ProbeSampler::new(ProbeParams {
            noise_sigma: 0.0,
            ..ProbeParams::default()
        });
        let mut rng = StdRng::seed_from_u64(2);
        let obs = sampler.observe_day(&g, &f, &mut rng);
        for v in obs.as_slice() {
            assert!(v.is_nan() || *v == 40.0);
        }
    }

    #[test]
    fn noise_is_unbiased_in_log_space() {
        let (g, f) = setup();
        let sampler = ProbeSampler::new(ProbeParams {
            coverage_highway: 1.0,
            coverage_local: 1.0,
            noise_sigma: 0.1,
        });
        let mut rng = StdRng::seed_from_u64(3);
        let obs = sampler.observe_day(&g, &f, &mut rng);
        let logs: Vec<f64> = obs.as_slice().iter().map(|v| (v / 40.0).ln()).collect();
        let mean = linalg::stats::mean(&logs);
        assert!(mean.abs() < 0.01, "log-noise mean {mean}");
    }

    #[test]
    fn full_coverage_never_drops() {
        let (g, f) = setup();
        let sampler = ProbeSampler::new(ProbeParams {
            coverage_highway: 1.0,
            coverage_local: 1.0,
            noise_sigma: 0.0,
        });
        let mut rng = StdRng::seed_from_u64(4);
        let obs = sampler.observe_day(&g, &f, &mut rng);
        assert!(obs.as_slice().iter().all(|v| !v.is_nan()));
    }
}
