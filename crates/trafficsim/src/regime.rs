//! Regime-shift scenario generation.
//!
//! The base simulator ([`crate::simulate`]) draws every day from one
//! stationary process, which is exactly what a drift detector must
//! *not* fire on. This module layers a reproducible **regime shift** on
//! top: from a configured day onward, part of the city permanently
//! changes — capacity drops (construction, lane closures), rerouted
//! corridors (paired roads swap their traffic profiles), or both. The
//! affected roads are drawn deterministically from the config's seed,
//! so a shift dataset is a pure function of its
//! [`RegimeShiftConfig`] — tests and benches replay it exactly.

use crate::simulate::{SpeedField, TrafficSimulator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use roadnet::RoadId;
use serde::{Deserialize, Serialize};

/// A reproducible regime shift: which day it starts, how much of the
/// city it touches, and how hard.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegimeShiftConfig {
    /// First day index (inclusive) the shift is in effect. Days before
    /// it are exactly the base simulator's days.
    pub shift_day: u64,
    /// Fraction of roads hit by a permanent capacity drop, in `[0, 1]`.
    pub drop_fraction: f64,
    /// Multiplicative speed loss on dropped roads, in `[0, 1)`; e.g.
    /// `0.35` means those roads run 35 % slower from `shift_day` on.
    pub capacity_drop: f64,
    /// Number of rerouted corridors: disjoint road pairs whose full
    /// day-speed profiles swap (traffic moved from one road to the
    /// other), on top of the dropped set.
    pub swap_pairs: usize,
    /// Seed the affected-road plan is drawn from.
    pub seed: u64,
}

impl Default for RegimeShiftConfig {
    fn default() -> Self {
        RegimeShiftConfig {
            shift_day: 0,
            drop_fraction: 0.3,
            capacity_drop: 0.35,
            swap_pairs: 8,
            seed: 7,
        }
    }
}

/// The concrete roads a [`RegimeShiftConfig`] resolved to on a given
/// city — deterministic per `(config.seed, num_roads)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegimePlan {
    /// Capacity-dropped roads, ascending, deduplicated.
    pub dropped: Vec<RoadId>,
    /// Profile-swapped corridor pairs; disjoint from each other and
    /// from `dropped`.
    pub swaps: Vec<(RoadId, RoadId)>,
}

impl RegimePlan {
    /// Draws the plan: a Fisher–Yates shuffle of all roads seeded from
    /// the config, with the front of the permutation split into the
    /// dropped set and the swap pairs.
    pub fn draw(num_roads: usize, config: &RegimeShiftConfig) -> RegimePlan {
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5E9F_A3D1_0C4B_77E5);
        let mut roads: Vec<u32> = (0..num_roads as u32).collect();
        for i in (1..roads.len()).rev() {
            let j = rng.gen_range(0..=i);
            roads.swap(i, j);
        }
        let drops = ((num_roads as f64 * config.drop_fraction).ceil() as usize).min(num_roads);
        let mut dropped: Vec<RoadId> = roads[..drops].iter().map(|&r| RoadId(r)).collect();
        dropped.sort();
        let mut swaps = Vec::with_capacity(config.swap_pairs);
        let mut cursor = drops;
        while swaps.len() < config.swap_pairs && cursor + 1 < num_roads {
            let (a, b) = (RoadId(roads[cursor]), RoadId(roads[cursor + 1]));
            swaps.push(if a.0 < b.0 { (a, b) } else { (b, a) });
            cursor += 2;
        }
        RegimePlan { dropped, swaps }
    }

    /// Every road whose profile the shift changes, ascending.
    pub fn affected_roads(&self) -> Vec<RoadId> {
        let mut all: Vec<RoadId> = self.dropped.clone();
        for &(a, b) in &self.swaps {
            all.push(a);
            all.push(b);
        }
        all.sort();
        all.dedup();
        all
    }
}

/// A simulator with a regime shift layered on: identical to the base
/// simulator before `shift_day`, permanently different from it on.
#[derive(Debug, Clone)]
pub struct RegimeSimulator {
    base: TrafficSimulator,
    config: RegimeShiftConfig,
    plan: RegimePlan,
}

impl RegimeSimulator {
    /// Wraps `base`, resolving the config into a concrete plan.
    pub fn new(base: TrafficSimulator, config: RegimeShiftConfig) -> RegimeSimulator {
        let plan = RegimePlan::draw(base.graph().num_roads(), &config);
        RegimeSimulator { base, config, plan }
    }

    /// The wrapped pre-shift simulator.
    pub fn base(&self) -> &TrafficSimulator {
        &self.base
    }

    /// The shift configuration.
    pub fn config(&self) -> &RegimeShiftConfig {
        &self.config
    }

    /// The resolved affected-road plan.
    pub fn plan(&self) -> &RegimePlan {
        &self.plan
    }

    /// Simulates one ground-truth day; days at or past
    /// [`RegimeShiftConfig::shift_day`] carry the shift.
    pub fn simulate_day(&self, day_index: u64) -> SpeedField {
        let mut field = self.base.simulate_day(day_index);
        if day_index < self.config.shift_day {
            return field;
        }
        let slots = field.num_slots();
        // Rerouted corridors first: the pair swaps *unperturbed*
        // profiles, then capacity drops apply to whatever now flows on
        // a dropped road.
        for &(a, b) in &self.plan.swaps {
            for slot in 0..slots {
                let (va, vb) = (field.speed(slot, a), field.speed(slot, b));
                field.set_speed(slot, a, vb);
                field.set_speed(slot, b, va);
            }
        }
        let min_speed = self.base.params().min_speed_kmh;
        let scale = 1.0 - self.config.capacity_drop;
        for &r in &self.plan.dropped {
            for slot in 0..slots {
                let v = (field.speed(slot, r) * scale).max(min_speed);
                field.set_speed(slot, r, v);
            }
        }
        field
    }

    /// Simulates `days` consecutive days starting at `first_day`.
    pub fn simulate_days(&self, first_day: u64, days: usize) -> Vec<SpeedField> {
        (0..days as u64)
            .map(|d| self.simulate_day(first_day + d))
            .collect()
    }
}

/// Fraction of roads whose speeds differ anywhere between two days of
/// the same shape — how a test checks a generator actually shifted.
pub fn changed_road_fraction(a: &SpeedField, b: &SpeedField) -> f64 {
    assert_eq!(a.num_roads(), b.num_roads(), "road count mismatch");
    assert_eq!(a.num_slots(), b.num_slots(), "slot count mismatch");
    if a.num_roads() == 0 {
        return 0.0;
    }
    let changed = (0..a.num_roads())
        .filter(|&r| {
            let r = RoadId(r as u32);
            (0..a.num_slots()).any(|s| a.speed(s, r).to_bits() != b.speed(s, r).to_bits())
        })
        .count();
    changed as f64 / a.num_roads() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::SlotClock;
    use crate::simulate::TrafficParams;
    use roadnet::generate::{ring_radial_city, RingRadialParams};

    fn sim() -> TrafficSimulator {
        let graph = ring_radial_city(&RingRadialParams {
            rings: 5,
            spokes: 10,
            ..RingRadialParams::default()
        });
        TrafficSimulator::new(graph, SlotClock::hourly(), TrafficParams::default(), 2016)
    }

    fn shift() -> RegimeShiftConfig {
        RegimeShiftConfig {
            shift_day: 4,
            drop_fraction: 0.25,
            capacity_drop: 0.4,
            swap_pairs: 5,
            seed: 11,
        }
    }

    #[test]
    fn shift_datasets_are_deterministic_per_seed() {
        let a = RegimeSimulator::new(sim(), shift());
        let b = RegimeSimulator::new(sim(), shift());
        assert_eq!(a.plan(), b.plan());
        for day in 0..8 {
            assert_eq!(a.simulate_day(day), b.simulate_day(day));
        }
        let other = RegimeSimulator::new(
            sim(),
            RegimeShiftConfig {
                seed: 12,
                ..shift()
            },
        );
        assert_ne!(a.plan(), other.plan());
        assert_ne!(a.simulate_day(5), other.simulate_day(5));
    }

    #[test]
    fn pre_shift_days_match_the_base_simulator() {
        let rs = RegimeSimulator::new(sim(), shift());
        for day in 0..4 {
            assert_eq!(rs.simulate_day(day), rs.base().simulate_day(day));
        }
    }

    #[test]
    fn shifted_day_changes_at_least_the_configured_fraction() {
        let rs = RegimeSimulator::new(sim(), shift());
        for day in [4u64, 5, 9] {
            let frac = changed_road_fraction(&rs.base().simulate_day(day), &rs.simulate_day(day));
            assert!(
                frac >= rs.config().drop_fraction,
                "day {day}: only {frac:.3} of roads changed, configured drop fraction {}",
                rs.config().drop_fraction
            );
        }
    }

    #[test]
    fn plan_sets_are_disjoint_and_sized() {
        let rs = RegimeSimulator::new(sim(), shift());
        let plan = rs.plan();
        let n = rs.base().graph().num_roads();
        assert_eq!(plan.dropped.len(), (n as f64 * 0.25).ceil() as usize);
        assert_eq!(plan.swaps.len(), 5);
        for &(a, b) in &plan.swaps {
            assert!(a.0 < b.0);
            assert!(!plan.dropped.contains(&a) && !plan.dropped.contains(&b));
        }
        let affected = plan.affected_roads();
        assert_eq!(affected.len(), plan.dropped.len() + 2 * plan.swaps.len());
    }

    #[test]
    fn swapped_corridors_exchange_profiles() {
        let rs = RegimeSimulator::new(sim(), shift());
        let base = rs.base().simulate_day(6);
        let shifted = rs.simulate_day(6);
        for &(a, b) in &rs.plan().swaps {
            for slot in [0usize, 8, 17] {
                assert_eq!(
                    shifted.speed(slot, a).to_bits(),
                    base.speed(slot, b).to_bits()
                );
                assert_eq!(
                    shifted.speed(slot, b).to_bits(),
                    base.speed(slot, a).to_bits()
                );
            }
        }
    }

    #[test]
    fn dropped_roads_run_slower() {
        let rs = RegimeSimulator::new(sim(), shift());
        let base = rs.base().simulate_day(7);
        let shifted = rs.simulate_day(7);
        let r = rs.plan().dropped[0];
        let min = rs.base().params().min_speed_kmh;
        for slot in 0..base.num_slots() {
            let expect = (base.speed(slot, r) * 0.6).max(min);
            assert_eq!(shifted.speed(slot, r).to_bits(), expect.to_bits());
        }
    }
}
