//! Time discretisation and diurnal speed profiles.

use roadnet::RoadClass;
use serde::{Deserialize, Serialize};

/// Discretisation of the day into equal time slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotClock {
    /// Number of slots per day (e.g. 96 for 15-minute slots).
    pub slots_per_day: usize,
}

impl SlotClock {
    /// Standard 15-minute discretisation.
    pub fn quarter_hourly() -> Self {
        SlotClock { slots_per_day: 96 }
    }

    /// Hourly discretisation (used by fast tests).
    pub fn hourly() -> Self {
        SlotClock { slots_per_day: 24 }
    }

    /// Minutes per slot.
    pub fn slot_minutes(&self) -> f64 {
        24.0 * 60.0 / self.slots_per_day as f64
    }

    /// Fractional hour-of-day at the *middle* of slot `s`.
    pub fn hour_of_slot(&self, s: usize) -> f64 {
        (s as f64 + 0.5) * 24.0 / self.slots_per_day as f64
    }

    /// Slot index containing the given hour-of-day.
    pub fn slot_of_hour(&self, hour: f64) -> usize {
        let h = hour.rem_euclid(24.0);
        ((h / 24.0 * self.slots_per_day as f64) as usize).min(self.slots_per_day - 1)
    }
}

/// Diurnal profile parameters — where the rush hours fall and how deep
/// they cut.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiurnalParams {
    /// Centre of the morning rush, in hours.
    pub am_peak_hour: f64,
    /// Centre of the evening rush, in hours.
    pub pm_peak_hour: f64,
    /// Width (std-dev, hours) of each rush-hour dip.
    pub peak_width_h: f64,
    /// Fractional speed drop at the centre of a rush on the most
    /// affected class (highways); e.g. 0.45 means 45 % slower.
    pub max_dip: f64,
    /// Mild overnight speed-up (fraction above daytime baseline).
    pub night_lift: f64,
}

impl Default for DiurnalParams {
    fn default() -> Self {
        DiurnalParams {
            am_peak_hour: 8.25,
            pm_peak_hour: 18.0,
            peak_width_h: 1.2,
            max_dip: 0.45,
            night_lift: 0.08,
        }
    }
}

/// How strongly each road class feels the rush hour. Through-traffic
/// classes (highways, arterials) congest more than locals.
fn class_sensitivity(class: RoadClass) -> f64 {
    match class {
        RoadClass::Highway => 1.0,
        RoadClass::Arterial => 0.85,
        RoadClass::Collector => 0.6,
        RoadClass::Local => 0.35,
    }
}

/// Expected-speed multiplier (relative to free flow) for a road class at
/// slot `s`: 1.0 at free flow, lower during rushes, slightly above 1.0
/// at night.
pub fn diurnal_multiplier(
    params: &DiurnalParams,
    clock: &SlotClock,
    class: RoadClass,
    slot_of_day: usize,
) -> f64 {
    let h = clock.hour_of_slot(slot_of_day);
    let bump = |peak: f64| -> f64 {
        // Wrap-around distance on the 24h circle.
        let d = (h - peak).abs();
        let d = d.min(24.0 - d);
        (-0.5 * (d / params.peak_width_h).powi(2)).exp()
    };
    let rush = bump(params.am_peak_hour).max(bump(params.pm_peak_hour));
    let dip = params.max_dip * class_sensitivity(class) * rush;
    // Night lift: deep night (01:00-05:00) runs slightly above baseline.
    let night = if !(5.0..=23.0).contains(&h) || h < 5.0 {
        params.night_lift
    } else {
        0.0
    };
    (1.0 - dip) * (1.0 + night)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_arithmetic() {
        let c = SlotClock::quarter_hourly();
        assert_eq!(c.slot_minutes(), 15.0);
        assert_eq!(c.slot_of_hour(0.0), 0);
        assert_eq!(c.slot_of_hour(12.0), 48);
        assert_eq!(c.slot_of_hour(23.99), 95);
        assert_eq!(c.slot_of_hour(24.5), 2); // wraps
        assert!((c.hour_of_slot(48) - 12.125).abs() < 1e-9);
    }

    #[test]
    fn rush_hour_is_slowest() {
        let p = DiurnalParams::default();
        let c = SlotClock::quarter_hourly();
        let rush = c.slot_of_hour(p.am_peak_hour);
        let noon = c.slot_of_hour(12.5);
        let m_rush = diurnal_multiplier(&p, &c, RoadClass::Highway, rush);
        let m_noon = diurnal_multiplier(&p, &c, RoadClass::Highway, noon);
        assert!(m_rush < m_noon, "rush {m_rush} vs noon {m_noon}");
        assert!(m_rush < 0.65);
    }

    #[test]
    fn locals_dip_less_than_highways() {
        let p = DiurnalParams::default();
        let c = SlotClock::quarter_hourly();
        let rush = c.slot_of_hour(p.pm_peak_hour);
        let hwy = diurnal_multiplier(&p, &c, RoadClass::Highway, rush);
        let local = diurnal_multiplier(&p, &c, RoadClass::Local, rush);
        assert!(local > hwy);
    }

    #[test]
    fn night_runs_above_baseline() {
        let p = DiurnalParams::default();
        let c = SlotClock::quarter_hourly();
        let night = diurnal_multiplier(&p, &c, RoadClass::Local, c.slot_of_hour(3.0));
        assert!(night > 1.0);
    }

    #[test]
    fn multiplier_bounded() {
        let p = DiurnalParams::default();
        let c = SlotClock::quarter_hourly();
        for class in RoadClass::ALL {
            for s in 0..c.slots_per_day {
                let m = diurnal_multiplier(&p, &c, class, s);
                assert!(m > 0.3 && m < 1.2, "class {class} slot {s}: {m}");
            }
        }
    }
}
