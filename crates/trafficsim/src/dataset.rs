//! Named synthetic datasets.
//!
//! Two city-scale presets stand in for the paper's two real datasets
//! (`DESIGN.md` §1): **synth-metro**, a ring-radial city, and
//! **synth-grid**, a rectangular grid city. `metro_small` is a fast
//! variant for tests and examples.

use crate::history::HistoricalData;
use crate::probe::{ProbeParams, ProbeSampler};
use crate::profile::SlotClock;
use crate::simulate::{SpeedField, TrafficParams, TrafficSimulator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use roadnet::generate::{grid_city, ring_radial_city, GridParams, RingRadialParams};
use roadnet::RoadGraph;

/// Shared dataset-assembly parameters.
#[derive(Debug, Clone)]
pub struct DatasetParams {
    /// Days of probe-observed history used for training.
    pub training_days: usize,
    /// Ground-truth days held out for evaluation.
    pub test_days: usize,
    /// Traffic generator tunables.
    pub traffic: TrafficParams,
    /// Probe-fleet tunables.
    pub probe: ProbeParams,
    /// Master seed.
    pub seed: u64,
}

impl Default for DatasetParams {
    fn default() -> Self {
        DatasetParams {
            training_days: 20,
            test_days: 3,
            traffic: TrafficParams::default(),
            probe: ProbeParams::default(),
            seed: 2016,
        }
    }
}

/// A fully assembled dataset: graph, training history, held-out truth.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable dataset name.
    pub name: &'static str,
    /// The road network.
    pub graph: RoadGraph,
    /// Time discretisation.
    pub clock: SlotClock,
    /// Probe-observed training days.
    pub history: HistoricalData,
    /// Ground-truth evaluation days (follow the training days in time).
    pub test_days: Vec<SpeedField>,
    /// The simulator that produced everything (exposed so experiments
    /// can generate more days on demand).
    pub simulator: TrafficSimulator,
}

/// Summary statistics for the dataset-statistics table (experiment E1).
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: &'static str,
    /// Number of road segments.
    pub roads: usize,
    /// Number of segment adjacencies.
    pub adjacencies: usize,
    /// Average segment degree.
    pub avg_degree: f64,
    /// Roads per class, indexed by [`roadnet::RoadClass::group`].
    pub class_counts: [usize; 4],
    /// Slots per day.
    pub slots_per_day: usize,
    /// Training days.
    pub training_days: usize,
    /// Test days.
    pub test_days: usize,
    /// Fraction of training cells actually observed by probes.
    pub observed_fraction: f64,
    /// Mean observed training speed (km/h).
    pub mean_speed_kmh: f64,
}

impl Dataset {
    /// Assembles a dataset from a graph and parameters.
    pub fn assemble(
        name: &'static str,
        graph: RoadGraph,
        clock: SlotClock,
        params: &DatasetParams,
    ) -> Dataset {
        let simulator =
            TrafficSimulator::new(graph.clone(), clock, params.traffic.clone(), params.seed);
        let sampler = ProbeSampler::new(params.probe.clone());
        let mut rng = StdRng::seed_from_u64(params.seed ^ 0xC0FF_EE00);
        let history_days: Vec<SpeedField> = (0..params.training_days as u64)
            .map(|d| {
                let truth = simulator.simulate_day(d);
                sampler.observe_day(&graph, &truth, &mut rng)
            })
            .collect();
        let history = HistoricalData::from_days(clock, history_days);
        let test_days = simulator.simulate_days(params.training_days as u64, params.test_days);
        Dataset {
            name,
            graph,
            clock,
            history,
            test_days,
            simulator,
        }
    }

    /// Computes the dataset-statistics row (experiment E1).
    pub fn stats(&self) -> DatasetStats {
        let mut observed = 0usize;
        let mut total = 0usize;
        let mut speed_sum = 0.0f64;
        for day in self.history.days() {
            for v in day.as_slice() {
                total += 1;
                if !v.is_nan() {
                    observed += 1;
                    speed_sum += v;
                }
            }
        }
        DatasetStats {
            name: self.name,
            roads: self.graph.num_roads(),
            adjacencies: self.graph.num_edges(),
            avg_degree: self.graph.avg_degree(),
            class_counts: self.graph.class_counts(),
            slots_per_day: self.clock.slots_per_day,
            training_days: self.history.num_days(),
            test_days: self.test_days.len(),
            observed_fraction: if total > 0 {
                observed as f64 / total as f64
            } else {
                0.0
            },
            mean_speed_kmh: if observed > 0 {
                speed_sum / observed as f64
            } else {
                0.0
            },
        }
    }
}

/// Small ring-radial city (≈100 roads, hourly slots) — fast enough for
/// unit tests, doc-tests and the quickstart example.
pub fn metro_small(params: &DatasetParams) -> Dataset {
    let graph = ring_radial_city(&RingRadialParams {
        rings: 5,
        spokes: 10,
        ..RingRadialParams::default()
    });
    Dataset::assemble("synth-metro-small", graph, SlotClock::hourly(), params)
}

/// Medium ring-radial metro city (≈1.2k roads, 15-minute slots) — the
/// "city A" stand-in of the evaluation.
pub fn metro_medium(params: &DatasetParams) -> Dataset {
    let graph = ring_radial_city(&RingRadialParams {
        rings: 15,
        spokes: 40,
        ring_gap_m: 500.0,
        ..RingRadialParams::default()
    });
    Dataset::assemble("synth-metro", graph, SlotClock::quarter_hourly(), params)
}

/// Large ring-radial metropolis (≈4k roads, 15-minute slots) — sized
/// so one ingested day is a small fraction of the network, which is
/// what the incremental-retrain scaling experiment measures.
pub fn metro_large(params: &DatasetParams) -> Dataset {
    let graph = ring_radial_city(&RingRadialParams {
        rings: 28,
        spokes: 72,
        ring_gap_m: 400.0,
        ..RingRadialParams::default()
    });
    Dataset::assemble(
        "synth-metro-large",
        graph,
        SlotClock::quarter_hourly(),
        params,
    )
}

/// Medium grid city (≈1.2k roads, 15-minute slots) — the "city B"
/// stand-in of the evaluation.
pub fn grid_medium(params: &DatasetParams) -> Dataset {
    let graph = grid_city(&GridParams {
        width: 26,
        height: 25,
        ..GridParams::default()
    });
    Dataset::assemble("synth-grid", graph, SlotClock::quarter_hourly(), params)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_params() -> DatasetParams {
        DatasetParams {
            training_days: 3,
            test_days: 1,
            ..DatasetParams::default()
        }
    }

    #[test]
    fn metro_small_assembles() {
        let ds = metro_small(&fast_params());
        assert_eq!(ds.history.num_days(), 3);
        assert_eq!(ds.test_days.len(), 1);
        assert_eq!(ds.graph.num_roads(), 100); // 5*10 ring + 10*5 radial
        assert_eq!(ds.history.num_roads(), ds.graph.num_roads());
    }

    #[test]
    fn stats_are_consistent() {
        let ds = metro_small(&fast_params());
        let st = ds.stats();
        assert_eq!(st.roads, ds.graph.num_roads());
        assert_eq!(st.training_days, 3);
        assert_eq!(st.class_counts.iter().sum::<usize>(), st.roads);
        assert!(st.observed_fraction > 0.5 && st.observed_fraction <= 1.0);
        assert!(st.mean_speed_kmh > 5.0 && st.mean_speed_kmh < 120.0);
        assert!(st.avg_degree > 1.0);
    }

    #[test]
    fn datasets_are_reproducible() {
        let a = metro_small(&fast_params());
        let b = metro_small(&fast_params());
        // Histories contain NaN (missing probes), so compare bitwise.
        for (da, db) in a.history.days().iter().zip(b.history.days()) {
            let bits_equal = da
                .as_slice()
                .iter()
                .zip(db.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(bits_equal);
        }
        assert_eq!(a.test_days, b.test_days);
    }

    #[test]
    fn test_days_follow_training_days() {
        let ds = metro_small(&fast_params());
        // Test day 0 equals simulator day `training_days`.
        let expected = ds.simulator.simulate_day(3);
        assert_eq!(ds.test_days[0], expected);
    }

    #[test]
    fn seed_changes_data() {
        let a = metro_small(&fast_params());
        let b = metro_small(&DatasetParams {
            seed: 777,
            ..fast_params()
        });
        assert_ne!(a.test_days, b.test_days);
    }
}
