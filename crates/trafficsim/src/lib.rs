#![warn(missing_docs)]

//! Synthetic urban traffic substrate.
//!
//! The paper evaluates on GPS floating-car data from two real cities;
//! that data is not available, so this crate generates the closest
//! synthetic equivalent (see `DESIGN.md` §1). The generator is built so
//! that the *structure the paper's model exploits* is present and
//! controllable:
//!
//! * **diurnal profiles** ([`profile`]) give every road a
//!   slot-of-day-dependent expected speed with AM/PM rush hours, so
//!   "historical average" is a meaningful reference;
//! * **diffusing congestion** ([`congestion`]) spawns localised events
//!   that spread over the road graph with hop decay and persist over
//!   time, which makes *nearby roads co-trend* — the correlation the
//!   trend graphical model relies on;
//! * **citywide factors** (weather-like AR(1) modulation) add the
//!   long-range component of correlation;
//! * **GPS probes** ([`probe`]) and **crowdsourcing** ([`crowd`])
//!   corrupt the ground truth the way real acquisition does (coverage
//!   gaps, reporting noise).
//!
//! [`dataset`] packages everything into the two named synthetic cities
//! used throughout the evaluation.
//!
//! # Example
//!
//! ```
//! use trafficsim::dataset::{metro_small, DatasetParams};
//!
//! let ds = metro_small(&DatasetParams { training_days: 4, test_days: 1, ..DatasetParams::default() });
//! assert_eq!(ds.history.num_days(), 4);
//! let truth = &ds.test_days[0];
//! // Speeds are physical: positive and bounded by ~1.3x free flow.
//! for r in ds.graph.road_ids() {
//!     let v = truth.speed(0, r);
//!     assert!(v > 0.0 && v < ds.graph.meta(r).free_flow_kmh * 1.5);
//! }
//! ```

pub mod congestion;
pub mod crowd;
pub mod dataset;
pub mod history;
pub mod probe;
pub mod profile;
pub mod regime;
pub mod rng_ext;
pub mod simulate;
pub mod snapshot;

pub use history::{HistoricalData, HistoryStats};
pub use profile::SlotClock;
pub use regime::{RegimePlan, RegimeShiftConfig, RegimeSimulator};
pub use simulate::{SpeedField, TrafficParams, TrafficSimulator};
