//! Distribution helpers on top of `rand`.
//!
//! The approved `rand` crate (without `rand_distr`) lacks Gaussian and
//! Poisson samplers, so the two the simulator needs are implemented
//! here.

use rand::Rng;

/// Standard normal sample via the Box–Muller transform.
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so the log is finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal sample with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * gaussian(rng)
}

/// Poisson sample via Knuth's method; adequate for the small rates
/// (events per day) the simulator uses. Falls back to a normal
/// approximation for large `lambda` to avoid O(lambda) time.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(lambda >= 0.0, "poisson: negative rate");
    if lambda == 0.0 {
        return 0;
    }
    if lambda > 64.0 {
        let x = normal(rng, lambda, lambda.sqrt());
        return x.max(0.0).round() as u64;
    }
    let limit = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= limit {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = linalg::stats::mean(&samples);
        let var = linalg::stats::variance(&samples);
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn normal_shifts_and_scales() {
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<f64> = (0..20_000).map(|_| normal(&mut rng, 10.0, 3.0)).collect();
        assert!((linalg::stats::mean(&samples) - 10.0).abs() < 0.1);
        assert!((linalg::stats::std_dev(&samples) - 3.0).abs() < 0.1);
    }

    #[test]
    fn poisson_mean_small_rate() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| poisson(&mut rng, 4.5)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 4.5).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_zero_rate() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn poisson_large_rate_uses_normal_approx() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 5_000;
        let total: u64 = (0..n).map(|_| poisson(&mut rng, 400.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 400.0).abs() < 2.0, "mean {mean}");
    }
}
