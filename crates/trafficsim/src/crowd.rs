//! Crowdsourced speed acquisition on seed roads.
//!
//! Once seed selection picks `K` roads, the paper obtains their *real*
//! speeds from crowd workers. This module simulates that channel:
//! several workers per seed road each report the true speed corrupted by
//! observation noise; reports may fail to arrive; the platform
//! aggregates what it receives with a trimmed mean (robust against a
//! sloppy reporter).

use crate::rng_ext;
use crate::simulate::SpeedField;
use linalg::stats;
use rand::Rng;
use roadnet::RoadId;
use serde::{Deserialize, Serialize};

/// Crowdsourcing channel characteristics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrowdParams {
    /// Workers asked per seed road.
    pub workers_per_seed: usize,
    /// Probability that an individual worker responds in time.
    pub response_rate: f64,
    /// Std-dev of each worker's multiplicative log-normal error.
    pub noise_sigma: f64,
    /// Fraction trimmed at each end before averaging reports.
    pub trim: f64,
}

impl Default for CrowdParams {
    fn default() -> Self {
        CrowdParams {
            workers_per_seed: 5,
            response_rate: 0.9,
            noise_sigma: 0.08,
            trim: 0.1,
        }
    }
}

/// One seed road's aggregated crowd answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeedReport {
    /// The seed road.
    pub road: RoadId,
    /// Aggregated speed estimate (km/h), `None` if no worker responded.
    pub speed: Option<f64>,
    /// Number of reports aggregated.
    pub responses: usize,
}

/// Collects crowd reports for `seeds` against the true speeds of
/// `truth` at `slot`.
pub fn crowdsource<R: Rng>(
    truth: &SpeedField,
    slot: usize,
    seeds: &[RoadId],
    params: &CrowdParams,
    rng: &mut R,
) -> Vec<SeedReport> {
    seeds
        .iter()
        .map(|&road| {
            let true_speed = truth.speed(slot, road);
            let mut reports = Vec::with_capacity(params.workers_per_seed);
            for _ in 0..params.workers_per_seed {
                if rng.gen::<f64>() < params.response_rate {
                    reports.push(true_speed * (params.noise_sigma * rng_ext::gaussian(rng)).exp());
                }
            }
            SeedReport {
                road,
                speed: (!reports.is_empty()).then(|| stats::trimmed_mean(&reports, params.trim)),
                responses: reports.len(),
            }
        })
        .collect()
}

/// Retains only the seeds that produced an answer, as `(road, speed)`
/// pairs — the observation set handed to the inference pipeline.
pub fn answered(reports: &[SeedReport]) -> Vec<(RoadId, f64)> {
    reports
        .iter()
        .filter_map(|r| r.speed.map(|s| (r.road, s)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn truth() -> SpeedField {
        let mut f = SpeedField::filled(4, 3, 0.0);
        for slot in 0..4 {
            for r in 0..3u32 {
                f.set_speed(slot, RoadId(r), 30.0 + 10.0 * r as f64);
            }
        }
        f
    }

    #[test]
    fn reports_cluster_around_truth() {
        let t = truth();
        let seeds = [RoadId(0), RoadId(2)];
        let params = CrowdParams {
            workers_per_seed: 50,
            response_rate: 1.0,
            noise_sigma: 0.05,
            trim: 0.1,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let reports = crowdsource(&t, 1, &seeds, &params, &mut rng);
        assert_eq!(reports.len(), 2);
        let s0 = reports[0].speed.unwrap();
        let s2 = reports[1].speed.unwrap();
        assert!((s0 - 30.0).abs() < 2.0, "{s0}");
        assert!((s2 - 50.0).abs() < 3.0, "{s2}");
    }

    #[test]
    fn zero_response_rate_gives_no_answer() {
        let t = truth();
        let params = CrowdParams {
            response_rate: 0.0,
            ..CrowdParams::default()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let reports = crowdsource(&t, 0, &[RoadId(1)], &params, &mut rng);
        assert_eq!(reports[0].speed, None);
        assert_eq!(reports[0].responses, 0);
        assert!(answered(&reports).is_empty());
    }

    #[test]
    fn answered_filters_and_pairs() {
        let reports = vec![
            SeedReport {
                road: RoadId(0),
                speed: Some(31.0),
                responses: 3,
            },
            SeedReport {
                road: RoadId(1),
                speed: None,
                responses: 0,
            },
        ];
        assert_eq!(answered(&reports), vec![(RoadId(0), 31.0)]);
    }

    #[test]
    fn noiseless_workers_report_exact_truth() {
        let t = truth();
        let params = CrowdParams {
            workers_per_seed: 3,
            response_rate: 1.0,
            noise_sigma: 0.0,
            trim: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let reports = crowdsource(&t, 2, &[RoadId(1)], &params, &mut rng);
        assert!((reports[0].speed.unwrap() - 40.0).abs() < 1e-12);
        assert_eq!(reports[0].responses, 3);
    }

    #[test]
    fn response_rate_thins_reports() {
        let t = truth();
        let params = CrowdParams {
            workers_per_seed: 1000,
            response_rate: 0.3,
            noise_sigma: 0.0,
            trim: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let reports = crowdsource(&t, 0, &[RoadId(0)], &params, &mut rng);
        let n = reports[0].responses as f64;
        assert!((n / 1000.0 - 0.3).abs() < 0.05, "{n}");
    }
}
