//! Property-based tests of the traffic simulator.

use proptest::prelude::*;
use roadnet::generate::{grid_city, GridParams};
use roadnet::RoadId;
use trafficsim::{
    snapshot, HistoricalData, HistoryStats, SlotClock, SpeedField, TrafficParams, TrafficSimulator,
};

fn small_sim(seed: u64) -> TrafficSimulator {
    let g = grid_city(&GridParams {
        width: 4,
        height: 4,
        ..GridParams::default()
    });
    TrafficSimulator::new(
        g,
        SlotClock { slots_per_day: 12 },
        TrafficParams::default(),
        seed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn simulated_speeds_always_physical(seed in any::<u64>(), day in 0u64..100) {
        let sim = small_sim(seed);
        let field = sim.simulate_day(day);
        for slot in 0..field.num_slots() {
            for r in sim.graph().road_ids() {
                let v = field.speed(slot, r);
                prop_assert!(v >= sim.params().min_speed_kmh);
                prop_assert!(v <= sim.graph().meta(r).free_flow_kmh * 1.3 + 1e-9);
            }
        }
    }

    #[test]
    fn same_day_same_speeds(seed in any::<u64>(), day in 0u64..50) {
        let sim = small_sim(seed);
        prop_assert_eq!(sim.simulate_day(day), sim.simulate_day(day));
    }

    #[test]
    fn history_stats_mean_is_between_extremes(seed in 0u64..500, days in 2usize..6) {
        let sim = small_sim(seed);
        let fields: Vec<SpeedField> = sim.simulate_days(0, days);
        let h = HistoricalData::from_days(*sim.clock(), fields.clone());
        let stats = HistoryStats::compute(&h);
        for slot in 0..sim.clock().slots_per_day {
            for r in sim.graph().road_ids() {
                let values: Vec<f64> = fields.iter().map(|f| f.speed(slot, r)).collect();
                let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let m = stats.mean(slot, r);
                prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
            }
        }
    }

    #[test]
    fn up_rate_is_a_probability(seed in 0u64..500) {
        let sim = small_sim(seed);
        let h = HistoricalData::from_days(*sim.clock(), sim.simulate_days(0, 4));
        let stats = HistoryStats::compute(&h);
        for slot in 0..sim.clock().slots_per_day {
            for r in sim.graph().road_ids() {
                let u = stats.up_rate(slot, r);
                prop_assert!((0.0..=1.0).contains(&u));
            }
        }
    }

    #[test]
    fn snapshot_roundtrips_any_field(
        slots in 1usize..6,
        roads in 1usize..10,
        values in prop::collection::vec(prop::num::f64::ANY, 60),
    ) {
        let mut f = SpeedField::filled(slots, roads, 0.0);
        let mut i = 0;
        for s in 0..slots {
            for r in 0..roads {
                f.set_speed(s, RoadId(r as u32), values[i % values.len()]);
                i += 1;
            }
        }
        let dec = snapshot::decode_field(snapshot::encode_field(&f)).unwrap();
        for (a, b) in f.as_slice().iter().zip(dec.as_slice()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn crowd_reports_bounded_by_noise(sigma in 0.0f64..0.3, seed in any::<u64>()) {
        use rand::SeedableRng;
        let truth = SpeedField::filled(1, 2, 40.0);
        let params = trafficsim::crowd::CrowdParams {
            workers_per_seed: 20,
            response_rate: 1.0,
            noise_sigma: sigma,
            trim: 0.1,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let reports = trafficsim::crowd::crowdsource(&truth, 0, &[RoadId(0)], &params, &mut rng);
        let s = reports[0].speed.unwrap();
        // 20 trimmed reports with multiplicative log-normal noise:
        // within e^{±5 sigma} of truth with overwhelming probability.
        prop_assert!(s > 40.0 * (-5.0 * sigma - 1e-9).exp());
        prop_assert!(s < 40.0 * (5.0 * sigma + 1e-9).exp());
    }
}
