//! The road **correlation graph** (paper §observation).
//!
//! Two roads are *correlated* when their trends — speed above or below
//! the historical average — agree unusually often. The correlation
//! graph has an edge per correlated pair, weighted by the empirical
//! **co-trend probability**; it is the structure both the trend MRF
//! (step 1) and the seed-selection objective are built on.
//!
//! Construction is restricted to pairs within `max_hops` of each other
//! on the road network: urban traffic correlation is local (congestion
//! diffuses along streets), and the restriction keeps the graph sparse
//! and the build near-linear. Co-trend counting uses per-road bitsets
//! over all historical `(day, slot)` cells, so each candidate pair costs
//! a few dozen word operations.

use crate::CoreError;
use roadnet::{path, RoadGraph, RoadId};
use serde::{Deserialize, Serialize};
use trafficsim::{HistoricalData, HistoryStats};

/// Configuration of correlation-graph construction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorrelationConfig {
    /// Maximum road-network hop distance between correlated pairs.
    pub max_hops: u32,
    /// Minimum co-trend probability τ for an edge. Pairs with
    /// probability `<= 1 − τ` are also kept (anti-correlated roads are
    /// informative too — the MRF handles repulsive couplings).
    pub min_cotrend: f64,
    /// Minimum number of co-observed cells for a pair to be considered
    /// (guards against spurious correlation from thin data).
    ///
    /// The unit is **slot-level co-observations** — `(day, slot)` cells
    /// where *both* roads were observed — not days. One fully observed
    /// day contributes up to `slots_per_day` co-observations per pair,
    /// so e.g. `min_co_observations: 12` is satisfied by a single
    /// 96-slot day; days full of `NaN` holes contribute fewer.
    ///
    /// Under online maintenance ([`crate::online::OnlineCorrelation`])
    /// the threshold is re-evaluated at every materialisation: support
    /// only grows, but the co-trend probability moves freely, so an
    /// edge can be **promoted** when support first crosses this floor
    /// *and later demoted* if new evidence drags its probability into
    /// the indeterminate band `(1 − min_cotrend, min_cotrend)` — and
    /// re-promoted again after that. Edge presence is a property of
    /// the counters at materialisation time, not a one-way latch.
    pub min_co_observations: u32,
    /// Laplace smoothing added to agree/disagree counts.
    pub laplace: f64,
}

impl Default for CorrelationConfig {
    fn default() -> Self {
        CorrelationConfig {
            max_hops: 2,
            min_cotrend: 0.65,
            min_co_observations: 12,
            laplace: 1.0,
        }
    }
}

/// A weighted edge of the correlation graph.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorrelationEdge {
    /// Endpoint with the smaller id.
    pub a: RoadId,
    /// Endpoint with the larger id.
    pub b: RoadId,
    /// Smoothed co-trend probability `P(trend_a == trend_b)`.
    pub cotrend: f64,
    /// Number of co-observed historical cells behind the estimate.
    pub support: u32,
}

/// The correlation graph over all roads.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorrelationGraph {
    n: usize,
    edges: Vec<CorrelationEdge>,
    offsets: Vec<u32>,
    targets: Vec<RoadId>,
    weights: Vec<f64>,
}

/// Summary of one [`CorrelationGraph::apply_delta`] application.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeltaApply {
    /// Edges whose weight/support changed in place.
    pub updated: usize,
    /// Edges inserted.
    pub added: usize,
    /// Edges removed.
    pub removed: usize,
    /// Whether the edge set itself changed (any add or remove). When
    /// `false` the CSR topology — `offsets` and `targets` — is
    /// guaranteed unchanged, so downstream structures indexed by edge
    /// or adjacency position stay valid and can be weight-patched.
    pub membership_changed: bool,
    /// Roads incident to any changed edge, deduplicated, ascending.
    pub touched: Vec<RoadId>,
}

/// Per-road trend bitsets across all historical (day, slot) cells.
struct TrendBits {
    words: usize,
    /// observed[r]: bit set where road r was observed.
    observed: Vec<u64>,
    /// up[r]: bit set where road r trended up (only meaningful where
    /// observed).
    up: Vec<u64>,
}

impl TrendBits {
    fn compute(
        history: &HistoricalData,
        stats: &HistoryStats,
        slot_filter: &(impl Fn(usize) -> bool + Sync),
        threads: usize,
    ) -> TrendBits {
        let n = history.num_roads();
        let slots = history.clock().slots_per_day;
        let cells = history.num_days() * slots;
        let words = cells.div_ceil(64);
        let mut observed = vec![0u64; n * words];
        let mut up = vec![0u64; n * words];
        if words > 0 {
            // Each road owns one disjoint `words`-sized row in both
            // bitsets, so the per-road fills parallelize with no shared
            // writes; bit contents are independent of iteration order.
            let mut rows: Vec<(&mut [u64], &mut [u64])> = observed
                .chunks_mut(words)
                .zip(up.chunks_mut(words))
                .collect();
            crate::parallel::for_each_mut(threads, &mut rows, |r, (obs_row, up_row)| {
                let road = RoadId(r as u32);
                for day in 0..history.num_days() {
                    for slot in 0..slots {
                        if !slot_filter(slot) {
                            continue;
                        }
                        let cell = day * slots + slot;
                        let (w, bit) = (cell / 64, cell % 64);
                        if let Some(v) = history.speed(day, slot, road) {
                            obs_row[w] |= 1 << bit;
                            if stats.trend_of(slot, road, v) {
                                up_row[w] |= 1 << bit;
                            }
                        }
                    }
                }
            });
        }
        TrendBits {
            words,
            observed,
            up,
        }
    }

    /// (co-observed count, agreement count) for a road pair.
    fn co_trend(&self, a: usize, b: usize) -> (u32, u32) {
        let wa = &self.observed[a * self.words..(a + 1) * self.words];
        let wb = &self.observed[b * self.words..(b + 1) * self.words];
        let ua = &self.up[a * self.words..(a + 1) * self.words];
        let ub = &self.up[b * self.words..(b + 1) * self.words];
        let mut co = 0u32;
        let mut agree = 0u32;
        for i in 0..self.words {
            let both = wa[i] & wb[i];
            co += both.count_ones();
            agree += (both & !(ua[i] ^ ub[i])).count_ones();
        }
        (co, agree)
    }
}

impl CorrelationGraph {
    /// Builds the correlation graph from historical data.
    pub fn build(
        graph: &RoadGraph,
        history: &HistoricalData,
        stats: &HistoryStats,
        config: &CorrelationConfig,
    ) -> CorrelationGraph {
        Self::build_for_slots(graph, history, stats, config, |_| true)
    }

    /// [`CorrelationGraph::build`] with bitset filling and per-pair
    /// counting spread over `threads` workers (`0` = all cores). Each
    /// source road's candidate scan is independent and its edge
    /// sub-list is concatenated in road order, so the edge list — and
    /// therefore the graph — is bit-identical for every thread count.
    pub fn build_threaded(
        graph: &RoadGraph,
        history: &HistoricalData,
        stats: &HistoryStats,
        config: &CorrelationConfig,
        threads: usize,
    ) -> CorrelationGraph {
        Self::build_for_slots_threaded(graph, history, stats, config, |_| true, threads)
    }

    /// Builds the correlation graph counting only historical cells whose
    /// slot-of-day satisfies `slot_filter`. Per-period correlation (rush
    /// hours correlate differently from night) underpins
    /// [`crate::seed::temporal`].
    pub fn build_for_slots(
        graph: &RoadGraph,
        history: &HistoricalData,
        stats: &HistoryStats,
        config: &CorrelationConfig,
        slot_filter: impl Fn(usize) -> bool + Sync,
    ) -> CorrelationGraph {
        Self::build_for_slots_threaded(graph, history, stats, config, slot_filter, 1)
    }

    /// [`CorrelationGraph::build_for_slots`] on `threads` workers; see
    /// [`CorrelationGraph::build_threaded`] for the determinism
    /// contract.
    pub fn build_for_slots_threaded(
        graph: &RoadGraph,
        history: &HistoricalData,
        stats: &HistoryStats,
        config: &CorrelationConfig,
        slot_filter: impl Fn(usize) -> bool + Sync,
        threads: usize,
    ) -> CorrelationGraph {
        assert_eq!(graph.num_roads(), history.num_roads());
        let n = graph.num_roads();
        let bits = TrendBits::compute(history, stats, &slot_filter, threads);

        // Candidate pairs: within max_hops, larger id only (each
        // undirected pair once). Per-source sub-lists are produced into
        // index-ordered slots and flattened in source order, matching
        // the serial push order exactly.
        let per_source: Vec<Vec<CorrelationEdge>> = crate::parallel::fill(threads, n, |a| {
            let a = RoadId(a as u32);
            let mut out = Vec::new();
            for (b, _hops) in path::k_hop_neighborhood(graph, a, config.max_hops) {
                if b <= a {
                    continue;
                }
                let (co, agree) = bits.co_trend(a.index(), b.index());
                if co < config.min_co_observations {
                    continue;
                }
                let p = (agree as f64 + config.laplace) / (co as f64 + 2.0 * config.laplace);
                if p >= config.min_cotrend || p <= 1.0 - config.min_cotrend {
                    out.push(CorrelationEdge {
                        a,
                        b,
                        cotrend: p,
                        support: co,
                    });
                }
            }
            out
        });
        let edges: Vec<CorrelationEdge> = per_source.into_iter().flatten().collect();
        Self::from_edges(n, edges).expect("Laplace-smoothed co-trend probabilities lie in (0, 1)")
    }

    /// Builds directly from an edge list (used by tests and by graph
    /// sweeps that re-threshold without re-counting).
    ///
    /// Every `cotrend` must be a probability: NaN or out-of-`[0, 1]`
    /// weights are rejected with [`CoreError::InvalidEdgeWeight`] so
    /// downstream consumers (influence search, CELF heaps, MRF
    /// couplings) never see a non-finite comparison.
    pub fn from_edges(n: usize, edges: Vec<CorrelationEdge>) -> crate::Result<CorrelationGraph> {
        for e in &edges {
            if !(0.0..=1.0).contains(&e.cotrend) {
                return Err(CoreError::InvalidEdgeWeight {
                    a: e.a.0,
                    b: e.b.0,
                    cotrend: e.cotrend,
                });
            }
        }
        let mut degree = vec![0u32; n];
        for e in &edges {
            degree[e.a.index()] += 1;
            degree[e.b.index()] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        for d in &degree {
            let last = *offsets.last().expect("non-empty");
            offsets.push(last + d);
        }
        let total = *offsets.last().expect("non-empty") as usize;
        let mut targets = vec![RoadId(0); total];
        let mut weights = vec![0.0f64; total];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for e in &edges {
            let ia = cursor[e.a.index()] as usize;
            targets[ia] = e.b;
            weights[ia] = e.cotrend;
            cursor[e.a.index()] += 1;
            let ib = cursor[e.b.index()] as usize;
            targets[ib] = e.a;
            weights[ib] = e.cotrend;
            cursor[e.b.index()] += 1;
        }
        Ok(CorrelationGraph {
            n,
            edges,
            offsets,
            targets,
            weights,
        })
    }

    /// Applies an [`crate::online::IngestDelta`]'s edge changes in
    /// place, avoiding a from-scratch rebuild.
    ///
    /// Two regimes:
    ///
    /// * **Weight-only** (every change is [`EdgeChange::Updated`]): the
    ///   edge list entry and both directed CSR weights are patched
    ///   directly; `offsets`/`targets` are untouched. The result is
    ///   bit-identical to rebuilding via [`Self::from_edges`] with the
    ///   updated edge list, because `from_edges` copies `cotrend` into
    ///   both directions verbatim.
    /// * **Membership change** (any add/remove): the sorted edge list
    ///   is spliced and the CSR is rebuilt with [`Self::from_edges`] —
    ///   adjacency layout shifts, so there is nothing cheaper that
    ///   stays bit-identical.
    ///
    /// Edge lookups are by the `(a, b)` key on the edge list, which is
    /// `(a, b)`-sorted for every online-materialised graph (pairs are
    /// sorted at bootstrap). A change that disagrees with the graph —
    /// update/remove of an absent edge, insert of a present one, which
    /// happens when the delta was produced against a different graph
    /// revision — fails with [`CoreError::DeltaMismatch`] *before any
    /// mutation*, so the caller can fall back to a full rebuild.
    pub fn apply_delta(
        &mut self,
        changes: &[crate::online::EdgeChange],
    ) -> crate::Result<DeltaApply> {
        use crate::online::EdgeChange;

        let mut summary = DeltaApply::default();
        for c in changes {
            let (a, b) = c.pair();
            if b.index() >= self.n || a >= b {
                return Err(CoreError::InvalidRoad(b.0.max(a.0)));
            }
            summary.touched.push(a);
            summary.touched.push(b);
        }
        summary.touched.sort_unstable();
        summary.touched.dedup();
        summary.membership_changed = changes.iter().any(EdgeChange::changes_membership);

        if !summary.membership_changed {
            // Weight-only fast path. Validate every change and resolve
            // every index before touching anything, so a mismatch
            // mid-list cannot leave the graph half-patched.
            let mut patches: Vec<(usize, &CorrelationEdge)> = Vec::with_capacity(changes.len());
            for c in changes {
                let EdgeChange::Updated(e) = c else {
                    unreachable!("membership_changed is false");
                };
                if !(0.0..=1.0).contains(&e.cotrend) {
                    return Err(CoreError::InvalidEdgeWeight {
                        a: e.a.0,
                        b: e.b.0,
                        cotrend: e.cotrend,
                    });
                }
                let idx = self
                    .edges
                    .binary_search_by_key(&(e.a, e.b), |x| (x.a, x.b))
                    .map_err(|_| CoreError::DeltaMismatch {
                        a: e.a.0,
                        b: e.b.0,
                        present: false,
                    })?;
                patches.push((idx, e));
            }
            for (idx, e) in patches {
                self.edges[idx] = *e;
                for (u, v) in [(e.a, e.b), (e.b, e.a)] {
                    let lo = self.offsets[u.index()] as usize;
                    let hi = self.offsets[u.index() + 1] as usize;
                    // Linear row scan: correct regardless of row order,
                    // and rows are short (avg degree is single digits).
                    let slot = self.targets[lo..hi]
                        .iter()
                        .position(|&t| t == v)
                        .expect("edge present in list implies CSR adjacency");
                    self.weights[lo + slot] = e.cotrend;
                }
            }
            summary.updated = changes.len();
            return Ok(summary);
        }

        // Membership changed: splice a copy of the sorted edge list,
        // then rebuild the CSR. Working on a clone keeps `self` intact
        // if any change (or `from_edges` validation) rejects.
        let mut edges = self.edges.clone();
        for c in changes {
            let (a, b) = c.pair();
            let found = edges.binary_search_by_key(&(a, b), |x| (x.a, x.b));
            match (c, found) {
                (EdgeChange::Updated(e), Ok(i)) => {
                    edges[i] = *e;
                    summary.updated += 1;
                }
                (EdgeChange::Added(e), Err(i)) => {
                    edges.insert(i, *e);
                    summary.added += 1;
                }
                (EdgeChange::Removed { .. }, Ok(i)) => {
                    edges.remove(i);
                    summary.removed += 1;
                }
                (EdgeChange::Added(_), Ok(_)) => {
                    return Err(CoreError::DeltaMismatch {
                        a: a.0,
                        b: b.0,
                        present: true,
                    });
                }
                (_, Err(_)) => {
                    return Err(CoreError::DeltaMismatch {
                        a: a.0,
                        b: b.0,
                        present: false,
                    });
                }
            }
        }
        *self = Self::from_edges(self.n, edges)?;
        Ok(summary)
    }

    /// Re-thresholds the edge list at a stricter τ without recounting
    /// trends (used by the τ-sweep experiment E8).
    pub fn rethreshold(&self, min_cotrend: f64) -> CorrelationGraph {
        let edges: Vec<CorrelationEdge> = self
            .edges
            .iter()
            .filter(|e| e.cotrend >= min_cotrend || e.cotrend <= 1.0 - min_cotrend)
            .copied()
            .collect();
        Self::from_edges(self.n, edges).expect("edges were validated at construction")
    }

    /// Number of roads.
    pub fn num_roads(&self) -> usize {
        self.n
    }

    /// Number of correlation edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// All edges.
    pub fn edges(&self) -> &[CorrelationEdge] {
        &self.edges
    }

    /// Correlated neighbours of `r` with co-trend probabilities.
    pub fn neighbors(&self, r: RoadId) -> impl Iterator<Item = (RoadId, f64)> + '_ {
        let lo = self.offsets[r.index()] as usize;
        let hi = self.offsets[r.index() + 1] as usize;
        self.targets[lo..hi]
            .iter()
            .zip(&self.weights[lo..hi])
            .map(|(&t, &w)| (t, w))
    }

    /// Degree in the correlation graph.
    pub fn degree(&self, r: RoadId) -> usize {
        (self.offsets[r.index() + 1] - self.offsets[r.index()]) as usize
    }

    /// Edges per road — the density metric of experiment E8.
    pub fn avg_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            2.0 * self.edges.len() as f64 / self.n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trafficsim::dataset::{metro_small, DatasetParams};
    use trafficsim::SlotClock;

    fn dataset_corr() -> (trafficsim::dataset::Dataset, HistoryStats, CorrelationGraph) {
        let ds = metro_small(&DatasetParams {
            training_days: 10,
            test_days: 1,
            ..DatasetParams::default()
        });
        let stats = HistoryStats::compute(&ds.history);
        let corr = CorrelationGraph::build(
            &ds.graph,
            &ds.history,
            &stats,
            &CorrelationConfig {
                min_cotrend: 0.6,
                min_co_observations: 8,
                ..CorrelationConfig::default()
            },
        );
        (ds, stats, corr)
    }

    #[test]
    fn builds_nonempty_graph_on_synthetic_city() {
        let (ds, _, corr) = dataset_corr();
        assert_eq!(corr.num_roads(), ds.graph.num_roads());
        assert!(
            corr.num_edges() > ds.graph.num_roads() / 4,
            "too few correlation edges: {}",
            corr.num_edges()
        );
    }

    #[test]
    fn edges_connect_nearby_roads_only() {
        let (ds, _, corr) = dataset_corr();
        for e in corr.edges() {
            let hops = path::bfs_hops(&ds.graph, e.a, 2);
            assert!(hops[e.b.index()] <= 2, "{} - {} too far", e.a, e.b);
        }
    }

    #[test]
    fn edge_weights_exceed_threshold() {
        let (_, _, corr) = dataset_corr();
        for e in corr.edges() {
            assert!(
                e.cotrend >= 0.6 || e.cotrend <= 0.4,
                "weak edge kept: {}",
                e.cotrend
            );
            assert!(e.support >= 8);
        }
    }

    #[test]
    fn adjacency_is_symmetric() {
        let (_, _, corr) = dataset_corr();
        for r in 0..corr.num_roads() {
            let r = RoadId(r as u32);
            for (nb, w) in corr.neighbors(r) {
                let back = corr
                    .neighbors(nb)
                    .find(|&(t, _)| t == r)
                    .expect("missing reverse adjacency");
                assert_eq!(back.1, w);
            }
        }
    }

    #[test]
    fn rethreshold_is_monotone() {
        let (_, _, corr) = dataset_corr();
        let strict = corr.rethreshold(0.8);
        assert!(strict.num_edges() <= corr.num_edges());
        for e in strict.edges() {
            assert!(e.cotrend >= 0.8 || e.cotrend <= 0.2);
        }
        // Same threshold keeps everything.
        assert_eq!(corr.rethreshold(0.0).num_edges(), corr.num_edges());
    }

    #[test]
    fn from_edges_degree_bookkeeping() {
        let edges = vec![
            CorrelationEdge {
                a: RoadId(0),
                b: RoadId(1),
                cotrend: 0.8,
                support: 10,
            },
            CorrelationEdge {
                a: RoadId(0),
                b: RoadId(2),
                cotrend: 0.7,
                support: 10,
            },
        ];
        let g = CorrelationGraph::from_edges(3, edges).unwrap();
        assert_eq!(g.degree(RoadId(0)), 2);
        assert_eq!(g.degree(RoadId(1)), 1);
        assert_eq!(g.degree(RoadId(2)), 1);
        assert!((g.avg_degree() - 4.0 / 3.0).abs() < 1e-12);
        let ns: Vec<_> = g.neighbors(RoadId(0)).collect();
        assert_eq!(ns, vec![(RoadId(1), 0.8), (RoadId(2), 0.7)]);
    }

    #[test]
    fn co_trend_bitsets_count_correctly() {
        // Hand-built 2-road history over 1 day x 4 slots:
        // road 0 speeds: 10 20 10 20 (mean 15) -> trends D U D U
        // road 1 speeds: 30 40 40 NaN (mean 36.67) -> D U U -
        // co-observed = 3; agreements = slots 0,1 -> 2.
        let clock = SlotClock { slots_per_day: 4 };
        let mut day = trafficsim::SpeedField::filled(4, 2, 0.0);
        let speeds0 = [10.0, 20.0, 10.0, 20.0];
        let speeds1 = [30.0, 40.0, 40.0, f64::NAN];
        for s in 0..4 {
            day.set_speed(s, RoadId(0), speeds0[s]);
            day.set_speed(s, RoadId(1), speeds1[s]);
        }
        let h = HistoricalData::from_days(clock, vec![day]);
        let stats = HistoryStats::compute(&h);
        let bits = TrendBits::compute(&h, &stats, &|_| true, 1);
        let (co, agree) = bits.co_trend(0, 1);
        assert_eq!(co, 3);
        // With a 1-day history the per-(slot,road) mean equals the
        // observation, so every observed cell trends "up" (>= mean);
        // all 3 co-observed cells agree.
        assert_eq!(agree, 3);
    }

    #[test]
    fn from_edges_rejects_invalid_weights() {
        let edge = |cotrend: f64| CorrelationEdge {
            a: RoadId(0),
            b: RoadId(1),
            cotrend,
            support: 10,
        };
        for bad in [f64::NAN, -0.1, 1.5, f64::INFINITY, f64::NEG_INFINITY] {
            let err = CorrelationGraph::from_edges(2, vec![edge(bad)]).unwrap_err();
            match err {
                CoreError::InvalidEdgeWeight {
                    a: 0,
                    b: 1,
                    cotrend,
                } => {
                    assert!(cotrend.is_nan() == bad.is_nan());
                    if !bad.is_nan() {
                        assert_eq!(cotrend, bad);
                    }
                }
                other => panic!("wrong error for {bad}: {other:?}"),
            }
        }
        // Boundary probabilities are valid.
        assert!(CorrelationGraph::from_edges(2, vec![edge(0.0)]).is_ok());
        assert!(CorrelationGraph::from_edges(2, vec![edge(1.0)]).is_ok());
    }

    fn assert_graphs_bitwise_equal(got: &CorrelationGraph, want: &CorrelationGraph, ctx: &str) {
        assert_eq!(got.n, want.n, "{ctx}: road count");
        assert_eq!(got.edges.len(), want.edges.len(), "{ctx}: edge count");
        for (g, w) in got.edges.iter().zip(&want.edges) {
            assert_eq!((g.a, g.b, g.support), (w.a, w.b, w.support), "{ctx}");
            assert_eq!(g.cotrend.to_bits(), w.cotrend.to_bits(), "{ctx}");
        }
        assert_eq!(got.offsets, want.offsets, "{ctx}: offsets");
        assert_eq!(got.targets, want.targets, "{ctx}: targets");
        let same_bits = got
            .weights
            .iter()
            .zip(&want.weights)
            .all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(same_bits, "{ctx}: weights");
    }

    #[test]
    fn apply_delta_matches_fresh_materialisation() {
        use crate::online::{EdgeChange, OnlineCorrelation};
        let ds = metro_small(&DatasetParams {
            training_days: 3,
            test_days: 8,
            ..DatasetParams::default()
        });
        let mut online = OnlineCorrelation::bootstrap(
            &ds.graph,
            &ds.history,
            &CorrelationConfig {
                min_co_observations: 24,
                ..CorrelationConfig::default()
            },
        );
        let mut live = online.correlation_graph();
        let mut memberships = 0;
        let mut weight_only = 0;
        for (i, day) in ds.test_days.iter().enumerate() {
            let delta = online.ingest_day_delta(day).unwrap();
            // Apply the weight-only part and the membership part as
            // two separate deltas — each change names a distinct edge,
            // so splitting cannot reorder effects, and it exercises
            // the fast path even on days that also flip membership.
            let (updates, flips): (Vec<EdgeChange>, Vec<EdgeChange>) = delta
                .changes
                .iter()
                .cloned()
                .partition(|c| !c.changes_membership());
            if !updates.is_empty() {
                let s = live.apply_delta(&updates).unwrap();
                assert!(!s.membership_changed, "day {i}");
                assert_eq!(s.updated, updates.len(), "day {i}");
                weight_only += 1;
            }
            if !flips.is_empty() {
                let s = live.apply_delta(&flips).unwrap();
                assert!(s.membership_changed, "day {i}");
                memberships += 1;
            }
            assert_graphs_bitwise_equal(&live, &online.correlation_graph(), &format!("day {i}"));
        }
        // The sequence must exercise both apply_delta regimes, or the
        // equivalence above proves less than it claims. The low
        // bootstrap support (3 days) guarantees early promotions;
        // every ingested day nudges some retained edge's weight.
        assert!(memberships > 0, "no day changed edge membership");
        assert!(weight_only > 0, "no day hit the weight-only fast path");
    }

    /// A graph whose edge list is `(a, b)`-sorted, as every
    /// online-materialised graph is — the layout `apply_delta`'s edge
    /// lookup is specified against.
    fn sorted_corr() -> CorrelationGraph {
        let ds = metro_small(&DatasetParams {
            training_days: 10,
            test_days: 1,
            ..DatasetParams::default()
        });
        let online = crate::online::OnlineCorrelation::bootstrap(
            &ds.graph,
            &ds.history,
            &CorrelationConfig::default(),
        );
        let corr = online.correlation_graph();
        assert!(corr
            .edges()
            .windows(2)
            .all(|w| (w[0].a, w[0].b) < (w[1].a, w[1].b)));
        assert!(corr.num_edges() > 0);
        corr
    }

    #[test]
    fn apply_delta_rejects_mismatched_changes_without_mutation() {
        use crate::online::EdgeChange;
        let corr = sorted_corr();
        let absent = {
            // A pair no edge connects: take an existing edge's `a` and
            // pair it with a road id beyond any of its neighbours.
            let e = corr.edges()[0];
            let b = RoadId(corr.num_roads() as u32 - 1);
            assert!(corr.neighbors(e.a).all(|(t, _)| t != b) && e.a < b);
            (e.a, b)
        };
        let present = (corr.edges()[0].a, corr.edges()[0].b);
        let make = |(a, b): (RoadId, RoadId)| CorrelationEdge {
            a,
            b,
            cotrend: 0.9,
            support: 99,
        };

        let cases: Vec<(Vec<EdgeChange>, (RoadId, RoadId), bool)> = vec![
            (vec![EdgeChange::Updated(make(absent))], absent, false),
            (vec![EdgeChange::Added(make(present))], present, true),
            (
                vec![EdgeChange::Removed {
                    a: absent.0,
                    b: absent.1,
                }],
                absent,
                false,
            ),
            // Valid first change, bad second: the weight-only path
            // must reject atomically, leaving the first unapplied.
            (
                vec![
                    EdgeChange::Updated(make(present)),
                    EdgeChange::Updated(make(absent)),
                ],
                absent,
                false,
            ),
        ];
        for (changes, want_pair, want_present) in cases {
            let mut g = corr.clone();
            match g.apply_delta(&changes) {
                Err(CoreError::DeltaMismatch { a, b, present }) => {
                    assert_eq!((RoadId(a), RoadId(b)), want_pair);
                    assert_eq!(present, want_present);
                }
                other => panic!("expected DeltaMismatch, got {other:?}"),
            }
            assert_graphs_bitwise_equal(&g, &corr, "rejected delta must not mutate");
        }
    }

    #[test]
    fn apply_delta_weight_only_matches_rebuild() {
        let corr = sorted_corr();
        // Nudge every third edge's weight; patched graph must equal a
        // from_edges rebuild with the same edited list, bit for bit.
        let mut edited = corr.edges().to_vec();
        let mut changes = Vec::new();
        for (i, e) in edited.iter_mut().enumerate() {
            if i % 3 == 0 {
                e.cotrend = (e.cotrend * 0.97).max(1.0 - e.cotrend);
                e.support += 4;
                changes.push(crate::online::EdgeChange::Updated(*e));
            }
        }
        let mut patched = corr.clone();
        let summary = patched.apply_delta(&changes).unwrap();
        assert!(!summary.membership_changed);
        assert_eq!(summary.updated, changes.len());
        let rebuilt = CorrelationGraph::from_edges(corr.num_roads(), edited).unwrap();
        assert_graphs_bitwise_equal(&patched, &rebuilt, "weight-only patch");
    }

    #[test]
    fn threaded_build_is_bit_identical_to_serial() {
        let ds = metro_small(&DatasetParams {
            training_days: 8,
            test_days: 1,
            ..DatasetParams::default()
        });
        let stats = HistoryStats::compute(&ds.history);
        let config = CorrelationConfig {
            min_cotrend: 0.6,
            min_co_observations: 8,
            ..CorrelationConfig::default()
        };
        let serial = CorrelationGraph::build(&ds.graph, &ds.history, &stats, &config);
        for threads in [2, 8] {
            let par =
                CorrelationGraph::build_threaded(&ds.graph, &ds.history, &stats, &config, threads);
            assert_eq!(par.edges, serial.edges, "threads={threads}");
            assert_eq!(par.offsets, serial.offsets, "threads={threads}");
            assert_eq!(par.targets, serial.targets, "threads={threads}");
            let same_bits = par
                .weights
                .iter()
                .zip(&serial.weights)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same_bits, "threads={threads}");
        }
    }
}
