//! Length-prefixed little-endian binary codec for model state.
//!
//! Extends the snapshot codec style of `trafficsim::snapshot` (raw
//! `bytes` put/get, `NaN`-bit-exact `f64`s, no serde) to the model
//! types the serving daemon persists: configuration blocks, the
//! correlation graph, and — via in-module methods on the private types
//! themselves — the online accumulator and the trained estimator.
//!
//! Every `encode_*` here is canonical (a value has exactly one
//! encoding), so the same functions double as the input to the
//! snapshot header's config hash.

use crate::correlation::{CorrelationConfig, CorrelationEdge, CorrelationGraph};
use crate::inference::hlm::{HlmConfig, Pooling};
use crate::inference::trend_model::{TrendEngine, TrendModelConfig};
use crate::seed::objective::InfluenceConfig;
use bytes::{Buf, BufMut, BytesMut};
use graphmodel::{gibbs, lbp, meanfield};
use roadnet::RoadId;

/// Model-codec decode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input shorter than its layout claims.
    Truncated,
    /// Structurally well-formed bytes describing an invalid value
    /// (e.g. an out-of-range enum tag or a mismatched vector length).
    Corrupt(String),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "model snapshot truncated"),
            DecodeError::Corrupt(msg) => write!(f, "model snapshot corrupt: {msg}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<trafficsim::snapshot::SnapshotError> for DecodeError {
    fn from(e: trafficsim::snapshot::SnapshotError) -> Self {
        use trafficsim::snapshot::SnapshotError;
        match e {
            SnapshotError::Truncated => DecodeError::Truncated,
            SnapshotError::BadMagic => DecodeError::Corrupt("bad field magic".into()),
            SnapshotError::BadVersion(v) => {
                DecodeError::Corrupt(format!("unsupported field version {v}"))
            }
        }
    }
}

/// Convenience alias for codec results.
pub type DecodeResult<T> = std::result::Result<T, DecodeError>;

// ---------------------------------------------------------------------
// Primitives.

#[inline]
fn need(buf: &impl Buf, n: usize) -> DecodeResult<()> {
    if buf.remaining() < n {
        Err(DecodeError::Truncated)
    } else {
        Ok(())
    }
}

/// Reads a `u8`.
pub fn get_u8(buf: &mut impl Buf) -> DecodeResult<u8> {
    need(buf, 1)?;
    Ok(buf.get_u8())
}

/// Reads a little-endian `u32`.
pub fn get_u32(buf: &mut impl Buf) -> DecodeResult<u32> {
    need(buf, 4)?;
    Ok(buf.get_u32_le())
}

/// Reads a little-endian `u64`.
pub fn get_u64(buf: &mut impl Buf) -> DecodeResult<u64> {
    need(buf, 8)?;
    Ok(buf.get_u64_le())
}

/// Reads a little-endian `f64` (bit-exact, `NaN`s included).
pub fn get_f64(buf: &mut impl Buf) -> DecodeResult<f64> {
    need(buf, 8)?;
    Ok(buf.get_f64_le())
}

/// Writes a `usize` as a little-endian `u64`.
pub fn put_usize(buf: &mut BytesMut, v: usize) {
    buf.put_u64_le(v as u64);
}

/// Reads a `usize` written by [`put_usize`].
pub fn get_usize(buf: &mut impl Buf) -> DecodeResult<usize> {
    let v = get_u64(buf)?;
    usize::try_from(v).map_err(|_| DecodeError::Corrupt(format!("length {v} overflows usize")))
}

/// Writes a `bool` as one byte.
pub fn put_bool(buf: &mut BytesMut, v: bool) {
    buf.put_u8(v as u8);
}

/// Reads a `bool` written by [`put_bool`].
pub fn get_bool(buf: &mut impl Buf) -> DecodeResult<bool> {
    match get_u8(buf)? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(DecodeError::Corrupt(format!("bad bool byte {other}"))),
    }
}

/// Writes an `f64` slice with a `u32` length prefix.
pub fn put_f64_slice(buf: &mut BytesMut, v: &[f64]) {
    buf.put_u32_le(v.len() as u32);
    for &x in v {
        buf.put_f64_le(x);
    }
}

/// Reads an `f64` vector written by [`put_f64_slice`].
pub fn get_f64_vec(buf: &mut impl Buf) -> DecodeResult<Vec<f64>> {
    let len = get_u32(buf)? as usize;
    need(buf, len.saturating_mul(8))?;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(buf.get_f64_le());
    }
    Ok(out)
}

/// Writes a `u32` slice with a `u32` length prefix.
pub fn put_u32_slice(buf: &mut BytesMut, v: &[u32]) {
    buf.put_u32_le(v.len() as u32);
    for &x in v {
        buf.put_u32_le(x);
    }
}

/// Reads a `u32` vector written by [`put_u32_slice`].
pub fn get_u32_vec(buf: &mut impl Buf) -> DecodeResult<Vec<u32>> {
    let len = get_u32(buf)? as usize;
    need(buf, len.saturating_mul(4))?;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(buf.get_u32_le());
    }
    Ok(out)
}

/// Writes a `RoadId` slice with a `u32` length prefix.
pub fn put_road_slice(buf: &mut BytesMut, v: &[RoadId]) {
    buf.put_u32_le(v.len() as u32);
    for r in v {
        buf.put_u32_le(r.0);
    }
}

/// Reads a `RoadId` vector written by [`put_road_slice`].
pub fn get_road_vec(buf: &mut impl Buf) -> DecodeResult<Vec<RoadId>> {
    Ok(get_u32_vec(buf)?.into_iter().map(RoadId).collect())
}

// ---------------------------------------------------------------------
// Configuration blocks.

/// Encodes a [`CorrelationConfig`].
pub fn encode_correlation_config(c: &CorrelationConfig, buf: &mut BytesMut) {
    buf.put_u32_le(c.max_hops);
    buf.put_f64_le(c.min_cotrend);
    buf.put_u32_le(c.min_co_observations);
    buf.put_f64_le(c.laplace);
}

/// Decodes a [`CorrelationConfig`].
pub fn decode_correlation_config(buf: &mut impl Buf) -> DecodeResult<CorrelationConfig> {
    Ok(CorrelationConfig {
        max_hops: get_u32(buf)?,
        min_cotrend: get_f64(buf)?,
        min_co_observations: get_u32(buf)?,
        laplace: get_f64(buf)?,
    })
}

/// Encodes a [`TrendModelConfig`].
pub fn encode_trend_model_config(c: &TrendModelConfig, buf: &mut BytesMut) {
    buf.put_f64_le(c.coupling_scale);
    buf.put_f64_le(c.degree_norm);
    buf.put_f64_le(c.prior_clamp);
}

/// Decodes a [`TrendModelConfig`].
pub fn decode_trend_model_config(buf: &mut impl Buf) -> DecodeResult<TrendModelConfig> {
    Ok(TrendModelConfig {
        coupling_scale: get_f64(buf)?,
        degree_norm: get_f64(buf)?,
        prior_clamp: get_f64(buf)?,
    })
}

/// Encodes an [`InfluenceConfig`].
pub fn encode_influence_config(c: &InfluenceConfig, buf: &mut BytesMut) {
    buf.put_u32_le(c.max_hops);
    buf.put_f64_le(c.min_influence);
}

/// Decodes an [`InfluenceConfig`].
pub fn decode_influence_config(buf: &mut impl Buf) -> DecodeResult<InfluenceConfig> {
    Ok(InfluenceConfig {
        max_hops: get_u32(buf)?,
        min_influence: get_f64(buf)?,
    })
}

/// Encodes an [`HlmConfig`].
pub fn encode_hlm_config(c: &HlmConfig, buf: &mut BytesMut) {
    buf.put_f64_le(c.lambda_city);
    buf.put_f64_le(c.lambda_class);
    buf.put_f64_le(c.lambda_road);
    put_usize(buf, c.min_road_rows);
    put_usize(buf, c.max_cells_per_road);
    buf.put_f64_le(c.deviation_clamp.0);
    buf.put_f64_le(c.deviation_clamp.1);
    put_bool(buf, c.log_space);
    put_usize(buf, c.max_seed_neighbors);
    put_usize(buf, c.spatial_neighbors);
    put_usize(buf, c.propagation_iters);
    buf.put_f64_le(c.propagation_anchor);
    buf.put_u8(match c.pooling {
        Pooling::Full => 0,
        Pooling::ClassOnly => 1,
        Pooling::GlobalOnly => 2,
    });
    put_bool(buf, c.split_regimes);
    encode_influence_config(&c.influence, buf);
}

/// Decodes an [`HlmConfig`].
pub fn decode_hlm_config(buf: &mut impl Buf) -> DecodeResult<HlmConfig> {
    Ok(HlmConfig {
        lambda_city: get_f64(buf)?,
        lambda_class: get_f64(buf)?,
        lambda_road: get_f64(buf)?,
        min_road_rows: get_usize(buf)?,
        max_cells_per_road: get_usize(buf)?,
        deviation_clamp: (get_f64(buf)?, get_f64(buf)?),
        log_space: get_bool(buf)?,
        max_seed_neighbors: get_usize(buf)?,
        spatial_neighbors: get_usize(buf)?,
        propagation_iters: get_usize(buf)?,
        propagation_anchor: get_f64(buf)?,
        pooling: match get_u8(buf)? {
            0 => Pooling::Full,
            1 => Pooling::ClassOnly,
            2 => Pooling::GlobalOnly,
            t => return Err(DecodeError::Corrupt(format!("bad pooling tag {t}"))),
        },
        split_regimes: get_bool(buf)?,
        influence: decode_influence_config(buf)?,
    })
}

/// Encodes a [`TrendEngine`] (tagged union).
pub fn encode_engine(e: &TrendEngine, buf: &mut BytesMut) {
    match e {
        TrendEngine::Lbp(o) => {
            buf.put_u8(0);
            put_usize(buf, o.max_iters);
            buf.put_f64_le(o.tol);
            buf.put_f64_le(o.damping);
        }
        TrendEngine::Gibbs { options, seed } => {
            buf.put_u8(1);
            put_usize(buf, options.burn_in);
            put_usize(buf, options.samples);
            buf.put_u64_le(*seed);
        }
        TrendEngine::MeanField(o) => {
            buf.put_u8(2);
            put_usize(buf, o.max_iters);
            buf.put_f64_le(o.tol);
            buf.put_f64_le(o.damping);
        }
        TrendEngine::Exact => buf.put_u8(3),
        TrendEngine::PriorOnly => buf.put_u8(4),
    }
}

/// Decodes a [`TrendEngine`] written by [`encode_engine`].
pub fn decode_engine(buf: &mut impl Buf) -> DecodeResult<TrendEngine> {
    match get_u8(buf)? {
        0 => Ok(TrendEngine::Lbp(lbp::LbpOptions {
            max_iters: get_usize(buf)?,
            tol: get_f64(buf)?,
            damping: get_f64(buf)?,
        })),
        1 => Ok(TrendEngine::Gibbs {
            options: gibbs::GibbsOptions {
                burn_in: get_usize(buf)?,
                samples: get_usize(buf)?,
            },
            seed: get_u64(buf)?,
        }),
        2 => Ok(TrendEngine::MeanField(meanfield::MeanFieldOptions {
            max_iters: get_usize(buf)?,
            tol: get_f64(buf)?,
            damping: get_f64(buf)?,
        })),
        3 => Ok(TrendEngine::Exact),
        4 => Ok(TrendEngine::PriorOnly),
        t => Err(DecodeError::Corrupt(format!("bad engine tag {t}"))),
    }
}

// ---------------------------------------------------------------------
// Correlation graph.

/// Encodes a [`CorrelationGraph`] as `(n, edge list)`; the CSR
/// adjacency is rebuilt deterministically by
/// [`CorrelationGraph::from_edges`] on decode, so the round-trip is
/// bit-identical (every construction path ends in `from_edges`).
pub fn encode_correlation_graph(g: &CorrelationGraph, buf: &mut BytesMut) {
    buf.put_u32_le(g.num_roads() as u32);
    buf.put_u32_le(g.num_edges() as u32);
    for e in g.edges() {
        buf.put_u32_le(e.a.0);
        buf.put_u32_le(e.b.0);
        buf.put_f64_le(e.cotrend);
        buf.put_u32_le(e.support);
    }
}

/// Decodes a graph written by [`encode_correlation_graph`].
pub fn decode_correlation_graph(buf: &mut impl Buf) -> DecodeResult<CorrelationGraph> {
    let n = get_u32(buf)? as usize;
    let m = get_u32(buf)? as usize;
    need(buf, m.saturating_mul(20))?;
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let a = RoadId(buf.get_u32_le());
        let b = RoadId(buf.get_u32_le());
        let cotrend = buf.get_f64_le();
        let support = buf.get_u32_le();
        if a.index() >= n || b.index() >= n {
            return Err(DecodeError::Corrupt(format!(
                "edge ({a}, {b}) outside {n} roads"
            )));
        }
        edges.push(CorrelationEdge {
            a,
            b,
            cotrend,
            support,
        });
    }
    CorrelationGraph::from_edges(n, edges).map_err(|e| DecodeError::Corrupt(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_graph(g: &CorrelationGraph) -> CorrelationGraph {
        let mut buf = BytesMut::new();
        encode_correlation_graph(g, &mut buf);
        decode_correlation_graph(&mut buf.freeze()).unwrap()
    }

    #[test]
    fn correlation_graph_roundtrips_bit_exact() {
        let e = |a: u32, b: u32, p: f64| CorrelationEdge {
            a: RoadId(a),
            b: RoadId(b),
            cotrend: p,
            support: a + b,
        };
        let g = CorrelationGraph::from_edges(4, vec![e(0, 1, 0.9), e(1, 3, 0.15)]).unwrap();
        let d = roundtrip_graph(&g);
        assert_eq!(d.num_roads(), 4);
        assert_eq!(d.edges().len(), 2);
        for (x, y) in g.edges().iter().zip(d.edges()) {
            assert_eq!((x.a, x.b, x.support), (y.a, y.b, y.support));
            assert_eq!(x.cotrend.to_bits(), y.cotrend.to_bits());
        }
        // CSR adjacency is rebuilt identically.
        for r in 0..4 {
            let a: Vec<_> = g.neighbors(RoadId(r)).collect();
            let b: Vec<_> = d.neighbors(RoadId(r)).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn correlation_graph_rejects_out_of_range_edge() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(2); // n
        buf.put_u32_le(1); // edges
        buf.put_u32_le(0);
        buf.put_u32_le(7); // outside n
        buf.put_f64_le(0.9);
        buf.put_u32_le(3);
        assert!(matches!(
            decode_correlation_graph(&mut buf.freeze()),
            Err(DecodeError::Corrupt(_))
        ));
    }

    #[test]
    fn configs_roundtrip() {
        let mut buf = BytesMut::new();
        let cc = CorrelationConfig {
            max_hops: 3,
            min_cotrend: 0.7,
            min_co_observations: 9,
            laplace: 0.5,
        };
        encode_correlation_config(&cc, &mut buf);
        let hc = HlmConfig {
            pooling: Pooling::ClassOnly,
            split_regimes: false,
            ..HlmConfig::default()
        };
        encode_hlm_config(&hc, &mut buf);
        encode_trend_model_config(&TrendModelConfig::default(), &mut buf);
        let mut b = buf.freeze();
        let cc2 = decode_correlation_config(&mut b).unwrap();
        assert_eq!(
            (cc2.max_hops, cc2.min_co_observations),
            (cc.max_hops, cc.min_co_observations)
        );
        assert_eq!(cc2.min_cotrend.to_bits(), cc.min_cotrend.to_bits());
        let hc2 = decode_hlm_config(&mut b).unwrap();
        assert_eq!(hc2.pooling, Pooling::ClassOnly);
        assert!(!hc2.split_regimes);
        assert_eq!(hc2.max_seed_neighbors, hc.max_seed_neighbors);
        let tc = decode_trend_model_config(&mut b).unwrap();
        assert_eq!(
            tc.coupling_scale.to_bits(),
            TrendModelConfig::default().coupling_scale.to_bits()
        );
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn engines_roundtrip() {
        for engine in [
            TrendEngine::default(),
            TrendEngine::Gibbs {
                options: gibbs::GibbsOptions::default(),
                seed: 42,
            },
            TrendEngine::MeanField(meanfield::MeanFieldOptions::default()),
            TrendEngine::Exact,
            TrendEngine::PriorOnly,
        ] {
            let mut buf = BytesMut::new();
            encode_engine(&engine, &mut buf);
            let d = decode_engine(&mut buf.freeze()).unwrap();
            // Canonical encodings compare equal byte-for-byte.
            let mut a = BytesMut::new();
            let mut b = BytesMut::new();
            encode_engine(&engine, &mut a);
            encode_engine(&d, &mut b);
            assert_eq!(a, b);
        }
        let mut bad = BytesMut::new();
        bad.put_u8(9);
        assert!(matches!(
            decode_engine(&mut bad.freeze()),
            Err(DecodeError::Corrupt(_))
        ));
    }

    #[test]
    fn bool_and_length_guards() {
        let mut buf = BytesMut::new();
        buf.put_u8(2);
        assert!(matches!(
            get_bool(&mut buf.freeze()),
            Err(DecodeError::Corrupt(_))
        ));
        let mut buf = BytesMut::new();
        buf.put_u32_le(10); // claims 10 f64s, provides none
        assert_eq!(get_f64_vec(&mut buf.freeze()), Err(DecodeError::Truncated));
    }
}
