//! Estimation-quality metrics.

use roadnet::RoadId;

/// Aggregate error statistics of a set of speed estimates against
/// ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ErrorStats {
    /// Mean absolute error, km/h.
    pub mae: f64,
    /// Root mean squared error, km/h.
    pub rmse: f64,
    /// Mean absolute percentage error, in `[0, ..)` (0.1 = 10 %).
    pub mape: f64,
    /// Number of (road, slot) cells aggregated.
    pub count: usize,
}

impl ErrorStats {
    /// Computes errors over paired `(truth, estimate)` samples. Pairs
    /// with non-finite members are skipped; MAPE skips near-zero truth.
    pub fn from_pairs<'a>(pairs: impl IntoIterator<Item = (&'a f64, &'a f64)>) -> ErrorStats {
        let mut abs_sum = 0.0;
        let mut sq_sum = 0.0;
        let mut pct_sum = 0.0;
        let mut count = 0usize;
        let mut pct_count = 0usize;
        for (&t, &e) in pairs {
            if !t.is_finite() || !e.is_finite() {
                continue;
            }
            let d = (t - e).abs();
            abs_sum += d;
            sq_sum += d * d;
            count += 1;
            if t.abs() > 1e-6 {
                pct_sum += d / t.abs();
                pct_count += 1;
            }
        }
        if count == 0 {
            return ErrorStats::default();
        }
        ErrorStats {
            mae: abs_sum / count as f64,
            rmse: (sq_sum / count as f64).sqrt(),
            mape: if pct_count > 0 {
                pct_sum / pct_count as f64
            } else {
                0.0
            },
            count,
        }
    }

    /// Errors over full road vectors, excluding the given roads (the
    /// seeds, whose speeds are observed rather than estimated).
    pub fn from_road_vectors(truth: &[f64], est: &[f64], exclude: &[RoadId]) -> ErrorStats {
        assert_eq!(truth.len(), est.len());
        let mut excluded = vec![false; truth.len()];
        for r in exclude {
            excluded[r.index()] = true;
        }
        ErrorStats::from_pairs(
            truth
                .iter()
                .zip(est)
                .enumerate()
                .filter(|(i, _)| !excluded[*i])
                .map(|(_, p)| p),
        )
    }

    /// Merges two statistics (weighted by their counts).
    pub fn merge(self, other: ErrorStats) -> ErrorStats {
        let total = self.count + other.count;
        if total == 0 {
            return ErrorStats::default();
        }
        let w1 = self.count as f64;
        let w2 = other.count as f64;
        ErrorStats {
            mae: (self.mae * w1 + other.mae * w2) / (w1 + w2),
            rmse: (((self.rmse * self.rmse) * w1 + (other.rmse * other.rmse) * w2) / (w1 + w2))
                .sqrt(),
            mape: (self.mape * w1 + other.mape * w2) / (w1 + w2),
            count: total,
        }
    }
}

/// Fraction of roads whose predicted binary trend matches the true
/// trend, excluding the given roads.
pub fn trend_accuracy(truth: &[bool], predicted: &[bool], exclude: &[RoadId]) -> f64 {
    assert_eq!(truth.len(), predicted.len());
    let mut excluded = vec![false; truth.len()];
    for r in exclude {
        excluded[r.index()] = true;
    }
    let mut correct = 0usize;
    let mut total = 0usize;
    for i in 0..truth.len() {
        if excluded[i] {
            continue;
        }
        total += 1;
        if truth[i] == predicted[i] {
            correct += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_estimates_have_zero_error() {
        let t = [30.0, 40.0, 50.0];
        let s = ErrorStats::from_pairs(t.iter().zip(&t));
        assert_eq!(s.mae, 0.0);
        assert_eq!(s.rmse, 0.0);
        assert_eq!(s.mape, 0.0);
        assert_eq!(s.count, 3);
    }

    #[test]
    fn known_errors() {
        let t = [10.0, 20.0];
        let e = [12.0, 16.0];
        let s = ErrorStats::from_pairs(t.iter().zip(&e));
        assert!((s.mae - 3.0).abs() < 1e-12);
        assert!((s.rmse - (10.0f64).sqrt()).abs() < 1e-12);
        assert!((s.mape - (0.2 + 0.2) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn non_finite_pairs_skipped() {
        let t = [10.0, f64::NAN, 20.0];
        let e = [10.0, 15.0, f64::INFINITY];
        let s = ErrorStats::from_pairs(t.iter().zip(&e));
        assert_eq!(s.count, 1);
        assert_eq!(s.mae, 0.0);
    }

    #[test]
    fn exclusion_drops_seed_roads() {
        let t = [10.0, 100.0, 10.0];
        let e = [10.0, 0.0, 10.0];
        let s = ErrorStats::from_road_vectors(&t, &e, &[RoadId(1)]);
        assert_eq!(s.count, 2);
        assert_eq!(s.mae, 0.0);
    }

    #[test]
    fn merge_weights_by_count() {
        let a = ErrorStats {
            mae: 1.0,
            rmse: 1.0,
            mape: 0.1,
            count: 1,
        };
        let b = ErrorStats {
            mae: 4.0,
            rmse: 4.0,
            mape: 0.4,
            count: 3,
        };
        let m = a.merge(b);
        assert!((m.mae - 3.25).abs() < 1e-12);
        assert_eq!(m.count, 4);
        // RMSE merges in the quadratic domain.
        assert!((m.rmse - ((1.0 + 3.0 * 16.0) / 4.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let a = ErrorStats {
            mae: 2.0,
            rmse: 2.5,
            mape: 0.2,
            count: 5,
        };
        let m = a.merge(ErrorStats::default());
        assert_eq!(m, a);
    }

    #[test]
    fn trend_accuracy_counts() {
        let t = [true, false, true, true];
        let p = [true, true, true, false];
        assert!((trend_accuracy(&t, &p, &[]) - 0.5).abs() < 1e-12);
        // Excluding the two wrong ones gives 1.0.
        assert_eq!(trend_accuracy(&t, &p, &[RoadId(1), RoadId(3)]), 1.0);
    }

    #[test]
    fn trend_accuracy_empty_is_zero() {
        assert_eq!(trend_accuracy(&[], &[], &[]), 0.0);
    }
}
