#![warn(missing_docs)]

//! # crowdspeed
//!
//! Rust implementation of *"Crowdsourcing-based real-time urban traffic
//! speed estimation: From trends to speeds"* (Hu, Li, Bao, Cui, Feng —
//! ICDE 2016).
//!
//! Given a road network, historical (probe-observed) traffic data and a
//! budget `K`, the system:
//!
//! 1. **selects `K` seed roads** whose true speeds will be acquired by
//!    crowdsourcing ([`seed`] — the problem is NP-hard; greedy
//!    algorithms with `(1 − 1/e)` guarantees are provided);
//! 2. **infers the traffic trend** of every other road — whether it is
//!    currently faster or slower than its historical average — with a
//!    pairwise Markov random field over the road **correlation graph**
//!    ([`correlation`], [`inference::trend_model`]);
//! 3. **estimates speeds from trends** with a three-level hierarchical
//!    linear model (road → road-class → city,
//!    [`inference::hlm`]).
//!
//! The end-to-end estimator lives in [`inference::pipeline`]; reference
//! baselines in [`baselines`]; error metrics and the train/test harness
//! in [`metrics`] and [`eval`].
//!
//! # Quickstart
//!
//! ```
//! use crowdspeed::prelude::*;
//! use trafficsim::dataset::{metro_small, DatasetParams};
//!
//! // 1. Data: a small synthetic metro city.
//! let ds = metro_small(&DatasetParams { training_days: 6, test_days: 1, ..DatasetParams::default() });
//! let stats = HistoryStats::compute(&ds.history);
//!
//! // 2. Correlation graph from co-trending history.
//! let corr = CorrelationGraph::build(&ds.graph, &ds.history, &stats, &CorrelationConfig::default());
//!
//! // 3. Pick K = 10 seeds with lazy greedy.
//! let influence = InfluenceModel::build(&corr, &InfluenceConfig::default());
//! let seeds = lazy_greedy(&influence, 10).seeds;
//!
//! // 4. Train the two-step estimator and estimate one rush-hour slot.
//! let est = TrafficEstimator::train(&ds.graph, &ds.history, &stats, &corr, &seeds, &EstimatorConfig::default()).unwrap();
//! let slot = ds.clock.slot_of_hour(8.25);
//! let truth = &ds.test_days[0];
//! let obs: Vec<(roadnet::RoadId, f64)> =
//!     seeds.iter().map(|&s| (s, truth.speed(slot, s))).collect();
//! let result = est.estimate(slot, &obs);
//! assert_eq!(result.speeds.len(), ds.graph.num_roads());
//! ```

pub mod baselines;
pub mod codec;
pub mod correlation;
pub mod drift;
pub mod eval;
pub mod inference;
pub mod metrics;
pub mod online;
pub mod parallel;
pub mod propagate;
pub mod routing;
pub mod seed;
pub mod serve;
pub mod shard;

/// Convenient re-exports of the main public types.
pub mod prelude {
    pub use crate::baselines;
    pub use crate::correlation::{CorrelationConfig, CorrelationGraph};
    pub use crate::drift::{DriftConfig, DriftSignal, DriftState};
    pub use crate::eval::{evaluate, EvalConfig, EvalReport};
    pub use crate::inference::hlm::{HlmConfig, HlmModel};
    pub use crate::inference::pipeline::{
        EstimateScratch, EstimatorConfig, IncrementalTrainer, RetrainStats, SpeedEstimate,
        SpeedEstimator, TrafficEstimator,
    };
    pub use crate::inference::trend_model::{TrendEngine, TrendModel};
    pub use crate::metrics::ErrorStats;
    pub use crate::seed::baseline::{
        k_center, pagerank_seeds, random_seeds, top_degree, top_variance,
    };
    pub use crate::seed::exhaustive::exhaustive;
    pub use crate::seed::greedy::greedy;
    pub use crate::seed::lazy_greedy::lazy_greedy;
    pub use crate::seed::objective::{InfluenceConfig, InfluenceModel, SeedObjective};
    pub use crate::seed::partition::{partition_greedy, partition_roads};
    pub use crate::serve::{
        serve_batch, BatchOutcome, EstimateRequest, ServeJob, ServeMetrics, ServeOptions, ServePool,
    };
    pub use trafficsim::{HistoricalData, HistoryStats};
}

/// Errors produced by the core crate.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The seed set or observations reference a road outside the graph.
    InvalidRoad(u32),
    /// Training data was insufficient to fit a model.
    InsufficientData(String),
    /// An internal numerical step failed (e.g. a degenerate solve).
    Numerical(String),
    /// An input's dimensions disagree with the model it was fed to.
    ShapeMismatch {
        /// What the model expected (e.g. "24 slots x 96 roads").
        expected: String,
        /// What the input provided.
        got: String,
    },
    /// An estimation request carried no crowdsourced observations.
    ///
    /// Serving paths reject such requests with this typed error rather
    /// than silently falling back to the historical mean — a request
    /// with no evidence is almost always a mis-routed or empty crowd
    /// feed, and the caller should know.
    NoObservations,
    /// A correlation edge carried a co-trend weight outside `[0, 1]`
    /// (or NaN).
    ///
    /// `CorrelationGraph::from_edges` rejects such edges up front so
    /// everything downstream — influence search, the CELF heap, MRF
    /// couplings — can assume finite in-range weights; the `expect`
    /// comparators in `seed::objective` / `seed::lazy_greedy` are
    /// unreachable on validated graphs.
    InvalidEdgeWeight {
        /// One endpoint of the offending edge.
        a: u32,
        /// The other endpoint.
        b: u32,
        /// The rejected co-trend probability.
        cotrend: f64,
    },
    /// An incremental delta referenced an edge whose presence in the
    /// graph disagrees with the change kind: an update or removal named
    /// an edge the graph does not hold, or an insertion named one it
    /// already does.
    ///
    /// [`correlation::CorrelationGraph::apply_delta`] raises this
    /// *before* mutating anything, so the graph is untouched and the
    /// caller can fall back to a full rebuild. It signals that the
    /// delta was produced against a different graph revision than the
    /// one it is being applied to.
    DeltaMismatch {
        /// One endpoint of the offending edge.
        a: u32,
        /// The other endpoint.
        b: u32,
        /// Whether the edge was present in the graph (`true` for a
        /// rejected insertion, `false` for a rejected update/removal).
        present: bool,
    },
    /// Sharded serving was requested under a configuration that cannot
    /// reproduce the unsharded estimator bit-for-bit — a sampling trend
    /// engine, a shard index outside the plan, a plan sized for a
    /// different graph — or a shard request named a road the shard does
    /// not own (a router/worker plan mismatch).
    ShardConfig(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::InvalidRoad(r) => write!(f, "invalid road id {r}"),
            CoreError::InsufficientData(msg) => write!(f, "insufficient data: {msg}"),
            CoreError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
            CoreError::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: expected {expected}, got {got}")
            }
            CoreError::NoObservations => {
                write!(f, "estimation request carried no observations")
            }
            CoreError::InvalidEdgeWeight { a, b, cotrend } => {
                write!(
                    f,
                    "invalid co-trend weight {cotrend} on edge ({a}, {b}): must lie in [0, 1]"
                )
            }
            CoreError::DeltaMismatch { a, b, present } => {
                let state = if *present {
                    "already present"
                } else {
                    "not found"
                };
                write!(f, "delta mismatch on edge ({a}, {b}): edge {state}")
            }
            CoreError::ShardConfig(msg) => write!(f, "shard configuration: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
