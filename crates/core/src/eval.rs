//! Train/test evaluation harness.
//!
//! Drives any estimation [`Method`] over a dataset's held-out test days
//! with simulated crowdsourcing on the seed roads, and reports the error
//! metrics the experiments tabulate. All methods flow through the same
//! loop so comparisons are apples-to-apples.

use crate::baselines::{
    GlobalRegression, GlobalRegressionEstimator, HistoricalMeanEstimator, KnnSpatialEstimator,
    LabelPropagationEstimator,
};
use crate::correlation::{CorrelationConfig, CorrelationGraph};
use crate::inference::pipeline::{
    EstimateScratch, EstimatorConfig, SpeedEstimator, TrafficEstimator,
};
use crate::metrics::{trend_accuracy, ErrorStats};
use parking_lot::Mutex;
use roadnet::RoadId;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use trafficsim::crowd::{answered, crowdsource, CrowdParams};
use trafficsim::dataset::Dataset;
use trafficsim::HistoryStats;

/// An estimation method under evaluation.
#[derive(Debug, Clone)]
pub enum Method {
    /// The paper's two-step model.
    TwoStep(EstimatorConfig),
    /// Historical average (no real-time data).
    HistoricalMean,
    /// KNN spatial interpolation of seed deviations.
    KnnSpatial {
        /// Number of nearest seeds interpolated.
        k: usize,
    },
    /// One citywide linear regression.
    GlobalRegression,
    /// Label propagation over the correlation graph.
    LabelPropagation {
        /// Propagation sweeps.
        iterations: usize,
        /// Anchor weight towards the neutral deviation.
        anchor: f64,
    },
}

impl Method {
    /// Short display name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            Method::TwoStep(_) => "two-step",
            Method::HistoricalMean => "hist-mean",
            Method::KnnSpatial { .. } => "knn",
            Method::GlobalRegression => "global-lr",
            Method::LabelPropagation { .. } => "label-prop",
        }
    }
}

/// Evaluation configuration.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Slots of day evaluated per test day; empty = every slot.
    pub slots: Vec<usize>,
    /// Crowdsourcing channel simulation.
    pub crowd: CrowdParams,
    /// Correlation-graph construction.
    pub correlation: CorrelationConfig,
    /// RNG seed for crowd simulation.
    pub rng_seed: u64,
    /// Worker threads for the estimation loop (1 = sequential).
    pub threads: usize,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            slots: Vec::new(),
            crowd: CrowdParams::default(),
            correlation: CorrelationConfig::default(),
            rng_seed: 7,
            threads: 4,
        }
    }
}

/// Evaluation outcome for one (method, seed set) pair.
#[derive(Debug, Clone)]
pub struct EvalReport {
    /// Method display name.
    pub method: &'static str,
    /// Number of seeds.
    pub k: usize,
    /// Speed-estimation errors over non-seed roads.
    pub error: ErrorStats,
    /// Fraction of non-seed roads with correctly predicted trends.
    pub trend_accuracy: f64,
    /// Wall time spent training.
    pub train_time: Duration,
    /// Mean wall time of one slot's estimation.
    pub estimate_time_per_slot: Duration,
    /// Number of (day, slot) estimation rounds aggregated.
    pub rounds: usize,
}

/// Builds the serving-interface model for a method. Exposed to the
/// experiment binaries so they can drive any method through
/// [`SpeedEstimator`] (e.g. via [`crate::serve`]).
pub fn build_model<'a>(
    ds: &'a Dataset,
    stats: &'a HistoryStats,
    corr: &'a CorrelationGraph,
    seeds: &[RoadId],
    method: &Method,
) -> Box<dyn SpeedEstimator + 'a> {
    match method {
        Method::TwoStep(config) => Box::new(
            TrafficEstimator::train(&ds.graph, &ds.history, stats, corr, seeds, config)
                .expect("estimator training failed"),
        ),
        Method::HistoricalMean => Box::new(HistoricalMeanEstimator { stats }),
        Method::KnnSpatial { k } => Box::new(KnnSpatialEstimator {
            graph: &ds.graph,
            stats,
            k: *k,
        }),
        Method::GlobalRegression => Box::new(GlobalRegressionEstimator {
            model: GlobalRegression::train(&ds.history, stats, seeds),
            stats,
        }),
        Method::LabelPropagation { iterations, anchor } => Box::new(LabelPropagationEstimator {
            corr,
            stats,
            iterations: *iterations,
            anchor: *anchor,
        }),
    }
}

/// Runs the full train/test loop for one method and seed set.
pub fn evaluate(ds: &Dataset, seeds: &[RoadId], method: &Method, cfg: &EvalConfig) -> EvalReport {
    let stats = HistoryStats::compute(&ds.history);
    let corr = CorrelationGraph::build(&ds.graph, &ds.history, &stats, &cfg.correlation);

    let t0 = Instant::now();
    let model = build_model(ds, &stats, &corr, seeds, method);
    let train_time = t0.elapsed();

    // Work list: (day, slot).
    let slots: Vec<usize> = if cfg.slots.is_empty() {
        (0..ds.clock.slots_per_day).collect()
    } else {
        cfg.slots.clone()
    };
    let tasks: Vec<(usize, usize)> = (0..ds.test_days.len())
        .flat_map(|d| slots.iter().map(move |&s| (d, s)))
        .collect();

    struct Acc {
        error: ErrorStats,
        trend_correct_weighted: f64,
        trend_rounds: usize,
        estimate_time: Duration,
    }
    let acc = Mutex::new(Acc {
        error: ErrorStats::default(),
        trend_correct_weighted: 0.0,
        trend_rounds: 0,
        estimate_time: Duration::ZERO,
    });
    let next = AtomicUsize::new(0);

    let run_task = |&(day, slot): &(usize, usize), scratch: &mut EstimateScratch| {
        use rand::SeedableRng;
        let truth = &ds.test_days[day];
        let mut rng =
            rand::rngs::StdRng::seed_from_u64(cfg.rng_seed ^ ((day as u64) << 32) ^ slot as u64);
        let reports = crowdsource(truth, slot, seeds, &cfg.crowd, &mut rng);
        let obs = answered(&reports);

        let t = Instant::now();
        let est = model.estimate(slot, &obs, scratch);
        let took = t.elapsed();
        let (speeds, trends) = (est.speeds, est.trends);

        let truth_v: Vec<f64> = ds.graph.road_ids().map(|r| truth.speed(slot, r)).collect();
        let err = ErrorStats::from_road_vectors(&truth_v, &speeds, seeds);

        // Trend accuracy: derive predicted trends from speeds when the
        // method has no explicit trend output (the baselines leave
        // `trends` empty).
        let predicted: Vec<bool> = if trends.is_empty() {
            ds.graph
                .road_ids()
                .map(|r| stats.trend_of(slot, r, speeds[r.index()]))
                .collect()
        } else {
            trends
        };
        let truth_t: Vec<bool> = ds
            .graph
            .road_ids()
            .map(|r| stats.trend_of(slot, r, truth.speed(slot, r)))
            .collect();
        let tacc = trend_accuracy(&truth_t, &predicted, seeds);

        let mut a = acc.lock();
        a.error = a.error.merge(err);
        a.trend_correct_weighted += tacc;
        a.trend_rounds += 1;
        a.estimate_time += took;
    };

    let threads = cfg.threads.max(1).min(tasks.len().max(1));
    if threads <= 1 {
        let mut scratch = EstimateScratch::new();
        for task in &tasks {
            run_task(task, &mut scratch);
        }
    } else {
        crossbeam::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|_| {
                    let mut scratch = EstimateScratch::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= tasks.len() {
                            break;
                        }
                        run_task(&tasks[i], &mut scratch);
                    }
                });
            }
        })
        .expect("evaluation worker panicked");
    }

    let a = acc.into_inner();
    let rounds = tasks.len();
    EvalReport {
        method: method.name(),
        k: seeds.len(),
        error: a.error,
        trend_accuracy: if a.trend_rounds > 0 {
            a.trend_correct_weighted / a.trend_rounds as f64
        } else {
            0.0
        },
        train_time,
        estimate_time_per_slot: if rounds > 0 {
            a.estimate_time / rounds as u32
        } else {
            Duration::ZERO
        },
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seed::baseline::random_seeds;
    use trafficsim::dataset::{metro_small, DatasetParams};

    fn small_ds() -> Dataset {
        metro_small(&DatasetParams {
            training_days: 10,
            test_days: 1,
            ..DatasetParams::default()
        })
    }

    fn fast_cfg() -> EvalConfig {
        EvalConfig {
            slots: vec![7, 8, 12, 18],
            correlation: CorrelationConfig {
                min_cotrend: 0.6,
                min_co_observations: 8,
                ..CorrelationConfig::default()
            },
            threads: 2,
            ..EvalConfig::default()
        }
    }

    #[test]
    fn evaluates_all_methods_without_panic() {
        let ds = small_ds();
        let seeds = random_seeds(ds.graph.num_roads(), 15, 3);
        let cfg = fast_cfg();
        for m in [
            Method::TwoStep(EstimatorConfig::default()),
            Method::HistoricalMean,
            Method::KnnSpatial { k: 5 },
            Method::GlobalRegression,
            Method::LabelPropagation {
                iterations: 20,
                anchor: 0.2,
            },
        ] {
            let rep = evaluate(&ds, &seeds, &m, &cfg);
            assert_eq!(rep.rounds, 4, "{}", rep.method);
            assert!(rep.error.count > 0);
            assert!(
                rep.error.mape > 0.0 && rep.error.mape < 1.0,
                "{}: {:?}",
                rep.method,
                rep.error
            );
            assert!(rep.trend_accuracy > 0.0 && rep.trend_accuracy <= 1.0);
        }
    }

    #[test]
    fn two_step_beats_historical_mean() {
        let ds = small_ds();
        let seeds = random_seeds(ds.graph.num_roads(), 20, 3);
        let cfg = fast_cfg();
        let ours = evaluate(
            &ds,
            &seeds,
            &Method::TwoStep(EstimatorConfig::default()),
            &cfg,
        );
        let base = evaluate(&ds, &seeds, &Method::HistoricalMean, &cfg);
        assert!(
            ours.error.mape < base.error.mape,
            "two-step {:.4} vs hist-mean {:.4}",
            ours.error.mape,
            base.error.mape
        );
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let ds = small_ds();
        let seeds = random_seeds(ds.graph.num_roads(), 10, 5);
        let mut cfg = fast_cfg();
        cfg.threads = 1;
        let seq = evaluate(&ds, &seeds, &Method::HistoricalMean, &cfg);
        cfg.threads = 4;
        let par = evaluate(&ds, &seeds, &Method::HistoricalMean, &cfg);
        // Crowd RNG is derived from (day, slot), so results are
        // identical regardless of scheduling.
        assert!((seq.error.mae - par.error.mae).abs() < 1e-12);
        assert!((seq.trend_accuracy - par.trend_accuracy).abs() < 1e-12);
    }

    #[test]
    fn empty_slots_means_full_day() {
        let ds = small_ds();
        let seeds = random_seeds(ds.graph.num_roads(), 8, 1);
        let cfg = EvalConfig {
            slots: Vec::new(),
            threads: 4,
            correlation: fast_cfg().correlation,
            ..EvalConfig::default()
        };
        let rep = evaluate(&ds, &seeds, &Method::HistoricalMean, &cfg);
        assert_eq!(rep.rounds, ds.clock.slots_per_day * ds.test_days.len());
    }
}
