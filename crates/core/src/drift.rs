//! Drift detection and adaptation: when the live correlation structure
//! has moved away from the frozen training context, rebootstrap and
//! re-select seeds.
//!
//! The paper trains once and assumes the correlation graph and the
//! chosen seed set stay representative; a live deployment drifts
//! (construction, seasonal shifts, rerouted corridors). This module
//! closes that loop with three pieces:
//!
//! * a **drift signal** ([`signal_between`]) — a symmetric, `[0, 1]`-
//!   bounded distance between two correlation graphs combining the
//!   edge-churn fraction (Jaccard distance of the edge sets) with the
//!   mean absolute co-trend shift on the shared edges;
//! * a **trigger policy** ([`DriftConfig`] + [`DriftState`]) — fire
//!   when the signal crosses a threshold, but never within the
//!   cooldown of the last anchor (bootstrap or rebootstrap) and never
//!   before a full calibration window of fresh days has accumulated;
//! * a **seed re-selection entry point** ([`reselect_seeds`]) — re-run
//!   lazy-greedy CELF against the rebootstrapped graph and report the
//!   old/new overlap.
//!
//! The serving-side wiring (the `full_rebootstrap` retrain mode, the
//! snapshot carriage, the `drift_*` STATS family) lives in the server
//! crate; everything here is pure model-side machinery.

use crate::correlation::CorrelationGraph;
use crate::online::OnlineCorrelation;
use crate::seed::lazy_greedy::lazy_greedy_threads;
use crate::seed::objective::{InfluenceConfig, InfluenceModel};
use roadnet::RoadId;
use serde::{Deserialize, Serialize};

/// When the ingest path rebootstraps. Policy only — like
/// [`crate::inference::pipeline::EstimatorConfig::max_incremental_fraction`]
/// it never changes what any *given* trained model computes, so it is
/// excluded from configuration fingerprints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Fire when the drift signal reaches this value. The signal is in
    /// `[0, 1]`, so `1.0` effectively disables the trigger.
    pub threshold: f64,
    /// Minimum ingested days between anchors: a trigger may only fire
    /// once this many days have been ingested since the bootstrap or
    /// the previous rebootstrap.
    pub cooldown_days: u64,
    /// Trailing calibration window, in days, the rebootstrap retrains
    /// on (`0` = the full held history). When nonzero, a trigger also
    /// waits until a full window of days has been ingested since the
    /// last anchor, so the window never mixes regimes with the
    /// pre-anchor history.
    pub window_days: usize,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            threshold: 0.25,
            cooldown_days: 3,
            window_days: 0,
        }
    }
}

/// One drift measurement between two correlation graphs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftSignal {
    /// Jaccard distance of the edge sets: `|A Δ B| / |A ∪ B|`
    /// (`0` when both are empty).
    pub edge_churn: f64,
    /// Mean `|cotrend_A − cotrend_B|` over the shared edges (`0` when
    /// none are shared).
    pub trend_shift: f64,
}

impl DriftSignal {
    /// The scalar the trigger policy compares against the threshold:
    /// the worse of the two components. Both are symmetric and bounded
    /// in `[0, 1]`, so the max is too, and it is `0` exactly when the
    /// edge sets match and every shared weight agrees.
    pub fn value(&self) -> f64 {
        self.edge_churn.max(self.trend_shift)
    }
}

/// Computes the drift signal between two correlation graphs over the
/// same road set via one merge-walk of their `(a, b)`-sorted edge
/// lists. Symmetric by construction: `signal_between(a, b)` equals
/// `signal_between(b, a)` bit for bit.
pub fn signal_between(a: &CorrelationGraph, b: &CorrelationGraph) -> DriftSignal {
    let (ea, eb) = (a.edges(), b.edges());
    let key = |e: &crate::correlation::CorrelationEdge| (e.a, e.b);
    debug_assert!(ea.windows(2).all(|w| key(&w[0]) < key(&w[1])));
    debug_assert!(eb.windows(2).all(|w| key(&w[0]) < key(&w[1])));
    let (mut i, mut j) = (0usize, 0usize);
    let mut shared = 0usize;
    let mut shift_sum = 0.0f64;
    while i < ea.len() && j < eb.len() {
        match key(&ea[i]).cmp(&key(&eb[j])) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                shared += 1;
                shift_sum += (ea[i].cotrend - eb[j].cotrend).abs();
                i += 1;
                j += 1;
            }
        }
    }
    let union = ea.len() + eb.len() - shared;
    let churned = union - shared;
    DriftSignal {
        edge_churn: if union == 0 {
            0.0
        } else {
            churned as f64 / union as f64
        },
        trend_shift: if shared == 0 {
            0.0
        } else {
            shift_sum / shared as f64
        },
    }
}

/// The per-ingest drift signal the daemon computes: the live online
/// accumulator's materialised graph against the frozen training
/// context.
pub fn signal(online: &OnlineCorrelation, context: &CorrelationGraph) -> DriftSignal {
    signal_between(&online.correlation_graph(), context)
}

/// Everything the adaptation loop remembers between ingests — carried
/// through server snapshots so a resumed daemon stays on the same
/// trigger trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftState {
    /// Most recent signal value (`0` until drift detection is enabled
    /// and a day has been ingested).
    pub last_signal: f64,
    /// Rebootstraps triggered so far.
    pub triggers: u64,
    /// Days ingested since the last anchor (bootstrap or rebootstrap).
    pub days_since_anchor: u64,
    /// Model epoch published by the last rebootstrap (`0` = never).
    pub last_rebootstrap_epoch: u64,
    /// `|old ∩ new|` of the last seed re-selection.
    pub last_seed_overlap: u64,
}

impl Default for DriftState {
    fn default() -> Self {
        DriftState {
            last_signal: 0.0,
            triggers: 0,
            days_since_anchor: 0,
            last_rebootstrap_epoch: 0,
            last_seed_overlap: 0,
        }
    }
}

impl DriftState {
    /// Counts one ingested day. Call before evaluating the trigger so
    /// the day being ingested is part of the calibration window.
    pub fn note_ingest(&mut self) {
        self.days_since_anchor += 1;
    }

    /// Whether a signal of `value` fires the trigger now: at or above
    /// the threshold, past the cooldown, and (when a window is
    /// configured) with a full window of fresh days since the last
    /// anchor. Deterministic — a replayed day sequence reproduces the
    /// same trigger days exactly.
    pub fn should_trigger(&self, config: &DriftConfig, value: f64) -> bool {
        value >= config.threshold
            && self.days_since_anchor >= config.cooldown_days
            && self.days_since_anchor >= config.window_days as u64
    }

    /// Records a fired trigger: bumps the counter and re-anchors the
    /// day clock. The publishing epoch is only known after the swap —
    /// the caller records it separately.
    pub fn record_trigger(&mut self, seed_overlap: u64) {
        self.triggers += 1;
        self.days_since_anchor = 0;
        self.last_seed_overlap = seed_overlap;
    }
}

/// A completed seed re-selection.
#[derive(Debug, Clone)]
pub struct Reselection {
    /// The new seed set, CELF order.
    pub seeds: Vec<RoadId>,
    /// Coverage objective of the new set on the new graph.
    pub objective: f64,
    /// `|old ∩ new|` — how much of the deployed seed set survived.
    pub overlap: usize,
}

/// Re-runs lazy-greedy CELF against `corr` (the rebootstrapped graph)
/// with the same budget as `old_seeds`, reporting the overlap.
/// Bit-identical across thread counts like every training kernel.
pub fn reselect_seeds(
    corr: &CorrelationGraph,
    influence: &InfluenceConfig,
    old_seeds: &[RoadId],
    threads: usize,
) -> Reselection {
    let model = InfluenceModel::build_threaded(corr, influence, threads);
    let selection = lazy_greedy_threads(&model, old_seeds.len(), threads);
    let mut old: Vec<RoadId> = old_seeds.to_vec();
    old.sort();
    let overlap = selection
        .seeds
        .iter()
        .filter(|s| old.binary_search(s).is_ok())
        .count();
    Reselection {
        seeds: selection.seeds,
        objective: selection.objective,
        overlap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::CorrelationEdge;

    fn graph(n: usize, edges: &[(u32, u32, f64)]) -> CorrelationGraph {
        let edges: Vec<CorrelationEdge> = edges
            .iter()
            .map(|&(a, b, cotrend)| CorrelationEdge {
                a: RoadId(a),
                b: RoadId(b),
                cotrend,
                support: 10,
            })
            .collect();
        CorrelationGraph::from_edges(n, edges).expect("valid edges")
    }

    #[test]
    fn identical_graphs_have_zero_signal() {
        let g = graph(4, &[(0, 1, 0.8), (1, 2, 0.7), (2, 3, 0.9)]);
        let s = signal_between(&g, &g);
        assert_eq!(s.edge_churn, 0.0);
        assert_eq!(s.trend_shift, 0.0);
        assert_eq!(s.value(), 0.0);
    }

    #[test]
    fn empty_graphs_have_zero_signal() {
        let g = graph(3, &[]);
        assert_eq!(signal_between(&g, &g).value(), 0.0);
    }

    #[test]
    fn signal_is_symmetric_and_bounded() {
        let a = graph(5, &[(0, 1, 0.9), (1, 2, 0.6), (3, 4, 0.8)]);
        let b = graph(5, &[(0, 1, 0.7), (2, 3, 0.8)]);
        let ab = signal_between(&a, &b);
        let ba = signal_between(&b, &a);
        assert_eq!(ab, ba);
        assert!((0.0..=1.0).contains(&ab.value()));
        // 1 shared of 4 union → churn 3/4; shared shift |0.9 − 0.7|.
        assert!((ab.edge_churn - 0.75).abs() < 1e-12);
        assert!((ab.trend_shift - 0.2).abs() < 1e-12);
    }

    #[test]
    fn churn_grows_with_added_edges() {
        let base = graph(10, &[(0, 1, 0.8), (2, 3, 0.8)]);
        let mut prev = 0.0;
        for extra in 1..5 {
            let mut edges = vec![(0, 1, 0.8), (2, 3, 0.8)];
            for e in 0..extra {
                edges.push((4 + e, 5 + e, 0.9));
            }
            let churn = signal_between(&base, &graph(10, &edges)).edge_churn;
            assert!(churn > prev, "churn must grow: {churn} vs {prev}");
            prev = churn;
        }
    }

    #[test]
    fn trigger_respects_threshold_cooldown_and_window() {
        let config = DriftConfig {
            threshold: 0.5,
            cooldown_days: 2,
            window_days: 3,
        };
        let mut st = DriftState::default();
        // Day 1-2: above threshold but inside the window gate.
        for _ in 0..2 {
            st.note_ingest();
            assert!(!st.should_trigger(&config, 0.9));
        }
        // Day 3: window satisfied, below threshold → no fire.
        st.note_ingest();
        assert!(!st.should_trigger(&config, 0.49));
        // Same day, at threshold → fires.
        assert!(st.should_trigger(&config, 0.5));
        st.record_trigger(4);
        assert_eq!(st.triggers, 1);
        assert_eq!(st.days_since_anchor, 0);
        // Post-trigger: the anchor clock restarts; nothing fires until
        // both cooldown and window pass again.
        for _ in 0..2 {
            st.note_ingest();
            assert!(!st.should_trigger(&config, 1.0));
        }
        st.note_ingest();
        assert!(st.should_trigger(&config, 1.0));
    }

    #[test]
    fn cooldown_alone_gates_when_window_disabled() {
        let config = DriftConfig {
            threshold: 0.1,
            cooldown_days: 2,
            window_days: 0,
        };
        let mut st = DriftState::default();
        st.note_ingest();
        assert!(!st.should_trigger(&config, 1.0));
        st.note_ingest();
        assert!(st.should_trigger(&config, 1.0));
    }

    #[test]
    fn reselection_reports_overlap() {
        // A path graph: CELF picks central roads; re-selecting on the
        // same graph with the same budget reproduces the same set.
        let g = graph(
            6,
            &[
                (0, 1, 0.9),
                (1, 2, 0.9),
                (2, 3, 0.9),
                (3, 4, 0.9),
                (4, 5, 0.9),
            ],
        );
        let cfg = InfluenceConfig::default();
        let first = reselect_seeds(&g, &cfg, &[RoadId(0), RoadId(5)], 1);
        assert_eq!(first.seeds.len(), 2);
        let again = reselect_seeds(&g, &cfg, &first.seeds, 1);
        assert_eq!(again.seeds, first.seeds);
        assert_eq!(again.overlap, 2);
        assert_eq!(again.objective, first.objective);
        // Across thread counts the selection is bit-identical.
        let threaded = reselect_seeds(&g, &cfg, &first.seeds, 4);
        assert_eq!(threaded.seeds, first.seeds);
    }
}
