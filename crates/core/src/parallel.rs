//! Deterministic parallel-for helpers for the training pipeline.
//!
//! The serving path (`core::serve`) established the workspace's
//! threading policy: crossbeam scoped threads, no global pool, and —
//! above all — **bit-determinism**. Training doubles down on that
//! policy with a stricter discipline than serving needs:
//!
//! * **Static index-ordered chunking.** Work item `i` always produces
//!   output slot `i`; items are split into contiguous chunks so the
//!   assignment of items to workers is a pure function of `(n,
//!   threads)`, never of timing. (Serving uses an atomic work-stealing
//!   counter, which is fine there because each reply is independent;
//!   training results are *aggregated*, so the aggregation must see a
//!   fixed order.)
//! * **Disjoint pre-sized output slots.** Workers write results into
//!   `out[i]` for their own `i` only — no shared accumulator, no
//!   reduction whose float result could depend on arrival order. Any
//!   order-sensitive fold (heap pushes, row appends, `+=` chains) is
//!   done by the caller, serially, in index order over the collected
//!   per-item outputs.
//! * **`threads <= 1` is the exact serial path.** The closure runs on
//!   the calling thread in index order with a single scratch state, so
//!   a `train_threads = 1` run is byte-for-byte the code a serial
//!   implementation would execute. `tests/train_parallel_equivalence.rs`
//!   pins that `threads ∈ {1, 2, 8}` all produce bit-identical models.
//!
//! Under this discipline parallel output is bit-identical to serial
//! output for any closure that is a pure function of its index (plus
//! read-only captures): each item's floats are computed by the same
//! instruction sequence regardless of which thread runs it, and the
//! caller's serial aggregation fixes the combination order.

use std::num::NonZeroUsize;

/// Resolves a `train_threads`-style knob to a concrete worker count:
/// `0` means "all available cores", anything else is taken literally.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        threads
    }
}

/// Deterministic parallel map: computes `f(i)` for `i in 0..n` and
/// returns the results in index order.
///
/// See [`fill_with`] for the determinism contract; this is the common
/// case where workers need no per-thread scratch state.
pub fn fill<R, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    fill_with(threads, n, || (), move |(), i| f(i))
}

/// Deterministic parallel map with per-worker scratch state.
///
/// Splits `0..n` into `threads` contiguous chunks, runs one scoped
/// thread per chunk, and writes `f(&mut state, i)` into the pre-sized
/// output slot `i`. Each worker gets its own `state = init()`; scratch
/// reuse must not change results (the workspace-reuse contract already
/// pinned by `tests/serving_equivalence.rs`).
///
/// With `threads <= 1` (after [`resolve_threads`]) this degenerates to
/// the exact serial loop `for i in 0..n { out.push(f(&mut state, i)) }`
/// on the calling thread, so output is bit-identical across thread
/// counts whenever `f` is a pure function of `i` and its read-only
/// captures.
pub fn fill_with<R, S, I, F>(threads: usize, n: usize, init: I, f: F) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    let threads = resolve_threads(threads).min(n.max(1));
    if threads <= 1 {
        let mut state = init();
        return (0..n).map(|i| f(&mut state, i)).collect();
    }
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let chunk = n.div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        for (c, slots) in out.chunks_mut(chunk).enumerate() {
            let init = &init;
            let f = &f;
            scope.spawn(move |_| {
                let mut state = init();
                let base = c * chunk;
                for (j, slot) in slots.iter_mut().enumerate() {
                    *slot = Some(f(&mut state, base + j));
                }
            });
        }
    })
    .expect("training worker panicked");
    out.into_iter()
        .map(|r| r.expect("static chunking covers every index"))
        .collect()
}

/// Deterministic parallel for-each over disjoint mutable items.
///
/// Each worker owns a contiguous chunk of `items` and calls
/// `f(i, &mut items[i])` in index order within its chunk. Because every
/// item is visited exactly once by exactly one worker and writes are
/// confined to that item, the result is identical to the serial loop
/// for any `f` that is a pure function of `(i, items[i])` and read-only
/// captures. `threads <= 1` *is* that serial loop.
pub fn for_each_mut<T, F>(threads: usize, items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    for_each_mut_with(threads, items, || (), move |(), i, item| f(i, item));
}

/// [`for_each_mut`] with per-worker scratch state.
///
/// Each worker owns a contiguous chunk of `items` plus its own
/// `state = init()`, reused across every item in the chunk — the fold
/// phases lean on this to keep row-staging buffers alive instead of
/// allocating per item. As with [`fill_with`], scratch reuse must not
/// change results, and `threads <= 1` is the exact serial loop with a
/// single scratch.
pub fn for_each_mut_with<T, S, I, F>(threads: usize, items: &mut [T], init: I, f: F)
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &mut T) + Sync,
{
    let n = items.len();
    let threads = resolve_threads(threads).min(n.max(1));
    if threads <= 1 {
        let mut state = init();
        for (i, item) in items.iter_mut().enumerate() {
            f(&mut state, i, item);
        }
        return;
    }
    let chunk = n.div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        for (c, part) in items.chunks_mut(chunk).enumerate() {
            let init = &init;
            let f = &f;
            scope.spawn(move |_| {
                let mut state = init();
                let base = c * chunk;
                for (j, item) in part.iter_mut().enumerate() {
                    f(&mut state, base + j, item);
                }
            });
        }
    })
    .expect("training worker panicked");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_zero_means_all_cores() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
    }

    #[test]
    fn fill_matches_serial_for_any_thread_count() {
        let serial: Vec<f64> = (0..101).map(|i| (i as f64).sqrt().sin()).collect();
        for threads in [1, 2, 3, 8, 64, 200] {
            let par = fill(threads, 101, |i| (i as f64).sqrt().sin());
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn fill_with_gives_each_worker_its_own_state() {
        // The scratch counts calls; results must not depend on it.
        let out = fill_with(
            4,
            10,
            || 0usize,
            |calls, i| {
                *calls += 1;
                i * 2
            },
        );
        assert_eq!(out, (0..10).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn fill_handles_empty_and_tiny_inputs() {
        assert!(fill(8, 0, |i| i).is_empty());
        assert_eq!(fill(8, 1, |i| i), vec![0]);
        assert_eq!(fill(8, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn for_each_mut_with_reuses_scratch_without_changing_results() {
        for threads in [1, 2, 5, 16] {
            let mut items = vec![0u64; 23];
            for_each_mut_with(threads, &mut items, Vec::<u64>::new, |scratch, i, v| {
                // Scratch carries stale state between items on
                // purpose; results must not depend on it.
                scratch.push(i as u64);
                *v = (i as u64) * 3 + 1;
            });
            let want: Vec<u64> = (0..23).map(|i| i * 3 + 1).collect();
            assert_eq!(items, want, "threads={threads}");
        }
    }

    #[test]
    fn for_each_mut_visits_every_item_once() {
        for threads in [1, 2, 5, 16] {
            let mut items = vec![0u32; 37];
            for_each_mut(threads, &mut items, |i, v| *v += i as u32 + 1);
            let want: Vec<u32> = (0..37).map(|i| i + 1).collect();
            assert_eq!(items, want, "threads={threads}");
        }
        let mut empty: Vec<u32> = Vec::new();
        for_each_mut(4, &mut empty, |_, _| unreachable!());
    }
}
