//! Online maintenance of the correlation model.
//!
//! A deployed estimator keeps running for months; rebuilding the
//! correlation graph from scratch after every observed day is wasteful
//! (and the paper's system is explicitly *real-time*). This module
//! maintains the co-trend counts **incrementally**: candidate pairs and
//! reference means are frozen at bootstrap (the calibration window),
//! and each newly observed day only bumps per-pair agree/co-observe
//! counters — `O(slots × candidate pairs)` per day, no re-scan of
//! history.
//!
//! Freezing the reference means is the standard production trade-off:
//! trends are defined *against* the historical average, so letting the
//! average drift every day would silently redefine every past trend.
//! Re-bootstrap on a slow cadence (weekly/monthly) to refresh the
//! means; [`OnlineCorrelation::rebootstrap`] does exactly that.

use crate::correlation::{CorrelationConfig, CorrelationEdge, CorrelationGraph};
use crate::{CoreError, Result};
use roadnet::{path, RoadGraph, RoadId};
use trafficsim::{HistoricalData, HistoryStats, SpeedField};

/// One edge-level consequence of an ingested day: how the thresholded
/// correlation graph changes when the live counters move.
#[derive(Debug, Clone, PartialEq)]
pub enum EdgeChange {
    /// A pair crossed the promotion thresholds: the edge now exists
    /// with this cotrend/support.
    Added(CorrelationEdge),
    /// An existing edge's cotrend and/or support moved (membership
    /// unchanged). Carries the full new edge value.
    Updated(CorrelationEdge),
    /// A pair fell back inside the indeterminate band: the edge is
    /// demoted.
    Removed {
        /// Lower endpoint (`a < b`).
        a: RoadId,
        /// Upper endpoint.
        b: RoadId,
    },
}

impl EdgeChange {
    /// The `(a, b)` pair the change applies to.
    pub fn pair(&self) -> (RoadId, RoadId) {
        match self {
            EdgeChange::Added(e) | EdgeChange::Updated(e) => (e.a, e.b),
            EdgeChange::Removed { a, b } => (*a, *b),
        }
    }

    /// Whether this change alters the graph's edge *set* (not just a
    /// weight).
    pub fn changes_membership(&self) -> bool {
        !matches!(self, EdgeChange::Updated(_))
    }
}

/// The typed consequence of one [`OnlineCorrelation::ingest_day_delta`]:
/// everything downstream layers need to update themselves in place
/// instead of rebuilding from the counters.
#[derive(Debug, Clone, Default)]
pub struct IngestDelta {
    /// Edge-level graph changes, sorted ascending by `(a, b)` — the
    /// same order the materialised graph's edge list uses.
    pub changes: Vec<EdgeChange>,
    /// Candidate pairs whose counters moved this day.
    pub pairs_touched: usize,
    /// Slots of the day that carried any observation.
    pub slots_observed: usize,
    /// Total candidate pairs tracked (denominator for coverage ratios).
    pub pairs_tracked: usize,
}

impl IngestDelta {
    /// Whether the materialised graph is unchanged by this day.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Whether any change alters the edge *set* (insert/remove) rather
    /// than just weights.
    pub fn membership_changed(&self) -> bool {
        self.changes.iter().any(EdgeChange::changes_membership)
    }

    /// Fraction of edges of `graph_edges` touched by this delta —
    /// the incremental-vs-full decision input.
    pub fn coverage_fraction(&self, graph_edges: usize) -> f64 {
        if graph_edges == 0 {
            if self.changes.is_empty() {
                0.0
            } else {
                1.0
            }
        } else {
            self.changes.len() as f64 / graph_edges as f64
        }
    }
}

/// Incrementally maintained co-trend statistics.
#[derive(Debug, Clone)]
pub struct OnlineCorrelation {
    config: CorrelationConfig,
    stats: HistoryStats,
    /// Candidate pairs (a < b) within `config.max_hops` on the road
    /// graph; fixed at bootstrap.
    pairs: Vec<(RoadId, RoadId)>,
    /// Per-pair (co-observed, agree) counters.
    counts: Vec<(u32, u32)>,
    days: usize,
}

impl OnlineCorrelation {
    /// Bootstraps from a calibration window: computes reference means,
    /// enumerates candidate pairs, and counts the window's co-trends.
    pub fn bootstrap(
        graph: &RoadGraph,
        history: &HistoricalData,
        config: &CorrelationConfig,
    ) -> OnlineCorrelation {
        let stats = HistoryStats::compute(history);
        let mut pairs = Vec::new();
        for a in graph.road_ids() {
            for (b, _hops) in path::k_hop_neighborhood(graph, a, config.max_hops) {
                if a < b {
                    pairs.push((a, b));
                }
            }
        }
        pairs.sort_unstable();
        let counts = vec![(0u32, 0u32); pairs.len()];
        let mut this = OnlineCorrelation {
            config: config.clone(),
            stats,
            pairs,
            counts,
            days: 0,
        };
        for day in history.days() {
            this.ingest_day(day)
                .expect("bootstrap window days share the history's shape");
        }
        this
    }

    /// Ingests one observed day (may contain `NaN` cells), updating the
    /// per-pair counters against the frozen reference means.
    ///
    /// A day whose dimensions disagree with the frozen reference (wrong
    /// road count or slot grid — a mis-routed feed, not a programming
    /// error) is rejected with [`CoreError::ShapeMismatch`] and leaves
    /// the counters untouched.
    pub fn ingest_day(&mut self, day: &SpeedField) -> Result<()> {
        if day.num_roads() != self.stats.num_roads() || day.num_slots() != self.stats.num_slots() {
            return Err(CoreError::ShapeMismatch {
                expected: format!(
                    "{} slots x {} roads",
                    self.stats.num_slots(),
                    self.stats.num_roads()
                ),
                got: format!("{} slots x {} roads", day.num_slots(), day.num_roads()),
            });
        }
        let slots = day.num_slots();
        // Per-slot trend cache: 0 = unobserved, 1 = down, 2 = up.
        let n = day.num_roads();
        let mut trend = vec![0u8; n];
        for slot in 0..slots {
            let row = day.slot_speeds(slot);
            for (r, &v) in row.iter().enumerate() {
                trend[r] = if v.is_nan() {
                    0
                } else if self.stats.trend_of(slot, RoadId(r as u32), v) {
                    2
                } else {
                    1
                };
            }
            for ((a, b), (co, agree)) in self.pairs.iter().zip(self.counts.iter_mut()) {
                let ta = trend[a.index()];
                let tb = trend[b.index()];
                if ta != 0 && tb != 0 {
                    *co += 1;
                    if ta == tb {
                        *agree += 1;
                    }
                }
            }
        }
        self.days += 1;
        Ok(())
    }

    /// [`OnlineCorrelation::ingest_day`] that also reports *what
    /// changed*: the edge-level delta between the correlation graph
    /// materialised before and after the day, in `(a, b)` order.
    ///
    /// The delta's cotrend values are computed with the exact same
    /// expression [`OnlineCorrelation::correlation_graph`] uses, so a
    /// graph patched with these changes is bit-identical to one
    /// rebuilt from the counters. A shape-mismatched day is rejected
    /// without mutating anything, exactly like `ingest_day`.
    pub fn ingest_day_delta(&mut self, day: &SpeedField) -> Result<IngestDelta> {
        let before = self.counts.clone();
        self.ingest_day(day)?;
        let slots_observed = (0..day.num_slots())
            .filter(|&slot| day.slot_speeds(slot).iter().any(|v| !v.is_nan()))
            .count();
        let mut delta = IngestDelta {
            changes: Vec::new(),
            pairs_touched: 0,
            slots_observed,
            pairs_tracked: self.pairs.len(),
        };
        for ((&(a, b), &(co0, ag0)), &(co1, ag1)) in
            self.pairs.iter().zip(&before).zip(&self.counts)
        {
            if (co0, ag0) == (co1, ag1) {
                continue;
            }
            delta.pairs_touched += 1;
            let old = self.decide(co0, ag0);
            let new = self.decide(co1, ag1);
            match (old, new) {
                (None, None) => {}
                (None, Some(p)) => delta.changes.push(EdgeChange::Added(CorrelationEdge {
                    a,
                    b,
                    cotrend: p,
                    support: co1,
                })),
                (Some(_), None) => delta.changes.push(EdgeChange::Removed { a, b }),
                (Some(_), Some(p)) => delta.changes.push(EdgeChange::Updated(CorrelationEdge {
                    a,
                    b,
                    cotrend: p,
                    support: co1,
                })),
            }
        }
        Ok(delta)
    }

    /// The thresholding rule shared by [`OnlineCorrelation::correlation_graph`]
    /// and [`OnlineCorrelation::ingest_day_delta`]: the edge's cotrend
    /// probability when the counters promote the pair, `None` inside
    /// the indeterminate band or under the support floor.
    fn decide(&self, co: u32, agree: u32) -> Option<f64> {
        if co < self.config.min_co_observations {
            return None;
        }
        let p = (agree as f64 + self.config.laplace) / (co as f64 + 2.0 * self.config.laplace);
        (p >= self.config.min_cotrend || p <= 1.0 - self.config.min_cotrend).then_some(p)
    }

    /// Number of days ingested (including the bootstrap window).
    pub fn days_ingested(&self) -> usize {
        self.days
    }

    /// The frozen reference statistics.
    pub fn stats(&self) -> &HistoryStats {
        &self.stats
    }

    /// The bootstrap-time configuration.
    pub fn config(&self) -> &CorrelationConfig {
        &self.config
    }

    /// Serialises the full accumulator state (config, frozen reference
    /// statistics, candidate pairs, live counters, day count) in the
    /// snapshot codec style. `decode_from` restores a bit-identical
    /// accumulator: same pairs in the same order, same counters, same
    /// frozen means, so every future [`OnlineCorrelation::ingest_day`]
    /// and [`OnlineCorrelation::correlation_graph`] behaves exactly as
    /// in the process that encoded it.
    pub fn encode_into(&self, buf: &mut bytes::BytesMut) {
        use bytes::BufMut;
        crate::codec::encode_correlation_config(&self.config, buf);
        self.stats.encode_into(buf);
        buf.put_u32_le(self.pairs.len() as u32);
        for &(a, b) in &self.pairs {
            buf.put_u32_le(a.0);
            buf.put_u32_le(b.0);
        }
        for &(co, agree) in &self.counts {
            buf.put_u32_le(co);
            buf.put_u32_le(agree);
        }
        crate::codec::put_usize(buf, self.days);
    }

    /// Decodes an accumulator written by
    /// [`OnlineCorrelation::encode_into`].
    pub fn decode_from(
        buf: &mut impl bytes::Buf,
    ) -> std::result::Result<OnlineCorrelation, crate::codec::DecodeError> {
        use crate::codec::{self, DecodeError};
        let config = codec::decode_correlation_config(buf)?;
        let stats = HistoryStats::decode_from(buf)?;
        let len = codec::get_u32(buf)? as usize;
        if buf.remaining() < len.saturating_mul(16) {
            return Err(DecodeError::Truncated);
        }
        let n = stats.num_roads();
        let mut pairs = Vec::with_capacity(len);
        for _ in 0..len {
            let a = RoadId(buf.get_u32_le());
            let b = RoadId(buf.get_u32_le());
            if a >= b || b.index() >= n {
                return Err(DecodeError::Corrupt(format!(
                    "candidate pair ({a}, {b}) invalid for {n} roads"
                )));
            }
            pairs.push((a, b));
        }
        let mut counts = Vec::with_capacity(len);
        for _ in 0..len {
            let co = buf.get_u32_le();
            let agree = buf.get_u32_le();
            if agree > co {
                return Err(DecodeError::Corrupt(format!(
                    "pair counter agree {agree} exceeds co-observed {co}"
                )));
            }
            counts.push((co, agree));
        }
        let days = codec::get_usize(buf)?;
        Ok(OnlineCorrelation {
            config,
            stats,
            pairs,
            counts,
            days,
        })
    }

    /// Materialises the current correlation graph by thresholding the
    /// live counters with the bootstrap configuration.
    pub fn correlation_graph(&self) -> CorrelationGraph {
        let edges: Vec<CorrelationEdge> = self
            .pairs
            .iter()
            .zip(&self.counts)
            .filter_map(|(&(a, b), &(co, agree))| {
                self.decide(co, agree).map(|p| CorrelationEdge {
                    a,
                    b,
                    cotrend: p,
                    support: co,
                })
            })
            .collect();
        CorrelationGraph::from_edges(self.stats.num_roads(), edges)
            .expect("Laplace-smoothed co-trend probabilities lie in (0, 1)")
    }

    /// Rebuilds the model from a fresh calibration window (refreshing
    /// the reference means), preserving the configuration. Call on a
    /// slow cadence when the city's baseline traffic has drifted.
    pub fn rebootstrap(&self, graph: &RoadGraph, history: &HistoricalData) -> OnlineCorrelation {
        OnlineCorrelation::bootstrap(graph, history, &self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trafficsim::dataset::{metro_small, DatasetParams};

    fn dataset() -> trafficsim::dataset::Dataset {
        metro_small(&DatasetParams {
            training_days: 8,
            test_days: 2,
            ..DatasetParams::default()
        })
    }

    fn config() -> CorrelationConfig {
        CorrelationConfig {
            min_cotrend: 0.6,
            min_co_observations: 6,
            ..CorrelationConfig::default()
        }
    }

    #[test]
    fn bootstrap_matches_batch_build() {
        let ds = dataset();
        let online = OnlineCorrelation::bootstrap(&ds.graph, &ds.history, &config());
        let stats = HistoryStats::compute(&ds.history);
        let batch = CorrelationGraph::build(&ds.graph, &ds.history, &stats, &config());
        let og = online.correlation_graph();
        assert_eq!(og.num_edges(), batch.num_edges());
        // Same edges with the same weights.
        let mut a: Vec<_> = og.edges().to_vec();
        let mut b: Vec<_> = batch.edges().to_vec();
        let key = |e: &CorrelationEdge| (e.a, e.b);
        a.sort_by_key(key);
        b.sort_by_key(key);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.a, x.b, x.support), (y.a, y.b, y.support));
            assert!((x.cotrend - y.cotrend).abs() < 1e-12);
        }
    }

    #[test]
    fn ingest_increases_support() {
        let ds = dataset();
        let mut online = OnlineCorrelation::bootstrap(&ds.graph, &ds.history, &config());
        let before: u32 = online.counts.iter().map(|&(co, _)| co).sum();
        online.ingest_day(&ds.test_days[0]).unwrap();
        let after: u32 = online.counts.iter().map(|&(co, _)| co).sum();
        assert!(after > before);
        assert_eq!(online.days_ingested(), 9);
    }

    #[test]
    fn ingest_matches_batch_recount_with_frozen_means() {
        // Ingesting extra days must equal a batch recount over the
        // extended history *using the bootstrap-window means*.
        let ds = dataset();
        let mut online = OnlineCorrelation::bootstrap(&ds.graph, &ds.history, &config());
        for day in &ds.test_days {
            online.ingest_day(day).unwrap();
        }
        // Batch recount with frozen means: extend the history but reuse
        // the original stats.
        let mut all_days = ds.history.days().to_vec();
        all_days.extend(ds.test_days.iter().cloned());
        let extended = HistoricalData::from_days(ds.clock, all_days);
        let frozen_stats = HistoryStats::compute(&ds.history);
        let batch = CorrelationGraph::build(&ds.graph, &extended, &frozen_stats, &config());
        let og = online.correlation_graph();
        assert_eq!(og.num_edges(), batch.num_edges());
        let mut a: Vec<_> = og.edges().to_vec();
        let mut b: Vec<_> = batch.edges().to_vec();
        let key = |e: &CorrelationEdge| (e.a, e.b);
        a.sort_by_key(key);
        b.sort_by_key(key);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.a, x.b, x.support), (y.a, y.b, y.support));
            assert!((x.cotrend - y.cotrend).abs() < 1e-12, "{x:?} vs {y:?}");
        }
    }

    #[test]
    fn rebootstrap_refreshes_reference_means() {
        let ds = dataset();
        let mut online = OnlineCorrelation::bootstrap(&ds.graph, &ds.history, &config());
        for day in &ds.test_days {
            online.ingest_day(day).unwrap();
        }
        // A drifted city: every speed drops by 20%, so the reference
        // means must drop with it after a rebootstrap.
        let drifted_days: Vec<SpeedField> = ds
            .history
            .days()
            .iter()
            .map(|day| {
                let mut scaled = SpeedField::filled(day.num_slots(), day.num_roads(), f64::NAN);
                for slot in 0..day.num_slots() {
                    for (r, &v) in day.slot_speeds(slot).iter().enumerate() {
                        scaled.set_speed(slot, RoadId(r as u32), v * 0.8);
                    }
                }
                scaled
            })
            .collect();
        let drifted = HistoricalData::from_days(*ds.history.clock(), drifted_days);
        let rebooted = online.rebootstrap(&ds.graph, &drifted);
        let road = RoadId(0);
        let old_mean = online.stats().mean(0, road);
        let new_mean = rebooted.stats().mean(0, road);
        assert!(
            (new_mean - old_mean * 0.8).abs() < 1e-9,
            "rebootstrap must recompute means from the new window \
             ({new_mean} vs {} expected)",
            old_mean * 0.8
        );
        // The counters restart from the new calibration window alone —
        // the pre-reboot ingests are gone.
        assert_eq!(rebooted.days_ingested(), drifted.num_days());
        let fresh = OnlineCorrelation::bootstrap(&ds.graph, &drifted, &config());
        assert_eq!(rebooted.pairs, fresh.pairs);
        assert_eq!(rebooted.counts, fresh.counts);
    }

    #[test]
    fn rebootstrap_reenumerates_candidate_pairs() {
        let ds = dataset();
        let online = OnlineCorrelation::bootstrap(&ds.graph, &ds.history, &config());
        // A different road network: candidate pairs must be rebuilt
        // for the new topology, not carried over.
        let ds2 = trafficsim::dataset::grid_medium(&DatasetParams {
            training_days: 4,
            test_days: 1,
            ..DatasetParams::default()
        });
        assert_ne!(ds.graph.num_roads(), ds2.graph.num_roads());
        let rebooted = online.rebootstrap(&ds2.graph, &ds2.history);
        let fresh = OnlineCorrelation::bootstrap(&ds2.graph, &ds2.history, &config());
        assert_eq!(rebooted.pairs, fresh.pairs);
        assert_ne!(rebooted.pairs, online.pairs);
        assert!(rebooted
            .pairs
            .iter()
            .all(|&(a, b)| a < b && b.index() < ds2.graph.num_roads()));
    }

    #[test]
    fn rebootstrap_rejects_old_shape_ingest() {
        let ds = dataset();
        let online = OnlineCorrelation::bootstrap(&ds.graph, &ds.history, &config());
        let ds2 = trafficsim::dataset::grid_medium(&DatasetParams {
            training_days: 4,
            test_days: 1,
            ..DatasetParams::default()
        });
        let mut rebooted = online.rebootstrap(&ds2.graph, &ds2.history);
        // A day shaped for the *old* city is a mis-routed feed now.
        let counts_before = rebooted.counts.clone();
        let days_before = rebooted.days_ingested();
        let err = rebooted.ingest_day(&ds.test_days[0]).unwrap_err();
        assert!(matches!(err, crate::CoreError::ShapeMismatch { .. }));
        assert_eq!(
            rebooted.counts, counts_before,
            "rejected ingest must not mutate"
        );
        assert_eq!(rebooted.days_ingested(), days_before);
        // Days shaped for the new city are still welcome.
        rebooted.ingest_day(&ds2.test_days[0]).unwrap();
        assert_eq!(rebooted.days_ingested(), days_before + 1);
    }

    /// What more data actually guarantees. The edge *count* is not
    /// monotone in ingested days — a pair promoted on a thin bootstrap
    /// can be demoted when new evidence pulls its co-trend probability
    /// into the indeterminate band (see
    /// `edges_demote_and_repromote_as_evidence_drifts`). The true
    /// invariants are: per-pair support only grows, and the
    /// materialised graph always equals a batch recount of the full
    /// ingested history against the frozen reference means.
    #[test]
    fn more_data_grows_support_and_matches_frozen_recount() {
        let ds = metro_small(&DatasetParams {
            training_days: 3,
            test_days: 6,
            ..DatasetParams::default()
        });
        let mut online = OnlineCorrelation::bootstrap(&ds.graph, &ds.history, &config());
        let frozen_stats = HistoryStats::compute(&ds.history);
        let mut ingested = ds.history.days().to_vec();
        for day in &ds.test_days {
            let support_before: Vec<u32> = online.counts.iter().map(|&(co, _)| co).collect();
            online.ingest_day(day).unwrap();
            for (pair, (&before, &(after, agree))) in online
                .pairs
                .iter()
                .zip(support_before.iter().zip(&online.counts))
            {
                assert!(
                    after >= before,
                    "pair {pair:?}: support shrank {before} -> {after}"
                );
                assert!(agree <= after, "pair {pair:?}: agree exceeds support");
            }
            ingested.push(day.clone());
            // The materialised graph is exactly what a from-scratch
            // recount over everything ingested so far would produce
            // (with the bootstrap-window means), however many edges
            // that happens to be.
            let extended = HistoricalData::from_days(ds.clock, ingested.clone());
            let batch = CorrelationGraph::build(&ds.graph, &extended, &frozen_stats, &config());
            let og = online.correlation_graph();
            assert_eq!(og.num_edges(), batch.num_edges());
            let mut a: Vec<_> = og.edges().to_vec();
            let mut b: Vec<_> = batch.edges().to_vec();
            let key = |e: &CorrelationEdge| (e.a, e.b);
            a.sort_by_key(key);
            b.sort_by_key(key);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!((x.a, x.b, x.support), (y.a, y.b, y.support));
                assert!((x.cotrend - y.cotrend).abs() < 1e-12, "{x:?} vs {y:?}");
            }
        }
    }

    /// Regression for the broken `rich_edges >= thin_edges` assertion
    /// this suite used to make: edges are *not* permanent. A pair
    /// promoted on early agreement demotes when disagreeing days pull
    /// its co-trend probability inside the indeterminate band, and
    /// re-promotes as an anti-correlated edge once the evidence
    /// becomes decisively contrarian.
    #[test]
    fn edges_demote_and_repromote_as_evidence_drifts() {
        let mut builder = roadnet::RoadGraphBuilder::new();
        let r0 = builder.add_road(roadnet::RoadMeta::default());
        let r1 = builder.add_road(roadnet::RoadMeta::default());
        builder.add_adjacency(r0, r1).unwrap();
        let graph = builder.build();
        let clock = trafficsim::SlotClock { slots_per_day: 4 };
        let config = CorrelationConfig {
            max_hops: 1,
            min_cotrend: 0.6,
            min_co_observations: 4,
            laplace: 1.0,
        };
        // Calibration window: one fast day, one slow day, both roads in
        // lockstep. Means are 30 everywhere; the window itself counts
        // co = 8, agree = 8 for the single pair.
        let uniform_day = |v: f64| SpeedField::filled(clock.slots_per_day, 2, v);
        let history = HistoricalData::from_days(clock, vec![uniform_day(40.0), uniform_day(20.0)]);
        let mut online = OnlineCorrelation::bootstrap(&graph, &history, &config);
        // Smoothed p = (8 + 1) / (8 + 2) = 0.9 >= 0.6: promoted.
        assert_eq!(online.correlation_graph().num_edges(), 1);
        // A day where the roads move in opposite directions against
        // the frozen means: road 0 up, road 1 down, in every slot.
        let disagreeing_day = || {
            let mut day = SpeedField::filled(clock.slots_per_day, 2, f64::NAN);
            for slot in 0..clock.slots_per_day {
                day.set_speed(slot, r0, 40.0);
                day.set_speed(slot, r1, 20.0);
            }
            day
        };
        for _ in 0..2 {
            online.ingest_day(&disagreeing_day()).unwrap();
        }
        // co = 16, agree = 8: p = 9/18 = 0.5, inside (0.4, 0.6) —
        // support kept growing, yet the edge is *demoted*.
        assert_eq!(
            online.correlation_graph().num_edges(),
            0,
            "indeterminate evidence must demote the edge"
        );
        for _ in 0..8 {
            online.ingest_day(&disagreeing_day()).unwrap();
        }
        // co = 48, agree = 8: p = 9/50 = 0.18 <= 0.4 — re-promoted as
        // an anti-correlated edge.
        let graph_again = online.correlation_graph();
        assert_eq!(
            graph_again.num_edges(),
            1,
            "decisively contrarian evidence must re-promote the edge"
        );
        let edge = &graph_again.edges()[0];
        assert!(
            edge.cotrend <= 0.4,
            "cotrend {} not contrarian",
            edge.cotrend
        );
        assert_eq!(edge.support, 48);
    }

    #[test]
    fn codec_roundtrip_is_bit_identical() {
        let ds = dataset();
        let mut online = OnlineCorrelation::bootstrap(&ds.graph, &ds.history, &config());
        online.ingest_day(&ds.test_days[0]).unwrap();
        let mut buf = bytes::BytesMut::new();
        online.encode_into(&mut buf);
        let mut decoded = OnlineCorrelation::decode_from(&mut buf.clone().freeze()).unwrap();
        assert_eq!(decoded.pairs, online.pairs);
        assert_eq!(decoded.counts, online.counts);
        assert_eq!(decoded.days_ingested(), online.days_ingested());
        // Re-encoding the decoded state reproduces the exact bytes.
        let mut buf2 = bytes::BytesMut::new();
        decoded.encode_into(&mut buf2);
        assert_eq!(buf, buf2);
        // Future ingests behave identically on both sides.
        decoded.ingest_day(&ds.test_days[1]).unwrap();
        online.ingest_day(&ds.test_days[1]).unwrap();
        assert_eq!(decoded.counts, online.counts);
        let a = online.correlation_graph();
        let b = decoded.correlation_graph();
        assert_eq!(a.edges().len(), b.edges().len());
        for (x, y) in a.edges().iter().zip(b.edges()) {
            assert_eq!((x.a, x.b, x.support), (y.a, y.b, y.support));
            assert_eq!(x.cotrend.to_bits(), y.cotrend.to_bits());
        }
    }

    #[test]
    fn codec_rejects_inconsistent_counters() {
        let ds = dataset();
        let online = OnlineCorrelation::bootstrap(&ds.graph, &ds.history, &config());
        let mut buf = bytes::BytesMut::new();
        online.encode_into(&mut buf);
        // Flip a counter pair so agree > co: structurally valid bytes,
        // semantically impossible state.
        let mut raw = buf.to_vec();
        let pairs_at = {
            // config (4+8+4+8) + stats header/body.
            let mut probe = &raw[..];
            let before = probe.len();
            let _ = crate::codec::decode_correlation_config(&mut probe).unwrap();
            let _ = HistoryStats::decode_from(&mut probe).unwrap();
            let len = crate::codec::get_u32(&mut probe).unwrap() as usize;
            (before - probe.len(), len)
        };
        let (counts_offset, len) = (pairs_at.0 + pairs_at.1 * 8, pairs_at.1);
        assert!(len > 0);
        // First pair's (co, agree): set co = 0, agree = 1.
        raw[counts_offset..counts_offset + 4].copy_from_slice(&0u32.to_le_bytes());
        raw[counts_offset + 4..counts_offset + 8].copy_from_slice(&1u32.to_le_bytes());
        let err = OnlineCorrelation::decode_from(&mut &raw[..]).unwrap_err();
        assert!(
            matches!(err, crate::codec::DecodeError::Corrupt(_)),
            "{err}"
        );
    }

    #[test]
    fn ingest_rejects_mismatched_day() {
        let ds = dataset();
        let mut online = OnlineCorrelation::bootstrap(&ds.graph, &ds.history, &config());
        let days_before = online.days_ingested();
        let counts_before: u32 = online.counts.iter().map(|&(co, _)| co).sum();
        // Wrong road count.
        let bad = SpeedField::filled(ds.clock.slots_per_day, ds.graph.num_roads() + 1, 30.0);
        let err = online.ingest_day(&bad).unwrap_err();
        assert!(matches!(err, CoreError::ShapeMismatch { .. }), "{err}");
        // Wrong slot grid.
        let bad = SpeedField::filled(ds.clock.slots_per_day + 1, ds.graph.num_roads(), 30.0);
        assert!(online.ingest_day(&bad).is_err());
        // Counters untouched by rejected days.
        assert_eq!(online.days_ingested(), days_before);
        let counts_after: u32 = online.counts.iter().map(|&(co, _)| co).sum();
        assert_eq!(counts_after, counts_before);
    }

    #[test]
    fn ingest_delta_reconciles_before_and_after_graphs() {
        let ds = metro_small(&DatasetParams {
            training_days: 3,
            test_days: 6,
            ..DatasetParams::default()
        });
        let mut online = OnlineCorrelation::bootstrap(&ds.graph, &ds.history, &config());
        for day in &ds.test_days {
            let before = online.correlation_graph();
            let delta = online.ingest_day_delta(day).unwrap();
            let after = online.correlation_graph();
            assert_eq!(delta.pairs_tracked, online.pairs.len());
            // Changes are (a, b)-sorted, like the edge lists.
            let keys: Vec<_> = delta.changes.iter().map(EdgeChange::pair).collect();
            let mut sorted = keys.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(keys, sorted, "delta must be sorted and deduped");
            // Replaying the delta over the old edge list reproduces the
            // new edge list exactly (values bit-identical).
            let mut edges: Vec<CorrelationEdge> = before.edges().to_vec();
            for change in &delta.changes {
                let key = change.pair();
                let pos = edges.binary_search_by_key(&key, |e| (e.a, e.b));
                match (change, pos) {
                    (EdgeChange::Added(e), Err(i)) => edges.insert(i, *e),
                    (EdgeChange::Updated(e), Ok(i)) => edges[i] = *e,
                    (EdgeChange::Removed { .. }, Ok(i)) => {
                        edges.remove(i);
                    }
                    (c, _) => panic!("change {c:?} inconsistent with prior graph"),
                }
            }
            assert_eq!(edges.len(), after.edges().len());
            for (x, y) in edges.iter().zip(after.edges()) {
                assert_eq!((x.a, x.b, x.support), (y.a, y.b, y.support));
                assert_eq!(x.cotrend.to_bits(), y.cotrend.to_bits());
            }
        }
    }

    #[test]
    fn ingest_delta_counts_match_plain_ingest() {
        let ds = dataset();
        let mut a = OnlineCorrelation::bootstrap(&ds.graph, &ds.history, &config());
        let mut b = a.clone();
        for day in &ds.test_days {
            a.ingest_day(day).unwrap();
            let delta = b.ingest_day_delta(day).unwrap();
            assert!(delta.pairs_touched > 0);
            assert!(delta.slots_observed > 0);
        }
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.days_ingested(), b.days_ingested());
    }

    #[test]
    fn ingest_delta_rejects_mismatched_day_without_mutation() {
        let ds = dataset();
        let mut online = OnlineCorrelation::bootstrap(&ds.graph, &ds.history, &config());
        let counts_before = online.counts.clone();
        let bad = SpeedField::filled(ds.clock.slots_per_day, ds.graph.num_roads() + 1, 30.0);
        let err = online.ingest_day_delta(&bad).unwrap_err();
        assert!(matches!(err, CoreError::ShapeMismatch { .. }), "{err}");
        assert_eq!(online.counts, counts_before);
    }

    #[test]
    fn rebootstrap_refreshes_means() {
        let ds = dataset();
        let online = OnlineCorrelation::bootstrap(&ds.graph, &ds.history, &config());
        let mut all_days = ds.history.days().to_vec();
        all_days.extend(ds.test_days.iter().cloned());
        let extended = HistoricalData::from_days(ds.clock, all_days);
        let re = online.rebootstrap(&ds.graph, &extended);
        assert_eq!(re.days_ingested(), 10);
        // Means differ once the window grows.
        let differs = (0..ds.graph.num_roads() as u32)
            .map(RoadId)
            .any(|r| (re.stats().mean(8, r) - online.stats().mean(8, r)).abs() > 1e-9);
        assert!(differs);
    }
}
