//! Deviation propagation over the correlation graph.
//!
//! Spreads observed seed deviations to every road by repeated weighted
//! averaging with the correlation-edge strengths, anchored towards the
//! neutral deviation 1.0. Used in two places:
//!
//! * as the *local deviation field* feature of the hierarchical linear
//!   model (the HLM then learns, per road and per trend regime, how
//!   strongly to trust the field), and
//! * as the label-propagation baseline in [`crate::baselines`].

use crate::correlation::CorrelationGraph;
use crate::seed::objective::edge_strength;
use roadnet::RoadId;

/// Reusable buffers for repeated propagation runs.
///
/// Holds the two ping-pong field buffers and the clamp mask, so a
/// serving loop pays their allocation once per worker.
#[derive(Debug, Clone, Default)]
pub struct PropagateScratch {
    dev: Vec<f64>,
    clamped: Vec<bool>,
    next: Vec<f64>,
}

impl PropagateScratch {
    /// An empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        PropagateScratch::default()
    }

    /// The propagated field written by the most recent
    /// [`propagate_deviations_into`].
    pub fn field(&self) -> &[f64] {
        &self.dev
    }
}

/// Propagates seed deviations over the correlation graph.
///
/// * `seed_devs` — observed `(road, deviation)` pairs, clamped in place;
/// * `iterations` — averaging sweeps (30 is plenty at city scale);
/// * `anchor` — weight pulling unobserved roads towards deviation 1.0
///   (guards against drift in sparsely seeded regions).
///
/// Returns one deviation per road. Allocates fresh buffers per call;
/// serving paths should hold a [`PropagateScratch`] and call
/// [`propagate_deviations_into`].
pub fn propagate_deviations(
    corr: &CorrelationGraph,
    seed_devs: &[(RoadId, f64)],
    iterations: usize,
    anchor: f64,
) -> Vec<f64> {
    let mut ws = PropagateScratch::new();
    propagate_deviations_into(corr, seed_devs, iterations, anchor, &mut ws);
    std::mem::take(&mut ws.dev)
}

/// Propagates seed deviations reusing the buffers in `ws`; identical
/// sweep order and arithmetic to [`propagate_deviations`], so the field
/// (readable via [`PropagateScratch::field`]) is bit-identical.
pub fn propagate_deviations_into(
    corr: &CorrelationGraph,
    seed_devs: &[(RoadId, f64)],
    iterations: usize,
    anchor: f64,
    ws: &mut PropagateScratch,
) {
    let n = corr.num_roads();
    let PropagateScratch { dev, clamped, next } = ws;
    dev.clear();
    dev.resize(n, 1.0);
    clamped.clear();
    clamped.resize(n, false);
    for &(s, d) in seed_devs {
        dev[s.index()] = d;
        clamped[s.index()] = true;
    }
    next.clear();
    next.extend_from_slice(dev);
    for _ in 0..iterations {
        for r in 0..n {
            if clamped[r] {
                continue;
            }
            let mut wsum = anchor;
            let mut dsum = anchor; // anchor * neutral deviation 1.0
            for (nb, w) in corr.neighbors(RoadId(r as u32)) {
                let strength = edge_strength(w);
                wsum += strength;
                dsum += strength * dev[nb.index()];
            }
            next[r] = dsum / wsum;
        }
        std::mem::swap(dev, next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::CorrelationEdge;

    fn chain(n: usize, cotrend: f64) -> CorrelationGraph {
        let edges = (0..n as u32 - 1)
            .map(|i| CorrelationEdge {
                a: RoadId(i),
                b: RoadId(i + 1),
                cotrend,
                support: 50,
            })
            .collect();
        CorrelationGraph::from_edges(n, edges).unwrap()
    }

    #[test]
    fn seeds_stay_clamped() {
        let corr = chain(4, 0.9);
        let dev = propagate_deviations(&corr, &[(RoadId(0), 0.5)], 20, 0.2);
        assert_eq!(dev[0], 0.5);
    }

    #[test]
    fn field_attenuates_towards_neutral() {
        let corr = chain(5, 0.9);
        let dev = propagate_deviations(&corr, &[(RoadId(0), 0.4)], 50, 0.2);
        for w in dev.windows(2) {
            assert!(
                w[0] <= w[1] + 1e-9,
                "field must relax monotonically: {dev:?}"
            );
        }
        assert!(dev[4] < 1.0, "far roads still feel a strong seed");
        assert!(dev[4] > dev[1], "attenuation with distance");
    }

    #[test]
    fn no_seeds_gives_neutral_field() {
        let corr = chain(3, 0.8);
        let dev = propagate_deviations(&corr, &[], 10, 0.2);
        assert_eq!(dev, vec![1.0; 3]);
    }

    #[test]
    fn two_seeds_interpolate() {
        let corr = chain(5, 0.95);
        let dev = propagate_deviations(&corr, &[(RoadId(0), 0.5), (RoadId(4), 1.5)], 100, 0.01);
        assert!(dev[2] > dev[1] && dev[3] > dev[2], "{dev:?}");
        assert!(
            (dev[2] - 1.0).abs() < 0.1,
            "midpoint near the average: {dev:?}"
        );
    }

    #[test]
    fn zero_strength_edges_do_not_propagate() {
        let corr = chain(3, 0.5); // cotrend 0.5 = strength 0
        let dev = propagate_deviations(&corr, &[(RoadId(0), 0.2)], 20, 0.2);
        assert_eq!(dev[1], 1.0);
        assert_eq!(dev[2], 1.0);
    }
}
