//! Step 2 — the hierarchical linear model (HLM).
//!
//! Once step 1 has produced a trend posterior for every road, the HLM
//! turns *seed deviations* (crowdsourced speed ÷ historical average)
//! into a *deviation estimate* for each non-seed road, which scales the
//! road's historical average into a speed.
//!
//! The model is linear in a fixed 6-feature template built from the
//! seed observations — intercept; the **local deviation field** (seed
//! deviations propagated over the correlation graph, see
//! [`crate::propagate`]); the strongest correlated seed's deviation;
//! the citywide mean seed deviation; the inverse-distance-weighted
//! deviation of the spatially nearest seeds; and the centred step-1
//! trend posterior — deviation channels in log space by default
//! ([`HlmConfig::log_space`]) — with **separate
//! coefficient sets per trend regime** (up/down) mixed by the step-1
//! posterior, and a **three-level coefficient hierarchy**:
//!
//! ```text
//! city (pooled)  →  road class  →  individual road
//! ```
//!
//! Each level is ridge-shrunk towards its parent
//! ([`linalg::ridge::shrunk_fit`]), so a road with thin history borrows
//! its class's behaviour and a class with thin history borrows the
//! city's — the paper's "hierarchical" ingredient. A fixed feature
//! template (rather than one coefficient per neighbouring seed) is what
//! lets coefficients be pooled across roads with different seed
//! neighbourhoods; the influence weights inside the features carry the
//! per-neighbour structure instead.

use crate::correlation::CorrelationGraph;
use crate::inference::trend_model::{TrendEngine, TrendModel, TrendScratch};
use crate::propagate::PropagateScratch;
use crate::seed::objective::{InfluenceConfig, InfluenceModel};
use crate::{CoreError, Result};
use linalg::ridge::{hierarchical_fit_grams, shrunk_fit_gram, GramSystem};
use roadnet::{RoadGraph, RoadId};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use trafficsim::{HistoricalData, HistoryStats};

/// Number of features in the template.
pub const NUM_FEATURES: usize = 6;

/// Distance softening (metres) in the spatial feature's IDW weights.
const SPATIAL_SOFTENING_M: f64 = 50.0;

/// How deep the coefficient hierarchy goes — the ablation switch of
/// experiment E10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pooling {
    /// city → class → road (the full model).
    Full,
    /// city → class; every road uses its class coefficients.
    ClassOnly,
    /// One citywide regression for all roads.
    GlobalOnly,
}

/// HLM configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HlmConfig {
    /// Ridge strength of the city-level (pooled) fit.
    pub lambda_city: f64,
    /// Shrinkage of class coefficients towards the city coefficients.
    pub lambda_class: f64,
    /// Shrinkage of road coefficients towards their class coefficients.
    pub lambda_road: f64,
    /// Roads with fewer training rows (per regime) than this use their
    /// class coefficients directly.
    pub min_road_rows: usize,
    /// Per-road cap on training cells (stride-sampled); bounds memory
    /// on long histories.
    pub max_cells_per_road: usize,
    /// Predicted deviations are clamped to this range.
    pub deviation_clamp: (f64, f64),
    /// Fit and predict in log-deviation space. Deviations compose
    /// multiplicatively (a congestion halves speed regardless of the
    /// baseline), so the log model extrapolates far better to severe
    /// slowdowns and keeps residuals homoscedastic. `false` is the
    /// linear-space ablation.
    pub log_space: bool,
    /// Per-road top-M seed neighbours kept as feature sources.
    pub max_seed_neighbors: usize,
    /// Spatially nearest seeds feeding the IDW spatial feature.
    pub spatial_neighbors: usize,
    /// Sweeps of deviation propagation behind the local-field feature.
    pub propagation_iters: usize,
    /// Neutral-anchor weight of the propagation.
    pub propagation_anchor: f64,
    /// Hierarchy depth.
    pub pooling: Pooling,
    /// Fit separate up/down regimes (`false` is the trend-conditioning
    /// ablation: one regime, step-1 posterior unused by the mixer).
    pub split_regimes: bool,
    /// Influence propagation used to attach seeds to roads.
    pub influence: InfluenceConfig,
}

impl Default for HlmConfig {
    fn default() -> Self {
        HlmConfig {
            lambda_city: 1.0,
            lambda_class: 10.0,
            lambda_road: 5.0,
            min_road_rows: 8,
            max_cells_per_road: 1024,
            deviation_clamp: (0.2, 2.0),
            max_seed_neighbors: 8,
            spatial_neighbors: 5,
            propagation_iters: 30,
            propagation_anchor: 0.2,
            log_space: true,
            pooling: Pooling::Full,
            split_regimes: true,
            influence: InfluenceConfig::default(),
        }
    }
}

/// Coefficients for one trend regime.
#[derive(Debug, Clone)]
struct RegimeCoefs {
    city: Vec<f64>,
    class: Vec<Vec<f64>>,        // [class][feature]
    road: Vec<Option<Vec<f64>>>, // [road] -> None = fall back to class
}

impl RegimeCoefs {
    fn coefficients_for(&self, road: usize, class: usize, pooling: Pooling) -> &[f64] {
        match pooling {
            Pooling::GlobalOnly => &self.city,
            Pooling::ClassOnly => &self.class[class],
            Pooling::Full => self.road[road].as_deref().unwrap_or(&self.class[class]),
        }
    }
}

/// A trained hierarchical linear model tied to a specific seed set.
#[derive(Debug, Clone)]
pub struct HlmModel {
    config: HlmConfig,
    seeds: Vec<RoadId>,
    /// Correlation graph over which the local deviation field is
    /// propagated (owned so the model is self-contained at serving
    /// time).
    corr: CorrelationGraph,
    /// Per road: (seed index, influence q), strongest first, top-M.
    seed_neighbors: Vec<Vec<(usize, f64)>>,
    /// Per road: (seed index, IDW weight) of the spatially nearest
    /// seeds — the locality channel for roads with no correlated seed.
    spatial_neighbors: Vec<Vec<(usize, f64)>>,
    road_class: Vec<usize>,
    /// regimes[0] = "up", regimes[1] = "down"; when
    /// `config.split_regimes` is false only regimes[0] is meaningful.
    regimes: [RegimeCoefs; 2],
}

/// Reusable buffers for repeated HLM predictions: the propagation
/// ping-pong buffers, the per-road feature staging vectors, and the
/// output deviations all survive between calls to
/// [`HlmModel::predict_deviations_with`].
#[derive(Debug, Clone, Default)]
pub struct HlmScratch {
    propagate: PropagateScratch,
    cell_seed_devs: Vec<(RoadId, f64)>,
    avail: Vec<f64>,
    nb: Vec<(f64, f64)>,
    sp: Vec<(f64, f64)>,
    devs: Vec<f64>,
}

impl HlmScratch {
    /// An empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        HlmScratch::default()
    }

    /// Deviations written by the most recent
    /// [`HlmModel::predict_deviations_with`].
    pub fn deviations(&self) -> &[f64] {
        &self.devs
    }
}

/// Weighted mean of `(weight, value)` pairs, or `fallback` when empty.
fn weighted_mean(pairs: &[(f64, f64)], fallback: f64) -> f64 {
    if pairs.is_empty() {
        return fallback;
    }
    let wsum: f64 = pairs.iter().map(|&(w, _)| w).sum();
    pairs.iter().map(|&(w, v)| w * v).sum::<f64>() / wsum
}

/// Smallest deviation representable in log space.
const DEV_FLOOR: f64 = 0.05;

/// Transforms a deviation for the model space (identity or log).
#[inline]
fn encode_dev(d: f64, log_space: bool) -> f64 {
    if log_space {
        d.max(DEV_FLOOR).ln()
    } else {
        d
    }
}

/// Inverse of [`encode_dev`].
#[inline]
fn decode_dev(y: f64, log_space: bool) -> f64 {
    if log_space {
        y.exp()
    } else {
        y
    }
}

/// The feature template (all deviation-valued channels are already in
/// model space — see [`encode_dev`]).
///
/// * `local_field` — the propagated deviation field's value at the road;
/// * `neighbor_devs` — available `(q, deviation)` pairs of the road's
///   correlated seed neighbours (may be empty);
/// * `spatial_devs` — available `(idw-weight, deviation)` pairs of the
///   spatially nearest seeds;
/// * `citywide` — mean deviation over all available seeds;
/// * `trend` — the road's step-1 posterior, centred (`2·p_up − 1`).
fn features(
    local_field: f64,
    neighbor_devs: &[(f64, f64)],
    spatial_devs: &[(f64, f64)],
    citywide: f64,
    trend: f64,
) -> [f64; NUM_FEATURES] {
    let top = neighbor_devs
        .iter()
        .fold(
            (0.0, citywide),
            |best, &(q, d)| {
                if q > best.0 {
                    (q, d)
                } else {
                    best
                }
            },
        )
        .1;
    let spatial = weighted_mean(spatial_devs, citywide);
    [1.0, local_field, top, citywide, spatial, trend]
}

impl HlmModel {
    /// Trains the model for a given seed set over the historical data.
    ///
    /// Equivalent to [`HlmModel::train_with_trends`] with no trend
    /// model: regime rows are weighted by each road's *true* historical
    /// trend (hard 0/1 posteriors). Use `train_with_trends` in the full
    /// pipeline so training matches what inference sees at serving
    /// time.
    pub fn train(
        graph: &RoadGraph,
        history: &HistoricalData,
        stats: &HistoryStats,
        corr: &CorrelationGraph,
        seeds: &[RoadId],
        config: &HlmConfig,
    ) -> Result<HlmModel> {
        Self::train_with_trends(graph, history, stats, corr, seeds, config, None)
    }

    /// Trains the model, weighting each training row's regime
    /// assignment by the trend posterior the given model would have
    /// produced for that historical cell (evidence = the seeds' own
    /// historical trends). This makes training *consistent* with
    /// serving — the regimes are mixed by the same kind of noisy
    /// posterior in both phases, so regime splitting can only help.
    ///
    /// A `Gibbs` engine is replaced by LBP during training (thousands
    /// of sampler sweeps per historical cell would be prohibitive and
    /// the marginals agree — see experiment E6); `PriorOnly` and `Exact`
    /// are honoured as-is.
    pub fn train_with_trends(
        graph: &RoadGraph,
        history: &HistoricalData,
        stats: &HistoryStats,
        corr: &CorrelationGraph,
        seeds: &[RoadId],
        config: &HlmConfig,
        trend_ctx: Option<(&TrendModel, &TrendEngine)>,
    ) -> Result<HlmModel> {
        Self::train_with_trends_threaded(graph, history, stats, corr, seeds, config, trend_ctx, 1)
    }

    /// [`HlmModel::train_with_trends`] on `threads` workers (`0` = all
    /// cores).
    ///
    /// The expensive kernels parallelize over disjoint index-ordered
    /// outputs — per-cell contexts (propagated field + trend posterior),
    /// per-road row assembly, and per-road ridge fits — while every
    /// order-sensitive aggregation (class-pooled designs, first-error
    /// selection) stays serial in index order, so the trained model is
    /// bit-identical for every thread count
    /// (`tests/train_parallel_equivalence.rs`).
    #[allow(clippy::too_many_arguments)]
    pub fn train_with_trends_threaded(
        graph: &RoadGraph,
        history: &HistoricalData,
        stats: &HistoryStats,
        corr: &CorrelationGraph,
        seeds: &[RoadId],
        config: &HlmConfig,
        trend_ctx: Option<(&TrendModel, &TrendEngine)>,
        threads: usize,
    ) -> Result<HlmModel> {
        // Borrow the trend model for the duration of the train — the
        // trainer is ephemeral here, so there is no reason to deep-copy
        // the compiled slot MRFs (the engine is a small config enum;
        // cloning it is free).
        let trend_ctx = trend_ctx.map(|(tm, engine)| (Cow::Borrowed(tm), engine.clone()));
        let mut trainer = HlmTrainer::new(graph, corr, seeds, config, trend_ctx, threads)?;
        trainer.fold(history, stats, threads)?;
        trainer.fit(threads)
    }

    /// The seed set the model was trained for.
    pub fn seeds(&self) -> &[RoadId] {
        &self.seeds
    }

    /// The model configuration.
    pub fn config(&self) -> &HlmConfig {
        &self.config
    }

    /// Serialises the trained body (config, seeds, neighbour tables,
    /// road classes, both regimes' ridge coefficients) in the snapshot
    /// codec style. The correlation graph is *not* written — the
    /// enclosing estimator snapshot stores it once and hands it back to
    /// [`HlmModel::decode_snapshot_from`].
    pub fn encode_snapshot_into(&self, buf: &mut bytes::BytesMut) {
        use crate::codec::{put_f64_slice, put_road_slice, put_usize};
        use bytes::BufMut;
        crate::codec::encode_hlm_config(&self.config, buf);
        put_road_slice(buf, &self.seeds);
        let put_neighbors = |buf: &mut bytes::BytesMut, table: &[Vec<(usize, f64)>]| {
            buf.put_u32_le(table.len() as u32);
            for list in table {
                buf.put_u32_le(list.len() as u32);
                for &(si, w) in list {
                    buf.put_u32_le(si as u32);
                    buf.put_f64_le(w);
                }
            }
        };
        put_neighbors(buf, &self.seed_neighbors);
        put_neighbors(buf, &self.spatial_neighbors);
        buf.put_u32_le(self.road_class.len() as u32);
        for &c in &self.road_class {
            put_usize(buf, c);
        }
        for regime in &self.regimes {
            put_f64_slice(buf, &regime.city);
            buf.put_u32_le(regime.class.len() as u32);
            for coefs in &regime.class {
                put_f64_slice(buf, coefs);
            }
            buf.put_u32_le(regime.road.len() as u32);
            for road in &regime.road {
                match road {
                    Some(coefs) => {
                        buf.put_u8(1);
                        put_f64_slice(buf, coefs);
                    }
                    None => buf.put_u8(0),
                }
            }
        }
    }

    /// Decodes a model written by [`HlmModel::encode_snapshot_into`].
    pub fn decode_snapshot_from(
        corr: CorrelationGraph,
        buf: &mut impl bytes::Buf,
    ) -> std::result::Result<HlmModel, crate::codec::DecodeError> {
        use crate::codec::{self, DecodeError};
        fn get_neighbors<B: bytes::Buf>(
            buf: &mut B,
            num_seeds: usize,
        ) -> std::result::Result<Vec<Vec<(usize, f64)>>, DecodeError> {
            let n = codec::get_u32(buf)? as usize;
            let mut table = Vec::with_capacity(n);
            for _ in 0..n {
                let len = codec::get_u32(buf)? as usize;
                if buf.remaining() < len.saturating_mul(12) {
                    return Err(DecodeError::Truncated);
                }
                let mut list = Vec::with_capacity(len);
                for _ in 0..len {
                    let si = buf.get_u32_le() as usize;
                    if si >= num_seeds {
                        return Err(DecodeError::Corrupt(format!(
                            "neighbour references seed {si} of {num_seeds}"
                        )));
                    }
                    list.push((si, buf.get_f64_le()));
                }
                table.push(list);
            }
            Ok(table)
        }
        fn decode_regime<B: bytes::Buf>(
            buf: &mut B,
        ) -> std::result::Result<RegimeCoefs, DecodeError> {
            let city = codec::get_f64_vec(buf)?;
            let classes = codec::get_u32(buf)? as usize;
            let mut class = Vec::with_capacity(classes);
            for _ in 0..classes {
                class.push(codec::get_f64_vec(buf)?);
            }
            let roads = codec::get_u32(buf)? as usize;
            let mut road = Vec::with_capacity(roads);
            for _ in 0..roads {
                road.push(match codec::get_u8(buf)? {
                    0 => None,
                    1 => Some(codec::get_f64_vec(buf)?),
                    t => {
                        return Err(DecodeError::Corrupt(format!(
                            "bad road-coefficient tag {t}"
                        )))
                    }
                });
            }
            Ok(RegimeCoefs { city, class, road })
        }
        let config = codec::decode_hlm_config(buf)?;
        let seeds = codec::get_road_vec(buf)?;
        let num_seeds = seeds.len();
        let seed_neighbors = get_neighbors(buf, num_seeds)?;
        let spatial_neighbors = get_neighbors(buf, num_seeds)?;
        let n_class = codec::get_u32(buf)? as usize;
        let mut road_class = Vec::with_capacity(n_class);
        for _ in 0..n_class {
            road_class.push(codec::get_usize(buf)?);
        }
        let up = decode_regime(buf)?;
        let down = decode_regime(buf)?;
        let n = corr.num_roads();
        if seed_neighbors.len() != n || spatial_neighbors.len() != n || road_class.len() != n {
            return Err(DecodeError::Corrupt(format!(
                "per-road tables ({}, {}, {}) disagree with {n} roads",
                seed_neighbors.len(),
                spatial_neighbors.len(),
                road_class.len()
            )));
        }
        for regime in [&up, &down] {
            if regime.road.len() != n {
                return Err(DecodeError::Corrupt(format!(
                    "regime road coefficients ({}) disagree with {n} roads",
                    regime.road.len()
                )));
            }
            for c in &road_class {
                if *c >= regime.class.len() {
                    return Err(DecodeError::Corrupt(format!(
                        "road class {c} outside {} fitted classes",
                        regime.class.len()
                    )));
                }
            }
        }
        Ok(HlmModel {
            config,
            seeds,
            corr,
            seed_neighbors,
            spatial_neighbors,
            road_class,
            regimes: [up, down],
        })
    }

    /// Predicts per-road deviations.
    ///
    /// * `seed_devs[si]` — observed deviation of seed `si` (`None` when
    ///   the crowd produced no answer for it);
    /// * `p_up[r]` — step-1 posterior for every road.
    ///
    /// Returns deviations clamped to `config.deviation_clamp`.
    /// Allocates fresh buffers per call; serving paths should hold an
    /// [`HlmScratch`] and call [`HlmModel::predict_deviations_with`].
    pub fn predict_deviations(&self, seed_devs: &[Option<f64>], p_up: &[f64]) -> Vec<f64> {
        let mut ws = HlmScratch::new();
        self.predict_deviations_with(seed_devs, p_up, &mut ws);
        std::mem::take(&mut ws.devs)
    }

    /// Predicts per-road deviations reusing the buffers in `ws`;
    /// identical arithmetic and iteration order to
    /// [`HlmModel::predict_deviations`], so the deviations (readable via
    /// [`HlmScratch::deviations`]) are bit-identical.
    pub fn predict_deviations_with(
        &self,
        seed_devs: &[Option<f64>],
        p_up: &[f64],
        ws: &mut HlmScratch,
    ) {
        let n = self.seed_neighbors.len();
        self.predict_deviations_inner(seed_devs, p_up, &self.corr, 0..n, ws);
    }

    /// Sharded-serving variant of
    /// [`HlmModel::predict_deviations_with`]: propagates the local
    /// deviation field over `corr` — a component-subset masking of the
    /// model's own graph (same road-id space, a subset of the edges,
    /// every retained component whole) — and computes deviations only
    /// at `roads`, written to the scratch aligned with that list.
    ///
    /// Per-road arithmetic is identical to the full path; because
    /// propagation is neighbour-local and every global feature
    /// (citywide mean, seed and spatial neighbour lists) reads the full
    /// seed-deviation vector, the value produced for a road inside a
    /// retained component is bit-identical to the full model's.
    pub fn predict_deviations_masked(
        &self,
        seed_devs: &[Option<f64>],
        p_up: &[f64],
        corr: &CorrelationGraph,
        roads: &[RoadId],
        ws: &mut HlmScratch,
    ) {
        assert_eq!(
            corr.num_roads(),
            self.corr.num_roads(),
            "masked graph spans a different road set"
        );
        self.predict_deviations_inner(seed_devs, p_up, corr, roads.iter().map(|r| r.index()), ws);
    }

    fn predict_deviations_inner(
        &self,
        seed_devs: &[Option<f64>],
        p_up: &[f64],
        corr: &CorrelationGraph,
        roads: impl Iterator<Item = usize>,
        ws: &mut HlmScratch,
    ) {
        assert_eq!(seed_devs.len(), self.seeds.len(), "seed deviation arity");
        let n = self.seed_neighbors.len();
        assert_eq!(p_up.len(), n, "p_up arity");

        // Split borrows: the staging buffers are used simultaneously.
        let HlmScratch {
            propagate,
            cell_seed_devs,
            avail,
            nb,
            sp,
            devs,
        } = ws;

        avail.clear();
        avail.extend(seed_devs.iter().flatten().copied());
        let citywide = if avail.is_empty() {
            1.0
        } else {
            linalg::stats::mean(avail)
        };
        cell_seed_devs.clear();
        cell_seed_devs.extend(
            self.seeds
                .iter()
                .zip(seed_devs)
                .filter_map(|(&s, d)| d.map(|d| (s, d))),
        );
        crate::propagate::propagate_deviations_into(
            corr,
            cell_seed_devs,
            self.config.propagation_iters,
            self.config.propagation_anchor,
            propagate,
        );
        let field = propagate.field();

        let ls = self.config.log_space;
        devs.clear();
        for r in roads {
            nb.clear();
            nb.extend(
                self.seed_neighbors[r]
                    .iter()
                    .filter_map(|&(si, q)| seed_devs[si].map(|d| (q, encode_dev(d, ls)))),
            );
            sp.clear();
            sp.extend(
                self.spatial_neighbors[r]
                    .iter()
                    .filter_map(|&(si, w)| seed_devs[si].map(|d| (w, encode_dev(d, ls)))),
            );
            let x = features(
                encode_dev(field[r], ls),
                nb,
                sp,
                encode_dev(citywide, ls),
                2.0 * p_up[r] - 1.0,
            );
            let class = self.road_class[r];
            let y = if self.config.split_regimes {
                let up = linalg::dot(
                    self.regimes[0].coefficients_for(r, class, self.config.pooling),
                    &x,
                );
                let down = linalg::dot(
                    self.regimes[1].coefficients_for(r, class, self.config.pooling),
                    &x,
                );
                p_up[r] * up + (1.0 - p_up[r]) * down
            } else {
                linalg::dot(
                    self.regimes[0].coefficients_for(r, class, self.config.pooling),
                    &x,
                )
            };
            devs.push(
                decode_dev(y, ls)
                    .clamp(self.config.deviation_clamp.0, self.config.deviation_clamp.1),
            );
        }
    }
}

/// Per-cell scalars of the flattened fold layout (see
/// [`HlmTrainer::fold`]): the big per-cell vectors (encoded seed
/// deviations, encoded propagated field, trend posterior) live in flat
/// structure-of-arrays buffers indexed by cell, so phase A writes into
/// preallocated disjoint chunks and phase B reads without chasing
/// per-cell heap allocations.
#[derive(Debug, Clone, Copy, Default)]
struct CellMeta {
    day: u32,
    slot: u32,
    /// `encode_dev(citywide)` — the mean seed deviation, already in
    /// model space.
    citywide_enc: f64,
    /// A cell with no observed seed is dead: phase A skips its field
    /// and posterior, phase B skips the cell (the serial `continue`).
    live: bool,
}

/// One cell's disjoint slice of the phase-A output buffers.
struct CellSlot<'a> {
    meta: &'a mut CellMeta,
    /// Per seed: `encode_dev(deviation)`, `NaN` when unobserved.
    seed_enc: &'a mut [f64],
    /// Per road: `encode_dev(propagated field)`.
    field_enc: &'a mut [f64],
    /// Per road: trend posterior; `None` when training without trends.
    p_up: Option<&'a mut [f64]>,
}

/// What one [`HlmTrainer::fold`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FoldStats {
    /// Days newly folded into the accumulators by this call.
    pub new_days: usize,
    /// Stride-sampled cells whose training contexts were computed.
    pub cells_sampled: usize,
    /// Weighted regression rows pushed into the accumulators.
    pub rows_folded: usize,
    /// The sampling stride changed, so the accumulators were refolded
    /// from day zero (`cells_sampled`/`rows_folded` then count the
    /// whole history, not just the new days).
    pub refolded: bool,
}

/// Streaming HLM trainer: the propagation context (correlation graph,
/// seed attachment, spatial neighbours, trend model) is frozen at
/// construction, and per-`(road, regime)` normal equations accumulate
/// day by day, so appending a day costs `O(new sampled cells)` instead
/// of a from-scratch pass over the whole history.
///
/// Determinism contract: folding days `0..k` and then `k..d` leaves the
/// accumulators bit-identical to folding `0..d` in one call — a
/// [`GramSystem`] folds rows in push order, and a new day's sampled
/// cells extend the cell scan in order — and [`HlmTrainer::fit`] is a
/// pure function of the accumulators.
/// [`HlmModel::train_with_trends_threaded`] routes through this type,
/// so an incrementally-maintained model is bit-identical to a full
/// retrain *by construction*. The caller must hand every `fold` the
/// same frozen `stats` and a history that only grows; the serving
/// pipeline freezes both at bootstrap.
///
/// One exception to the append-only pattern is handled internally: the
/// cell-sampling stride depends on the total day count, so when a new
/// day shifts it the trainer transparently refolds the whole history
/// under the new stride (reported via [`FoldStats::refolded`]).
pub struct HlmTrainer<'a> {
    config: HlmConfig,
    seeds: Vec<RoadId>,
    corr: CorrelationGraph,
    seed_neighbors: Vec<Vec<(usize, f64)>>,
    spatial_neighbors: Vec<Vec<(usize, f64)>>,
    road_class: Vec<usize>,
    /// Frozen trend context (engine already Gibbs→LBP substituted).
    /// Borrowed for ephemeral full trains; owned (`Cow::Owned`, with
    /// `'a = 'static`) when the trainer outlives the caller's model,
    /// as in the incremental pipeline.
    trend_ctx: Option<(Cow<'a, TrendModel>, TrendEngine)>,
    num_regimes: usize,
    slots: Option<usize>,
    stride: Option<usize>,
    folded_days: usize,
    /// `accums[road][regime]` — the folded normal equations.
    accums: Vec<Vec<GramSystem>>,
}

impl<'a> HlmTrainer<'a> {
    /// Freezes the training context for a seed set: validates the
    /// seeds, attaches each road to its influential and spatially
    /// nearest seeds over `corr`, and substitutes a `Gibbs` trend
    /// engine with LBP once (see [`HlmModel::train_with_trends`]).
    ///
    /// The trend model arrives as a [`Cow`]: pass `Cow::Borrowed` when
    /// the trainer lives within the model's lifetime (the ephemeral
    /// full-train path) and `Cow::Owned` when it must outlive it (the
    /// incremental pipeline).
    pub fn new(
        graph: &RoadGraph,
        corr: &CorrelationGraph,
        seeds: &[RoadId],
        config: &HlmConfig,
        trend_ctx: Option<(Cow<'a, TrendModel>, TrendEngine)>,
        threads: usize,
    ) -> Result<HlmTrainer<'a>> {
        let n = graph.num_roads();
        if seeds.is_empty() {
            return Err(CoreError::InsufficientData("empty seed set".into()));
        }
        for s in seeds {
            if s.index() >= n {
                return Err(CoreError::InvalidRoad(s.0));
            }
        }

        // Attach each road to its influential seeds.
        let influence = InfluenceModel::build_threaded(corr, &config.influence, threads);
        let mut seed_neighbors: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for (si, &s) in seeds.iter().enumerate() {
            for (r, q) in influence.reach(s).iter() {
                if r != s {
                    seed_neighbors[r.index()].push((si, q));
                }
            }
        }
        for list in &mut seed_neighbors {
            list.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("NaN influence"));
            list.truncate(config.max_seed_neighbors);
        }

        // Spatially nearest seeds per road (IDW weights); each road's
        // list is independent of the others.
        let spatial_neighbors: Vec<Vec<(usize, f64)>> = crate::parallel::fill(threads, n, |r| {
            let road = RoadId(r as u32);
            let mut by_dist: Vec<(usize, f64)> = seeds
                .iter()
                .enumerate()
                .filter(|&(_, &s)| s != road)
                .map(|(si, &s)| (si, graph.distance(road, s)))
                .collect();
            by_dist.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("distance NaN"));
            by_dist.truncate(config.spatial_neighbors);
            by_dist
                .into_iter()
                .map(|(si, d)| (si, 1.0 / (d + SPATIAL_SOFTENING_M)))
                .collect()
        });

        let road_class: Vec<usize> = graph.all_meta().iter().map(|m| m.class.group()).collect();

        // A Gibbs engine is replaced by LBP during training (see the
        // `train_with_trends` docs); the substitution is cell-invariant
        // so it happens once here.
        let trend_ctx = trend_ctx.map(|(tm, engine)| {
            let engine = match engine {
                TrendEngine::Gibbs { .. } => TrendEngine::default(),
                e => e,
            };
            (tm, engine)
        });

        let num_regimes = if config.split_regimes { 2 } else { 1 };
        let accums = (0..n)
            .map(|_| {
                (0..num_regimes)
                    .map(|_| GramSystem::new(NUM_FEATURES))
                    .collect()
            })
            .collect();
        Ok(HlmTrainer {
            config: config.clone(),
            seeds: seeds.to_vec(),
            corr: corr.clone(),
            seed_neighbors,
            spatial_neighbors,
            road_class,
            trend_ctx,
            num_regimes,
            slots: None,
            stride: None,
            folded_days: 0,
            accums,
        })
    }

    /// Days folded into the accumulators so far.
    pub fn folded_days(&self) -> usize {
        self.folded_days
    }

    /// The current cell-sampling stride (`None` before the first fold).
    pub fn stride(&self) -> Option<usize> {
        self.stride
    }

    /// The frozen propagation/feature context graph.
    pub fn context(&self) -> &CorrelationGraph {
        &self.corr
    }

    /// The seed set the trainer was built for.
    pub fn seeds(&self) -> &[RoadId] {
        &self.seeds
    }

    /// The sampling stride the next fold over a `days`-long history
    /// will use — lets callers predict a refold before paying for it.
    pub fn stride_for(&self, days: usize, slots: usize) -> usize {
        (days * slots)
            .div_ceil(self.config.max_cells_per_road)
            .max(1)
    }

    /// Folds the not-yet-seen tail of `history` into the per-road
    /// normal equations. Passing the same history again is a no-op;
    /// passing a longer one folds only the new days (unless the stride
    /// shifted — then the whole history refolds under the new stride).
    pub fn fold(
        &mut self,
        history: &HistoricalData,
        stats: &HistoryStats,
        threads: usize,
    ) -> Result<FoldStats> {
        let n = self.seed_neighbors.len();
        let slots = history.clock().slots_per_day;
        if history.num_roads() != n
            || stats.num_roads() != n
            || stats.num_slots() != slots
            || self.slots.is_some_and(|s| s != slots)
        {
            return Err(CoreError::ShapeMismatch {
                expected: format!("{} slots x {n} roads", self.slots.unwrap_or(slots)),
                got: format!(
                    "history {slots} slots x {} roads, stats {} slots x {} roads",
                    history.num_roads(),
                    stats.num_slots(),
                    stats.num_roads()
                ),
            });
        }
        let days = history.num_days();
        if days < self.folded_days {
            return Err(CoreError::ShapeMismatch {
                expected: format!("at least the {} days already folded", self.folded_days),
                got: format!("{days} days"),
            });
        }
        self.slots = Some(slots);
        let stride = self.stride_for(days, slots);
        let mut refolded = false;
        if self.stride != Some(stride) {
            if self.folded_days > 0 {
                refolded = true;
                for regs in &mut self.accums {
                    for g in regs {
                        g.clear();
                    }
                }
            }
            self.folded_days = 0;
            self.stride = Some(stride);
        }
        let from_day = self.folded_days;

        // The stride-sampled (day, slot) cells of the unfolded days, in
        // scan order — the suffix of the full enumeration a
        // from-scratch fold would visit (sampling is prefix-stable:
        // membership of cell `day*slots + slot` never depends on the
        // day count while the stride holds).
        let sampled: Vec<(usize, usize)> = (from_day..days)
            .flat_map(|day| (0..slots).map(move |slot| (day, slot)))
            .filter(|&(day, slot)| (day * slots + slot) % stride == 0)
            .collect();

        // Phase A — one context per new sampled cell, written into
        // flat structure-of-arrays buffers: per-cell scalars in `metas`,
        // the encoded seed deviations / propagated field / trend
        // posterior in three preallocated flat arrays carved into
        // disjoint per-cell chunks. Cells are independent, so workers
        // fill index-ordered chunks in parallel; a dead cell (no
        // observed seed) is flagged in its meta and skipped downstream,
        // exactly like the serial `continue`. Each worker reuses its
        // propagation, trend-inference and staging buffers across
        // cells, and every deviation is encoded into model space here —
        // once per (cell, seed) and once per (cell, road) — instead of
        // once per neighbor lookup in phase B.
        let seeds = &self.seeds;
        let corr = &self.corr;
        let config = &self.config;
        let trend_ctx = &self.trend_ctx;
        let has_trend = trend_ctx.is_some();
        let ls = self.config.log_space;
        let num_seeds = seeds.len();
        let cells = sampled.len();
        let mut metas: Vec<CellMeta> = vec![CellMeta::default(); cells];
        let mut seed_enc: Vec<f64> = vec![0.0; cells * num_seeds];
        let mut field_enc: Vec<f64> = vec![0.0; cells * n];
        let mut p_up: Vec<f64> = vec![0.0; if has_trend { cells * n } else { 0 }];
        let mut slots_vec: Vec<CellSlot<'_>> = Vec::with_capacity(cells);
        {
            let meta_it = metas.iter_mut();
            let se_it = seed_enc.chunks_mut(num_seeds.max(1));
            let fe_it = field_enc.chunks_mut(n.max(1));
            if has_trend {
                for (((meta, se), fe), pu) in
                    meta_it.zip(se_it).zip(fe_it).zip(p_up.chunks_mut(n.max(1)))
                {
                    slots_vec.push(CellSlot {
                        meta,
                        seed_enc: se,
                        field_enc: fe,
                        p_up: Some(pu),
                    });
                }
            } else {
                for ((meta, se), fe) in meta_it.zip(se_it).zip(fe_it) {
                    slots_vec.push(CellSlot {
                        meta,
                        seed_enc: se,
                        field_enc: fe,
                        p_up: None,
                    });
                }
            }
        }
        crate::parallel::for_each_mut_with(
            threads,
            &mut slots_vec,
            || {
                (
                    PropagateScratch::default(),
                    TrendScratch::new(),
                    Vec::<(RoadId, f64)>::new(),
                    Vec::<(RoadId, bool)>::new(),
                )
            },
            |(propagate, trend_ws, cell_seed_devs, obs), i, cell| {
                let (day, slot) = sampled[i];
                cell.meta.day = day as u32;
                cell.meta.slot = slot as u32;
                let mut city_sum = 0.0;
                let mut city_count = 0usize;
                cell_seed_devs.clear();
                for (si, &s) in seeds.iter().enumerate() {
                    let dev = history
                        .speed(day, slot, s)
                        .and_then(|v| stats.deviation_of(slot, s, v));
                    match dev {
                        Some(d) => {
                            cell.seed_enc[si] = encode_dev(d, ls);
                            cell_seed_devs.push((s, d));
                            city_sum += d;
                            city_count += 1;
                        }
                        None => cell.seed_enc[si] = f64::NAN,
                    }
                }
                if city_count == 0 {
                    cell.meta.live = false;
                    return;
                }
                cell.meta.live = true;
                cell.meta.citywide_enc = encode_dev(city_sum / city_count as f64, ls);

                // Local deviation field for this cell (one propagation
                // shared by all roads), encoded in place.
                crate::propagate::propagate_deviations_into(
                    corr,
                    cell_seed_devs,
                    config.propagation_iters,
                    config.propagation_anchor,
                    propagate,
                );
                for (dst, &v) in cell.field_enc.iter_mut().zip(propagate.field()) {
                    *dst = encode_dev(v, ls);
                }

                // Trend posteriors for this cell: what the serving-time
                // inference would say, given the seeds' trends. Used
                // both as the trend feature and for soft regime
                // weighting.
                if let (Some(p_dst), Some((tm, engine))) =
                    (cell.p_up.as_deref_mut(), trend_ctx.as_ref())
                {
                    obs.clear();
                    obs.extend(cell_seed_devs.iter().map(|&(s, d)| (s, d >= 1.0)));
                    tm.infer_with(slot, obs, engine, trend_ws);
                    p_dst.copy_from_slice(&trend_ws.p_up);
                }
            },
        );
        drop(slots_vec);
        let cells_sampled = cells;

        // Phase B — per-road row folding. Each road scans the new cell
        // metas in order and folds its weighted feature rows into its
        // own accumulators, so the per-(road, regime) row sequence is
        // identical to the serial cells-outer/roads-inner loop. Roads
        // own disjoint accumulators: bit-identical at any thread count.
        // The two row-staging vectors live in per-worker scratch and
        // are reused across every (road, cell) pair — the previous
        // per-pair allocations serialized the whole phase on the
        // allocator.
        let rows_before: usize = self.accums.iter().flatten().map(GramSystem::rows).sum();
        let num_regimes = self.num_regimes;
        let seed_neighbors = &self.seed_neighbors;
        let spatial_neighbors = &self.spatial_neighbors;
        let metas = &metas;
        let seed_enc = &seed_enc;
        let field_enc = &field_enc;
        let p_up = &p_up;
        crate::parallel::for_each_mut_with(
            threads,
            &mut self.accums,
            || (Vec::<(f64, f64)>::new(), Vec::<(f64, f64)>::new()),
            |(nb, sp), r, regs| {
                let road = RoadId(r as u32);
                for (ci, cm) in metas.iter().enumerate() {
                    if !cm.live {
                        continue;
                    }
                    let Some(v) = history.speed(cm.day as usize, cm.slot as usize, road) else {
                        continue;
                    };
                    let Some(dev) = stats.deviation_of(cm.slot as usize, road, v) else {
                        continue;
                    };
                    let se = &seed_enc[ci * num_seeds..(ci + 1) * num_seeds];
                    nb.clear();
                    for &(si, q) in &seed_neighbors[r] {
                        let e = se[si];
                        if !e.is_nan() {
                            nb.push((q, e));
                        }
                    }
                    sp.clear();
                    for &(si, w) in &spatial_neighbors[r] {
                        let e = se[si];
                        if !e.is_nan() {
                            sp.push((w, e));
                        }
                    }
                    let p_up_r = if has_trend {
                        p_up[ci * n + r]
                    } else if dev >= 1.0 {
                        // No trend model supplied: the true trend.
                        1.0
                    } else {
                        0.0
                    };
                    let x = features(
                        field_enc[ci * n + r],
                        nb,
                        sp,
                        cm.citywide_enc,
                        2.0 * p_up_r - 1.0,
                    );

                    // Soft regime assignment: each row enters both
                    // regimes, weighted by the trend posterior
                    // (weighted least squares via sqrt-scaling).
                    let (w_up, w_down) = if config.split_regimes {
                        (p_up_r, 1.0 - p_up_r)
                    } else {
                        (1.0, 0.0)
                    };
                    let y = encode_dev(dev, ls);
                    for (regime, w) in [(0usize, w_up), (1, w_down)] {
                        if regime >= num_regimes || w < 0.02 {
                            continue;
                        }
                        let sw = w.sqrt();
                        let row: [f64; NUM_FEATURES] = std::array::from_fn(|j| x[j] * sw);
                        regs[regime].push_row(&row, y * sw);
                    }
                }
            },
        );
        let rows_after: usize = self.accums.iter().flatten().map(GramSystem::rows).sum();

        self.folded_days = days;
        Ok(FoldStats {
            new_days: days - from_day,
            cells_sampled,
            rows_folded: rows_after - rows_before,
            refolded,
        })
    }

    /// Solves the coefficient hierarchy from the current accumulators
    /// and assembles a serving model. Pure in the accumulators; can be
    /// called after every fold.
    pub fn fit(&self, threads: usize) -> Result<HlmModel> {
        let up = self.fit_regime(0, threads)?;
        let down = if self.config.split_regimes {
            self.fit_regime(1, threads)?
        } else {
            up.clone()
        };
        Ok(HlmModel {
            config: self.config.clone(),
            seeds: self.seeds.clone(),
            corr: self.corr.clone(),
            seed_neighbors: self.seed_neighbors.clone(),
            spatial_neighbors: self.spatial_neighbors.clone(),
            road_class: self.road_class.clone(),
            regimes: [up, down],
        })
    }

    fn fit_regime(&self, regime: usize, threads: usize) -> Result<RegimeCoefs> {
        let n = self.accums.len();
        // Class-level pooled systems (serial: per-road systems merge in
        // road order, which fixes the pooled sums' association order).
        let mut class_groups: Vec<GramSystem> =
            (0..4).map(|_| GramSystem::new(NUM_FEATURES)).collect();
        for r in 0..n {
            let g = &self.accums[r][regime];
            if g.rows() == 0 {
                continue;
            }
            class_groups[self.road_class[r]].merge(g);
        }
        // Keep empty classes representable: hierarchical_fit_grams
        // hands them the city coefficients.
        let hf = hierarchical_fit_grams(
            &class_groups,
            self.config.lambda_city,
            self.config.lambda_class,
        )
        .map_err(|e| CoreError::Numerical(format!("class fit ({regime}): {e}")))?;

        let mut road_coefs: Vec<Option<Vec<f64>>> = vec![None; n];
        if self.config.pooling == Pooling::Full {
            // Per-road fits are independent; collect them in index
            // order, then scan serially so the first error reported
            // matches the serial loop's.
            let fits: Vec<Result<Option<Vec<f64>>>> = crate::parallel::fill(threads, n, |r| {
                let g = &self.accums[r][regime];
                if g.rows() < self.config.min_road_rows {
                    return Ok(None);
                }
                let prior = &hf.per_group[self.road_class[r]];
                shrunk_fit_gram(g, self.config.lambda_road, Some(prior))
                    .map(Some)
                    .map_err(|e| CoreError::Numerical(format!("road {r} fit ({regime}): {e}")))
            });
            for (r, fit) in fits.into_iter().enumerate() {
                road_coefs[r] = fit?;
            }
        }
        Ok(RegimeCoefs {
            city: hf.global,
            class: hf.per_group,
            road: road_coefs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::CorrelationConfig;
    use trafficsim::dataset::{metro_small, DatasetParams};

    fn trained() -> (
        trafficsim::dataset::Dataset,
        HistoryStats,
        HlmModel,
        Vec<RoadId>,
    ) {
        let ds = metro_small(&DatasetParams {
            training_days: 10,
            test_days: 1,
            ..DatasetParams::default()
        });
        let stats = HistoryStats::compute(&ds.history);
        let corr = CorrelationGraph::build(
            &ds.graph,
            &ds.history,
            &stats,
            &CorrelationConfig {
                min_cotrend: 0.6,
                min_co_observations: 6,
                ..CorrelationConfig::default()
            },
        );
        let seeds: Vec<RoadId> = (0..15u32).map(|i| RoadId(i * 6)).collect();
        let model = HlmModel::train(
            &ds.graph,
            &ds.history,
            &stats,
            &corr,
            &seeds,
            &HlmConfig::default(),
        )
        .unwrap();
        (ds, stats, model, seeds)
    }

    #[test]
    fn features_fall_back_to_citywide() {
        let f = features(1.0, &[], &[], 1.1, 0.0);
        assert_eq!(f, [1.0, 1.0, 1.1, 1.1, 1.1, 0.0]);
    }

    #[test]
    fn features_carry_all_channels() {
        let f = features(0.9, &[(0.9, 2.0), (0.1, 1.0)], &[(1.0, 0.5)], 1.5, 0.4);
        assert_eq!(f[0], 1.0);
        assert_eq!(f[1], 0.9); // local propagated field
        assert_eq!(f[2], 2.0); // strongest correlated seed
        assert_eq!(f[3], 1.5); // citywide
        assert_eq!(f[4], 0.5); // spatial IDW channel
        assert_eq!(f[5], 0.4); // centred trend posterior
    }

    #[test]
    fn spatial_feature_weights_by_inverse_distance() {
        // Two spatial seeds, the nearer one dominates.
        let f = features(
            1.0,
            &[],
            &[(1.0 / 100.0, 2.0), (1.0 / 1000.0, 1.0)],
            1.5,
            0.0,
        );
        let expected = (2.0 / 100.0 + 1.0 / 1000.0) / (1.0 / 100.0 + 1.0 / 1000.0);
        assert!((f[4] - expected).abs() < 1e-12);
    }

    #[test]
    fn train_rejects_empty_seed_set() {
        let ds = metro_small(&DatasetParams {
            training_days: 3,
            test_days: 1,
            ..DatasetParams::default()
        });
        let stats = HistoryStats::compute(&ds.history);
        let corr = CorrelationGraph::build(
            &ds.graph,
            &ds.history,
            &stats,
            &CorrelationConfig::default(),
        );
        let err = HlmModel::train(
            &ds.graph,
            &ds.history,
            &stats,
            &corr,
            &[],
            &HlmConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::InsufficientData(_)));
    }

    #[test]
    fn train_rejects_out_of_range_seed() {
        let ds = metro_small(&DatasetParams {
            training_days: 3,
            test_days: 1,
            ..DatasetParams::default()
        });
        let stats = HistoryStats::compute(&ds.history);
        let corr = CorrelationGraph::build(
            &ds.graph,
            &ds.history,
            &stats,
            &CorrelationConfig::default(),
        );
        let err = HlmModel::train(
            &ds.graph,
            &ds.history,
            &stats,
            &corr,
            &[RoadId(9999)],
            &HlmConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, CoreError::InvalidRoad(9999));
    }

    #[test]
    fn predictions_are_clamped_and_sized() {
        let (ds, _, model, seeds) = trained();
        let devs: Vec<Option<f64>> = seeds.iter().map(|_| Some(10.0)).collect(); // absurd input
        let p_up = vec![0.5; ds.graph.num_roads()];
        let pred = model.predict_deviations(&devs, &p_up);
        assert_eq!(pred.len(), ds.graph.num_roads());
        for d in &pred {
            assert!(*d >= 0.2 && *d <= 2.0);
        }
    }

    #[test]
    fn neutral_seeds_predict_near_historical_average() {
        let (ds, _, model, seeds) = trained();
        // All seeds exactly at their historical average.
        let devs: Vec<Option<f64>> = seeds.iter().map(|_| Some(1.0)).collect();
        let p_up = vec![0.5; ds.graph.num_roads()];
        let pred = model.predict_deviations(&devs, &p_up);
        let mean_dev = linalg::stats::mean(&pred);
        assert!(
            (mean_dev - 1.0).abs() < 0.15,
            "neutral input should give near-neutral output: {mean_dev}"
        );
    }

    #[test]
    fn depressed_seeds_depress_predictions() {
        let (ds, _, model, seeds) = trained();
        let low: Vec<Option<f64>> = seeds.iter().map(|_| Some(0.6)).collect();
        let high: Vec<Option<f64>> = seeds.iter().map(|_| Some(1.3)).collect();
        let p_low = vec![0.2; ds.graph.num_roads()];
        let p_high = vec![0.8; ds.graph.num_roads()];
        let pred_low = model.predict_deviations(&low, &p_low);
        let pred_high = model.predict_deviations(&high, &p_high);
        assert!(
            linalg::stats::mean(&pred_low) < linalg::stats::mean(&pred_high),
            "model ignores its inputs"
        );
    }

    #[test]
    fn missing_seed_answers_are_tolerated() {
        let (ds, _, model, seeds) = trained();
        let mut devs: Vec<Option<f64>> = seeds.iter().map(|_| Some(0.9)).collect();
        devs[0] = None;
        devs[3] = None;
        let p_up = vec![0.5; ds.graph.num_roads()];
        let pred = model.predict_deviations(&devs, &p_up);
        assert!(pred.iter().all(|d| d.is_finite()));
    }

    #[test]
    fn global_only_pooling_gives_identical_coefs_for_all_roads() {
        let ds = metro_small(&DatasetParams {
            training_days: 8,
            test_days: 1,
            ..DatasetParams::default()
        });
        let stats = HistoryStats::compute(&ds.history);
        let corr = CorrelationGraph::build(
            &ds.graph,
            &ds.history,
            &stats,
            &CorrelationConfig {
                min_cotrend: 0.6,
                min_co_observations: 6,
                ..CorrelationConfig::default()
            },
        );
        let seeds: Vec<RoadId> = (0..10u32).map(|i| RoadId(i * 9)).collect();
        let model = HlmModel::train(
            &ds.graph,
            &ds.history,
            &stats,
            &corr,
            &seeds,
            &HlmConfig {
                pooling: Pooling::GlobalOnly,
                ..HlmConfig::default()
            },
        )
        .unwrap();
        // With one global coefficient set and identical features, roads
        // with no seed neighbours must predict identically.
        let devs: Vec<Option<f64>> = seeds.iter().map(|_| Some(0.8)).collect();
        let p_up = vec![0.5; ds.graph.num_roads()];
        let pred = model.predict_deviations(&devs, &p_up);
        let lonely: Vec<usize> = (0..ds.graph.num_roads())
            .filter(|&r| model.seed_neighbors[r].is_empty())
            .collect();
        if lonely.len() >= 2 {
            let first = pred[lonely[0]];
            for &r in &lonely[1..] {
                assert!((pred[r] - first).abs() < 1e-12);
            }
        }
    }

    fn encoded(model: &HlmModel) -> bytes::BytesMut {
        let mut buf = bytes::BytesMut::new();
        model.encode_snapshot_into(&mut buf);
        buf
    }

    fn training_fixture(
        days: usize,
    ) -> (
        trafficsim::dataset::Dataset,
        HistoryStats,
        CorrelationGraph,
        Vec<RoadId>,
    ) {
        let ds = metro_small(&DatasetParams {
            training_days: days,
            test_days: 1,
            ..DatasetParams::default()
        });
        let stats = HistoryStats::compute(&ds.history);
        let corr = CorrelationGraph::build(
            &ds.graph,
            &ds.history,
            &stats,
            &CorrelationConfig {
                min_cotrend: 0.6,
                min_co_observations: 6,
                ..CorrelationConfig::default()
            },
        );
        let seeds: Vec<RoadId> = (0..15u32).map(|i| RoadId(i * 6)).collect();
        (ds, stats, corr, seeds)
    }

    #[test]
    fn incremental_fold_is_bit_identical_to_full_train() {
        let (ds, stats, corr, seeds) = training_fixture(8);
        let config = HlmConfig::default();
        let trend = crate::inference::trend_model::TrendModel::new(
            corr.clone(),
            &stats,
            crate::inference::trend_model::TrendModelConfig::default(),
        );
        let engine = TrendEngine::default();

        let full = HlmModel::train_with_trends_threaded(
            &ds.graph,
            &ds.history,
            &stats,
            &corr,
            &seeds,
            &config,
            Some((&trend, &engine)),
            2,
        )
        .unwrap();

        for &threads in &[1usize, 2, 8] {
            let mut trainer = HlmTrainer::new(
                &ds.graph,
                &corr,
                &seeds,
                &config,
                Some((Cow::Borrowed(&trend), engine.clone())),
                threads,
            )
            .unwrap();
            let mut total_days = 0;
            for cut in [3usize, 5, 8] {
                let fs = trainer
                    .fold(&ds.history.truncated(cut), &stats, threads)
                    .unwrap();
                assert_eq!(fs.new_days, cut - total_days);
                assert!(!fs.refolded, "stride is stable on this history");
                total_days = cut;
            }
            assert_eq!(trainer.folded_days(), 8);
            // Refolding the same history is a no-op.
            let fs = trainer.fold(&ds.history, &stats, threads).unwrap();
            assert_eq!((fs.new_days, fs.cells_sampled, fs.rows_folded), (0, 0, 0));
            let inc = trainer.fit(threads).unwrap();
            assert_eq!(
                encoded(&inc),
                encoded(&full),
                "threads={threads}: incremental fold diverged from full train"
            );
        }
    }

    #[test]
    fn stride_shift_refolds_and_stays_bit_identical() {
        let (ds, stats, corr, seeds) = training_fixture(8);
        // A tiny cell cap forces the stride to grow with the history,
        // exercising the internal refold path.
        let config = HlmConfig {
            max_cells_per_road: 64,
            ..HlmConfig::default()
        };
        let full = HlmModel::train(&ds.graph, &ds.history, &stats, &corr, &seeds, &config).unwrap();

        let mut trainer = HlmTrainer::new(&ds.graph, &corr, &seeds, &config, None, 2).unwrap();
        let slots = ds.history.clock().slots_per_day;
        let mut refolds = 0;
        for cut in 1..=8usize {
            let expect_refold = trainer.stride().is_some()
                && trainer.stride() != Some(trainer.stride_for(cut, slots));
            let fs = trainer.fold(&ds.history.truncated(cut), &stats, 2).unwrap();
            assert_eq!(fs.refolded, expect_refold, "day {cut}");
            refolds += fs.refolded as usize;
        }
        assert!(refolds > 0, "cap of 64 cells must shift the stride");
        let inc = trainer.fit(2).unwrap();
        assert_eq!(encoded(&inc), encoded(&full));
    }

    #[test]
    fn fold_rejects_shape_mismatch_and_shrinking_history() {
        let (ds, stats, corr, seeds) = training_fixture(4);
        let config = HlmConfig::default();
        let mut trainer = HlmTrainer::new(&ds.graph, &corr, &seeds, &config, None, 1).unwrap();
        trainer.fold(&ds.history, &stats, 1).unwrap();

        // A shorter history than already folded is a shape error, not a
        // silent no-op.
        let err = trainer
            .fold(&ds.history.truncated(2), &stats, 1)
            .unwrap_err();
        assert!(matches!(err, CoreError::ShapeMismatch { .. }), "{err:?}");

        // A history over a different network is rejected too.
        let other = trafficsim::dataset::grid_medium(&DatasetParams {
            training_days: 4,
            test_days: 1,
            ..DatasetParams::default()
        });
        assert_ne!(other.graph.num_roads(), ds.graph.num_roads());
        let err = trainer.fold(&other.history, &stats, 1).unwrap_err();
        assert!(matches!(err, CoreError::ShapeMismatch { .. }), "{err:?}");

        // Failed folds leave the trainer usable.
        let model = trainer.fit(1).unwrap();
        let direct =
            HlmModel::train(&ds.graph, &ds.history, &stats, &corr, &seeds, &config).unwrap();
        assert_eq!(encoded(&model), encoded(&direct));
    }
}
