//! The end-to-end two-step estimator, the [`SpeedEstimator`] serving
//! interface, and the reusable [`EstimateScratch`] workspace.

use crate::correlation::CorrelationGraph;
use crate::inference::hlm::{FoldStats, HlmConfig, HlmModel, HlmScratch, HlmTrainer};
use crate::inference::trend_model::{TrendEngine, TrendModel, TrendModelConfig, TrendScratch};
use crate::online::IngestDelta;
use crate::seed::objective::{InfluenceModel, SeedObjective};
use crate::shard::{ShardEstimate, ShardPlan, ShardView};
use crate::{CoreError, Result};
use roadnet::{RoadGraph, RoadId};
use std::sync::Arc;
use std::time::Instant;
use trafficsim::{HistoricalData, HistoryStats};

/// Configuration of the full estimator.
#[derive(Debug, Clone)]
pub struct EstimatorConfig {
    /// Step-1 MRF construction.
    pub trend: TrendModelConfig,
    /// Step-1 inference engine.
    pub engine: TrendEngine,
    /// Step-2 hierarchical linear model.
    pub hlm: HlmConfig,
    /// Worker threads for the training pipeline (`0` = all cores,
    /// `1` = serial). The trained model is bit-identical for every
    /// value (see [`crate::parallel`]), so `0` is always safe; serving
    /// is unaffected.
    pub train_threads: usize,
    /// Incremental-retrain policy: when one ingest day's correlation
    /// delta touches more than this fraction of tracked pairs, the
    /// serving layer re-anchors with a full retrain instead of
    /// patching (the patch would cost as much, and a churning graph is
    /// a sign the frozen context has drifted). Policy only — it never
    /// changes what any trained model computes, so it is excluded from
    /// configuration fingerprints.
    pub max_incremental_fraction: f64,
    /// Drift-adaptation policy: when set, the ingest path measures the
    /// live-vs-context drift signal each day and a trigger rebootstraps
    /// the correlation model and re-selects seeds
    /// ([`crate::drift`]). `None` (the default) disables adaptation.
    /// Policy only — excluded from configuration fingerprints like
    /// `max_incremental_fraction`.
    pub drift: Option<crate::drift::DriftConfig>,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        EstimatorConfig {
            trend: TrendModelConfig::default(),
            engine: TrendEngine::default(),
            hlm: HlmConfig::default(),
            train_threads: 0,
            max_incremental_fraction: 0.5,
            drift: None,
        }
    }
}

/// One slot's estimation output.
#[derive(Debug, Clone)]
pub struct SpeedEstimate {
    /// Estimated speed (km/h) per road; seeds carry their observed
    /// speeds verbatim.
    pub speeds: Vec<f64>,
    /// Step-1 posterior up-probability per road.
    pub p_up: Vec<f64>,
    /// Hard trend decisions per road.
    pub trends: Vec<bool>,
    /// Per-road confidence in `[0, 1]`: the probability that the seed
    /// set pins the road down under the influence model — exactly the
    /// per-road term of the seed-selection objective
    /// (`1 − Π_{s∈S} (1 − q(s → r))`). Seeds report 1. Static per seed
    /// set; shared (not copied) across estimates. The integration tests
    /// verify it is *calibrated*: high-confidence roads carry lower
    /// error.
    pub confidence: Arc<Vec<f64>>,
    /// Iterations the trend engine used.
    pub trend_iterations: usize,
    /// Observations that named a road outside the estimator's seed set
    /// and were skipped. Always 0 on a clean feed; a persistent nonzero
    /// count means the caller is routing the wrong crowd stream at this
    /// estimator.
    pub ignored_observations: usize,
}

impl SpeedEstimate {
    /// Wraps a bare speed vector — for estimators (the baselines) that
    /// produce no trend posterior or confidence channel.
    pub fn from_speeds(speeds: Vec<f64>) -> SpeedEstimate {
        SpeedEstimate {
            speeds,
            p_up: Vec::new(),
            trends: Vec::new(),
            confidence: Arc::new(Vec::new()),
            trend_iterations: 0,
            ignored_observations: 0,
        }
    }
}

/// Reusable buffers for repeated estimates: trend-inference workspaces
/// (messages, marginals, sampler state), HLM staging buffers, and the
/// observation-translation vectors all survive between calls. Hold one
/// per worker thread; after the first call on a given estimator, an
/// estimate does no MRF rebuilds and no workspace allocations.
#[derive(Debug, Default)]
pub struct EstimateScratch {
    trend: TrendScratch,
    hlm: HlmScratch,
    seed_devs: Vec<Option<f64>>,
    trend_obs: Vec<(RoadId, bool)>,
    /// Road → position in the current shard request's road list;
    /// `u32::MAX` outside a call (entries are reset on exit).
    road_pos: Vec<u32>,
}

impl EstimateScratch {
    /// An empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        EstimateScratch::default()
    }
}

/// A serving-time speed estimator: anything that can answer "what is
/// every road's speed at this slot, given these crowdsourced
/// observations". Implemented by [`TrafficEstimator`] and by every
/// baseline in [`crate::baselines`], so evaluation, benchmarks, and the
/// batch server ([`crate::serve`]) drive all methods through one
/// interface.
///
/// `scratch` carries reusable buffers (one per worker thread);
/// implementations that do not need them ignore it. Estimators must be
/// shareable across threads — training happens before serving, so
/// `&self` here is read-only.
pub trait SpeedEstimator: Send + Sync {
    /// Short stable name for tables and logs.
    fn name(&self) -> &'static str;

    /// Estimates every road's speed at `slot_of_day` from crowdsourced
    /// observations `(road, speed)`.
    ///
    /// Baselines that produce no trend posterior leave `p_up` and
    /// `trends` empty.
    fn estimate(
        &self,
        slot_of_day: usize,
        observations: &[(RoadId, f64)],
        scratch: &mut EstimateScratch,
    ) -> SpeedEstimate;

    /// Serving-path entry point: like [`SpeedEstimator::estimate`] but
    /// rejects an empty observation list with
    /// [`CoreError::NoObservations`] instead of silently estimating
    /// from nothing.
    ///
    /// Batch and network serving ([`crate::serve`], the daemon) route
    /// every request through this method so an empty crowd feed turns
    /// into a clean typed error, never a historical-mean answer dressed
    /// up as a live estimate.
    fn try_estimate(
        &self,
        slot_of_day: usize,
        observations: &[(RoadId, f64)],
        scratch: &mut EstimateScratch,
    ) -> Result<SpeedEstimate> {
        if observations.is_empty() {
            return Err(CoreError::NoObservations);
        }
        Ok(self.estimate(slot_of_day, observations, scratch))
    }
}

/// A trained two-step estimator, bound to a seed set.
///
/// Owns everything it needs (correlation graph, history statistics,
/// models), so it can be handed to a serving loop independently of the
/// training data.
#[derive(Debug, Clone)]
pub struct TrafficEstimator {
    stats: HistoryStats,
    trend_model: TrendModel,
    hlm: HlmModel,
    seeds: Vec<RoadId>,
    seed_index: Vec<Option<usize>>, // road -> seed slot
    engine: TrendEngine,
    coverage: Arc<Vec<f64>>,
}

/// Per-road coverage under the influence model = estimate confidence
/// (see [`SpeedEstimate::confidence`]).
fn coverage_of(influence: &InfluenceModel, seeds: &[RoadId]) -> Arc<Vec<f64>> {
    let objective = SeedObjective::new(influence);
    let mut miss = objective.initial_miss();
    for &s in seeds {
        objective.apply(&mut miss, s);
    }
    Arc::new(miss.into_iter().map(|m| 1.0 - m).collect())
}

fn assemble_estimator(
    stats: &HistoryStats,
    trend_model: TrendModel,
    hlm: HlmModel,
    seeds: &[RoadId],
    engine: &TrendEngine,
    influence: &InfluenceModel,
) -> TrafficEstimator {
    let mut seed_index = vec![None; trend_model.num_roads()];
    for (si, s) in seeds.iter().enumerate() {
        seed_index[s.index()] = Some(si);
    }
    TrafficEstimator {
        stats: stats.clone(),
        trend_model,
        hlm,
        seeds: seeds.to_vec(),
        seed_index,
        engine: engine.clone(),
        coverage: coverage_of(influence, seeds),
    }
}

impl TrafficEstimator {
    /// Trains the estimator for a seed set.
    pub fn train(
        graph: &RoadGraph,
        history: &HistoricalData,
        stats: &HistoryStats,
        corr: &CorrelationGraph,
        seeds: &[RoadId],
        config: &EstimatorConfig,
    ) -> Result<TrafficEstimator> {
        Self::train_with_context(graph, history, stats, corr, None, seeds, config)
    }

    /// [`TrafficEstimator::train`] with the *training context* split
    /// from the *serving graph* — the reference arithmetic of
    /// incremental retraining (see [`IncrementalTrainer`]).
    ///
    /// `context` is the correlation graph frozen when the estimator
    /// was bootstrapped: deviation propagation, seed attachment, and
    /// the HLM's phase-A trend posteriors all run over it, so the HLM
    /// coefficients depend only on `(context, history, stats)` and can
    /// be folded a day at a time. `live` is the current materialised
    /// correlation graph: the serving trend model and the coverage
    /// channel track it (`None` = identical to `context`, the
    /// bootstrap case).
    pub fn train_with_context(
        graph: &RoadGraph,
        history: &HistoricalData,
        stats: &HistoryStats,
        context: &CorrelationGraph,
        live: Option<&CorrelationGraph>,
        seeds: &[RoadId],
        config: &EstimatorConfig,
    ) -> Result<TrafficEstimator> {
        if seeds.is_empty() {
            return Err(CoreError::InsufficientData("empty seed set".into()));
        }
        let threads = crate::parallel::resolve_threads(config.train_threads);
        let ctx_trend =
            TrendModel::new_threaded(context.clone(), stats, config.trend.clone(), threads);
        // Training sees the same kind of (noisy) trend posteriors the
        // estimator will mix regimes by at serving time.
        let hlm = HlmModel::train_with_trends_threaded(
            graph,
            history,
            stats,
            context,
            seeds,
            &config.hlm,
            Some((&ctx_trend, &config.engine)),
            threads,
        )?;
        let (trend_model, influence) = match live {
            Some(live) => (
                TrendModel::new_threaded(live.clone(), stats, config.trend.clone(), threads),
                InfluenceModel::build_threaded(live, &config.hlm.influence, threads),
            ),
            None => (
                ctx_trend,
                InfluenceModel::build_threaded(context, &config.hlm.influence, threads),
            ),
        };
        Ok(assemble_estimator(
            stats,
            trend_model,
            hlm,
            seeds,
            &config.engine,
            &influence,
        ))
    }

    /// The seed set the estimator observes.
    pub fn seeds(&self) -> &[RoadId] {
        &self.seeds
    }

    /// Serialises the trained estimator in the snapshot codec style:
    /// history statistics, the correlation graph (written once, shared
    /// by both models on decode), the trend-model and HLM bodies, the
    /// seed set, the serving engine, and the coverage vector. Derived
    /// structures (compiled slot MRFs, the seed index, the CSR
    /// adjacency) are rebuilt deterministically on decode, so a decoded
    /// estimator answers [`TrafficEstimator::estimate_with`]
    /// bit-identically to the encoder's.
    pub fn encode_snapshot_into(&self, buf: &mut bytes::BytesMut) {
        self.stats.encode_into(buf);
        crate::codec::encode_correlation_graph(self.trend_model.correlation(), buf);
        self.trend_model.encode_snapshot_into(buf);
        self.hlm.encode_snapshot_into(buf);
        crate::codec::put_road_slice(buf, &self.seeds);
        crate::codec::encode_engine(&self.engine, buf);
        crate::codec::put_f64_slice(buf, &self.coverage);
    }

    /// Decodes an estimator written by
    /// [`TrafficEstimator::encode_snapshot_into`].
    pub fn decode_snapshot_from(
        buf: &mut impl bytes::Buf,
    ) -> std::result::Result<TrafficEstimator, crate::codec::DecodeError> {
        use crate::codec::{self, DecodeError};
        let stats = HistoryStats::decode_from(buf)?;
        let corr = codec::decode_correlation_graph(buf)?;
        let n = corr.num_roads();
        if n != stats.num_roads() {
            return Err(DecodeError::Corrupt(format!(
                "correlation graph spans {n} roads, statistics {}",
                stats.num_roads()
            )));
        }
        let trend_model = TrendModel::decode_snapshot_from(corr.clone(), buf)?;
        let hlm = HlmModel::decode_snapshot_from(corr, buf)?;
        let seeds = codec::get_road_vec(buf)?;
        let engine = codec::decode_engine(buf)?;
        let coverage = codec::get_f64_vec(buf)?;
        if coverage.len() != n {
            return Err(DecodeError::Corrupt(format!(
                "coverage vector holds {} roads, expected {n}",
                coverage.len()
            )));
        }
        let mut seed_index = vec![None; n];
        for (si, s) in seeds.iter().enumerate() {
            if s.index() >= n {
                return Err(DecodeError::Corrupt(format!("seed {s} outside {n} roads")));
            }
            seed_index[s.index()] = Some(si);
        }
        Ok(TrafficEstimator {
            stats,
            trend_model,
            hlm,
            seeds,
            seed_index,
            engine,
            coverage: Arc::new(coverage),
        })
    }

    /// The trained trend model (exposed for experiments).
    pub fn trend_model(&self) -> &TrendModel {
        &self.trend_model
    }

    /// Per-road seed-coverage confidence (see
    /// [`SpeedEstimate::confidence`]).
    pub fn coverage(&self) -> &[f64] {
        &self.coverage
    }

    /// Estimates every road's speed at `slot_of_day` from crowdsourced
    /// seed observations `(road, speed)`.
    ///
    /// Observations for roads outside the seed set are skipped and
    /// counted in [`SpeedEstimate::ignored_observations`]; seeds with no
    /// observation simply contribute no evidence — the estimator
    /// degrades gracefully when the crowd is late.
    ///
    /// Allocates fresh workspaces per call; serving loops should hold an
    /// [`EstimateScratch`] per worker and call
    /// [`TrafficEstimator::estimate_with`].
    pub fn estimate(&self, slot_of_day: usize, observations: &[(RoadId, f64)]) -> SpeedEstimate {
        self.estimate_with(slot_of_day, observations, &mut EstimateScratch::new())
    }

    /// Estimates reusing the buffers in `scratch`; identical arithmetic
    /// and iteration order to [`TrafficEstimator::estimate`], so the
    /// outputs are bit-identical (given the same engine seed).
    pub fn estimate_with(
        &self,
        slot_of_day: usize,
        observations: &[(RoadId, f64)],
        scratch: &mut EstimateScratch,
    ) -> SpeedEstimate {
        let n = self.trend_model.num_roads();
        // Split borrows: translation buffers feed both inference steps.
        let EstimateScratch {
            trend,
            hlm,
            seed_devs,
            trend_obs,
            road_pos: _,
        } = scratch;

        // Translate observations into trend evidence + seed deviations.
        seed_devs.clear();
        seed_devs.resize(self.seeds.len(), None);
        trend_obs.clear();
        let mut ignored = 0usize;
        for &(road, speed) in observations {
            let Some(si) = self.seed_index.get(road.index()).copied().flatten() else {
                ignored += 1;
                continue;
            };
            trend_obs.push((road, self.stats.trend_of(slot_of_day, road, speed)));
            seed_devs[si] = self.stats.deviation_of(slot_of_day, road, speed);
        }

        // Step 1: trend posterior.
        let stats = self
            .trend_model
            .infer_with(slot_of_day, trend_obs, &self.engine, trend);

        // Step 2: deviations -> speeds.
        self.hlm
            .predict_deviations_with(seed_devs, &trend.p_up, hlm);
        let devs = hlm.deviations();
        let mut speeds: Vec<f64> = (0..n)
            .map(|r| {
                let road = RoadId(r as u32);
                devs[r] * self.stats.mean(slot_of_day, road)
            })
            .collect();
        // Seeds report their crowd-observed speeds verbatim.
        for &(road, speed) in observations {
            if self
                .seed_index
                .get(road.index())
                .copied()
                .flatten()
                .is_some()
            {
                speeds[road.index()] = speed;
            }
        }

        let trends: Vec<bool> = trend.p_up.iter().map(|&p| p >= 0.5).collect();
        SpeedEstimate {
            speeds,
            p_up: trend.p_up.clone(),
            trends,
            confidence: Arc::clone(&self.coverage),
            trend_iterations: stats.iterations,
            ignored_observations: ignored,
        }
    }

    /// Builds this shard's serving view under `plan`: the owned roads
    /// plus a masked trend model over exactly the live correlation
    /// components that intersect them (see [`ShardView`]).
    ///
    /// Rebuilt at every epoch publish — ingested days can merge
    /// components, growing a shard's active set. Only restriction-safe
    /// engines are accepted: LBP (per-component convergence) and
    /// prior-only. Sampling and global-sum engines (Gibbs, mean-field,
    /// exact) consume cross-component state (one RNG stream, a global
    /// stopping rule), so a masked run would *not* be bit-identical —
    /// such configurations are rejected with [`CoreError::ShardConfig`]
    /// instead of serving silently-drifting estimates.
    pub fn shard_view(&self, plan: &ShardPlan, shard: usize) -> Result<ShardView> {
        match self.engine {
            TrendEngine::Lbp(_) | TrendEngine::PriorOnly => {}
            _ => {
                return Err(CoreError::ShardConfig(
                    "sharded serving requires a restriction-safe trend engine (lbp or prior-only)"
                        .into(),
                ))
            }
        }
        let n = self.trend_model.num_roads();
        if plan.num_roads() != n {
            return Err(CoreError::ShapeMismatch {
                expected: format!("{n} roads (estimator)"),
                got: format!("{} roads (shard plan)", plan.num_roads()),
            });
        }
        if shard >= plan.num_shards {
            return Err(CoreError::ShardConfig(format!(
                "shard {shard} outside a {}-shard plan",
                plan.num_shards
            )));
        }
        let corr = self.trend_model.correlation();
        let (comp, ncomp) = crate::shard::correlation_components(corr);
        let mut active_comp = vec![false; ncomp];
        for (r, &c) in comp.iter().enumerate() {
            if plan.shard_of(RoadId(r as u32)) == shard {
                active_comp[c as usize] = true;
            }
        }
        let active: Vec<bool> = comp.iter().map(|&c| active_comp[c as usize]).collect();
        let edges: Vec<_> = corr
            .edges()
            .iter()
            .filter(|e| active[e.a.index()])
            .copied()
            .collect();
        let masked = CorrelationGraph::from_edges(n, edges)
            .expect("masked edges are a subset of a validated graph");
        // Rebuilding from (masked graph, stats, config) reproduces the
        // serving model's priors bitwise and — because whole components
        // keep every degree — its couplings too.
        let trend = TrendModel::new(masked, &self.stats, self.trend_model.config().clone());
        Ok(ShardView {
            shard,
            plan_fingerprint: plan.fingerprint(),
            owned: plan.owned_roads(shard),
            active,
            trend,
        })
    }

    /// Estimates the roads in `roads` (each owned by `view`, any
    /// order) at `slot_of_day` — the shard worker's serving path.
    ///
    /// Runs the same two steps as
    /// [`TrafficEstimator::estimate_with`] against the view's masked
    /// trend model and a masked deviation propagation, so per-request
    /// inference cost scales with the shard's share of the correlation
    /// graph instead of the whole city — while every returned value is
    /// bit-identical to the corresponding entry of the full estimate
    /// (pinned by `shard_serving_is_bit_identical` below and the
    /// router integration tests).
    ///
    /// The full observation list must be supplied (not just this
    /// shard's): the citywide-mean and spatial features read every
    /// seed, and seeds in foreign components enter as isolated
    /// evidence with no effect on owned posteriors.
    pub fn estimate_shard_with(
        &self,
        view: &ShardView,
        slot_of_day: usize,
        observations: &[(RoadId, f64)],
        roads: &[RoadId],
        scratch: &mut EstimateScratch,
    ) -> Result<ShardEstimate> {
        if observations.is_empty() {
            return Err(CoreError::NoObservations);
        }
        let n = self.trend_model.num_roads();
        for &r in roads {
            if r.index() >= n {
                return Err(CoreError::InvalidRoad(r.0));
            }
            if !view.owns(r) {
                return Err(CoreError::ShardConfig(format!(
                    "road {} is not owned by shard {}",
                    r.0, view.shard
                )));
            }
        }
        let EstimateScratch {
            trend,
            hlm,
            seed_devs,
            trend_obs,
            road_pos,
        } = scratch;

        // Translate observations exactly as the unsharded path does.
        seed_devs.clear();
        seed_devs.resize(self.seeds.len(), None);
        trend_obs.clear();
        let mut ignored = 0usize;
        for &(road, speed) in observations {
            let Some(si) = self.seed_index.get(road.index()).copied().flatten() else {
                ignored += 1;
                continue;
            };
            trend_obs.push((road, self.stats.trend_of(slot_of_day, road, speed)));
            seed_devs[si] = self.stats.deviation_of(slot_of_day, road, speed);
        }

        // Step 1 on the masked model (full-width posteriors).
        let stats = view
            .trend
            .infer_with(slot_of_day, trend_obs, &self.engine, trend);

        // Step 2 restricted to the requested roads.
        self.hlm.predict_deviations_masked(
            seed_devs,
            &trend.p_up,
            view.trend.correlation(),
            roads,
            hlm,
        );
        let devs = hlm.deviations();
        let mut speeds: Vec<f64> = roads
            .iter()
            .zip(devs)
            .map(|(&road, &d)| d * self.stats.mean(slot_of_day, road))
            .collect();
        // Seeds report their crowd-observed speeds verbatim.
        road_pos.resize(n, u32::MAX);
        for (i, &r) in roads.iter().enumerate() {
            road_pos[r.index()] = i as u32;
        }
        for &(road, speed) in observations {
            if self
                .seed_index
                .get(road.index())
                .copied()
                .flatten()
                .is_some()
            {
                let p = road_pos[road.index()];
                if p != u32::MAX {
                    speeds[p as usize] = speed;
                }
            }
        }
        for &r in roads {
            road_pos[r.index()] = u32::MAX;
        }

        Ok(ShardEstimate {
            speeds,
            p_up: roads.iter().map(|&r| trend.p_up[r.index()]).collect(),
            trends: roads
                .iter()
                .map(|&r| trend.p_up[r.index()] >= 0.5)
                .collect(),
            confidence: roads.iter().map(|&r| self.coverage[r.index()]).collect(),
            trend_iterations: stats.iterations,
            ignored_observations: ignored,
        })
    }
}

impl SpeedEstimator for TrafficEstimator {
    fn name(&self) -> &'static str {
        "two-step"
    }

    fn estimate(
        &self,
        slot_of_day: usize,
        observations: &[(RoadId, f64)],
        scratch: &mut EstimateScratch,
    ) -> SpeedEstimate {
        self.estimate_with(slot_of_day, observations, scratch)
    }
}

/// What one [`IncrementalTrainer::advance`] did, for operational
/// telemetry: which layers were patched vs rebuilt, how much of the
/// model each stage touched, and per-stage wall time.
#[derive(Debug, Clone, Copy, Default)]
pub struct RetrainStats {
    /// Correlation edges whose weights were patched in place.
    pub edges_updated: usize,
    /// Correlation edges inserted.
    pub edges_added: usize,
    /// Correlation edges dropped.
    pub edges_removed: usize,
    /// Distinct roads incident to any changed edge.
    pub roads_touched: usize,
    /// The delta changed graph membership, forcing a full trend-model
    /// recompile (weight-only deltas patch compiled slot MRFs in
    /// place).
    pub trend_rebuilt: bool,
    /// What the HLM fold did (new cells, rows, stride refolds).
    pub fold: FoldStats,
    /// Stage wall times, milliseconds.
    pub corr_ms: u64,
    /// Trend-model patch/rebuild time.
    pub trend_ms: u64,
    /// Influence-model dirty-row recompute time.
    pub influence_ms: u64,
    /// HLM day-fold time.
    pub hlm_fold_ms: u64,
    /// Coefficient-hierarchy solve + estimator assembly time.
    pub hlm_fit_ms: u64,
}

/// Delta-propagating trainer: turns `INGEST_DAY` from a from-scratch
/// retrain into `O(changed)` work per layer, with the result
/// bit-identical to the reference full retrain
/// ([`TrafficEstimator::train_with_context`] over the same frozen
/// context and day sequence) at any thread count.
///
/// Frozen at [`IncrementalTrainer::build`]: the context correlation
/// graph, the history statistics, and the [`HlmTrainer`]'s seed
/// attachment + phase-A trend model. Maintained per
/// [`IncrementalTrainer::advance`]:
///
/// * the **live correlation graph**, patched in place from the ingest
///   delta ([`CorrelationGraph::apply_delta`]);
/// * the **serving trend model** — weight-only deltas patch the
///   compiled slot MRFs ([`TrendModel::patched`]); membership changes
///   recompile from the live graph;
/// * the **influence model**, recomputing only reach rows the changed
///   edges can affect ([`InfluenceModel::patched`]) — which also
///   refreshes the coverage channel;
/// * the **HLM accumulators**, folding only the new day's sampled
///   cells ([`HlmTrainer::fold`]) before a cheap coefficient re-solve.
///
/// An `Err` from `advance` can leave the layers at different days —
/// discard the trainer and fall back to a full retrain (the serving
/// layer does exactly that).
pub struct IncrementalTrainer {
    config: EstimatorConfig,
    stats: HistoryStats,
    hlm_trainer: HlmTrainer<'static>,
    live_corr: CorrelationGraph,
    trend_model: TrendModel,
    influence: InfluenceModel,
}

impl IncrementalTrainer {
    /// Bootstraps the trainer: freezes `context` (and `stats`) as the
    /// training context, folds the bootstrap `history`, and starts the
    /// live layers at the context graph.
    pub fn build(
        graph: &RoadGraph,
        history: &HistoricalData,
        stats: &HistoryStats,
        context: &CorrelationGraph,
        seeds: &[RoadId],
        config: &EstimatorConfig,
    ) -> Result<IncrementalTrainer> {
        Self::rebuild(graph, history, stats, context, None, seeds, config)
    }

    /// [`IncrementalTrainer::build`] with the live layers started at an
    /// arbitrary `live` graph instead of the context — the cold-rebuild
    /// path after a snapshot resume (or a dropped trainer), where days
    /// have been ingested since the context was frozen. The result is
    /// bit-identical to building at the context and replaying every
    /// ingest delta up to `live`, because the live layers are pure
    /// functions of the live graph
    /// ([`TrafficEstimator::train_with_context`] is the reference).
    pub fn rebuild(
        graph: &RoadGraph,
        history: &HistoricalData,
        stats: &HistoryStats,
        context: &CorrelationGraph,
        live: Option<&CorrelationGraph>,
        seeds: &[RoadId],
        config: &EstimatorConfig,
    ) -> Result<IncrementalTrainer> {
        if seeds.is_empty() {
            return Err(CoreError::InsufficientData("empty seed set".into()));
        }
        let threads = crate::parallel::resolve_threads(config.train_threads);
        let ctx_trend =
            TrendModel::new_threaded(context.clone(), stats, config.trend.clone(), threads);
        // Owned trend context: the trainer is stored in the
        // IncrementalTrainer and must outlive this call.
        let mut hlm_trainer = HlmTrainer::new(
            graph,
            context,
            seeds,
            &config.hlm,
            Some((
                std::borrow::Cow::Owned(ctx_trend.clone()),
                config.engine.clone(),
            )),
            threads,
        )?;
        hlm_trainer.fold(history, stats, threads)?;
        let (live_corr, trend_model, influence) = match live {
            Some(live) => (
                live.clone(),
                TrendModel::new_threaded(live.clone(), stats, config.trend.clone(), threads),
                InfluenceModel::build_threaded(live, &config.hlm.influence, threads),
            ),
            None => (
                context.clone(),
                ctx_trend,
                InfluenceModel::build_threaded(context, &config.hlm.influence, threads),
            ),
        };
        Ok(IncrementalTrainer {
            config: config.clone(),
            stats: stats.clone(),
            hlm_trainer,
            live_corr,
            trend_model,
            influence,
        })
    }

    /// The frozen context graph every fold trains over.
    pub fn context(&self) -> &CorrelationGraph {
        self.hlm_trainer.context()
    }

    /// The current live (delta-patched) correlation graph.
    pub fn live_correlation(&self) -> &CorrelationGraph {
        &self.live_corr
    }

    /// The seed set the trainer was built for.
    pub fn seeds(&self) -> &[RoadId] {
        self.hlm_trainer.seeds()
    }

    /// Days folded into the HLM accumulators so far.
    pub fn folded_days(&self) -> usize {
        self.hlm_trainer.folded_days()
    }

    /// Assembles the serving estimator from the current layers without
    /// advancing. Bit-identical to what the reference full retrain
    /// would produce from the same context and history.
    pub fn estimator(&self) -> Result<TrafficEstimator> {
        let threads = crate::parallel::resolve_threads(self.config.train_threads);
        let hlm = self.hlm_trainer.fit(threads)?;
        Ok(assemble_estimator(
            &self.stats,
            self.trend_model.clone(),
            hlm,
            self.hlm_trainer.seeds(),
            &self.config.engine,
            &self.influence,
        ))
    }

    /// Applies one ingested day: patches the live layers from `delta`
    /// (produced by [`crate::online::OnlineCorrelation::ingest_day_delta`]
    /// for the same day), folds the day into the HLM, and assembles
    /// the refreshed estimator. `history` must be the grown history
    /// *including* the ingested day, over the same network and slot
    /// grid as the bootstrap.
    pub fn advance(
        &mut self,
        history: &HistoricalData,
        delta: &IngestDelta,
    ) -> Result<(TrafficEstimator, RetrainStats)> {
        let threads = crate::parallel::resolve_threads(self.config.train_threads);
        let mut stats = RetrainStats::default();

        let t = Instant::now();
        let apply = self.live_corr.apply_delta(&delta.changes)?;
        stats.corr_ms = t.elapsed().as_millis() as u64;
        stats.edges_updated = apply.updated;
        stats.edges_added = apply.added;
        stats.edges_removed = apply.removed;
        stats.roads_touched = apply.touched.len();
        stats.trend_rebuilt = apply.membership_changed;

        let t = Instant::now();
        self.trend_model = if apply.membership_changed {
            TrendModel::new_threaded(
                self.live_corr.clone(),
                &self.stats,
                self.config.trend.clone(),
                threads,
            )
        } else {
            self.trend_model
                .patched(self.live_corr.clone(), &delta.changes)
        };
        stats.trend_ms = t.elapsed().as_millis() as u64;

        let t = Instant::now();
        self.influence = self.influence.patched(
            &self.live_corr,
            &self.config.hlm.influence,
            &apply.touched,
            threads,
        );
        stats.influence_ms = t.elapsed().as_millis() as u64;

        let t = Instant::now();
        stats.fold = self.hlm_trainer.fold(history, &self.stats, threads)?;
        stats.hlm_fold_ms = t.elapsed().as_millis() as u64;

        let t = Instant::now();
        let estimator = self.estimator()?;
        stats.hlm_fit_ms = t.elapsed().as_millis() as u64;
        Ok((estimator, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::CorrelationConfig;
    use crate::metrics::ErrorStats;
    use trafficsim::dataset::{metro_small, DatasetParams};

    fn setup() -> (
        trafficsim::dataset::Dataset,
        HistoryStats,
        TrafficEstimator,
        Vec<RoadId>,
    ) {
        let ds = metro_small(&DatasetParams {
            training_days: 12,
            test_days: 1,
            ..DatasetParams::default()
        });
        let stats = HistoryStats::compute(&ds.history);
        let corr = CorrelationGraph::build(
            &ds.graph,
            &ds.history,
            &stats,
            &CorrelationConfig {
                min_cotrend: 0.6,
                min_co_observations: 8,
                ..CorrelationConfig::default()
            },
        );
        let seeds: Vec<RoadId> = (0..20u32).map(|i| RoadId(i * 5)).collect();
        let est = TrafficEstimator::train(
            &ds.graph,
            &ds.history,
            &stats,
            &corr,
            &seeds,
            &EstimatorConfig::default(),
        )
        .unwrap();
        (ds, stats, est, seeds)
    }

    /// Like [`setup`] but with a co-trend threshold that fragments the
    /// correlation graph into several components — the structure the
    /// shard planner exploits.
    fn sharded_setup(
        config: &EstimatorConfig,
    ) -> (
        trafficsim::dataset::Dataset,
        CorrelationGraph,
        TrafficEstimator,
        Vec<RoadId>,
    ) {
        let ds = metro_small(&DatasetParams {
            training_days: 12,
            test_days: 1,
            ..DatasetParams::default()
        });
        let stats = HistoryStats::compute(&ds.history);
        let corr = CorrelationGraph::build(
            &ds.graph,
            &ds.history,
            &stats,
            &CorrelationConfig {
                min_cotrend: 0.8,
                min_co_observations: 6,
                ..CorrelationConfig::default()
            },
        );
        let seeds: Vec<RoadId> = (0..20u32).map(|i| RoadId(i * 5)).collect();
        let est =
            TrafficEstimator::train(&ds.graph, &ds.history, &stats, &corr, &seeds, config).unwrap();
        (ds, corr, est, seeds)
    }

    #[test]
    fn shard_serving_is_bit_identical() {
        let (ds, corr, est, seeds) = sharded_setup(&EstimatorConfig::default());
        let slot = 8;
        let truth = &ds.test_days[0];
        let obs: Vec<(RoadId, f64)> = seeds.iter().map(|&s| (s, truth.speed(slot, s))).collect();
        let full = est.estimate(slot, &obs);

        for shards in [1usize, 2, 3] {
            let plan = crate::shard::ShardPlan::plan(&ds.graph, &corr, shards).unwrap();
            let mut scratch = EstimateScratch::new();
            let mut covered = vec![false; ds.graph.num_roads()];
            let mut max_iters = 0;
            for s in 0..plan.num_shards {
                let view = est.shard_view(&plan, s).unwrap();
                assert!(view.active_roads() >= view.owned_roads().len());
                let owned = view.owned_roads().to_vec();
                let se = est
                    .estimate_shard_with(&view, slot, &obs, &owned, &mut scratch)
                    .unwrap();
                assert_eq!(se.ignored_observations, full.ignored_observations);
                max_iters = max_iters.max(se.trend_iterations);
                for (i, &r) in owned.iter().enumerate() {
                    assert!(!covered[r.index()], "road {r} served twice");
                    covered[r.index()] = true;
                    assert_eq!(
                        se.speeds[i].to_bits(),
                        full.speeds[r.index()].to_bits(),
                        "{shards} shards, shard {s}, road {r}: speed"
                    );
                    assert_eq!(
                        se.p_up[i].to_bits(),
                        full.p_up[r.index()].to_bits(),
                        "{shards} shards, shard {s}, road {r}: p_up"
                    );
                    assert_eq!(se.trends[i], full.trends[r.index()]);
                    assert_eq!(
                        se.confidence[i].to_bits(),
                        full.confidence[r.index()].to_bits()
                    );
                }
            }
            assert!(
                covered.iter().all(|&c| c),
                "{shards} shards: roads unserved"
            );
            // Each component converges identically in both worlds, so
            // the slowest shard matches the unsharded iteration count.
            assert_eq!(max_iters, full.trend_iterations, "{shards} shards");
        }
    }

    #[test]
    fn shard_subset_requests_align_to_request_order() {
        let (ds, corr, est, seeds) = sharded_setup(&EstimatorConfig::default());
        let slot = 8;
        let truth = &ds.test_days[0];
        let obs: Vec<(RoadId, f64)> = seeds.iter().map(|&s| (s, truth.speed(slot, s))).collect();
        let full = est.estimate(slot, &obs);
        let plan = crate::shard::ShardPlan::plan(&ds.graph, &corr, 2).unwrap();
        let view = est.shard_view(&plan, 1).unwrap();
        // A permuted strict subset of the owned roads.
        let mut subset: Vec<RoadId> = view.owned_roads().iter().copied().step_by(3).collect();
        subset.reverse();
        assert!(subset.len() >= 2);
        let se = est
            .estimate_shard_with(&view, slot, &obs, &subset, &mut EstimateScratch::new())
            .unwrap();
        for (i, &r) in subset.iter().enumerate() {
            assert_eq!(se.speeds[i].to_bits(), full.speeds[r.index()].to_bits());
            assert_eq!(se.p_up[i].to_bits(), full.p_up[r.index()].to_bits());
        }
    }

    #[test]
    fn shard_view_rejects_bad_configurations() {
        let gibbs = EstimatorConfig {
            engine: TrendEngine::Gibbs {
                options: Default::default(),
                seed: 7,
            },
            ..EstimatorConfig::default()
        };
        let (ds, corr, est, seeds) = sharded_setup(&gibbs);
        let plan = crate::shard::ShardPlan::plan(&ds.graph, &corr, 2).unwrap();
        assert!(matches!(
            est.shard_view(&plan, 0),
            Err(CoreError::ShardConfig(_))
        ));

        let (ds, corr, est, _) = sharded_setup(&EstimatorConfig::default());
        let plan = crate::shard::ShardPlan::plan(&ds.graph, &corr, 2).unwrap();
        // Shard index out of range.
        assert!(matches!(
            est.shard_view(&plan, 2),
            Err(CoreError::ShardConfig(_))
        ));
        // Requests must stay within the shard's owned set.
        let view = est.shard_view(&plan, 0).unwrap();
        let foreign = *est
            .shard_view(&plan, 1)
            .unwrap()
            .owned_roads()
            .first()
            .unwrap();
        let slot = 8;
        let truth = &ds.test_days[0];
        let obs: Vec<(RoadId, f64)> = seeds.iter().map(|&s| (s, truth.speed(slot, s))).collect();
        assert!(matches!(
            est.estimate_shard_with(&view, slot, &obs, &[foreign], &mut EstimateScratch::new()),
            Err(CoreError::ShardConfig(_))
        ));
        assert!(matches!(
            est.estimate_shard_with(
                &view,
                slot,
                &[],
                view.owned_roads(),
                &mut EstimateScratch::new()
            ),
            Err(CoreError::NoObservations)
        ));
    }

    fn observe(
        truth: &trafficsim::SpeedField,
        slot: usize,
        seeds: &[RoadId],
    ) -> Vec<(RoadId, f64)> {
        seeds.iter().map(|&s| (s, truth.speed(slot, s))).collect()
    }

    #[test]
    fn estimate_covers_every_road() {
        let (ds, _, est, seeds) = setup();
        let slot = 8;
        let obs = observe(&ds.test_days[0], slot, &seeds);
        let r = est.estimate(slot, &obs);
        assert_eq!(r.speeds.len(), ds.graph.num_roads());
        assert!(r.speeds.iter().all(|v| v.is_finite() && *v > 0.0));
    }

    #[test]
    fn seeds_echo_their_observations() {
        let (ds, _, est, seeds) = setup();
        let slot = 8;
        let obs = observe(&ds.test_days[0], slot, &seeds);
        let r = est.estimate(slot, &obs);
        for &(road, speed) in &obs {
            assert_eq!(r.speeds[road.index()], speed);
        }
    }

    #[test]
    fn beats_historical_average_baseline() {
        // The fundamental soundness check: with real-time seed data the
        // two-step estimator must beat the no-data baseline.
        let (ds, stats, est, seeds) = setup();
        let truth = &ds.test_days[0];
        let mut ours = ErrorStats::default();
        let mut base = ErrorStats::default();
        for slot in [7, 8, 12, 17, 18] {
            let obs = observe(truth, slot, &seeds);
            let r = est.estimate(slot, &obs);
            let truth_v: Vec<f64> = ds
                .graph
                .road_ids()
                .map(|ro| truth.speed(slot, ro))
                .collect();
            let hist: Vec<f64> = ds.graph.road_ids().map(|ro| stats.mean(slot, ro)).collect();
            ours = ours.merge(ErrorStats::from_road_vectors(&truth_v, &r.speeds, &seeds));
            base = base.merge(ErrorStats::from_road_vectors(&truth_v, &hist, &seeds));
        }
        assert!(
            ours.mae < base.mae,
            "two-step ({:.3}) must beat historical mean ({:.3})",
            ours.mae,
            base.mae
        );
    }

    #[test]
    fn degrades_gracefully_with_no_observations() {
        // A *direct* caller asking with an explicitly empty list gets
        // the documented fallback (prior-driven estimate, no NaNs)...
        let (ds, _, est, _) = setup();
        let r = est.estimate(8, &[]);
        assert_eq!(r.speeds.len(), ds.graph.num_roads());
        assert!(r.speeds.iter().all(|v| v.is_finite() && *v > 0.0));
    }

    #[test]
    fn serving_path_rejects_empty_observations() {
        // ...but the serving path refuses to dress that fallback up as
        // a live estimate: `try_estimate` returns the typed error the
        // daemon maps onto the wire.
        let (ds, _, est, seeds) = setup();
        let mut scratch = EstimateScratch::new();
        let err = SpeedEstimator::try_estimate(&est, 8, &[], &mut scratch).unwrap_err();
        assert_eq!(err, CoreError::NoObservations);
        // Non-empty requests are untouched by the guard.
        let obs = observe(&ds.test_days[0], 8, &seeds);
        let ok = SpeedEstimator::try_estimate(&est, 8, &obs, &mut scratch).unwrap();
        assert_eq!(ok.speeds, est.estimate(8, &obs).speeds);
    }

    #[test]
    fn train_rejects_empty_seeds() {
        let ds = metro_small(&DatasetParams {
            training_days: 3,
            test_days: 1,
            ..DatasetParams::default()
        });
        let stats = HistoryStats::compute(&ds.history);
        let corr = CorrelationGraph::build(
            &ds.graph,
            &ds.history,
            &stats,
            &CorrelationConfig::default(),
        );
        assert!(TrafficEstimator::train(
            &ds.graph,
            &ds.history,
            &stats,
            &corr,
            &[],
            &EstimatorConfig::default()
        )
        .is_err());
    }

    #[test]
    fn snapshot_codec_roundtrip_serves_bit_identically() {
        let (ds, _, est, seeds) = setup();
        let mut buf = bytes::BytesMut::new();
        est.encode_snapshot_into(&mut buf);
        let decoded = TrafficEstimator::decode_snapshot_from(&mut buf.clone().freeze()).unwrap();
        // Canonical codec: re-encoding reproduces the exact bytes.
        let mut buf2 = bytes::BytesMut::new();
        decoded.encode_snapshot_into(&mut buf2);
        assert_eq!(buf, buf2);
        // ...and the decoded estimator answers bit-identically.
        for slot in [0, 8, 17] {
            let obs = observe(&ds.test_days[0], slot, &seeds);
            let a = est.estimate(slot, &obs);
            let b = decoded.estimate(slot, &obs);
            for (x, y) in a.speeds.iter().zip(&b.speeds) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            for (x, y) in a.p_up.iter().zip(&b.p_up) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            for (x, y) in a.confidence.iter().zip(b.confidence.iter()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn incremental_advance_matches_full_retrain_bitwise() {
        use crate::online::OnlineCorrelation;

        let ds = metro_small(&DatasetParams {
            training_days: 9,
            test_days: 1,
            ..DatasetParams::default()
        });
        let bootstrap_days = 3;
        let boot = ds.history.truncated(bootstrap_days);
        let ccfg = CorrelationConfig {
            min_cotrend: 0.6,
            min_co_observations: 24,
            ..CorrelationConfig::default()
        };
        let seeds: Vec<RoadId> = (0..15u32).map(|i| RoadId(i * 6)).collect();

        // Frozen at bootstrap: the online tracker's statistics and the
        // materialised context graph.
        let mut online = OnlineCorrelation::bootstrap(&ds.graph, &boot, &ccfg);
        let stats = online.stats().clone();
        let context = online.correlation_graph();

        let encoded = |est: &TrafficEstimator| {
            let mut buf = bytes::BytesMut::new();
            est.encode_snapshot_into(&mut buf);
            buf
        };

        // The incremental trainer runs on 4 threads, the reference
        // full retrain on 1 — bit-identity must hold across both the
        // day sequence and the thread counts.
        let inc_config = EstimatorConfig {
            train_threads: 4,
            ..EstimatorConfig::default()
        };
        let ref_config = EstimatorConfig {
            train_threads: 1,
            ..EstimatorConfig::default()
        };
        let mut trainer =
            IncrementalTrainer::build(&ds.graph, &boot, &stats, &context, &seeds, &inc_config)
                .unwrap();
        let full_boot = TrafficEstimator::train_with_context(
            &ds.graph,
            &boot,
            &stats,
            &context,
            None,
            &seeds,
            &ref_config,
        )
        .unwrap();
        assert_eq!(encoded(&trainer.estimator().unwrap()), encoded(&full_boot));

        let mut memberships = 0usize;
        let mut weight_patches = 0usize;
        for day in bootstrap_days..ds.history.num_days() {
            let delta = online.ingest_day_delta(&ds.history.days()[day]).unwrap();
            let grown = ds.history.truncated(day + 1);
            // Split the day into a weight-only advance followed by a
            // membership advance (each change names a distinct edge,
            // so splitting cannot reorder effects): the weight-only
            // half drives the MRF-patching fast path even on days
            // where some other edge flips membership.
            let (updates, flips): (Vec<_>, Vec<_>) = delta
                .changes
                .iter()
                .cloned()
                .partition(|c| !c.changes_membership());
            let mut inc = None;
            for half in [updates, flips] {
                if half.is_empty() && inc.is_some() {
                    continue;
                }
                let part = IngestDelta {
                    changes: half,
                    ..delta.clone()
                };
                let (est, rs) = trainer.advance(&grown, &part).unwrap();
                if rs.trend_rebuilt {
                    memberships += 1;
                } else if rs.edges_updated > 0 {
                    weight_patches += 1;
                }
                inc = Some(est);
            }
            let inc = inc.expect("at least one advance per day");
            assert_eq!(trainer.folded_days(), day + 1);

            let live = online.correlation_graph();
            let full = TrafficEstimator::train_with_context(
                &ds.graph,
                &grown,
                &stats,
                &context,
                Some(&live),
                &seeds,
                &ref_config,
            )
            .unwrap();
            assert_eq!(
                encoded(&inc),
                encoded(&full),
                "day {day}: incremental advance diverged from full retrain"
            );
        }
        // The sequence must have exercised both delta shapes.
        assert!(memberships > 0, "no ingest day changed graph membership");
        assert!(weight_patches > 0, "no advance took the weight-patch path");
    }

    #[test]
    fn trend_decisions_align_with_posteriors() {
        let (ds, _, est, seeds) = setup();
        let obs = observe(&ds.test_days[0], 8, &seeds);
        let r = est.estimate(8, &obs);
        for (p, t) in r.p_up.iter().zip(&r.trends) {
            assert_eq!(*t, *p >= 0.5);
        }
    }
}
