//! The end-to-end two-step estimator, the [`SpeedEstimator`] serving
//! interface, and the reusable [`EstimateScratch`] workspace.

use crate::correlation::CorrelationGraph;
use crate::inference::hlm::{HlmConfig, HlmModel, HlmScratch};
use crate::inference::trend_model::{TrendEngine, TrendModel, TrendModelConfig, TrendScratch};
use crate::seed::objective::{InfluenceModel, SeedObjective};
use crate::{CoreError, Result};
use roadnet::{RoadGraph, RoadId};
use std::sync::Arc;
use trafficsim::{HistoricalData, HistoryStats};

/// Configuration of the full estimator.
#[derive(Debug, Clone, Default)]
pub struct EstimatorConfig {
    /// Step-1 MRF construction.
    pub trend: TrendModelConfig,
    /// Step-1 inference engine.
    pub engine: TrendEngine,
    /// Step-2 hierarchical linear model.
    pub hlm: HlmConfig,
    /// Worker threads for the training pipeline (`0` = all cores,
    /// `1` = serial). The trained model is bit-identical for every
    /// value (see [`crate::parallel`]), so `0` is always safe; serving
    /// is unaffected.
    pub train_threads: usize,
}

/// One slot's estimation output.
#[derive(Debug, Clone)]
pub struct SpeedEstimate {
    /// Estimated speed (km/h) per road; seeds carry their observed
    /// speeds verbatim.
    pub speeds: Vec<f64>,
    /// Step-1 posterior up-probability per road.
    pub p_up: Vec<f64>,
    /// Hard trend decisions per road.
    pub trends: Vec<bool>,
    /// Per-road confidence in `[0, 1]`: the probability that the seed
    /// set pins the road down under the influence model — exactly the
    /// per-road term of the seed-selection objective
    /// (`1 − Π_{s∈S} (1 − q(s → r))`). Seeds report 1. Static per seed
    /// set; shared (not copied) across estimates. The integration tests
    /// verify it is *calibrated*: high-confidence roads carry lower
    /// error.
    pub confidence: Arc<Vec<f64>>,
    /// Iterations the trend engine used.
    pub trend_iterations: usize,
    /// Observations that named a road outside the estimator's seed set
    /// and were skipped. Always 0 on a clean feed; a persistent nonzero
    /// count means the caller is routing the wrong crowd stream at this
    /// estimator.
    pub ignored_observations: usize,
}

impl SpeedEstimate {
    /// Wraps a bare speed vector — for estimators (the baselines) that
    /// produce no trend posterior or confidence channel.
    pub fn from_speeds(speeds: Vec<f64>) -> SpeedEstimate {
        SpeedEstimate {
            speeds,
            p_up: Vec::new(),
            trends: Vec::new(),
            confidence: Arc::new(Vec::new()),
            trend_iterations: 0,
            ignored_observations: 0,
        }
    }
}

/// Reusable buffers for repeated estimates: trend-inference workspaces
/// (messages, marginals, sampler state), HLM staging buffers, and the
/// observation-translation vectors all survive between calls. Hold one
/// per worker thread; after the first call on a given estimator, an
/// estimate does no MRF rebuilds and no workspace allocations.
#[derive(Debug, Default)]
pub struct EstimateScratch {
    trend: TrendScratch,
    hlm: HlmScratch,
    seed_devs: Vec<Option<f64>>,
    trend_obs: Vec<(RoadId, bool)>,
}

impl EstimateScratch {
    /// An empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        EstimateScratch::default()
    }
}

/// A serving-time speed estimator: anything that can answer "what is
/// every road's speed at this slot, given these crowdsourced
/// observations". Implemented by [`TrafficEstimator`] and by every
/// baseline in [`crate::baselines`], so evaluation, benchmarks, and the
/// batch server ([`crate::serve`]) drive all methods through one
/// interface.
///
/// `scratch` carries reusable buffers (one per worker thread);
/// implementations that do not need them ignore it. Estimators must be
/// shareable across threads — training happens before serving, so
/// `&self` here is read-only.
pub trait SpeedEstimator: Send + Sync {
    /// Short stable name for tables and logs.
    fn name(&self) -> &'static str;

    /// Estimates every road's speed at `slot_of_day` from crowdsourced
    /// observations `(road, speed)`.
    ///
    /// Baselines that produce no trend posterior leave `p_up` and
    /// `trends` empty.
    fn estimate(
        &self,
        slot_of_day: usize,
        observations: &[(RoadId, f64)],
        scratch: &mut EstimateScratch,
    ) -> SpeedEstimate;

    /// Serving-path entry point: like [`SpeedEstimator::estimate`] but
    /// rejects an empty observation list with
    /// [`CoreError::NoObservations`] instead of silently estimating
    /// from nothing.
    ///
    /// Batch and network serving ([`crate::serve`], the daemon) route
    /// every request through this method so an empty crowd feed turns
    /// into a clean typed error, never a historical-mean answer dressed
    /// up as a live estimate.
    fn try_estimate(
        &self,
        slot_of_day: usize,
        observations: &[(RoadId, f64)],
        scratch: &mut EstimateScratch,
    ) -> Result<SpeedEstimate> {
        if observations.is_empty() {
            return Err(CoreError::NoObservations);
        }
        Ok(self.estimate(slot_of_day, observations, scratch))
    }
}

/// A trained two-step estimator, bound to a seed set.
///
/// Owns everything it needs (correlation graph, history statistics,
/// models), so it can be handed to a serving loop independently of the
/// training data.
#[derive(Debug, Clone)]
pub struct TrafficEstimator {
    stats: HistoryStats,
    trend_model: TrendModel,
    hlm: HlmModel,
    seeds: Vec<RoadId>,
    seed_index: Vec<Option<usize>>, // road -> seed slot
    engine: TrendEngine,
    coverage: Arc<Vec<f64>>,
}

impl TrafficEstimator {
    /// Trains the estimator for a seed set.
    pub fn train(
        graph: &RoadGraph,
        history: &HistoricalData,
        stats: &HistoryStats,
        corr: &CorrelationGraph,
        seeds: &[RoadId],
        config: &EstimatorConfig,
    ) -> Result<TrafficEstimator> {
        if seeds.is_empty() {
            return Err(CoreError::InsufficientData("empty seed set".into()));
        }
        let threads = crate::parallel::resolve_threads(config.train_threads);
        let trend_model =
            TrendModel::new_threaded(corr.clone(), stats, config.trend.clone(), threads);
        // Training sees the same kind of (noisy) trend posteriors the
        // estimator will mix regimes by at serving time.
        let hlm = HlmModel::train_with_trends_threaded(
            graph,
            history,
            stats,
            corr,
            seeds,
            &config.hlm,
            Some((&trend_model, &config.engine)),
            threads,
        )?;
        let mut seed_index = vec![None; graph.num_roads()];
        for (si, s) in seeds.iter().enumerate() {
            seed_index[s.index()] = Some(si);
        }
        // Per-road coverage under the influence model = estimate
        // confidence (see `SpeedEstimate::confidence`).
        let influence = InfluenceModel::build_threaded(corr, &config.hlm.influence, threads);
        let objective = SeedObjective::new(&influence);
        let mut miss = objective.initial_miss();
        for &s in seeds {
            objective.apply(&mut miss, s);
        }
        let coverage: Arc<Vec<f64>> = Arc::new(miss.into_iter().map(|m| 1.0 - m).collect());
        Ok(TrafficEstimator {
            stats: stats.clone(),
            trend_model,
            hlm,
            seeds: seeds.to_vec(),
            seed_index,
            engine: config.engine.clone(),
            coverage,
        })
    }

    /// The seed set the estimator observes.
    pub fn seeds(&self) -> &[RoadId] {
        &self.seeds
    }

    /// Serialises the trained estimator in the snapshot codec style:
    /// history statistics, the correlation graph (written once, shared
    /// by both models on decode), the trend-model and HLM bodies, the
    /// seed set, the serving engine, and the coverage vector. Derived
    /// structures (compiled slot MRFs, the seed index, the CSR
    /// adjacency) are rebuilt deterministically on decode, so a decoded
    /// estimator answers [`TrafficEstimator::estimate_with`]
    /// bit-identically to the encoder's.
    pub fn encode_snapshot_into(&self, buf: &mut bytes::BytesMut) {
        self.stats.encode_into(buf);
        crate::codec::encode_correlation_graph(self.trend_model.correlation(), buf);
        self.trend_model.encode_snapshot_into(buf);
        self.hlm.encode_snapshot_into(buf);
        crate::codec::put_road_slice(buf, &self.seeds);
        crate::codec::encode_engine(&self.engine, buf);
        crate::codec::put_f64_slice(buf, &self.coverage);
    }

    /// Decodes an estimator written by
    /// [`TrafficEstimator::encode_snapshot_into`].
    pub fn decode_snapshot_from(
        buf: &mut impl bytes::Buf,
    ) -> std::result::Result<TrafficEstimator, crate::codec::DecodeError> {
        use crate::codec::{self, DecodeError};
        let stats = HistoryStats::decode_from(buf)?;
        let corr = codec::decode_correlation_graph(buf)?;
        let n = corr.num_roads();
        if n != stats.num_roads() {
            return Err(DecodeError::Corrupt(format!(
                "correlation graph spans {n} roads, statistics {}",
                stats.num_roads()
            )));
        }
        let trend_model = TrendModel::decode_snapshot_from(corr.clone(), buf)?;
        let hlm = HlmModel::decode_snapshot_from(corr, buf)?;
        let seeds = codec::get_road_vec(buf)?;
        let engine = codec::decode_engine(buf)?;
        let coverage = codec::get_f64_vec(buf)?;
        if coverage.len() != n {
            return Err(DecodeError::Corrupt(format!(
                "coverage vector holds {} roads, expected {n}",
                coverage.len()
            )));
        }
        let mut seed_index = vec![None; n];
        for (si, s) in seeds.iter().enumerate() {
            if s.index() >= n {
                return Err(DecodeError::Corrupt(format!("seed {s} outside {n} roads")));
            }
            seed_index[s.index()] = Some(si);
        }
        Ok(TrafficEstimator {
            stats,
            trend_model,
            hlm,
            seeds,
            seed_index,
            engine,
            coverage: Arc::new(coverage),
        })
    }

    /// The trained trend model (exposed for experiments).
    pub fn trend_model(&self) -> &TrendModel {
        &self.trend_model
    }

    /// Per-road seed-coverage confidence (see
    /// [`SpeedEstimate::confidence`]).
    pub fn coverage(&self) -> &[f64] {
        &self.coverage
    }

    /// Estimates every road's speed at `slot_of_day` from crowdsourced
    /// seed observations `(road, speed)`.
    ///
    /// Observations for roads outside the seed set are skipped and
    /// counted in [`SpeedEstimate::ignored_observations`]; seeds with no
    /// observation simply contribute no evidence — the estimator
    /// degrades gracefully when the crowd is late.
    ///
    /// Allocates fresh workspaces per call; serving loops should hold an
    /// [`EstimateScratch`] per worker and call
    /// [`TrafficEstimator::estimate_with`].
    pub fn estimate(&self, slot_of_day: usize, observations: &[(RoadId, f64)]) -> SpeedEstimate {
        self.estimate_with(slot_of_day, observations, &mut EstimateScratch::new())
    }

    /// Estimates reusing the buffers in `scratch`; identical arithmetic
    /// and iteration order to [`TrafficEstimator::estimate`], so the
    /// outputs are bit-identical (given the same engine seed).
    pub fn estimate_with(
        &self,
        slot_of_day: usize,
        observations: &[(RoadId, f64)],
        scratch: &mut EstimateScratch,
    ) -> SpeedEstimate {
        let n = self.trend_model.num_roads();
        // Split borrows: translation buffers feed both inference steps.
        let EstimateScratch {
            trend,
            hlm,
            seed_devs,
            trend_obs,
        } = scratch;

        // Translate observations into trend evidence + seed deviations.
        seed_devs.clear();
        seed_devs.resize(self.seeds.len(), None);
        trend_obs.clear();
        let mut ignored = 0usize;
        for &(road, speed) in observations {
            let Some(si) = self.seed_index.get(road.index()).copied().flatten() else {
                ignored += 1;
                continue;
            };
            trend_obs.push((road, self.stats.trend_of(slot_of_day, road, speed)));
            seed_devs[si] = self.stats.deviation_of(slot_of_day, road, speed);
        }

        // Step 1: trend posterior.
        let stats = self
            .trend_model
            .infer_with(slot_of_day, trend_obs, &self.engine, trend);

        // Step 2: deviations -> speeds.
        self.hlm
            .predict_deviations_with(seed_devs, &trend.p_up, hlm);
        let devs = hlm.deviations();
        let mut speeds: Vec<f64> = (0..n)
            .map(|r| {
                let road = RoadId(r as u32);
                devs[r] * self.stats.mean(slot_of_day, road)
            })
            .collect();
        // Seeds report their crowd-observed speeds verbatim.
        for &(road, speed) in observations {
            if self
                .seed_index
                .get(road.index())
                .copied()
                .flatten()
                .is_some()
            {
                speeds[road.index()] = speed;
            }
        }

        let trends: Vec<bool> = trend.p_up.iter().map(|&p| p >= 0.5).collect();
        SpeedEstimate {
            speeds,
            p_up: trend.p_up.clone(),
            trends,
            confidence: Arc::clone(&self.coverage),
            trend_iterations: stats.iterations,
            ignored_observations: ignored,
        }
    }
}

impl SpeedEstimator for TrafficEstimator {
    fn name(&self) -> &'static str {
        "two-step"
    }

    fn estimate(
        &self,
        slot_of_day: usize,
        observations: &[(RoadId, f64)],
        scratch: &mut EstimateScratch,
    ) -> SpeedEstimate {
        self.estimate_with(slot_of_day, observations, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::CorrelationConfig;
    use crate::metrics::ErrorStats;
    use trafficsim::dataset::{metro_small, DatasetParams};

    fn setup() -> (
        trafficsim::dataset::Dataset,
        HistoryStats,
        TrafficEstimator,
        Vec<RoadId>,
    ) {
        let ds = metro_small(&DatasetParams {
            training_days: 12,
            test_days: 1,
            ..DatasetParams::default()
        });
        let stats = HistoryStats::compute(&ds.history);
        let corr = CorrelationGraph::build(
            &ds.graph,
            &ds.history,
            &stats,
            &CorrelationConfig {
                min_cotrend: 0.6,
                min_co_observations: 8,
                ..CorrelationConfig::default()
            },
        );
        let seeds: Vec<RoadId> = (0..20u32).map(|i| RoadId(i * 5)).collect();
        let est = TrafficEstimator::train(
            &ds.graph,
            &ds.history,
            &stats,
            &corr,
            &seeds,
            &EstimatorConfig::default(),
        )
        .unwrap();
        (ds, stats, est, seeds)
    }

    fn observe(
        truth: &trafficsim::SpeedField,
        slot: usize,
        seeds: &[RoadId],
    ) -> Vec<(RoadId, f64)> {
        seeds.iter().map(|&s| (s, truth.speed(slot, s))).collect()
    }

    #[test]
    fn estimate_covers_every_road() {
        let (ds, _, est, seeds) = setup();
        let slot = 8;
        let obs = observe(&ds.test_days[0], slot, &seeds);
        let r = est.estimate(slot, &obs);
        assert_eq!(r.speeds.len(), ds.graph.num_roads());
        assert!(r.speeds.iter().all(|v| v.is_finite() && *v > 0.0));
    }

    #[test]
    fn seeds_echo_their_observations() {
        let (ds, _, est, seeds) = setup();
        let slot = 8;
        let obs = observe(&ds.test_days[0], slot, &seeds);
        let r = est.estimate(slot, &obs);
        for &(road, speed) in &obs {
            assert_eq!(r.speeds[road.index()], speed);
        }
    }

    #[test]
    fn beats_historical_average_baseline() {
        // The fundamental soundness check: with real-time seed data the
        // two-step estimator must beat the no-data baseline.
        let (ds, stats, est, seeds) = setup();
        let truth = &ds.test_days[0];
        let mut ours = ErrorStats::default();
        let mut base = ErrorStats::default();
        for slot in [7, 8, 12, 17, 18] {
            let obs = observe(truth, slot, &seeds);
            let r = est.estimate(slot, &obs);
            let truth_v: Vec<f64> = ds
                .graph
                .road_ids()
                .map(|ro| truth.speed(slot, ro))
                .collect();
            let hist: Vec<f64> = ds.graph.road_ids().map(|ro| stats.mean(slot, ro)).collect();
            ours = ours.merge(ErrorStats::from_road_vectors(&truth_v, &r.speeds, &seeds));
            base = base.merge(ErrorStats::from_road_vectors(&truth_v, &hist, &seeds));
        }
        assert!(
            ours.mae < base.mae,
            "two-step ({:.3}) must beat historical mean ({:.3})",
            ours.mae,
            base.mae
        );
    }

    #[test]
    fn degrades_gracefully_with_no_observations() {
        // A *direct* caller asking with an explicitly empty list gets
        // the documented fallback (prior-driven estimate, no NaNs)...
        let (ds, _, est, _) = setup();
        let r = est.estimate(8, &[]);
        assert_eq!(r.speeds.len(), ds.graph.num_roads());
        assert!(r.speeds.iter().all(|v| v.is_finite() && *v > 0.0));
    }

    #[test]
    fn serving_path_rejects_empty_observations() {
        // ...but the serving path refuses to dress that fallback up as
        // a live estimate: `try_estimate` returns the typed error the
        // daemon maps onto the wire.
        let (ds, _, est, seeds) = setup();
        let mut scratch = EstimateScratch::new();
        let err = SpeedEstimator::try_estimate(&est, 8, &[], &mut scratch).unwrap_err();
        assert_eq!(err, CoreError::NoObservations);
        // Non-empty requests are untouched by the guard.
        let obs = observe(&ds.test_days[0], 8, &seeds);
        let ok = SpeedEstimator::try_estimate(&est, 8, &obs, &mut scratch).unwrap();
        assert_eq!(ok.speeds, est.estimate(8, &obs).speeds);
    }

    #[test]
    fn train_rejects_empty_seeds() {
        let ds = metro_small(&DatasetParams {
            training_days: 3,
            test_days: 1,
            ..DatasetParams::default()
        });
        let stats = HistoryStats::compute(&ds.history);
        let corr = CorrelationGraph::build(
            &ds.graph,
            &ds.history,
            &stats,
            &CorrelationConfig::default(),
        );
        assert!(TrafficEstimator::train(
            &ds.graph,
            &ds.history,
            &stats,
            &corr,
            &[],
            &EstimatorConfig::default()
        )
        .is_err());
    }

    #[test]
    fn snapshot_codec_roundtrip_serves_bit_identically() {
        let (ds, _, est, seeds) = setup();
        let mut buf = bytes::BytesMut::new();
        est.encode_snapshot_into(&mut buf);
        let decoded = TrafficEstimator::decode_snapshot_from(&mut buf.clone().freeze()).unwrap();
        // Canonical codec: re-encoding reproduces the exact bytes.
        let mut buf2 = bytes::BytesMut::new();
        decoded.encode_snapshot_into(&mut buf2);
        assert_eq!(buf, buf2);
        // ...and the decoded estimator answers bit-identically.
        for slot in [0, 8, 17] {
            let obs = observe(&ds.test_days[0], slot, &seeds);
            let a = est.estimate(slot, &obs);
            let b = decoded.estimate(slot, &obs);
            for (x, y) in a.speeds.iter().zip(&b.speeds) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            for (x, y) in a.p_up.iter().zip(&b.p_up) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            for (x, y) in a.confidence.iter().zip(b.confidence.iter()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn trend_decisions_align_with_posteriors() {
        let (ds, _, est, seeds) = setup();
        let obs = observe(&ds.test_days[0], 8, &seeds);
        let r = est.estimate(8, &obs);
        for (p, t) in r.p_up.iter().zip(&r.trends) {
            assert_eq!(*t, *p >= 0.5);
        }
    }
}
