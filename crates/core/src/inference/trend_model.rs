//! Step 1 — trend inference with a pairwise MRF.

use crate::correlation::CorrelationGraph;
use graphmodel::{
    exact, gibbs, lbp, meanfield, Evidence, GibbsWorkspace, LbpWorkspace, MeanFieldWorkspace,
    MrfBuilder, PairwiseMrf,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use roadnet::RoadId;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use trafficsim::HistoryStats;

/// Which engine computes the trend posterior.
#[derive(Debug, Clone)]
pub enum TrendEngine {
    /// Loopy belief propagation — the production engine.
    Lbp(lbp::LbpOptions),
    /// Gibbs sampling — the efficiency/accuracy baseline (E6).
    Gibbs {
        /// Sampler schedule.
        options: gibbs::GibbsOptions,
        /// RNG seed (kept explicit so evaluations are reproducible).
        seed: u64,
    },
    /// Naive mean-field variational inference — cheapest engine,
    /// slightly less accurate than LBP (third point on the
    /// efficiency/accuracy curve).
    MeanField(meanfield::MeanFieldOptions),
    /// Brute-force exact inference — tiny graphs only; the oracle.
    Exact,
    /// No propagation at all: every road keeps its historical prior
    /// (the trend-step-off ablation of E10).
    PriorOnly,
}

impl Default for TrendEngine {
    fn default() -> Self {
        TrendEngine::Lbp(lbp::LbpOptions::default())
    }
}

/// Configuration of the MRF construction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrendModelConfig {
    /// Couplings are attenuated towards 0.5 by this factor
    /// (`same_prob = 0.5 + coupling_scale * (cotrend − 0.5)`, before
    /// degree normalisation). Slightly under 1 keeps LBP stable on
    /// loopy neighbourhoods.
    pub coupling_scale: f64,
    /// Degree-adaptive attenuation: each edge is further scaled by
    /// `min(1, degree_norm / sqrt(deg_a * deg_b))`. Dense clusters
    /// (e.g. the many mutually-adjacent segments around a big
    /// intersection) would otherwise multiply dozens of strong factors
    /// and push loopy BP past its stability point into a polarised,
    /// wrong fixed point — this keeps the *total* coupling a node feels
    /// bounded while leaving sparse chains at full strength.
    /// `0` disables the normalisation.
    pub degree_norm: f64,
    /// Node priors are clamped to `[prior_clamp, 1 − prior_clamp]` so
    /// thin history cannot produce degenerate hard priors.
    pub prior_clamp: f64,
}

impl Default for TrendModelConfig {
    fn default() -> Self {
        TrendModelConfig {
            coupling_scale: 0.9,
            degree_norm: 3.0,
            prior_clamp: 0.1,
        }
    }
}

/// Result of a trend inference.
#[derive(Debug, Clone)]
pub struct TrendInference {
    /// Posterior up-probability per road.
    pub p_up: Vec<f64>,
    /// Sweeps/iterations the engine used (0 for exact / prior-only).
    pub iterations: usize,
    /// Whether an iterative engine reported convergence.
    pub converged: bool,
}

impl TrendInference {
    /// Hard trend decisions at the 0.5 threshold.
    pub fn decisions(&self) -> Vec<bool> {
        self.p_up.iter().map(|&p| p >= 0.5).collect()
    }
}

/// Per-slot MRFs compiled once at model construction.
///
/// The priors and the degree-normalised edge potentials of a slot's MRF
/// depend only on the frozen history statistics and the correlation
/// graph, so the whole per-slot model family can be materialised up
/// front. Serving then looks a slot's model up instead of paying the
/// `O(edges)` rebuild on every request. Shared via [`Arc`] so cloning a
/// [`TrendModel`] (or anything holding one) never copies the models.
#[derive(Debug)]
pub struct CompiledSlots {
    mrfs: Vec<PairwiseMrf>,
}

impl CompiledSlots {
    /// The compiled MRF for a slot of day.
    pub fn slot(&self, slot_of_day: usize) -> &PairwiseMrf {
        &self.mrfs[slot_of_day]
    }

    /// Number of compiled slots.
    pub fn num_slots(&self) -> usize {
        self.mrfs.len()
    }
}

/// Reusable per-worker buffers for repeated trend inference.
///
/// Holds one workspace per iterative engine plus the evidence buffer,
/// so a serving worker performs zero message-buffer allocations after
/// its first request.
#[derive(Debug, Default)]
pub struct TrendScratch {
    evidence: Evidence,
    lbp: LbpWorkspace,
    meanfield: MeanFieldWorkspace,
    gibbs: GibbsWorkspace,
    /// Posterior up-probability per road, written by
    /// [`TrendModel::infer_with`].
    pub p_up: Vec<f64>,
}

impl TrendScratch {
    /// An empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        TrendScratch::default()
    }
}

/// Convergence statistics of a scratch-based trend inference; the
/// posterior itself lives in the [`TrendScratch`].
#[derive(Debug, Clone, Copy)]
pub struct TrendStats {
    /// Sweeps/iterations the engine used (0 for exact / prior-only).
    pub iterations: usize,
    /// Whether an iterative engine reported convergence.
    pub converged: bool,
}

/// The trend model: correlation structure + historical priors.
#[derive(Debug, Clone)]
pub struct TrendModel {
    corr: CorrelationGraph,
    config: TrendModelConfig,
    /// Per-slot-of-day prior up-rates, row-major `[slot][road]`.
    priors: Vec<f64>,
    slots: usize,
    /// Degree-normalised same-trend probability per correlation edge,
    /// aligned with `corr.edges()`. Slot-independent, so it is computed
    /// once and every slot's MRF compilation streams this flat array
    /// instead of re-deriving degrees and attenuation per edge.
    couplings: Vec<f64>,
    /// Per-slot MRFs, compiled once and shared across clones/threads.
    compiled: Arc<CompiledSlots>,
}

impl TrendModel {
    /// Builds the model from a correlation graph and history statistics.
    ///
    /// Compiles the per-slot MRFs eagerly; `infer`/`infer_with` never
    /// rebuild them.
    pub fn new(corr: CorrelationGraph, stats: &HistoryStats, config: TrendModelConfig) -> Self {
        Self::new_threaded(corr, stats, config, 1)
    }

    /// [`TrendModel::new`] compiling the per-slot MRFs on `threads`
    /// workers (`0` = all cores).
    ///
    /// Slots are independent and fill index-ordered output slots, so
    /// the compiled family is bit-identical for every thread count.
    pub fn new_threaded(
        corr: CorrelationGraph,
        stats: &HistoryStats,
        config: TrendModelConfig,
        threads: usize,
    ) -> Self {
        let slots = stats.num_slots();
        let n = corr.num_roads();
        assert_eq!(n, stats.num_roads(), "correlation/stats road mismatch");
        let mut priors = Vec::with_capacity(slots * n);
        for slot in 0..slots {
            for r in 0..n {
                let p = stats.up_rate(slot, RoadId(r as u32));
                priors.push(p.clamp(config.prior_clamp, 1.0 - config.prior_clamp));
            }
        }
        // The degree-normalised couplings do not depend on the slot;
        // hoist them out of the per-slot compilation.
        let couplings: Vec<f64> = corr
            .edges()
            .iter()
            .map(|e| {
                let mut scale = config.coupling_scale;
                if config.degree_norm > 0.0 {
                    let da = corr.degree(e.a) as f64;
                    let db = corr.degree(e.b) as f64;
                    scale *= (config.degree_norm / (da * db).sqrt()).min(1.0);
                }
                0.5 + scale * (e.cotrend - 0.5)
            })
            .collect();
        let mut model = TrendModel {
            corr,
            config,
            priors,
            slots,
            couplings,
            compiled: Arc::new(CompiledSlots { mrfs: Vec::new() }),
        };
        let mrfs = crate::parallel::fill(threads, slots, |s| model.build_mrf_for_slot(s));
        model.compiled = Arc::new(CompiledSlots { mrfs });
        model
    }

    /// Rebuilds only what a **weight-only** correlation delta touched:
    /// the per-edge couplings of the changed edges and their slots in
    /// every compiled MRF. Everything else — priors, CSR topology, the
    /// untouched couplings — is carried over, so the cost is
    /// `O(slots × changed_edges × degree)` instead of a full
    /// `O(slots × edges)` recompilation.
    ///
    /// `new_corr` must be the model's graph with exactly `changes`
    /// applied (see [`CorrelationGraph::apply_delta`]); every change
    /// must be [`EdgeChange::Updated`]. Membership changes shift edge
    /// indices and degrees, so they require a full
    /// [`TrendModel::new_threaded`] rebuild — callers gate on
    /// [`crate::correlation::DeltaApply::membership_changed`].
    ///
    /// Bit-identity to that full rebuild holds because a pure update
    /// leaves every degree unchanged: unchanged edges keep their
    /// coupling bits (copied, same inputs), and changed edges go
    /// through the same attenuation expression and the same clamp as
    /// the builder ([`PairwiseMrf::set_coupling`] patches both
    /// directed slots exactly as `build` would have written them).
    pub fn patched(
        &self,
        new_corr: CorrelationGraph,
        changes: &[crate::online::EdgeChange],
    ) -> TrendModel {
        use crate::online::EdgeChange;
        assert!(
            changes.iter().all(|c| !c.changes_membership()),
            "patched() handles weight-only deltas; membership changes need a rebuild"
        );
        assert_eq!(
            new_corr.num_edges(),
            self.corr.num_edges(),
            "weight-only delta cannot change the edge count"
        );
        let mut couplings = self.couplings.clone();
        let mut mrfs = self.compiled.mrfs.clone();
        for c in changes {
            let EdgeChange::Updated(e) = c else {
                unreachable!("membership changes rejected above");
            };
            let idx = new_corr
                .edges()
                .binary_search_by_key(&(e.a, e.b), |x| (x.a, x.b))
                .expect("updated edge is present in the patched graph");
            let mut scale = self.config.coupling_scale;
            if self.config.degree_norm > 0.0 {
                let da = new_corr.degree(e.a) as f64;
                let db = new_corr.degree(e.b) as f64;
                scale *= (self.config.degree_norm / (da * db).sqrt()).min(1.0);
            }
            let same = 0.5 + scale * (e.cotrend - 0.5);
            couplings[idx] = same;
            for mrf in &mut mrfs {
                mrf.set_coupling(e.a.index(), e.b.index(), same)
                    .expect("edge exists in every compiled slot");
            }
        }
        TrendModel {
            corr: new_corr,
            config: self.config.clone(),
            priors: self.priors.clone(),
            slots: self.slots,
            couplings,
            compiled: Arc::new(CompiledSlots { mrfs }),
        }
    }

    /// The per-slot compiled MRFs.
    pub fn compiled_slots(&self) -> &Arc<CompiledSlots> {
        &self.compiled
    }

    /// The correlation graph the model couples over.
    pub fn correlation(&self) -> &CorrelationGraph {
        &self.corr
    }

    /// The MRF-construction configuration the model was built with.
    pub fn config(&self) -> &TrendModelConfig {
        &self.config
    }

    /// Number of roads.
    pub fn num_roads(&self) -> usize {
        self.corr.num_roads()
    }

    /// Serialises the trained body (config, priors, couplings) in the
    /// snapshot codec style. The correlation graph is *not* written —
    /// the enclosing estimator snapshot stores it once and hands it
    /// back to [`TrendModel::decode_snapshot_from`]; the compiled
    /// per-slot MRFs are rebuilt deterministically on decode, so the
    /// round-trip serves bit-identically.
    pub fn encode_snapshot_into(&self, buf: &mut bytes::BytesMut) {
        use bytes::BufMut;
        crate::codec::encode_trend_model_config(&self.config, buf);
        buf.put_u32_le(self.slots as u32);
        crate::codec::put_f64_slice(buf, &self.priors);
        crate::codec::put_f64_slice(buf, &self.couplings);
    }

    /// Decodes a model written by [`TrendModel::encode_snapshot_into`],
    /// recompiling the per-slot MRFs from the decoded priors/couplings
    /// (the compilation is deterministic — see
    /// [`TrendModel::new_threaded`] — so the compiled family is
    /// bit-identical to the encoder's).
    pub fn decode_snapshot_from(
        corr: CorrelationGraph,
        buf: &mut impl bytes::Buf,
    ) -> std::result::Result<TrendModel, crate::codec::DecodeError> {
        use crate::codec::{self, DecodeError};
        let config = codec::decode_trend_model_config(buf)?;
        let slots = codec::get_u32(buf)? as usize;
        let priors = codec::get_f64_vec(buf)?;
        let couplings = codec::get_f64_vec(buf)?;
        if priors.len() != slots * corr.num_roads() {
            return Err(DecodeError::Corrupt(format!(
                "prior table holds {} cells, expected {} slots x {} roads",
                priors.len(),
                slots,
                corr.num_roads()
            )));
        }
        if couplings.len() != corr.num_edges() {
            return Err(DecodeError::Corrupt(format!(
                "{} couplings for {} correlation edges",
                couplings.len(),
                corr.num_edges()
            )));
        }
        let mut model = TrendModel {
            corr,
            config,
            priors,
            slots,
            couplings,
            compiled: Arc::new(CompiledSlots { mrfs: Vec::new() }),
        };
        let mrfs = (0..slots).map(|s| model.build_mrf_for_slot(s)).collect();
        model.compiled = Arc::new(CompiledSlots { mrfs });
        Ok(model)
    }

    /// Materialises a fresh MRF for a slot of day.
    ///
    /// This is the reference construction path — [`CompiledSlots`] holds
    /// exactly what this returns, built once per slot at `new`. Serving
    /// code should use [`TrendModel::compiled_slots`] instead of paying
    /// the rebuild.
    pub fn mrf_for_slot(&self, slot_of_day: usize) -> PairwiseMrf {
        assert!(slot_of_day < self.slots, "slot out of range");
        self.build_mrf_for_slot(slot_of_day)
    }

    fn build_mrf_for_slot(&self, slot_of_day: usize) -> PairwiseMrf {
        let n = self.corr.num_roads();
        let mut b = MrfBuilder::new(n);
        let row = &self.priors[slot_of_day * n..(slot_of_day + 1) * n];
        for (r, &p) in row.iter().enumerate() {
            b.set_prior(r, p);
        }
        for (e, &same) in self.corr.edges().iter().zip(&self.couplings) {
            b.add_edge(e.a.index(), e.b.index(), same)
                .expect("correlation edges are valid");
        }
        b.build()
    }

    /// Infers trend posteriors given observed seed trends.
    ///
    /// Allocates fresh buffers per call; serving paths should hold a
    /// [`TrendScratch`] and call [`TrendModel::infer_with`], which
    /// produces bit-identical posteriors.
    pub fn infer(
        &self,
        slot_of_day: usize,
        observations: &[(RoadId, bool)],
        engine: &TrendEngine,
    ) -> TrendInference {
        let mut scratch = TrendScratch::new();
        let stats = self.infer_with(slot_of_day, observations, engine, &mut scratch);
        TrendInference {
            p_up: std::mem::take(&mut scratch.p_up),
            iterations: stats.iterations,
            converged: stats.converged,
        }
    }

    /// Infers trend posteriors reusing the compiled slot model and the
    /// buffers in `scratch`; writes the posterior to `scratch.p_up`.
    ///
    /// Performs no MRF rebuild and, for the iterative engines, no
    /// message-buffer allocation once the scratch has warmed up.
    pub fn infer_with(
        &self,
        slot_of_day: usize,
        observations: &[(RoadId, bool)],
        engine: &TrendEngine,
        scratch: &mut TrendScratch,
    ) -> TrendStats {
        let n = self.corr.num_roads();
        scratch.evidence.reset(n);
        for &(r, t) in observations {
            scratch.evidence.observe(r.index(), t);
        }
        let evidence = &scratch.evidence;
        match engine {
            TrendEngine::PriorOnly => {
                let row = &self.priors[slot_of_day * n..(slot_of_day + 1) * n];
                scratch.p_up.clear();
                scratch.p_up.extend((0..n).map(|r| match evidence.get(r) {
                    Some(true) => 1.0,
                    Some(false) => 0.0,
                    None => row[r],
                }));
                TrendStats {
                    iterations: 0,
                    converged: true,
                }
            }
            TrendEngine::Lbp(opts) => {
                let mrf = self.compiled.slot(slot_of_day);
                let res = lbp::run_with(mrf, evidence, opts, &mut scratch.lbp);
                scratch.p_up.clear();
                scratch.p_up.extend_from_slice(scratch.lbp.marginals());
                TrendStats {
                    iterations: res.iterations,
                    converged: res.converged,
                }
            }
            TrendEngine::MeanField(opts) => {
                let mrf = self.compiled.slot(slot_of_day);
                let res = meanfield::run_with(mrf, evidence, opts, &mut scratch.meanfield);
                scratch.p_up.clear();
                scratch
                    .p_up
                    .extend_from_slice(scratch.meanfield.marginals());
                TrendStats {
                    iterations: res.iterations,
                    converged: res.converged,
                }
            }
            TrendEngine::Gibbs { options, seed } => {
                let mrf = self.compiled.slot(slot_of_day);
                let mut rng = StdRng::seed_from_u64(*seed);
                gibbs::run_with(mrf, evidence, options, &mut rng, &mut scratch.gibbs);
                scratch.p_up.clear();
                scratch.p_up.extend_from_slice(scratch.gibbs.marginals());
                TrendStats {
                    iterations: options.burn_in + options.samples,
                    converged: true,
                }
            }
            TrendEngine::Exact => {
                let mrf = self.compiled.slot(slot_of_day);
                scratch.p_up = exact::marginals(mrf, evidence)
                    .expect("exact inference infeasible on this graph size");
                TrendStats {
                    iterations: 0,
                    converged: true,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::{CorrelationConfig, CorrelationEdge};
    use trafficsim::dataset::{metro_small, DatasetParams};
    use trafficsim::HistoryStats;

    fn chain_model() -> TrendModel {
        // 3-road chain with strong positive correlation; uniform priors
        // faked through a tiny handmade history.
        let e = |a: u32, b: u32| CorrelationEdge {
            a: RoadId(a),
            b: RoadId(b),
            cotrend: 0.9,
            support: 50,
        };
        let corr = CorrelationGraph::from_edges(3, vec![e(0, 1), e(1, 2)]).unwrap();
        // Build stats from a 2-day flat history (up-rate 1.0, clamped).
        let clock = trafficsim::SlotClock { slots_per_day: 1 };
        let day = trafficsim::SpeedField::filled(1, 3, 30.0);
        let h = trafficsim::HistoricalData::from_days(clock, vec![day.clone(), day]);
        let stats = HistoryStats::compute(&h);
        TrendModel::new(corr, &stats, TrendModelConfig::default())
    }

    #[test]
    fn priors_are_clamped() {
        let m = chain_model();
        let mrf = m.mrf_for_slot(0);
        for v in 0..3 {
            let p = mrf.prior_up(v);
            assert!((0.1 - 1e-9..=0.9 + 1e-9).contains(&p));
        }
    }

    #[test]
    fn evidence_propagates_under_lbp() {
        // The flat history gives every road a strong (0.9) up prior, so
        // a single down observation cannot flip the neighbour outright —
        // but it must pull the neighbour's posterior well below its
        // prior-only value, and the pull must attenuate with distance.
        let m = chain_model();
        let with_ev = m.infer(0, &[(RoadId(0), false)], &TrendEngine::default());
        let prior_only = m.infer(0, &[(RoadId(0), false)], &TrendEngine::PriorOnly);
        assert!(with_ev.converged);
        assert_eq!(with_ev.p_up[0], 0.0);
        assert!(
            with_ev.p_up[1] < prior_only.p_up[1] - 0.03,
            "evidence did not propagate: {:?} vs {:?}",
            with_ev.p_up,
            prior_only.p_up
        );
        assert!(
            with_ev.p_up[2] > with_ev.p_up[1],
            "pull must attenuate with distance: {:?}",
            with_ev.p_up
        );
    }

    #[test]
    fn prior_only_ignores_structure() {
        let m = chain_model();
        let inf = m.infer(0, &[(RoadId(0), false)], &TrendEngine::PriorOnly);
        // Neighbour keeps its (clamped, up-leaning) prior despite the
        // down evidence next door.
        assert!(inf.p_up[1] > 0.5);
        assert_eq!(inf.iterations, 0);
    }

    #[test]
    fn lbp_close_to_exact_on_small_model() {
        let m = chain_model();
        let obs = [(RoadId(2), true)];
        let l = m.infer(0, &obs, &TrendEngine::default());
        let e = m.infer(0, &obs, &TrendEngine::Exact);
        for (a, b) in l.p_up.iter().zip(&e.p_up) {
            assert!((a - b).abs() < 1e-4, "{:?} vs {:?}", l.p_up, e.p_up);
        }
    }

    #[test]
    fn gibbs_close_to_exact_on_small_model() {
        let m = chain_model();
        let obs = [(RoadId(2), true)];
        let g = m.infer(
            0,
            &obs,
            &TrendEngine::Gibbs {
                options: gibbs::GibbsOptions::default(),
                seed: 5,
            },
        );
        let e = m.infer(0, &obs, &TrendEngine::Exact);
        for (a, b) in g.p_up.iter().zip(&e.p_up) {
            assert!((a - b).abs() < 0.05, "{:?} vs {:?}", g.p_up, e.p_up);
        }
    }

    #[test]
    fn mean_field_close_to_exact_on_small_model() {
        let m = chain_model();
        let obs = [(RoadId(2), true)];
        let mf = m.infer(
            0,
            &obs,
            &TrendEngine::MeanField(graphmodel::meanfield::MeanFieldOptions::default()),
        );
        let e = m.infer(0, &obs, &TrendEngine::Exact);
        assert!(mf.converged);
        // Mean field is the loosest engine; direction must match and
        // magnitudes stay close on this weakly-frustrated chain.
        for (a, b) in mf.p_up.iter().zip(&e.p_up) {
            assert_eq!(*a >= 0.5, *b >= 0.5, "{:?} vs {:?}", mf.p_up, e.p_up);
            assert!((a - b).abs() < 0.15, "{:?} vs {:?}", mf.p_up, e.p_up);
        }
    }

    #[test]
    fn decisions_threshold() {
        let inf = TrendInference {
            p_up: vec![0.2, 0.5, 0.8],
            iterations: 1,
            converged: true,
        };
        assert_eq!(inf.decisions(), vec![false, true, true]);
    }

    #[test]
    fn threaded_compilation_is_bit_identical_to_serial() {
        let ds = metro_small(&DatasetParams {
            training_days: 8,
            test_days: 1,
            ..DatasetParams::default()
        });
        let stats = HistoryStats::compute(&ds.history);
        let corr = CorrelationGraph::build(
            &ds.graph,
            &ds.history,
            &stats,
            &CorrelationConfig {
                min_cotrend: 0.6,
                min_co_observations: 6,
                ..CorrelationConfig::default()
            },
        );
        let serial = TrendModel::new(corr.clone(), &stats, TrendModelConfig::default());
        let obs = [(RoadId(0), true), (RoadId(24), false)];
        let reference = serial.infer(8, &obs, &TrendEngine::default());
        for threads in [2usize, 8] {
            let t = TrendModel::new_threaded(
                corr.clone(),
                &stats,
                TrendModelConfig::default(),
                threads,
            );
            assert_eq!(
                t.compiled_slots().num_slots(),
                serial.compiled_slots().num_slots()
            );
            let inf = t.infer(8, &obs, &TrendEngine::default());
            for (r, (a, b)) in inf.p_up.iter().zip(&reference.p_up).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "threads={threads}, road {r}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn patched_weight_delta_is_bit_identical_to_rebuild() {
        use crate::online::{EdgeChange, OnlineCorrelation};
        let ds = metro_small(&DatasetParams {
            training_days: 10,
            test_days: 1,
            ..DatasetParams::default()
        });
        let stats = HistoryStats::compute(&ds.history);
        // Online materialisation keeps the edge list (a, b)-sorted,
        // which is the layout `patched`'s lookup is specified against.
        let online =
            OnlineCorrelation::bootstrap(&ds.graph, &ds.history, &CorrelationConfig::default());
        let corr = online.correlation_graph();
        assert!(corr.num_edges() > 10);
        let base = TrendModel::new(corr.clone(), &stats, TrendModelConfig::default());

        let mut changes = Vec::new();
        let mut patched_corr = corr.clone();
        for (i, e) in corr.edges().iter().enumerate() {
            if i % 3 == 0 {
                let mut e = *e;
                e.cotrend = (e.cotrend * 0.96).max(1.0 - e.cotrend);
                e.support += 7;
                changes.push(EdgeChange::Updated(e));
            }
        }
        let summary = patched_corr.apply_delta(&changes).unwrap();
        assert!(!summary.membership_changed);

        let patched = base.patched(patched_corr.clone(), &changes);
        let rebuilt = TrendModel::new(patched_corr, &stats, TrendModelConfig::default());
        assert_eq!(patched.couplings.len(), rebuilt.couplings.len());
        for (i, (a, b)) in patched.couplings.iter().zip(&rebuilt.couplings).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "coupling {i}");
        }
        for (a, b) in patched.priors.iter().zip(&rebuilt.priors) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(patched.compiled.mrfs, rebuilt.compiled.mrfs);
        // And the inference surfaces agree bit for bit.
        let obs = [(RoadId(0), true), (RoadId(17), false)];
        let pi = patched.infer(5, &obs, &TrendEngine::default());
        let ri = rebuilt.infer(5, &obs, &TrendEngine::default());
        for (a, b) in pi.p_up.iter().zip(&ri.p_up) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn works_end_to_end_on_synthetic_dataset() {
        let ds = metro_small(&DatasetParams {
            training_days: 8,
            test_days: 1,
            ..DatasetParams::default()
        });
        let stats = HistoryStats::compute(&ds.history);
        let corr = CorrelationGraph::build(
            &ds.graph,
            &ds.history,
            &stats,
            &CorrelationConfig {
                min_cotrend: 0.6,
                min_co_observations: 6,
                ..CorrelationConfig::default()
            },
        );
        let model = TrendModel::new(corr, &stats, TrendModelConfig::default());
        let truth = &ds.test_days[0];
        let slot = 8;
        // Observe 10 roads' true trends, infer the rest.
        let obs: Vec<(RoadId, bool)> = (0..10u32)
            .map(RoadId)
            .map(|r| (r, stats.trend_of(slot, r, truth.speed(slot, r))))
            .collect();
        let inf = model.infer(slot, &obs, &TrendEngine::default());
        assert!(inf.converged, "LBP failed to converge");
        assert_eq!(inf.p_up.len(), ds.graph.num_roads());
        assert!(inf.p_up.iter().all(|p| (0.0..=1.0).contains(p)));
    }
}
