//! The two-step inference model (paper §speed-inference).
//!
//! * [`trend_model`] — **step 1**: a pairwise MRF over the correlation
//!   graph infers each road's binary trend given the crowdsourced seed
//!   trends.
//! * [`hlm`] — **step 2**: a three-level hierarchical linear model
//!   (road → road class → city) turns trends plus seed deviations into
//!   speed estimates.
//! * [`pipeline`] — glues both steps behind
//!   [`pipeline::TrafficEstimator`], the crate's main entry point.

pub mod hlm;
pub mod pipeline;
pub mod trend_model;
