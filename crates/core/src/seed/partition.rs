//! Partition-based greedy seed selection.

use super::lazy_greedy::lazy_greedy;
use super::objective::{InfluenceConfig, InfluenceModel};
use super::SelectionResult;
use crate::correlation::{CorrelationEdge, CorrelationGraph};
use roadnet::RoadId;

/// Partition greedy: carves the correlation graph into `parts` balanced
/// pieces by multi-source BFS, runs lazy greedy inside each piece with a
/// budget proportional to its size, and concatenates.
///
/// Influence never crosses part boundaries, so each per-part run sees a
/// smaller candidate pool and shorter reach lists — the fastest of the
/// greedy family. The price is the influence lost across boundaries:
/// the objective is within `(1 − 1/e)` of the optimum *of the cut
/// graph*, so quality degrades with the number of parts (measured in
/// experiments E2/E7).
pub fn partition_greedy(
    corr: &CorrelationGraph,
    config: &InfluenceConfig,
    k: usize,
    parts: usize,
) -> SelectionResult {
    let n = corr.num_roads();
    let parts = parts.clamp(1, n.max(1));
    let labels = bfs_partition(corr, parts);

    // Split edges by part; edges across parts are dropped (that is the
    // approximation).
    let mut part_edges: Vec<Vec<CorrelationEdge>> = vec![Vec::new(); parts];
    for e in corr.edges() {
        let la = labels[e.a.index()];
        if la == labels[e.b.index()] {
            part_edges[la].push(*e);
        }
    }
    let mut part_members: Vec<Vec<RoadId>> = vec![Vec::new(); parts];
    for r in 0..n {
        part_members[labels[r]].push(RoadId(r as u32));
    }

    // Proportional budgets (largest-remainder rounding).
    let mut budgets: Vec<usize> = part_members
        .iter()
        .map(|m| k * m.len() / n.max(1))
        .collect();
    let mut assigned: usize = budgets.iter().sum();
    let mut order: Vec<usize> = (0..parts).collect();
    order.sort_by_key(|&p| std::cmp::Reverse(part_members[p].len()));
    let mut i = 0;
    while assigned < k && !order.is_empty() {
        let p = order[i % order.len()];
        if budgets[p] < part_members[p].len() {
            budgets[p] += 1;
            assigned += 1;
        }
        i += 1;
        if i > 4 * parts * (k + 1) {
            break; // every part saturated
        }
    }

    // Per-part lazy greedy on a re-indexed subgraph.
    let mut seeds = Vec::with_capacity(k);
    let mut gains = Vec::new();
    let mut evaluations = 0u64;
    for p in 0..parts {
        if budgets[p] == 0 || part_members[p].is_empty() {
            continue;
        }
        let members = &part_members[p];
        let mut local_of = vec![u32::MAX; n];
        for (li, r) in members.iter().enumerate() {
            local_of[r.index()] = li as u32;
        }
        let local_edges: Vec<CorrelationEdge> = part_edges[p]
            .iter()
            .map(|e| CorrelationEdge {
                a: RoadId(local_of[e.a.index()]),
                b: RoadId(local_of[e.b.index()]),
                cotrend: e.cotrend,
                support: e.support,
            })
            .collect();
        let local_corr = CorrelationGraph::from_edges(members.len(), local_edges)
            .expect("re-indexed edges keep their validated weights");
        let model = InfluenceModel::build(&local_corr, config);
        let res = lazy_greedy(&model, budgets[p]);
        evaluations += res.evaluations;
        for (s, g) in res.seeds.iter().zip(&res.gains) {
            seeds.push(members[s.index()]);
            gains.push(*g);
        }
    }

    // The reported objective is the sum of per-part coverages — the
    // objective of the *cut* graph, a lower bound on the full-graph
    // coverage. Callers comparing algorithms should re-score the seeds
    // on a shared full-graph `SeedObjective` (the E2/E7 binaries do);
    // building the full influence model here would bill the comparison
    // bookkeeping to this algorithm's runtime.
    let objective = gains.iter().sum();
    SelectionResult {
        seeds,
        objective,
        gains,
        evaluations,
    }
}

/// Balanced multi-source BFS partition: sources are spread by a
/// farthest-first sweep, then labels grow outward one ring at a time.
/// Unreachable roads are round-robined across parts.
///
/// Deterministic for a given graph (no randomness: source picking and
/// BFS order are index-ordered). Every road gets a label `< parts`
/// (capped at the road count). Besides seed selection this is the
/// geometric first pass of the shard planner ([`crate::shard`]).
pub fn partition_roads(corr: &CorrelationGraph, parts: usize) -> Vec<usize> {
    bfs_partition(corr, parts.clamp(1, corr.num_roads().max(1)))
}

fn bfs_partition(corr: &CorrelationGraph, parts: usize) -> Vec<usize> {
    let n = corr.num_roads();
    let mut labels = vec![usize::MAX; n];
    if n == 0 {
        return labels;
    }
    // Farthest-first source picking on hop distance.
    let mut sources = vec![0usize];
    let mut dist = vec![u32::MAX; n];
    bfs_layer(corr, 0, &mut dist);
    while sources.len() < parts {
        let far = (0..n)
            .max_by_key(|&r| {
                if dist[r] == u32::MAX {
                    u32::MAX
                } else {
                    dist[r]
                }
            })
            .expect("n > 0");
        if sources.contains(&far) {
            break;
        }
        sources.push(far);
        let mut d2 = vec![u32::MAX; n];
        bfs_layer(corr, far, &mut d2);
        for r in 0..n {
            dist[r] = dist[r].min(d2[r]);
        }
    }

    // Synchronised BFS growth from all sources.
    let mut queue = std::collections::VecDeque::new();
    for (p, &s) in sources.iter().enumerate() {
        labels[s] = p;
        queue.push_back(s);
    }
    while let Some(u) = queue.pop_front() {
        let lu = labels[u];
        for (v, _) in corr.neighbors(RoadId(u as u32)) {
            if labels[v.index()] == usize::MAX {
                labels[v.index()] = lu;
                queue.push_back(v.index());
            }
        }
    }
    // Isolated / unreached roads: round-robin into parts.
    let mut p = 0;
    for l in labels.iter_mut() {
        if *l == usize::MAX {
            *l = p % sources.len();
            p += 1;
        }
    }
    labels
}

fn bfs_layer(corr: &CorrelationGraph, source: usize, dist: &mut [u32]) {
    let mut queue = std::collections::VecDeque::new();
    dist[source] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for (v, _) in corr.neighbors(RoadId(u as u32)) {
            if dist[v.index()] == u32::MAX {
                dist[v.index()] = dist[u] + 1;
                queue.push_back(v.index());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seed::greedy::greedy;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_corr(n: usize, edge_prob: f64, seed: u64) -> CorrelationGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for a in 0..n as u32 {
            for b in (a + 1)..n as u32 {
                if rng.gen_bool(edge_prob) {
                    edges.push(CorrelationEdge {
                        a: RoadId(a),
                        b: RoadId(b),
                        cotrend: rng.gen_range(0.65..0.95),
                        support: 50,
                    });
                }
            }
        }
        CorrelationGraph::from_edges(n, edges).unwrap()
    }

    #[test]
    fn single_part_matches_lazy_greedy() {
        let corr = random_corr(40, 0.1, 5);
        let config = InfluenceConfig::default();
        let model = InfluenceModel::build(&corr, &config);
        let lazy = lazy_greedy(&model, 8);
        let part = partition_greedy(&corr, &config, 8, 1);
        assert!((lazy.objective - part.objective).abs() < 1e-9);
    }

    #[test]
    fn respects_budget() {
        let corr = random_corr(60, 0.08, 6);
        let res = partition_greedy(&corr, &InfluenceConfig::default(), 12, 4);
        assert_eq!(res.seeds.len(), 12);
        let mut s = res.seeds.clone();
        s.sort();
        s.dedup();
        assert_eq!(s.len(), 12, "duplicate seeds");
    }

    #[test]
    fn quality_close_to_plain_greedy() {
        let corr = random_corr(80, 0.06, 7);
        let config = InfluenceConfig::default();
        let model = InfluenceModel::build(&corr, &config);
        let plain = greedy(&model, 10);
        let part = partition_greedy(&corr, &config, 10, 4);
        // Re-score the partition's seeds on the shared full-graph
        // objective for a fair comparison.
        let scored = crate::seed::objective::SeedObjective::new(&model).value(&part.seeds);
        assert!(
            scored >= plain.objective * 0.75,
            "partition {scored} vs greedy {}",
            plain.objective
        );
        // The reported cut-graph objective is a lower bound.
        assert!(part.objective <= scored + 1e-9);
    }

    #[test]
    fn partition_labels_cover_everything() {
        let corr = random_corr(50, 0.05, 8);
        let labels = bfs_partition(&corr, 5);
        assert!(labels.iter().all(|&l| l < 5));
    }

    #[test]
    fn handles_more_parts_than_roads() {
        let corr = random_corr(5, 0.5, 9);
        let res = partition_greedy(&corr, &InfluenceConfig::default(), 3, 50);
        assert_eq!(res.seeds.len(), 3);
    }

    #[test]
    fn partition_is_deterministic_across_runs() {
        let corr = random_corr(70, 0.07, 11);
        let config = InfluenceConfig::default();
        let a = partition_greedy(&corr, &config, 14, 4);
        let b = partition_greedy(&corr, &config, 14, 4);
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.gains, b.gains);
        assert_eq!(partition_roads(&corr, 4), partition_roads(&corr, 4));
    }

    #[test]
    fn partition_balance_bounds_on_connected_graph() {
        // A ring is connected and symmetric; synchronised BFS growth
        // from farthest-first sources must keep parts balanced.
        let n = 64usize;
        let edges: Vec<CorrelationEdge> = (0..n as u32)
            .map(|a| CorrelationEdge {
                a: RoadId(a),
                b: RoadId((a + 1) % n as u32),
                cotrend: 0.8,
                support: 40,
            })
            .collect();
        let corr = CorrelationGraph::from_edges(n, edges).unwrap();
        for parts in [2usize, 4, 8] {
            let labels = partition_roads(&corr, parts);
            let mut sizes = vec![0usize; parts];
            for &l in &labels {
                sizes[l] += 1;
            }
            let (min, max) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
            assert!(min > 0, "{parts} parts: empty part, sizes {sizes:?}");
            assert!(
                max <= 2 * n / parts,
                "{parts} parts: worst part {max} > 2x fair share, sizes {sizes:?}"
            );
        }
    }

    #[test]
    fn partition_degenerate_part_counts() {
        let corr = random_corr(12, 0.2, 13);
        // N = 1: everything in part 0.
        assert!(partition_roads(&corr, 1).iter().all(|&l| l == 0));
        // N = 0 is clamped up to 1.
        assert!(partition_roads(&corr, 0).iter().all(|&l| l == 0));
        // N >= roads: still every label < clamped part count, all roads
        // labelled.
        let labels = partition_roads(&corr, 50);
        assert_eq!(labels.len(), 12);
        assert!(labels.iter().all(|&l| l < 12));
        // partition_greedy in the same degenerate regimes keeps budget.
        let r1 = partition_greedy(&corr, &InfluenceConfig::default(), 4, 1);
        assert_eq!(r1.seeds.len(), 4);
        let rn = partition_greedy(&corr, &InfluenceConfig::default(), 4, 12);
        assert_eq!(rn.seeds.len(), 4);
    }

    #[test]
    fn empty_graph_partition() {
        let corr = CorrelationGraph::from_edges(0, Vec::new()).unwrap();
        assert!(partition_roads(&corr, 3).is_empty());
    }
}
