//! Baseline seed selectors used as evaluation comparators.

use crate::correlation::CorrelationGraph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use roadnet::RoadId;
use trafficsim::{HistoricalData, HistoryStats};

/// Uniformly random `k` distinct roads.
pub fn random_seeds(n: usize, k: usize, rng_seed: u64) -> Vec<RoadId> {
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let mut ids: Vec<RoadId> = (0..n as u32).map(RoadId).collect();
    ids.shuffle(&mut rng);
    ids.truncate(k.min(n));
    ids
}

/// The `k` roads with the highest correlation-graph degree (a natural
/// "hub" heuristic that ignores coverage overlap).
pub fn top_degree(corr: &CorrelationGraph, k: usize) -> Vec<RoadId> {
    let mut ids: Vec<RoadId> = (0..corr.num_roads() as u32).map(RoadId).collect();
    ids.sort_by_key(|&r| (std::cmp::Reverse(corr.degree(r)), r));
    ids.truncate(k.min(corr.num_roads()));
    ids
}

/// The `k` roads whose historical deviation varies the most — "hard to
/// predict from history alone, so observe them" (ignores that volatile
/// roads may be redundant with each other).
pub fn top_variance(history: &HistoricalData, stats: &HistoryStats, k: usize) -> Vec<RoadId> {
    let n = history.num_roads();
    let slots = history.clock().slots_per_day;
    let mut sums = vec![(0.0f64, 0.0f64, 0u32); n]; // (sum, sum_sq, count)
    for day in 0..history.num_days() {
        for slot in 0..slots {
            for (r, e) in sums.iter_mut().enumerate() {
                let road = RoadId(r as u32);
                if let Some(v) = history.speed(day, slot, road) {
                    if let Some(d) = stats.deviation_of(slot, road, v) {
                        e.0 += d;
                        e.1 += d * d;
                        e.2 += 1;
                    }
                }
            }
        }
    }
    let variance = |&(s, sq, c): &(f64, f64, u32)| -> f64 {
        if c < 2 {
            return 0.0;
        }
        let n = c as f64;
        ((sq - s * s / n) / (n - 1.0)).max(0.0)
    };
    let mut ids: Vec<RoadId> = (0..n as u32).map(RoadId).collect();
    ids.sort_by(|&a, &b| {
        variance(&sums[b.index()])
            .partial_cmp(&variance(&sums[a.index()]))
            .expect("variance NaN")
            .then(a.cmp(&b))
    });
    ids.truncate(k.min(n));
    ids
}

/// The `k` roads with the highest PageRank on the correlation graph
/// (edge weights as transition propensities).
pub fn pagerank_seeds(
    corr: &CorrelationGraph,
    k: usize,
    damping: f64,
    iters: usize,
) -> Vec<RoadId> {
    let n = corr.num_roads();
    if n == 0 {
        return Vec::new();
    }
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    let out_weight: Vec<f64> = (0..n)
        .map(|r| {
            corr.neighbors(RoadId(r as u32))
                .map(|(_, w)| w)
                .sum::<f64>()
        })
        .collect();
    for _ in 0..iters {
        let base = (1.0 - damping) / n as f64;
        next.iter_mut().for_each(|x| *x = base);
        let mut dangling = 0.0;
        for r in 0..n {
            if out_weight[r] <= 0.0 {
                dangling += rank[r];
                continue;
            }
            let share = damping * rank[r] / out_weight[r];
            for (nb, w) in corr.neighbors(RoadId(r as u32)) {
                next[nb.index()] += share * w;
            }
        }
        let dangle_share = damping * dangling / n as f64;
        for x in next.iter_mut() {
            *x += dangle_share;
        }
        std::mem::swap(&mut rank, &mut next);
    }
    let mut ids: Vec<RoadId> = (0..n as u32).map(RoadId).collect();
    ids.sort_by(|&a, &b| {
        rank[b.index()]
            .partial_cmp(&rank[a.index()])
            .expect("rank NaN")
            .then(a.cmp(&b))
    });
    ids.truncate(k.min(n));
    ids
}

/// Greedy k-center (farthest-first traversal) on correlation-graph hop
/// distance: spreads seeds out to maximise coverage radius, ignoring
/// correlation strength.
pub fn k_center(corr: &CorrelationGraph, k: usize) -> Vec<RoadId> {
    let n = corr.num_roads();
    if n == 0 || k == 0 {
        return Vec::new();
    }
    // Start at the highest-degree road for determinism.
    let start = top_degree(corr, 1)[0];
    let mut seeds = vec![start];
    let mut dist = vec![u32::MAX; n];
    bfs_into(corr, start, &mut dist);
    while seeds.len() < k.min(n) {
        let far = (0..n as u32)
            .map(RoadId)
            .filter(|r| !seeds.contains(r))
            .max_by_key(|r| dist[r.index()])
            .expect("candidates remain");
        seeds.push(far);
        let mut d2 = vec![u32::MAX; n];
        bfs_into(corr, far, &mut d2);
        for i in 0..n {
            dist[i] = dist[i].min(d2[i]);
        }
    }
    seeds
}

fn bfs_into(corr: &CorrelationGraph, source: RoadId, dist: &mut [u32]) {
    let mut queue = std::collections::VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for (v, _) in corr.neighbors(u) {
            if dist[v.index()] == u32::MAX {
                dist[v.index()] = dist[u.index()] + 1;
                queue.push_back(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::CorrelationEdge;

    fn star_corr() -> CorrelationGraph {
        let e = |a: u32, b: u32, p: f64| CorrelationEdge {
            a: RoadId(a),
            b: RoadId(b),
            cotrend: p,
            support: 50,
        };
        // Hub r0 with 4 spokes, plus an isolated chain r5-r6.
        CorrelationGraph::from_edges(
            7,
            vec![
                e(0, 1, 0.9),
                e(0, 2, 0.9),
                e(0, 3, 0.9),
                e(0, 4, 0.9),
                e(5, 6, 0.8),
            ],
        )
        .unwrap()
    }

    #[test]
    fn random_seeds_distinct_and_reproducible() {
        let a = random_seeds(20, 8, 42);
        let b = random_seeds(20, 8, 42);
        assert_eq!(a, b);
        let mut s = a.clone();
        s.sort();
        s.dedup();
        assert_eq!(s.len(), 8);
        assert_ne!(a, random_seeds(20, 8, 43));
    }

    #[test]
    fn random_seeds_capped_at_n() {
        assert_eq!(random_seeds(3, 10, 1).len(), 3);
    }

    #[test]
    fn top_degree_picks_hub() {
        let corr = star_corr();
        assert_eq!(top_degree(&corr, 1), vec![RoadId(0)]);
    }

    #[test]
    fn pagerank_ranks_hub_first() {
        let corr = star_corr();
        let seeds = pagerank_seeds(&corr, 1, 0.85, 50);
        assert_eq!(seeds, vec![RoadId(0)]);
    }

    #[test]
    fn pagerank_handles_empty_graph() {
        let corr = CorrelationGraph::from_edges(0, vec![]).unwrap();
        assert!(pagerank_seeds(&corr, 3, 0.85, 10).is_empty());
    }

    #[test]
    fn k_center_spreads_to_disconnected_component() {
        let corr = star_corr();
        let seeds = k_center(&corr, 2);
        assert_eq!(seeds[0], RoadId(0));
        // Second centre must come from the unreachable chain.
        assert!(seeds[1] == RoadId(5) || seeds[1] == RoadId(6));
    }

    #[test]
    fn top_variance_prefers_volatile_roads() {
        use trafficsim::{HistoricalData, SlotClock, SpeedField};
        let clock = SlotClock { slots_per_day: 2 };
        // Road 0 oscillates wildly across days, road 1 is constant.
        let mut d0 = SpeedField::filled(2, 2, 30.0);
        let mut d1 = SpeedField::filled(2, 2, 30.0);
        for s in 0..2 {
            d0.set_speed(s, RoadId(0), 10.0);
            d1.set_speed(s, RoadId(0), 50.0);
        }
        let h = HistoricalData::from_days(clock, vec![d0, d1]);
        let stats = HistoryStats::compute(&h);
        assert_eq!(top_variance(&h, &stats, 1), vec![RoadId(0)]);
    }
}
