//! Time-varying seed selection.
//!
//! Correlation structure is not stationary over the day: rush-hour
//! congestion couples arterials tightly, while at night most structure
//! dissolves into noise. A single all-day seed set is therefore a
//! compromise. This module splits the day into periods, builds a
//! **per-period correlation graph** (via
//! [`CorrelationGraph::build_for_slots`]), and selects a seed set per
//! period with lazy greedy under the same total budget `K` — the
//! crowdsourcing platform simply tasks different roads at different
//! hours.
//!
//! This extends the paper's static formulation (its seed sets are
//! selected once); the ablation in experiment E10 quantifies the gain.

use super::lazy_greedy::lazy_greedy;
use super::objective::{InfluenceConfig, InfluenceModel};
use crate::correlation::{CorrelationConfig, CorrelationGraph};
use roadnet::{RoadGraph, RoadId};
use trafficsim::{HistoricalData, HistoryStats};

/// A contiguous block of slots sharing one seed set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Period {
    /// Human-readable label ("am-rush").
    pub label: &'static str,
    /// Slots of day belonging to the period.
    pub slots: Vec<usize>,
}

/// The standard five-period split of a day (night / AM rush / midday /
/// PM rush / evening) for a clock with `slots_per_day` slots.
pub fn standard_periods(slots_per_day: usize) -> Vec<Period> {
    let slot_of = |h: f64| ((h / 24.0) * slots_per_day as f64) as usize;
    let range = |label, lo: f64, hi: f64| Period {
        label,
        slots: (slot_of(lo)..slot_of(hi).min(slots_per_day)).collect(),
    };
    vec![
        range("night", 0.0, 6.5),
        range("am-rush", 6.5, 10.0),
        range("midday", 10.0, 16.0),
        range("pm-rush", 16.0, 20.0),
        range("evening", 20.0, 24.0),
    ]
}

/// A time-varying seed plan: one seed set per period.
#[derive(Debug, Clone)]
pub struct TemporalSeedPlan {
    periods: Vec<Period>,
    seeds: Vec<Vec<RoadId>>,
}

impl TemporalSeedPlan {
    /// Selects one `K`-seed set per period from period-restricted
    /// correlation graphs.
    pub fn select(
        graph: &RoadGraph,
        history: &HistoricalData,
        stats: &HistoryStats,
        corr_config: &CorrelationConfig,
        influence_config: &InfluenceConfig,
        periods: Vec<Period>,
        k: usize,
    ) -> TemporalSeedPlan {
        assert!(!periods.is_empty(), "need at least one period");
        let seeds = periods
            .iter()
            .map(|p| {
                // Fewer cells per period -> scale the support floor so
                // short periods still produce a usable graph.
                let frac = p.slots.len() as f64 / stats.num_slots() as f64;
                let scaled = CorrelationConfig {
                    min_co_observations: ((corr_config.min_co_observations as f64 * frac).round()
                        as u32)
                        .max(4),
                    ..corr_config.clone()
                };
                let in_period = |slot: usize| p.slots.contains(&slot);
                let corr =
                    CorrelationGraph::build_for_slots(graph, history, stats, &scaled, in_period);
                let influence = InfluenceModel::build(&corr, influence_config);
                lazy_greedy(&influence, k).seeds
            })
            .collect();
        TemporalSeedPlan { periods, seeds }
    }

    /// The plan's periods.
    pub fn periods(&self) -> &[Period] {
        &self.periods
    }

    /// Seed set active at a slot of day. Slots not covered by any
    /// period (possible with custom period lists) fall back to the
    /// first period's seeds.
    pub fn seeds_for_slot(&self, slot_of_day: usize) -> &[RoadId] {
        for (p, s) in self.periods.iter().zip(&self.seeds) {
            if p.slots.contains(&slot_of_day) {
                return s;
            }
        }
        &self.seeds[0]
    }

    /// Seed set of period `i` (selection order preserved).
    pub fn period_seeds(&self, i: usize) -> &[RoadId] {
        &self.seeds[i]
    }

    /// All distinct roads used anywhere in the plan.
    pub fn all_roads(&self) -> Vec<RoadId> {
        let mut all: Vec<RoadId> = self.seeds.iter().flatten().copied().collect();
        all.sort_unstable();
        all.dedup();
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trafficsim::dataset::{metro_small, DatasetParams};

    fn plan(k: usize) -> (trafficsim::dataset::Dataset, TemporalSeedPlan) {
        let ds = metro_small(&DatasetParams {
            training_days: 10,
            test_days: 1,
            ..DatasetParams::default()
        });
        let stats = HistoryStats::compute(&ds.history);
        let plan = TemporalSeedPlan::select(
            &ds.graph,
            &ds.history,
            &stats,
            &CorrelationConfig {
                min_cotrend: 0.6,
                ..CorrelationConfig::default()
            },
            &InfluenceConfig::default(),
            standard_periods(ds.clock.slots_per_day),
            k,
        );
        (ds, plan)
    }

    #[test]
    fn standard_periods_cover_the_day() {
        for spd in [24usize, 48, 96] {
            let periods = standard_periods(spd);
            let mut covered: Vec<usize> = periods.iter().flat_map(|p| p.slots.clone()).collect();
            covered.sort_unstable();
            covered.dedup();
            assert_eq!(covered, (0..spd).collect::<Vec<_>>(), "spd {spd}");
        }
    }

    #[test]
    fn every_period_gets_k_seeds() {
        let (_, plan) = plan(8);
        for i in 0..plan.periods().len() {
            assert_eq!(plan.period_seeds(i).len(), 8);
        }
    }

    #[test]
    fn slot_lookup_respects_periods() {
        let (ds, plan) = plan(6);
        let night_slot = ds.clock.slot_of_hour(2.0);
        let rush_slot = ds.clock.slot_of_hour(8.0);
        assert_eq!(plan.seeds_for_slot(night_slot), plan.period_seeds(0));
        assert_eq!(plan.seeds_for_slot(rush_slot), plan.period_seeds(1));
    }

    #[test]
    fn periods_differentiate_seed_sets() {
        // Rush and night correlation structure differ, so at least one
        // pair of period seed sets should differ.
        let (_, plan) = plan(10);
        let distinct =
            (1..plan.periods().len()).any(|i| plan.period_seeds(i) != plan.period_seeds(0));
        assert!(distinct, "all periods picked identical seeds");
    }

    #[test]
    fn all_roads_dedups() {
        let (ds, plan) = plan(10);
        let all = plan.all_roads();
        let mut sorted = all.clone();
        sorted.dedup();
        assert_eq!(all, sorted);
        assert!(all.len() <= 50);
        assert!(all.iter().all(|r| r.index() < ds.graph.num_roads()));
    }
}
