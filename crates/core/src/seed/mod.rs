//! Seed selection (paper §seed-selection).
//!
//! Given a budget `K`, choose `K` roads whose crowdsourced speeds make
//! the inference over the remaining roads as accurate as possible.
//!
//! # Objective
//!
//! Each candidate seed `s` *influences* road `r` with probability
//! `q(s → r)`: the best-path product of correlation-edge strengths
//! between them (computed by [`objective::InfluenceModel`]); a seed
//! trivially covers itself with `q = 1`. A seed set `S` covers road `r`
//! with probability `1 − Π_{s∈S} (1 − q(s → r))` — influences act as
//! independent chances of pinning down `r`'s trend. The objective is
//! the expected number of covered roads:
//!
//! ```text
//! F(S) = Σ_r [ 1 − Π_{s∈S} (1 − q(s → r)) ]
//! ```
//!
//! # NP-hardness
//!
//! Maximising `F(S)` subject to `|S| ≤ K` is NP-hard, by reduction from
//! **Maximum Coverage**. Given a Max-Coverage instance (universe `U`,
//! sets `S_1..S_m`, budget `K`), build one "element road" per `u ∈ U`
//! and one "set road" per `S_i`, and let `q(set_i → u) = 1` iff
//! `u ∈ S_i`, all other influences 0 (realisable with correlation edges
//! of strength 1 on a bipartite graph, padding element roads so they are
//! never worth picking). Then a seed set of size `K` achieving
//! `F(S) ≥ t + K` exists iff the Max-Coverage instance covers `t`
//! elements — so an exact polynomial seed selector would solve Max
//! Coverage. (The paper proves the analogous claim for its benefit
//! function.)
//!
//! # Algorithms
//!
//! `F` is monotone and submodular (each road's coverage term
//! `1 − Π (1 − q)` is; sums preserve it), so:
//!
//! * [`greedy::greedy`] — the plain greedy algorithm, `(1 − 1/e)`
//!   approximation, `O(K · n · reach)` influence evaluations;
//! * [`lazy_greedy::lazy_greedy`] — CELF lazy evaluation; identical
//!   output and guarantee, but skips provably-stale gain
//!   recomputations — this is where the evaluation's
//!   orders-of-magnitude speedup over plain greedy comes from (E7);
//! * [`partition::partition_greedy`] — partitions the correlation graph
//!   and runs lazy greedy per part with proportional budgets; faster
//!   still, with quality bounded by the influence lost across part
//!   boundaries;
//! * [`exhaustive::exhaustive`] — optimal by enumeration, tiny inputs
//!   only; the oracle the greedy tests compare against;
//! * [`baseline`] — random / top-degree / top-variance / PageRank /
//!   k-center selectors used as evaluation baselines.

pub mod baseline;
pub mod exhaustive;
pub mod greedy;
pub mod lazy_greedy;
pub mod objective;
pub mod partition;
pub mod temporal;

use roadnet::RoadId;

/// Outcome of a seed-selection run.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionResult {
    /// Chosen seeds, in selection order.
    pub seeds: Vec<RoadId>,
    /// Objective value `F(seeds)`.
    pub objective: f64,
    /// Marginal gain captured by each successive pick.
    pub gains: Vec<f64>,
    /// Number of marginal-gain evaluations performed — the
    /// machine-independent cost metric of experiment E7.
    pub evaluations: u64,
}
