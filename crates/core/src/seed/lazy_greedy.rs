//! Lazy greedy (CELF) seed selection.

use super::objective::{InfluenceModel, SeedObjective};
use super::SelectionResult;
use roadnet::RoadId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct HeapItem {
    gain: f64,
    road: RoadId,
    /// Selection round at which `gain` was computed.
    round: u32,
}
impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.gain == other.gain && self.road == other.road
    }
}
impl Eq for HeapItem {}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Gains are finite because edge weights are validated at
        // `CorrelationGraph::from_edges`.
        self.gain
            .partial_cmp(&other.gain)
            .expect("NaN gain")
            .then_with(|| other.road.cmp(&self.road))
    }
}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Lazy greedy (CELF): keeps candidates in a max-heap keyed by their
/// *last known* marginal gain. Submodularity guarantees gains only
/// shrink as the seed set grows, so a candidate whose cached gain is
/// stale but still on top after re-evaluation is provably the argmax —
/// most candidates are never re-evaluated at all.
///
/// Produces exactly the same seeds as [`super::greedy::greedy`] (up to
/// ties, which both algorithms break towards the smaller road id) with
/// the same `(1 − 1/e)` guarantee, at a fraction of the gain
/// evaluations. This is the efficiency headline of experiment E7.
pub fn lazy_greedy(model: &InfluenceModel, k: usize) -> SelectionResult {
    lazy_greedy_threads(model, k, 1)
}

/// [`lazy_greedy`] with the initial gain pass — the only `O(n)` dense
/// phase of CELF — computed on `threads` workers (`0` = all cores).
///
/// The parallel pass writes each candidate's round-0 gain into an
/// index-ordered slot; the heap is then populated serially in candidate
/// order, so heap contents, tie-breaks, evaluation counts and the
/// selected seeds are bit-identical to the serial run.
pub fn lazy_greedy_threads(model: &InfluenceModel, k: usize, threads: usize) -> SelectionResult {
    let obj = SeedObjective::new(model);
    let n = model.num_roads();
    let k = k.min(n);
    let mut miss = obj.initial_miss();
    let mut evaluations = 0u64;

    // Initial pass: every candidate's first-round gain. `miss` is all
    // ones here, so every gain is a pure function of the candidate
    // index — embarrassingly parallel.
    let initial: Vec<f64> =
        crate::parallel::fill(threads, n, |c| obj.gain(&miss, RoadId(c as u32)));
    let mut heap = BinaryHeap::with_capacity(n);
    for (c, &g) in initial.iter().enumerate() {
        evaluations += 1;
        heap.push(HeapItem {
            gain: g,
            road: RoadId(c as u32),
            round: 0,
        });
    }

    let mut seeds = Vec::with_capacity(k);
    let mut gains = Vec::with_capacity(k);
    let mut objective = 0.0;
    let mut round = 0u32;
    while seeds.len() < k {
        let Some(top) = heap.pop() else { break };
        if top.round == round {
            // Fresh: by submodularity no other candidate can beat it.
            // `commit` recomputes the gain in the same pass that
            // updates `miss`; since `miss` has not changed since
            // `top.gain` was computed, the value is bit-identical.
            let g = obj.commit(&mut miss, top.road);
            objective += g;
            seeds.push(top.road);
            gains.push(g);
            round += 1;
        } else {
            // Stale: recompute and push back.
            let g = obj.gain(&miss, top.road);
            evaluations += 1;
            heap.push(HeapItem {
                gain: g,
                road: top.road,
                round,
            });
        }
    }

    SelectionResult {
        seeds,
        objective,
        gains,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::{CorrelationEdge, CorrelationGraph};
    use crate::seed::greedy::greedy;
    use crate::seed::objective::InfluenceConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_model(n: usize, edge_prob: f64, seed: u64) -> InfluenceModel {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for a in 0..n as u32 {
            for b in (a + 1)..n as u32 {
                if rng.gen_bool(edge_prob) {
                    edges.push(CorrelationEdge {
                        a: RoadId(a),
                        b: RoadId(b),
                        cotrend: rng.gen_range(0.65..0.95),
                        support: 50,
                    });
                }
            }
        }
        let corr = CorrelationGraph::from_edges(n, edges).unwrap();
        InfluenceModel::build(&corr, &InfluenceConfig::default())
    }

    #[test]
    fn matches_plain_greedy_objective() {
        for seed in 0..5 {
            let model = random_model(40, 0.1, seed);
            let a = greedy(&model, 8);
            let b = lazy_greedy(&model, 8);
            // Same objective value (seed identity can differ on exact ties).
            assert!(
                (a.objective - b.objective).abs() < 1e-9,
                "seed {seed}: {} vs {}",
                a.objective,
                b.objective
            );
        }
    }

    #[test]
    fn uses_fewer_evaluations_than_plain_greedy() {
        // Sparse instance: gains are local, so most cached gains stay
        // valid and CELF skips the bulk of re-evaluations.
        let model = random_model(400, 0.01, 7);
        let a = greedy(&model, 40);
        let b = lazy_greedy(&model, 40);
        assert!(
            b.evaluations * 3 < a.evaluations,
            "lazy {} vs plain {}",
            b.evaluations,
            a.evaluations
        );
    }

    #[test]
    fn threaded_selection_is_bit_identical() {
        let model = random_model(120, 0.05, 21);
        let serial = lazy_greedy_threads(&model, 20, 1);
        for threads in [2, 8] {
            let par = lazy_greedy_threads(&model, 20, threads);
            assert_eq!(par, serial, "threads={threads}");
            let same_bits = par
                .gains
                .iter()
                .zip(&serial.gains)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same_bits, "threads={threads}");
        }
    }

    #[test]
    fn handles_zero_and_oversized_budgets() {
        let model = random_model(10, 0.2, 1);
        assert!(lazy_greedy(&model, 0).seeds.is_empty());
        assert_eq!(lazy_greedy(&model, 50).seeds.len(), 10);
    }

    #[test]
    fn gains_nonincreasing() {
        let model = random_model(60, 0.08, 3);
        let res = lazy_greedy(&model, 15);
        for w in res.gains.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn seeds_are_distinct() {
        let model = random_model(30, 0.15, 9);
        let res = lazy_greedy(&model, 10);
        let mut sorted = res.seeds.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), res.seeds.len());
    }
}
