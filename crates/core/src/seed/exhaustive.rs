//! Optimal seed selection by exhaustive enumeration.

use super::objective::{InfluenceModel, SeedObjective};
use super::SelectionResult;
use roadnet::RoadId;

/// Largest `C(n, k)` the enumerator will attempt.
const MAX_COMBINATIONS: u128 = 5_000_000;

/// Exhaustive (optimal) selection: evaluates every `k`-subset. The
/// oracle the greedy family's approximation tests compare against;
/// usable only on tiny instances (the problem is NP-hard — see
/// [`crate::seed`]).
///
/// # Panics
/// Panics when `C(n, k)` exceeds an internal safety limit.
pub fn exhaustive(model: &InfluenceModel, k: usize) -> SelectionResult {
    let n = model.num_roads();
    let k = k.min(n);
    assert!(
        combinations(n, k) <= MAX_COMBINATIONS,
        "exhaustive selection over C({n}, {k}) subsets is infeasible"
    );
    let obj = SeedObjective::new(model);
    let mut best: Vec<RoadId> = (0..k as u32).map(RoadId).collect();
    let mut best_val = obj.value(&best);
    let mut evaluations = 1u64;

    let mut idx: Vec<usize> = (0..k).collect();
    'outer: loop {
        // Advance the combination (standard odometer).
        let mut i = k;
        loop {
            if i == 0 {
                break 'outer;
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
        }
        idx[i] += 1;
        for j in i + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
        let cand: Vec<RoadId> = idx.iter().map(|&i| RoadId(i as u32)).collect();
        let v = obj.value(&cand);
        evaluations += 1;
        if v > best_val {
            best_val = v;
            best = cand;
        }
    }

    SelectionResult {
        seeds: best,
        objective: best_val,
        gains: Vec::new(),
        evaluations,
    }
}

fn combinations(n: usize, k: usize) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut c: u128 = 1;
    for i in 0..k {
        c = c.saturating_mul((n - i) as u128) / (i + 1) as u128;
        if c > MAX_COMBINATIONS * 2 {
            return c;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::{CorrelationEdge, CorrelationGraph};
    use crate::seed::greedy::greedy;
    use crate::seed::lazy_greedy::lazy_greedy;
    use crate::seed::objective::InfluenceConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_model(n: usize, seed: u64) -> InfluenceModel {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for a in 0..n as u32 {
            for b in (a + 1)..n as u32 {
                if rng.gen_bool(0.25) {
                    edges.push(CorrelationEdge {
                        a: RoadId(a),
                        b: RoadId(b),
                        cotrend: rng.gen_range(0.6..0.95),
                        support: 50,
                    });
                }
            }
        }
        let corr = CorrelationGraph::from_edges(n, edges).unwrap();
        InfluenceModel::build(&corr, &InfluenceConfig::default())
    }

    #[test]
    fn combinations_math() {
        assert_eq!(combinations(5, 2), 10);
        assert_eq!(combinations(10, 0), 1);
        assert_eq!(combinations(4, 5), 0);
        assert_eq!(combinations(20, 10), 184_756);
    }

    #[test]
    fn finds_optimum_on_known_instance() {
        // Star + pair: optimum for k=2 is hub + one of the pair.
        let e = |a: u32, b: u32| CorrelationEdge {
            a: RoadId(a),
            b: RoadId(b),
            cotrend: 0.9,
            support: 100,
        };
        let corr =
            CorrelationGraph::from_edges(6, vec![e(0, 1), e(0, 2), e(0, 3), e(4, 5)]).unwrap();
        let model = InfluenceModel::build(&corr, &InfluenceConfig::default());
        let res = exhaustive(&model, 2);
        let mut s = res.seeds.clone();
        s.sort();
        assert!(s == vec![RoadId(0), RoadId(4)] || s == vec![RoadId(0), RoadId(5)]);
    }

    #[test]
    fn greedy_family_within_guarantee_of_optimum() {
        // (1 - 1/e) ≈ 0.632; greedy usually does much better.
        for seed in 0..6 {
            let model = random_model(12, seed);
            let opt = exhaustive(&model, 3);
            let g = greedy(&model, 3);
            let lg = lazy_greedy(&model, 3);
            assert!(
                g.objective >= 0.632 * opt.objective - 1e-9,
                "seed {seed}: greedy {} vs opt {}",
                g.objective,
                opt.objective
            );
            assert!(lg.objective >= 0.632 * opt.objective - 1e-9);
            assert!(g.objective <= opt.objective + 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn refuses_huge_instances() {
        let model = random_model(60, 1);
        let _ = exhaustive(&model, 30);
    }
}
