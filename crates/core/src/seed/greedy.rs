//! Plain greedy seed selection.

use super::objective::SeedObjective;
use super::SelectionResult;
use roadnet::RoadId;

/// Plain greedy: at each of `k` rounds, evaluates the marginal gain of
/// *every* remaining candidate and picks the best.
///
/// Guarantees `F(S) ≥ (1 − 1/e) · F(S*)` by monotone submodularity of
/// the objective. Costs `O(k · n)` gain evaluations — the quantity lazy
/// greedy slashes (experiment E7).
pub fn greedy(model: &super::objective::InfluenceModel, k: usize) -> SelectionResult {
    let obj = SeedObjective::new(model);
    let n = model.num_roads();
    let k = k.min(n);
    let mut miss = obj.initial_miss();
    let mut selected = vec![false; n];
    let mut seeds = Vec::with_capacity(k);
    let mut gains = Vec::with_capacity(k);
    let mut evaluations = 0u64;
    let mut objective = 0.0;

    for _ in 0..k {
        let mut best: Option<(RoadId, f64)> = None;
        for c in 0..n as u32 {
            if selected[c as usize] {
                continue;
            }
            let g = obj.gain(&miss, RoadId(c));
            evaluations += 1;
            if best.map_or(true, |(_, bg)| g > bg) {
                best = Some((RoadId(c), g));
            }
        }
        let Some((pick, _)) = best else { break };
        selected[pick.index()] = true;
        // Single-pass commit: recomputes the winner's gain (bit-equal
        // to the scanned value, same summation order) while updating
        // `miss`, instead of traversing the reach a second time.
        let gain = obj.commit(&mut miss, pick);
        objective += gain;
        seeds.push(pick);
        gains.push(gain);
    }

    SelectionResult {
        seeds,
        objective,
        gains,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::{CorrelationEdge, CorrelationGraph};
    use crate::seed::objective::{InfluenceConfig, InfluenceModel};

    fn edge(a: u32, b: u32, p: f64) -> CorrelationEdge {
        CorrelationEdge {
            a: RoadId(a),
            b: RoadId(b),
            cotrend: p,
            support: 100,
        }
    }

    /// Star centred on r0 plus an isolated pair r4-r5.
    fn star_plus_pair() -> InfluenceModel {
        let corr = CorrelationGraph::from_edges(
            6,
            vec![
                edge(0, 1, 0.9),
                edge(0, 2, 0.9),
                edge(0, 3, 0.9),
                edge(4, 5, 0.9),
            ],
        )
        .unwrap();
        InfluenceModel::build(&corr, &InfluenceConfig::default())
    }

    #[test]
    fn picks_hub_first() {
        let model = star_plus_pair();
        let res = greedy(&model, 1);
        assert_eq!(res.seeds, vec![RoadId(0)]);
        // Hub covers itself + 3 spokes at 0.8.
        assert!((res.objective - (1.0 + 3.0 * 0.8)).abs() < 1e-9);
    }

    #[test]
    fn second_pick_covers_the_island() {
        let model = star_plus_pair();
        let res = greedy(&model, 2);
        assert_eq!(res.seeds[0], RoadId(0));
        assert!(res.seeds[1] == RoadId(4) || res.seeds[1] == RoadId(5));
    }

    #[test]
    fn gains_monotonically_nonincreasing() {
        let model = star_plus_pair();
        let res = greedy(&model, 5);
        for w in res.gains.windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "gains increased: {:?}", res.gains);
        }
    }

    #[test]
    fn objective_matches_direct_evaluation() {
        let model = star_plus_pair();
        let res = greedy(&model, 3);
        let obj = SeedObjective::new(&model);
        assert!((res.objective - obj.value(&res.seeds)).abs() < 1e-9);
    }

    #[test]
    fn k_capped_at_n() {
        let model = star_plus_pair();
        let res = greedy(&model, 100);
        assert_eq!(res.seeds.len(), 6);
        // All roads covered exactly once each.
        assert!((res.objective - 6.0).abs() < 1e-9);
    }

    #[test]
    fn evaluation_count_is_k_rounds_over_remaining() {
        let model = star_plus_pair();
        let res = greedy(&model, 2);
        // Round 1 evaluates 6 candidates, round 2 evaluates 5.
        assert_eq!(res.evaluations, 11);
    }

    #[test]
    fn zero_budget() {
        let model = star_plus_pair();
        let res = greedy(&model, 0);
        assert!(res.seeds.is_empty());
        assert_eq!(res.objective, 0.0);
    }
}
