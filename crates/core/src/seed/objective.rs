//! Influence model and the submodular coverage objective.

use crate::correlation::CorrelationGraph;
use roadnet::RoadId;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Configuration of influence propagation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InfluenceConfig {
    /// Maximum number of correlation-graph hops influence may travel.
    /// `1` restricts to direct correlation neighbours (the ablation of
    /// experiment E10).
    pub max_hops: u32,
    /// Influences below this are dropped (bounds each seed's reach).
    pub min_influence: f64,
}

impl Default for InfluenceConfig {
    fn default() -> Self {
        InfluenceConfig {
            max_hops: 3,
            min_influence: 0.05,
        }
    }
}

/// Strength of a correlation edge for influence purposes: how far the
/// co-trend probability is from uninformative (0.5), rescaled to
/// `(0, 1]`. A perfectly (anti-)correlated pair transmits influence 1.
#[inline]
pub fn edge_strength(cotrend: f64) -> f64 {
    (2.0 * cotrend - 1.0).abs().min(1.0)
}

/// Precomputed `q(s → r)` influence lists for every candidate seed,
/// stored CSR-style (offsets + structure-of-arrays payload) so the
/// greedy hot loops stream two contiguous slices per candidate instead
/// of chasing one heap allocation per source.
#[derive(Debug, Clone)]
pub struct InfluenceModel {
    n: usize,
    /// CSR row offsets into `roads` / `q`; length `n + 1`.
    offsets: Vec<u32>,
    /// Reached road ids; each source's run is sorted by road id and
    /// includes the source itself (with influence 1).
    roads: Vec<RoadId>,
    /// Influence values `q(s → road)`, aligned with `roads`.
    q: Vec<f64>,
}

/// One candidate's influence list as a pair of parallel slices (a CSR
/// row view). `roads[i]` is reached with influence `q[i]`; rows are
/// sorted by road id.
#[derive(Debug, Clone, Copy)]
pub struct Reach<'a> {
    /// Reached road ids, sorted ascending (the source is included with
    /// influence 1).
    pub roads: &'a [RoadId],
    /// Influence values aligned with `roads`.
    pub q: &'a [f64],
}

impl<'a> Reach<'a> {
    /// Number of reached roads.
    pub fn len(&self) -> usize {
        self.roads.len()
    }

    /// True when the reach is empty (only possible for an empty graph).
    pub fn is_empty(&self) -> bool {
        self.roads.is_empty()
    }

    /// Iterates `(road, q)` pairs in road-id order.
    pub fn iter(&self) -> impl Iterator<Item = (RoadId, f64)> + 'a {
        self.roads.iter().copied().zip(self.q.iter().copied())
    }
}

#[derive(PartialEq)]
struct Entry {
    q: f64,
    hops: u32,
    node: u32,
}
impl Eq for Entry {}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on influence. Edge weights are validated at
        // `CorrelationGraph::from_edges`, so `q` is never NaN here.
        self.q
            .partial_cmp(&other.q)
            .expect("NaN influence")
            .then_with(|| other.node.cmp(&self.node))
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// One source's Dijkstra-style max-product search, bounded by hops and
/// `min_influence` — the single definition both [`InfluenceModel::build_threaded`]
/// and [`InfluenceModel::patched`] run, which is what makes a patched
/// row bit-identical to a rebuilt one. `best` must be all-zero and
/// `touched` empty on entry; both are restored before returning.
fn search_source(
    corr: &CorrelationGraph,
    config: &InfluenceConfig,
    s: usize,
    best: &mut [f64],
    touched: &mut Vec<u32>,
) -> Vec<(RoadId, f64)> {
    let s = s as u32;
    let mut heap = BinaryHeap::new();
    best[s as usize] = 1.0;
    touched.push(s);
    heap.push(Entry {
        q: 1.0,
        hops: 0,
        node: s,
    });
    while let Some(Entry { q, hops, node }) = heap.pop() {
        if q < best[node as usize] {
            continue; // stale
        }
        if hops >= config.max_hops {
            continue;
        }
        for (nb, w) in corr.neighbors(RoadId(node)) {
            let nq = q * edge_strength(w);
            if nq >= config.min_influence && nq > best[nb.index()] {
                if best[nb.index()] == 0.0 {
                    touched.push(nb.0);
                }
                best[nb.index()] = nq;
                heap.push(Entry {
                    q: nq,
                    hops: hops + 1,
                    node: nb.0,
                });
            }
        }
    }
    let mut list: Vec<(RoadId, f64)> = touched
        .iter()
        .map(|&r| (RoadId(r), best[r as usize]))
        .collect();
    list.sort_by_key(|&(r, _)| r);
    // Reset the scratch arrays for the next source.
    for &r in touched.iter() {
        best[r as usize] = 0.0;
    }
    touched.clear();
    list
}

impl InfluenceModel {
    /// Builds influence lists by best-path (max-product) search from
    /// every road over the correlation graph (serial).
    pub fn build(corr: &CorrelationGraph, config: &InfluenceConfig) -> InfluenceModel {
        Self::build_threaded(corr, config, 1)
    }

    /// [`InfluenceModel::build`] with the per-source searches spread
    /// over `threads` workers (`0` = all cores). Each source's search
    /// is independent and its list lands in a pre-sized index-ordered
    /// slot, so the result is bit-identical for every thread count.
    pub fn build_threaded(
        corr: &CorrelationGraph,
        config: &InfluenceConfig,
        threads: usize,
    ) -> InfluenceModel {
        let n = corr.num_roads();
        let lists: Vec<Vec<(RoadId, f64)>> = crate::parallel::fill_with(
            threads,
            n,
            // Per-worker scratch: the dense best-influence array plus
            // the list of indices dirtied for the current source.
            || (vec![0.0f64; n], Vec::<u32>::new()),
            |(best, touched), s| search_source(corr, config, s, best, touched),
        );
        // Flatten into CSR in source order (serial, deterministic).
        let total: usize = lists.iter().map(Vec::len).sum();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut roads = Vec::with_capacity(total);
        let mut q = Vec::with_capacity(total);
        for list in lists {
            for (r, v) in list {
                roads.push(r);
                q.push(v);
            }
            offsets.push(roads.len() as u32);
        }
        InfluenceModel {
            n,
            offsets,
            roads,
            q,
        }
    }

    /// Re-derives the model after a correlation delta, re-running the
    /// per-source search only for rows the delta can have changed.
    ///
    /// `corr` is the **post-delta** graph and `touched` the roads
    /// incident to any changed edge
    /// ([`crate::correlation::DeltaApply::touched`]). The dirty-row
    /// criterion is two waves: a source `s` needs recomputing only if
    /// it lies in some touched endpoint `v`'s reach — in the *old*
    /// model or the *new* graph. This is sound because influence is
    /// symmetric (`q(s → v) = q(v → s)`: edge strengths are
    /// undirected, path reversal preserves hops and product) and
    /// monotone along a path (factors ≤ 1): if `s`'s row differs, the
    /// better of the old/new optimal paths crosses a changed edge, and
    /// its prefix up to that edge's endpoint `v` has at least the full
    /// path's influence in at most its hops — so `v ∈ reach(s)`, hence
    /// `s ∈ reach(v)`, on the corresponding side. Every other row is
    /// carried over verbatim, and recomputed rows run the same
    /// [`search_source`] as a full build, so the result is
    /// bit-identical to [`InfluenceModel::build_threaded`] on `corr`
    /// at any thread count.
    pub fn patched(
        &self,
        corr: &CorrelationGraph,
        config: &InfluenceConfig,
        touched: &[RoadId],
        threads: usize,
    ) -> InfluenceModel {
        let n = self.n;
        assert_eq!(corr.num_roads(), n, "delta cannot change the road count");
        // Wave 1: each touched endpoint's reach over the new graph
        // (its old reach is already in `self`).
        let endpoint_reach: Vec<Vec<(RoadId, f64)>> = crate::parallel::fill_with(
            threads,
            touched.len(),
            || (vec![0.0f64; n], Vec::<u32>::new()),
            |(best, scratch), i| search_source(corr, config, touched[i].index(), best, scratch),
        );
        let mut dirty = vec![false; n];
        for (i, &v) in touched.iter().enumerate() {
            for &r in self.reach(v).roads {
                dirty[r.index()] = true;
            }
            for &(r, _) in &endpoint_reach[i] {
                dirty[r.index()] = true;
            }
        }
        let dirty_rows: Vec<u32> = (0..n as u32).filter(|&r| dirty[r as usize]).collect();
        // Wave 2: recompute exactly the dirty rows on the new graph.
        let fresh: Vec<Vec<(RoadId, f64)>> = crate::parallel::fill_with(
            threads,
            dirty_rows.len(),
            || (vec![0.0f64; n], Vec::<u32>::new()),
            |(best, scratch), i| search_source(corr, config, dirty_rows[i] as usize, best, scratch),
        );
        // Splice: stream rows in source order, fresh where dirty.
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut roads = Vec::with_capacity(self.roads.len());
        let mut q = Vec::with_capacity(self.q.len());
        let mut next_fresh = 0usize;
        for (s, &is_dirty) in dirty.iter().enumerate().take(n) {
            if is_dirty {
                for &(r, v) in &fresh[next_fresh] {
                    roads.push(r);
                    q.push(v);
                }
                next_fresh += 1;
            } else {
                let row = self.reach(RoadId(s as u32));
                roads.extend_from_slice(row.roads);
                q.extend_from_slice(row.q);
            }
            offsets.push(roads.len() as u32);
        }
        InfluenceModel {
            n,
            offsets,
            roads,
            q,
        }
    }

    /// Number of roads.
    pub fn num_roads(&self) -> usize {
        self.n
    }

    /// Influence list of candidate `s` as a CSR row view.
    pub fn reach(&self, s: RoadId) -> Reach<'_> {
        let lo = self.offsets[s.index()] as usize;
        let hi = self.offsets[s.index() + 1] as usize;
        Reach {
            roads: &self.roads[lo..hi],
            q: &self.q[lo..hi],
        }
    }

    /// Point influence `q(s → r)` (0 when out of reach).
    pub fn influence(&self, s: RoadId, r: RoadId) -> f64 {
        let reach = self.reach(s);
        reach
            .roads
            .binary_search(&r)
            .map(|i| reach.q[i])
            .unwrap_or(0.0)
    }

    /// Average reach size (diagnostics / experiments).
    pub fn avg_reach(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.roads.len() as f64 / self.n as f64
        }
    }
}

/// The submodular coverage objective
/// `F(S) = Σ_r [1 − Π_{s∈S}(1 − q(s → r))]`, with incremental state for
/// greedy optimisation: `miss[r] = Π_{s∈S}(1 − q(s → r))` is maintained
/// so a marginal gain is one pass over the candidate's reach.
#[derive(Debug, Clone)]
pub struct SeedObjective<'a> {
    model: &'a InfluenceModel,
}

impl<'a> SeedObjective<'a> {
    /// Wraps an influence model.
    pub fn new(model: &'a InfluenceModel) -> Self {
        SeedObjective { model }
    }

    /// The underlying influence model.
    pub fn model(&self) -> &InfluenceModel {
        self.model
    }

    /// Fresh `miss` state for the empty seed set (all ones).
    pub fn initial_miss(&self) -> Vec<f64> {
        vec![1.0; self.model.n]
    }

    /// Marginal gain of adding `s` given the current `miss` state.
    #[inline]
    pub fn gain(&self, miss: &[f64], s: RoadId) -> f64 {
        let reach = self.model.reach(s);
        reach
            .roads
            .iter()
            .zip(reach.q)
            .map(|(&r, &q)| q * miss[r.index()])
            .sum()
    }

    /// Commits `s` into the `miss` state.
    pub fn apply(&self, miss: &mut [f64], s: RoadId) {
        let reach = self.model.reach(s);
        for (&r, &q) in reach.roads.iter().zip(reach.q) {
            miss[r.index()] *= 1.0 - q;
        }
    }

    /// Fused [`SeedObjective::gain`] + [`SeedObjective::apply`]:
    /// commits `s` into `miss` in a single pass over its reach and
    /// returns the marginal gain. The gain accumulates in the same
    /// road-id order as `gain`'s sum, so the returned value is
    /// bit-identical to calling `gain` then `apply`.
    #[inline]
    pub fn commit(&self, miss: &mut [f64], s: RoadId) -> f64 {
        let reach = self.model.reach(s);
        let mut gain = 0.0;
        for (&r, &q) in reach.roads.iter().zip(reach.q) {
            let m = &mut miss[r.index()];
            gain += q * *m;
            *m *= 1.0 - q;
        }
        gain
    }

    /// Objective value of an arbitrary seed set (non-incremental).
    pub fn value(&self, seeds: &[RoadId]) -> f64 {
        let mut miss = self.initial_miss();
        for &s in seeds {
            self.apply(&mut miss, s);
        }
        miss.iter().map(|m| 1.0 - m).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::CorrelationEdge;

    /// Path correlation graph r0 - r1 - r2 with strong edges.
    fn path_corr() -> CorrelationGraph {
        let e = |a: u32, b: u32, p: f64| CorrelationEdge {
            a: RoadId(a),
            b: RoadId(b),
            cotrend: p,
            support: 100,
        };
        CorrelationGraph::from_edges(3, vec![e(0, 1, 0.9), e(1, 2, 0.9)]).unwrap()
    }

    #[test]
    fn edge_strength_symmetric_about_half() {
        assert!((edge_strength(0.9) - 0.8).abs() < 1e-12);
        assert!((edge_strength(0.1) - 0.8).abs() < 1e-12);
        assert_eq!(edge_strength(0.5), 0.0);
        assert_eq!(edge_strength(1.0), 1.0);
    }

    #[test]
    fn influence_decays_along_path() {
        let corr = path_corr();
        let model = InfluenceModel::build(&corr, &InfluenceConfig::default());
        assert_eq!(model.influence(RoadId(0), RoadId(0)), 1.0);
        assert!((model.influence(RoadId(0), RoadId(1)) - 0.8).abs() < 1e-12);
        assert!((model.influence(RoadId(0), RoadId(2)) - 0.64).abs() < 1e-12);
    }

    #[test]
    fn hop_limit_cuts_reach() {
        let corr = path_corr();
        let model = InfluenceModel::build(
            &corr,
            &InfluenceConfig {
                max_hops: 1,
                min_influence: 0.0,
            },
        );
        assert_eq!(model.influence(RoadId(0), RoadId(2)), 0.0);
        assert_eq!(model.reach(RoadId(0)).len(), 2);
    }

    #[test]
    fn min_influence_cuts_reach() {
        let corr = path_corr();
        let model = InfluenceModel::build(
            &corr,
            &InfluenceConfig {
                max_hops: 10,
                min_influence: 0.7,
            },
        );
        // 0.64 < 0.7 so r2 drops out of r0's reach.
        assert_eq!(model.influence(RoadId(0), RoadId(2)), 0.0);
        assert!((model.influence(RoadId(0), RoadId(1)) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn influence_takes_best_path() {
        // Triangle where the two-hop route beats the weak direct edge:
        // direct 0-2 strength 0.1; via 1: 0.9 * 0.9 = 0.81.
        let e = |a: u32, b: u32, p: f64| CorrelationEdge {
            a: RoadId(a),
            b: RoadId(b),
            cotrend: p,
            support: 100,
        };
        let corr =
            CorrelationGraph::from_edges(3, vec![e(0, 1, 0.95), e(1, 2, 0.95), e(0, 2, 0.55)])
                .unwrap();
        let model = InfluenceModel::build(&corr, &InfluenceConfig::default());
        assert!((model.influence(RoadId(0), RoadId(2)) - 0.81).abs() < 1e-12);
    }

    #[test]
    fn build_threaded_is_bit_identical_to_serial() {
        let corr = path_corr();
        let serial = InfluenceModel::build(&corr, &InfluenceConfig::default());
        for threads in [2, 3, 8] {
            let par = InfluenceModel::build_threaded(&corr, &InfluenceConfig::default(), threads);
            assert_eq!(par.offsets, serial.offsets, "threads={threads}");
            assert_eq!(par.roads, serial.roads, "threads={threads}");
            let same_bits = par
                .q
                .iter()
                .zip(&serial.q)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same_bits, "threads={threads}");
        }
    }

    #[test]
    fn patched_is_bit_identical_to_rebuild_over_ingest_sequence() {
        use crate::correlation::CorrelationConfig;
        use crate::online::OnlineCorrelation;
        use trafficsim::dataset::{metro_small, DatasetParams};
        let ds = metro_small(&DatasetParams {
            training_days: 3,
            test_days: 6,
            ..DatasetParams::default()
        });
        let mut online = OnlineCorrelation::bootstrap(
            &ds.graph,
            &ds.history,
            &CorrelationConfig {
                min_co_observations: 24,
                ..CorrelationConfig::default()
            },
        );
        let config = InfluenceConfig::default();
        let mut corr = online.correlation_graph();
        let mut model = InfluenceModel::build(&corr, &config);
        let mut nontrivial_days = 0;
        for (i, day) in ds.test_days.iter().enumerate() {
            let delta = online.ingest_day_delta(day).unwrap();
            let summary = corr.apply_delta(&delta.changes).unwrap();
            let rebuilt = InfluenceModel::build(&corr, &config);
            for threads in [1usize, 2, 8] {
                let patched = model.patched(&corr, &config, &summary.touched, threads);
                assert_eq!(
                    patched.offsets, rebuilt.offsets,
                    "day {i} threads {threads}"
                );
                assert_eq!(patched.roads, rebuilt.roads, "day {i} threads {threads}");
                let same_bits = patched
                    .q
                    .iter()
                    .zip(&rebuilt.q)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(same_bits, "day {i} threads {threads}");
            }
            model = model.patched(&corr, &config, &summary.touched, 1);
            if !delta.changes.is_empty() {
                nontrivial_days += 1;
            }
        }
        assert!(nontrivial_days > 0, "ingest sequence never changed an edge");
    }

    #[test]
    fn objective_value_matches_formula() {
        let corr = path_corr();
        let model = InfluenceModel::build(&corr, &InfluenceConfig::default());
        let obj = SeedObjective::new(&model);
        // F({r1}) = q(1->0) + q(1->1) + q(1->2) = 0.8 + 1 + 0.8.
        assert!((obj.value(&[RoadId(1)]) - 2.6).abs() < 1e-12);
        // F({r0, r2}): r0 covered 1; r1: 1-(1-.8)^2 = .96; r2: 1.
        assert!((obj.value(&[RoadId(0), RoadId(2)]) - (1.0 + 0.96 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn incremental_gain_matches_value_delta() {
        let corr = path_corr();
        let model = InfluenceModel::build(&corr, &InfluenceConfig::default());
        let obj = SeedObjective::new(&model);
        let mut miss = obj.initial_miss();
        let g0 = obj.gain(&miss, RoadId(0));
        assert!((g0 - obj.value(&[RoadId(0)])).abs() < 1e-12);
        obj.apply(&mut miss, RoadId(0));
        let g2 = obj.gain(&miss, RoadId(2));
        let delta = obj.value(&[RoadId(0), RoadId(2)]) - obj.value(&[RoadId(0)]);
        assert!((g2 - delta).abs() < 1e-12);
    }

    #[test]
    fn commit_is_bitwise_gain_then_apply() {
        let corr = path_corr();
        let model = InfluenceModel::build(&corr, &InfluenceConfig::default());
        let obj = SeedObjective::new(&model);
        let mut miss_a = obj.initial_miss();
        let mut miss_b = obj.initial_miss();
        for s in [RoadId(1), RoadId(0), RoadId(2)] {
            let g = obj.gain(&miss_a, s);
            obj.apply(&mut miss_a, s);
            let c = obj.commit(&mut miss_b, s);
            assert_eq!(g.to_bits(), c.to_bits());
        }
        let same = miss_a
            .iter()
            .zip(&miss_b)
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same);
    }

    #[test]
    fn gains_are_submodular() {
        // gain of r2 after {r0} >= gain of r2 after {r0, r1}.
        let corr = path_corr();
        let model = InfluenceModel::build(&corr, &InfluenceConfig::default());
        let obj = SeedObjective::new(&model);
        let mut miss_small = obj.initial_miss();
        obj.apply(&mut miss_small, RoadId(0));
        let mut miss_big = miss_small.clone();
        obj.apply(&mut miss_big, RoadId(1));
        assert!(obj.gain(&miss_small, RoadId(2)) >= obj.gain(&miss_big, RoadId(2)));
    }
}
