//! Route-level travel times on top of estimated speeds.
//!
//! The application the paper's introduction motivates: a navigation
//! service needs the speed of *every* segment to compute trip ETAs,
//! which is exactly what the estimator provides. This module computes
//! fastest routes over the road-segment graph using per-segment travel
//! times `length / speed`.
//!
//! Moving from segment `a` to adjacent segment `b` is modelled as
//! traversing half of each segment (segment midpoint to midpoint
//! through the shared intersection) — the standard line-graph costing.

use roadnet::{path, RoadGraph, RoadId};

/// Per-segment travel time in minutes at the given speeds.
#[inline]
fn segment_minutes(graph: &RoadGraph, speeds: &[f64], r: RoadId) -> f64 {
    let meta = graph.meta(r);
    let v = speeds[r.index()].max(1.0); // km/h floor: traffic crawls, never stops
    (meta.length_m / 1000.0) / v * 60.0
}

/// A computed route.
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    /// Segments traversed, origin first.
    pub segments: Vec<RoadId>,
    /// Estimated travel time in minutes.
    pub minutes: f64,
}

/// Fastest route between two segments under a speed field.
///
/// Returns `None` when `to` is unreachable from `from`. With
/// `from == to` the route is the single segment with half its traversal
/// time (enter at one end, leave at the midpoint — consistent with the
/// midpoint-to-midpoint costing).
pub fn fastest_route(graph: &RoadGraph, speeds: &[f64], from: RoadId, to: RoadId) -> Option<Route> {
    assert_eq!(speeds.len(), graph.num_roads(), "speed vector arity");
    // Midpoint-to-midpoint edge cost: half of each segment.
    let dist = path::dijkstra(graph, from, f64::INFINITY, |a, b| {
        0.5 * (segment_minutes(graph, speeds, a) + segment_minutes(graph, speeds, b))
    });
    if dist[to.index()].is_infinite() {
        return None;
    }
    // Reconstruct by walking backwards along tight edges.
    let mut segments = vec![to];
    let mut current = to;
    while current != from {
        let dc = dist[current.index()];
        let prev = graph.neighbors(current).iter().copied().find(|&p| {
            let w =
                0.5 * (segment_minutes(graph, speeds, p) + segment_minutes(graph, speeds, current));
            (dist[p.index()] + w - dc).abs() < 1e-9
        });
        match prev {
            Some(p) => {
                segments.push(p);
                current = p;
            }
            None => return None, // numerically inconsistent; treat as unreachable
        }
    }
    segments.reverse();
    // Total time: half of origin + inter-midpoint hops + half of
    // destination equals the Dijkstra distance plus half the endpoints.
    let minutes = dist[to.index()]
        + 0.5 * segment_minutes(graph, speeds, from)
        + 0.5 * segment_minutes(graph, speeds, to);
    Some(Route { segments, minutes })
}

/// ETA matrix from one origin to many destinations (single Dijkstra).
pub fn eta_minutes(graph: &RoadGraph, speeds: &[f64], from: RoadId) -> Vec<f64> {
    assert_eq!(speeds.len(), graph.num_roads(), "speed vector arity");
    let half_from = 0.5 * segment_minutes(graph, speeds, from);
    path::dijkstra(graph, from, f64::INFINITY, |a, b| {
        0.5 * (segment_minutes(graph, speeds, a) + segment_minutes(graph, speeds, b))
    })
    .into_iter()
    .enumerate()
    .map(|(r, d)| {
        if d.is_infinite() {
            f64::INFINITY
        } else {
            d + half_from + 0.5 * segment_minutes(graph, speeds, RoadId(r as u32))
        }
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::{RoadGraphBuilder, RoadMeta};

    /// Path graph of four 1 km segments.
    fn path4() -> RoadGraph {
        let mut b = RoadGraphBuilder::new();
        let ids: Vec<_> = (0..4)
            .map(|_| {
                b.add_road(RoadMeta {
                    length_m: 1000.0,
                    ..RoadMeta::default()
                })
            })
            .collect();
        for w in ids.windows(2) {
            b.add_adjacency(w[0], w[1]).unwrap();
        }
        b.build()
    }

    #[test]
    fn route_time_matches_hand_computation() {
        let g = path4();
        let speeds = vec![60.0; 4]; // 1 km at 60 km/h = 1 minute/segment
        let route = fastest_route(&g, &speeds, RoadId(0), RoadId(3)).unwrap();
        assert_eq!(
            route.segments,
            vec![RoadId(0), RoadId(1), RoadId(2), RoadId(3)]
        );
        // Midpoint-to-midpoint: 4 segments, each fully traversed once.
        assert!((route.minutes - 4.0).abs() < 1e-9, "{}", route.minutes);
    }

    #[test]
    fn congestion_reroutes() {
        // Square: 0-1-3 and 0-2-3; congesting segment 1 flips the route.
        let mut b = RoadGraphBuilder::new();
        let ids: Vec<_> = (0..4)
            .map(|_| {
                b.add_road(RoadMeta {
                    length_m: 1000.0,
                    ..RoadMeta::default()
                })
            })
            .collect();
        b.add_adjacency(ids[0], ids[1]).unwrap();
        b.add_adjacency(ids[1], ids[3]).unwrap();
        b.add_adjacency(ids[0], ids[2]).unwrap();
        b.add_adjacency(ids[2], ids[3]).unwrap();
        let g = b.build();

        let mut speeds = vec![50.0; 4];
        speeds[1] = 60.0; // via 1 slightly faster
        let fast = fastest_route(&g, &speeds, ids[0], ids[3]).unwrap();
        assert_eq!(fast.segments[1], ids[1]);

        speeds[1] = 5.0; // incident on 1
        let rerouted = fastest_route(&g, &speeds, ids[0], ids[3]).unwrap();
        assert_eq!(rerouted.segments[1], ids[2]);
        assert!(rerouted.minutes < fast.minutes + 15.0);
    }

    #[test]
    fn slower_speeds_never_shorten_eta() {
        let g = path4();
        let fast = eta_minutes(&g, &[60.0; 4], RoadId(0));
        let slow = eta_minutes(&g, &[30.0; 4], RoadId(0));
        for (f, s) in fast.iter().zip(&slow) {
            assert!(s >= f);
        }
    }

    #[test]
    fn unreachable_destination_is_none() {
        let mut b = RoadGraphBuilder::new();
        let a = b.add_road(RoadMeta::default());
        let c = b.add_road(RoadMeta::default());
        let g = b.build();
        assert!(fastest_route(&g, &[30.0, 30.0], a, c).is_none());
        assert!(eta_minutes(&g, &[30.0, 30.0], a)[c.index()].is_infinite());
    }

    #[test]
    fn self_route_is_one_segment() {
        let g = path4();
        let r = fastest_route(&g, &[60.0; 4], RoadId(2), RoadId(2)).unwrap();
        assert_eq!(r.segments, vec![RoadId(2)]);
        assert!((r.minutes - 1.0).abs() < 1e-9);
    }

    #[test]
    fn speed_floor_prevents_infinite_times() {
        let g = path4();
        let speeds = vec![0.0; 4]; // stopped traffic clamps to the floor
        let r = fastest_route(&g, &speeds, RoadId(0), RoadId(3)).unwrap();
        assert!(r.minutes.is_finite());
    }
}
