//! Speed-estimation baselines the evaluation compares against.
//!
//! Each baseline consumes the same inputs as the two-step estimator —
//! history statistics plus crowdsourced seed observations — and returns
//! a full per-road speed vector, so [`crate::eval`] can treat every
//! method uniformly. The free functions are the primitive forms; the
//! `*Estimator` adapters at the bottom wrap them behind the common
//! [`SpeedEstimator`] serving interface.

use crate::correlation::CorrelationGraph;
use crate::inference::pipeline::{EstimateScratch, SpeedEstimate, SpeedEstimator};
use linalg::ridge::ridge_fit;
use linalg::Matrix;
use roadnet::{RoadGraph, RoadId};
use trafficsim::{HistoricalData, HistoryStats};

/// Baseline 1 — **historical average**: ignore real-time data entirely
/// and report `h_r(slot)`. The floor every informed method must beat.
pub fn historical_mean(stats: &HistoryStats, slot_of_day: usize) -> Vec<f64> {
    (0..stats.num_roads())
        .map(|r| stats.mean(slot_of_day, RoadId(r as u32)))
        .collect()
}

/// Baseline 2 — **KNN spatial interpolation**: each road copies the
/// inverse-distance-weighted mean *deviation* of its `k` nearest seeds
/// (Euclidean midpoint distance), scaled by its own historical average.
/// Classic sensor-interpolation practice; blind to the road network and
/// to trends.
pub fn knn_spatial(
    graph: &RoadGraph,
    stats: &HistoryStats,
    slot_of_day: usize,
    observations: &[(RoadId, f64)],
    k: usize,
) -> Vec<f64> {
    let seed_devs: Vec<(RoadId, f64)> = observations
        .iter()
        .filter_map(|&(s, v)| stats.deviation_of(slot_of_day, s, v).map(|d| (s, d)))
        .collect();
    (0..graph.num_roads() as u32)
        .map(RoadId)
        .map(|r| {
            let mean = stats.mean(slot_of_day, r);
            if seed_devs.is_empty() {
                return mean;
            }
            // k nearest seeds by distance.
            let mut by_dist: Vec<(f64, f64)> = seed_devs
                .iter()
                .map(|&(s, d)| (graph.distance(r, s), d))
                .collect();
            by_dist.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("distance NaN"));
            by_dist.truncate(k.max(1));
            let mut wsum = 0.0;
            let mut dsum = 0.0;
            for &(dist, dev) in &by_dist {
                let w = 1.0 / (dist + 50.0); // 50 m softening
                wsum += w;
                dsum += w * dev;
            }
            mean * (dsum / wsum)
        })
        .collect()
}

/// Baseline 3 — **global linear regression**: one citywide model
/// `dev_r ≈ a + b · mean(seed deviations)` fitted on history — the
/// "single linear model, no roads, no trends, no hierarchy" strawman.
#[derive(Debug, Clone)]
pub struct GlobalRegression {
    beta: Vec<f64>, // [intercept, citywide-dev coefficient]
    seeds: Vec<RoadId>,
}

impl GlobalRegression {
    /// Fits the two-parameter model on historical data.
    pub fn train(
        history: &HistoricalData,
        stats: &HistoryStats,
        seeds: &[RoadId],
    ) -> GlobalRegression {
        let slots = history.clock().slots_per_day;
        let n = history.num_roads();
        let mut x = Matrix::zeros(0, 0);
        let mut y = Vec::new();
        for day in 0..history.num_days() {
            for slot in 0..slots {
                let devs: Vec<f64> = seeds
                    .iter()
                    .filter_map(|&s| {
                        history
                            .speed(day, slot, s)
                            .and_then(|v| stats.deviation_of(slot, s, v))
                    })
                    .collect();
                if devs.is_empty() {
                    continue;
                }
                let citywide = linalg::stats::mean(&devs);
                // One pooled row per (cell, road) would be huge; a
                // uniform subsample of roads is plenty for 2 params.
                for r in (0..n).step_by(7) {
                    let road = RoadId(r as u32);
                    if let Some(v) = history.speed(day, slot, road) {
                        if let Some(d) = stats.deviation_of(slot, road, v) {
                            x.push_row(&[1.0, citywide]).expect("fixed arity");
                            y.push(d);
                        }
                    }
                }
            }
        }
        let beta = if y.len() >= 4 {
            ridge_fit(&x, &y, 1e-6).unwrap_or_else(|_| vec![1.0, 0.0])
        } else {
            vec![1.0, 0.0] // degenerate: predict the historical mean
        };
        GlobalRegression {
            beta,
            seeds: seeds.to_vec(),
        }
    }

    /// Predicts all road speeds for a slot.
    pub fn predict(
        &self,
        stats: &HistoryStats,
        slot_of_day: usize,
        observations: &[(RoadId, f64)],
    ) -> Vec<f64> {
        let devs: Vec<f64> = observations
            .iter()
            .filter_map(|&(s, v)| stats.deviation_of(slot_of_day, s, v))
            .collect();
        let citywide = if devs.is_empty() {
            1.0
        } else {
            linalg::stats::mean(&devs)
        };
        let d = (self.beta[0] + self.beta[1] * citywide).clamp(0.2, 2.0);
        (0..stats.num_roads())
            .map(|r| d * stats.mean(slot_of_day, RoadId(r as u32)))
            .collect()
    }

    /// The seeds this model expects observations for.
    pub fn seeds(&self) -> &[RoadId] {
        &self.seeds
    }
}

/// Baseline 4 — **label propagation**: seed deviations diffuse over the
/// correlation graph by repeated weighted averaging (anchored towards
/// the neutral deviation 1.0). Uses the same correlation structure as
/// the real model but no probabilistic trend step and no learned
/// per-road behaviour.
pub fn label_propagation(
    corr: &CorrelationGraph,
    stats: &HistoryStats,
    slot_of_day: usize,
    observations: &[(RoadId, f64)],
    iterations: usize,
    anchor: f64,
) -> Vec<f64> {
    let seed_devs: Vec<(RoadId, f64)> = observations
        .iter()
        .filter_map(|&(s, v)| stats.deviation_of(slot_of_day, s, v).map(|d| (s, d)))
        .collect();
    let dev = crate::propagate::propagate_deviations(corr, &seed_devs, iterations, anchor);
    dev.iter()
        .enumerate()
        .map(|(r, &d)| d.clamp(0.2, 2.0) * stats.mean(slot_of_day, RoadId(r as u32)))
        .collect()
}

/// [`historical_mean`] behind the [`SpeedEstimator`] interface.
#[derive(Debug, Clone)]
pub struct HistoricalMeanEstimator<'a> {
    /// History statistics supplying the per-slot averages.
    pub stats: &'a HistoryStats,
}

impl SpeedEstimator for HistoricalMeanEstimator<'_> {
    fn name(&self) -> &'static str {
        "hist-mean"
    }

    fn estimate(
        &self,
        slot_of_day: usize,
        _observations: &[(RoadId, f64)],
        _scratch: &mut EstimateScratch,
    ) -> SpeedEstimate {
        SpeedEstimate::from_speeds(historical_mean(self.stats, slot_of_day))
    }
}

/// [`knn_spatial`] behind the [`SpeedEstimator`] interface.
#[derive(Debug, Clone)]
pub struct KnnSpatialEstimator<'a> {
    /// Road network supplying pairwise distances.
    pub graph: &'a RoadGraph,
    /// History statistics supplying averages and deviations.
    pub stats: &'a HistoryStats,
    /// Number of nearest seeds interpolated per road.
    pub k: usize,
}

impl SpeedEstimator for KnnSpatialEstimator<'_> {
    fn name(&self) -> &'static str {
        "knn"
    }

    fn estimate(
        &self,
        slot_of_day: usize,
        observations: &[(RoadId, f64)],
        _scratch: &mut EstimateScratch,
    ) -> SpeedEstimate {
        SpeedEstimate::from_speeds(knn_spatial(
            self.graph,
            self.stats,
            slot_of_day,
            observations,
            self.k,
        ))
    }
}

/// A trained [`GlobalRegression`] behind the [`SpeedEstimator`]
/// interface.
#[derive(Debug, Clone)]
pub struct GlobalRegressionEstimator<'a> {
    /// The fitted two-parameter model.
    pub model: GlobalRegression,
    /// History statistics supplying averages and deviations.
    pub stats: &'a HistoryStats,
}

impl SpeedEstimator for GlobalRegressionEstimator<'_> {
    fn name(&self) -> &'static str {
        "global-lr"
    }

    fn estimate(
        &self,
        slot_of_day: usize,
        observations: &[(RoadId, f64)],
        _scratch: &mut EstimateScratch,
    ) -> SpeedEstimate {
        SpeedEstimate::from_speeds(self.model.predict(self.stats, slot_of_day, observations))
    }
}

/// [`label_propagation`] behind the [`SpeedEstimator`] interface.
#[derive(Debug, Clone)]
pub struct LabelPropagationEstimator<'a> {
    /// Correlation graph the deviations diffuse over.
    pub corr: &'a CorrelationGraph,
    /// History statistics supplying averages and deviations.
    pub stats: &'a HistoryStats,
    /// Averaging sweeps.
    pub iterations: usize,
    /// Neutral-anchor weight.
    pub anchor: f64,
}

impl SpeedEstimator for LabelPropagationEstimator<'_> {
    fn name(&self) -> &'static str {
        "label-prop"
    }

    fn estimate(
        &self,
        slot_of_day: usize,
        observations: &[(RoadId, f64)],
        _scratch: &mut EstimateScratch,
    ) -> SpeedEstimate {
        SpeedEstimate::from_speeds(label_propagation(
            self.corr,
            self.stats,
            slot_of_day,
            observations,
            self.iterations,
            self.anchor,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::{CorrelationConfig, CorrelationEdge};
    use trafficsim::dataset::{metro_small, DatasetParams};

    fn setup() -> (trafficsim::dataset::Dataset, HistoryStats) {
        let ds = metro_small(&DatasetParams {
            training_days: 8,
            test_days: 1,
            ..DatasetParams::default()
        });
        let stats = HistoryStats::compute(&ds.history);
        (ds, stats)
    }

    #[test]
    fn historical_mean_matches_stats() {
        let (ds, stats) = setup();
        let v = historical_mean(&stats, 7);
        assert_eq!(v.len(), ds.graph.num_roads());
        assert_eq!(v[3], stats.mean(7, RoadId(3)));
    }

    #[test]
    fn knn_with_no_seeds_returns_historical() {
        let (ds, stats) = setup();
        let v = knn_spatial(&ds.graph, &stats, 7, &[], 3);
        assert_eq!(v, historical_mean(&stats, 7));
    }

    #[test]
    fn knn_follows_depressed_seeds() {
        let (ds, stats) = setup();
        let slot = 8;
        // Report all seeds at 60% of their average speed.
        let obs: Vec<(RoadId, f64)> = (0..10u32)
            .map(|i| RoadId(i * 9))
            .map(|s| (s, 0.6 * stats.mean(slot, s)))
            .collect();
        let v = knn_spatial(&ds.graph, &stats, slot, &obs, 3);
        let h = historical_mean(&stats, slot);
        let mean_ratio =
            linalg::stats::mean(&v.iter().zip(&h).map(|(a, b)| a / b).collect::<Vec<_>>());
        assert!((mean_ratio - 0.6).abs() < 0.05, "ratio {mean_ratio}");
    }

    #[test]
    fn global_regression_learns_citywide_coupling() {
        let (ds, stats) = setup();
        let seeds: Vec<RoadId> = (0..10u32).map(|i| RoadId(i * 9)).collect();
        let model = GlobalRegression::train(&ds.history, &stats, &seeds);
        // A citywide slowdown must depress predictions.
        let slot = 8;
        let low: Vec<(RoadId, f64)> = seeds
            .iter()
            .map(|&s| (s, 0.6 * stats.mean(slot, s)))
            .collect();
        let high: Vec<(RoadId, f64)> = seeds
            .iter()
            .map(|&s| (s, 1.2 * stats.mean(slot, s)))
            .collect();
        let vl = model.predict(&stats, slot, &low);
        let vh = model.predict(&stats, slot, &high);
        assert!(linalg::stats::mean(&vl) < linalg::stats::mean(&vh));
    }

    #[test]
    fn global_regression_survives_thin_history() {
        let (ds, stats) = setup();
        let model = GlobalRegression::train(&ds.history, &stats, &[RoadId(0)]);
        let v = model.predict(&stats, 0, &[]);
        assert!(v.iter().all(|x| x.is_finite() && *x > 0.0));
    }

    #[test]
    fn label_propagation_spreads_from_seed() {
        // Chain 0-1-2 with strong correlation: a depressed seed at 0
        // must pull 1 down more than 2.
        let e = |a: u32, b: u32| CorrelationEdge {
            a: RoadId(a),
            b: RoadId(b),
            cotrend: 0.95,
            support: 50,
        };
        let corr = CorrelationGraph::from_edges(3, vec![e(0, 1), e(1, 2)]).unwrap();
        // Stats with mean 30 everywhere.
        let clock = trafficsim::SlotClock { slots_per_day: 1 };
        let day = trafficsim::SpeedField::filled(1, 3, 30.0);
        let h = trafficsim::HistoricalData::from_days(clock, vec![day.clone(), day]);
        let stats = HistoryStats::compute(&h);
        let v = label_propagation(&corr, &stats, 0, &[(RoadId(0), 15.0)], 30, 0.2);
        assert_eq!(v[0], 15.0); // clamped seed
        assert!(v[1] < 30.0 && v[2] < 30.0);
        assert!(v[1] < v[2], "propagation must attenuate: {v:?}");
    }

    #[test]
    fn label_propagation_idles_to_history_without_seeds() {
        let corr = CorrelationGraph::from_edges(2, vec![]).unwrap();
        let clock = trafficsim::SlotClock { slots_per_day: 1 };
        let day = trafficsim::SpeedField::filled(1, 2, 25.0);
        let h = trafficsim::HistoricalData::from_days(clock, vec![day.clone(), day]);
        let stats = HistoryStats::compute(&h);
        let v = label_propagation(&corr, &stats, 0, &[], 10, 0.2);
        assert_eq!(v, vec![25.0, 25.0]);
    }

    #[test]
    fn baselines_are_beatable_setup_sanity() {
        // Not an assertion about superiority (that's E3), just that all
        // baselines produce physical speeds on the real dataset.
        let (ds, stats) = setup();
        let corr = CorrelationGraph::build(
            &ds.graph,
            &ds.history,
            &stats,
            &CorrelationConfig {
                min_cotrend: 0.6,
                min_co_observations: 6,
                ..CorrelationConfig::default()
            },
        );
        let slot = 8;
        let truth = &ds.test_days[0];
        let seeds: Vec<RoadId> = (0..12u32).map(|i| RoadId(i * 8)).collect();
        let obs: Vec<(RoadId, f64)> = seeds.iter().map(|&s| (s, truth.speed(slot, s))).collect();
        for v in [
            historical_mean(&stats, slot),
            knn_spatial(&ds.graph, &stats, slot, &obs, 5),
            GlobalRegression::train(&ds.history, &stats, &seeds).predict(&stats, slot, &obs),
            label_propagation(&corr, &stats, slot, &obs, 20, 0.2),
        ] {
            assert_eq!(v.len(), ds.graph.num_roads());
            assert!(v.iter().all(|x| x.is_finite() && *x > 0.0));
        }
    }
}
