//! Batch serving front end.
//!
//! At serving time a city produces a burst of estimation requests —
//! many slots, many crowd snapshots — and the estimator itself is
//! read-only once trained. This module fans a batch of requests across
//! worker threads, each holding one reusable [`EstimateScratch`], so
//! the per-request cost after warm-up is pure inference: no MRF
//! rebuilds (the [`TrendModel`](crate::inference::trend_model::TrendModel)
//! precompiles per-slot models) and no workspace allocations.
//!
//! Requests are independent, so the parallel batch is bit-identical to
//! the sequential one — the equivalence tests pin this down.

use crate::inference::pipeline::{EstimateScratch, SpeedEstimate, SpeedEstimator};
use parking_lot::Mutex;
use roadnet::RoadId;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// One serving request: estimate every road at `slot_of_day` given the
/// crowdsourced `(road, speed)` observations.
#[derive(Debug, Clone)]
pub struct EstimateRequest {
    /// Slot of day the observations belong to.
    pub slot_of_day: usize,
    /// Crowdsourced seed observations.
    pub observations: Vec<(RoadId, f64)>,
}

/// Batch serving options.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads (1 = sequential, no thread spawn).
    pub threads: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions { threads: 1 }
    }
}

/// Per-request latency counters aggregated over one batch.
#[derive(Debug, Clone, Copy)]
pub struct ServeMetrics {
    /// Requests served.
    pub requests: usize,
    /// Wall-clock time of the whole batch.
    pub wall_time: Duration,
    /// Sum of per-request latencies across all workers (≥ `wall_time`
    /// when more than one worker is busy).
    pub busy_time: Duration,
    /// Fastest single request.
    pub min_latency: Duration,
    /// Slowest single request.
    pub max_latency: Duration,
}

impl ServeMetrics {
    /// Mean per-request latency.
    pub fn mean_latency(&self) -> Duration {
        if self.requests == 0 {
            Duration::ZERO
        } else {
            self.busy_time / self.requests as u32
        }
    }

    /// Requests per second of wall-clock time.
    pub fn throughput(&self) -> f64 {
        let secs = self.wall_time.as_secs_f64();
        if secs > 0.0 {
            self.requests as f64 / secs
        } else {
            0.0
        }
    }
}

/// Result of [`serve_batch`]: one estimate per request, in request
/// order, plus the latency counters.
#[derive(Debug)]
pub struct BatchOutcome {
    /// `estimates[i]` answers `requests[i]`.
    pub estimates: Vec<SpeedEstimate>,
    /// Latency counters for the batch.
    pub metrics: ServeMetrics,
}

/// Tracks per-worker latency extremes and totals without locking.
#[derive(Debug, Clone, Copy)]
struct LatencyAcc {
    busy: Duration,
    min: Duration,
    max: Duration,
}

impl LatencyAcc {
    fn new() -> Self {
        LatencyAcc {
            busy: Duration::ZERO,
            min: Duration::MAX,
            max: Duration::ZERO,
        }
    }

    fn record(&mut self, took: Duration) {
        self.busy += took;
        self.min = self.min.min(took);
        self.max = self.max.max(took);
    }

    fn merge(&mut self, other: LatencyAcc) {
        self.busy += other.busy;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Serves a batch of requests through any [`SpeedEstimator`].
///
/// With `threads <= 1` the batch runs on the calling thread with a
/// single scratch. Otherwise workers steal request indices from a
/// shared counter, each with its own [`EstimateScratch`], so buffers
/// are reused within a worker and never shared across workers.
pub fn serve_batch(
    estimator: &dyn SpeedEstimator,
    requests: &[EstimateRequest],
    opts: &ServeOptions,
) -> BatchOutcome {
    let t0 = Instant::now();
    let threads = opts.threads.max(1).min(requests.len().max(1));

    let mut estimates: Vec<Option<SpeedEstimate>> = Vec::with_capacity(requests.len());
    estimates.resize_with(requests.len(), || None);
    let mut latency = LatencyAcc::new();

    if threads <= 1 {
        let mut scratch = EstimateScratch::new();
        for (slot, req) in estimates.iter_mut().zip(requests) {
            let t = Instant::now();
            let est = estimator.estimate(req.slot_of_day, &req.observations, &mut scratch);
            latency.record(t.elapsed());
            *slot = Some(est);
        }
    } else {
        let next = AtomicUsize::new(0);
        let done = Mutex::new((&mut estimates, &mut latency));
        crossbeam::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|_| {
                    let mut scratch = EstimateScratch::new();
                    let mut local: Vec<(usize, SpeedEstimate)> = Vec::new();
                    let mut acc = LatencyAcc::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(req) = requests.get(i) else { break };
                        let t = Instant::now();
                        let est =
                            estimator.estimate(req.slot_of_day, &req.observations, &mut scratch);
                        acc.record(t.elapsed());
                        local.push((i, est));
                    }
                    let mut guard = done.lock();
                    for (i, est) in local {
                        guard.0[i] = Some(est);
                    }
                    guard.1.merge(acc);
                });
            }
        })
        .expect("serving worker panicked");
    }

    let estimates: Vec<SpeedEstimate> = estimates
        .into_iter()
        .map(|e| e.expect("every request index was claimed by a worker"))
        .collect();
    let requests_served = estimates.len();
    BatchOutcome {
        estimates,
        metrics: ServeMetrics {
            requests: requests_served,
            wall_time: t0.elapsed(),
            busy_time: latency.busy,
            min_latency: if requests_served == 0 {
                Duration::ZERO
            } else {
                latency.min
            },
            max_latency: latency.max,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::{CorrelationConfig, CorrelationGraph};
    use crate::inference::pipeline::{EstimatorConfig, TrafficEstimator};
    use trafficsim::dataset::{metro_small, DatasetParams};
    use trafficsim::HistoryStats;

    fn trained() -> (trafficsim::dataset::Dataset, TrafficEstimator, Vec<RoadId>) {
        let ds = metro_small(&DatasetParams {
            training_days: 8,
            test_days: 1,
            ..DatasetParams::default()
        });
        let stats = HistoryStats::compute(&ds.history);
        let corr = CorrelationGraph::build(
            &ds.graph,
            &ds.history,
            &stats,
            &CorrelationConfig {
                min_cotrend: 0.6,
                min_co_observations: 6,
                ..CorrelationConfig::default()
            },
        );
        let seeds: Vec<RoadId> = (0..12u32).map(|i| RoadId(i * 8)).collect();
        let est = TrafficEstimator::train(
            &ds.graph,
            &ds.history,
            &stats,
            &corr,
            &seeds,
            &EstimatorConfig::default(),
        )
        .unwrap();
        (ds, est, seeds)
    }

    fn requests(
        ds: &trafficsim::dataset::Dataset,
        seeds: &[RoadId],
        slots: &[usize],
    ) -> Vec<EstimateRequest> {
        let truth = &ds.test_days[0];
        slots
            .iter()
            .map(|&slot| EstimateRequest {
                slot_of_day: slot,
                observations: seeds.iter().map(|&s| (s, truth.speed(slot, s))).collect(),
            })
            .collect()
    }

    #[test]
    fn batch_answers_every_request_in_order() {
        let (ds, est, seeds) = trained();
        let reqs = requests(&ds, &seeds, &[6, 7, 8, 9]);
        let out = serve_batch(&est, &reqs, &ServeOptions { threads: 1 });
        assert_eq!(out.estimates.len(), reqs.len());
        assert_eq!(out.metrics.requests, reqs.len());
        for (req, est) in reqs.iter().zip(&out.estimates) {
            // Seeds echo their observations, which pin the request order.
            for &(road, speed) in &req.observations {
                assert_eq!(est.speeds[road.index()], speed);
            }
        }
    }

    #[test]
    fn parallel_batch_matches_sequential() {
        let (ds, est, seeds) = trained();
        let reqs = requests(&ds, &seeds, &[5, 6, 7, 8, 9, 10, 11, 12]);
        let seq = serve_batch(&est, &reqs, &ServeOptions { threads: 1 });
        let par = serve_batch(&est, &reqs, &ServeOptions { threads: 4 });
        for (a, b) in seq.estimates.iter().zip(&par.estimates) {
            assert_eq!(a.speeds, b.speeds);
            assert_eq!(a.p_up, b.p_up);
            assert_eq!(a.trends, b.trends);
        }
    }

    #[test]
    fn metrics_are_consistent() {
        let (ds, est, seeds) = trained();
        let reqs = requests(&ds, &seeds, &[7, 8, 9]);
        let out = serve_batch(&est, &reqs, &ServeOptions { threads: 2 });
        let m = out.metrics;
        assert_eq!(m.requests, 3);
        assert!(m.min_latency <= m.max_latency);
        assert!(m.busy_time >= m.max_latency);
        assert!(m.mean_latency() >= m.min_latency && m.mean_latency() <= m.max_latency);
        assert!(m.throughput() > 0.0);
    }

    #[test]
    fn empty_batch_is_fine() {
        let (_, est, _) = trained();
        let out = serve_batch(&est, &[], &ServeOptions { threads: 4 });
        assert!(out.estimates.is_empty());
        assert_eq!(out.metrics.requests, 0);
        assert_eq!(out.metrics.mean_latency(), Duration::ZERO);
    }
}
